//! `mopt_trace` — lightweight structured tracing for the serving stack.
//!
//! Three building blocks, shared by the service layer and the bench harness:
//!
//! * [`TraceContext`] / [`SpanNode`] — a request-scoped span tree with
//!   monotonic microsecond timestamps. A context is either *enabled* (backed
//!   by a mutex-protected tree) or *disabled* (a `None` — every operation is
//!   a branch and nothing else, so the warm-hit path pays no allocation when
//!   tracing is off; [`span_allocations`] lets tests assert that).
//! * [`LatencyHistogram`] — a lock-free log2-bucketed latency histogram
//!   (moved here from the service crate so single-flight wait times and
//!   per-verb latency share one implementation).
//! * [`TraceRing`] — a bounded overwrite-oldest ring for retaining the last
//!   N slow-request traces.
//!
//! Timestamps come from [`std::time::Instant`] only — wall-clock time never
//! enters a trace, so spans are immune to clock steps.

#![warn(missing_docs)]

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use serde::{Deserialize, Serialize};

/// Counts every heap-allocating trace operation (context creation, span
/// opening, retroactive recording) across the process lifetime.
static SPAN_ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

/// Total trace operations that allocated since process start.
///
/// Disabled contexts never bump this, which is exactly what the
/// zero-overhead test asserts: serving untraced warm hits leaves the counter
/// untouched.
pub fn span_allocations() -> u64 {
    SPAN_ALLOCATIONS.load(Ordering::Relaxed)
}

fn lock_recover<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// One key/value annotation on a span (e.g. `role = "led"`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpanTag {
    /// Tag name.
    pub key: String,
    /// Tag value, always a string on the wire.
    pub value: String,
}

/// One completed span: a named interval with tags and child spans.
///
/// `start_micros` is the offset from the trace root's creation (monotonic
/// clock), so sibling spans can be ordered and gaps attributed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpanNode {
    /// Span name (e.g. `"cache_probe"`, `"solve"`).
    pub name: String,
    /// Microseconds from the root's start to this span's start.
    pub start_micros: u64,
    /// Span duration in microseconds.
    pub duration_micros: u64,
    /// Key/value annotations.
    pub tags: Vec<SpanTag>,
    /// Child spans, in completion order.
    pub children: Vec<SpanNode>,
}

impl SpanNode {
    fn new(name: &str, start_micros: u64) -> Self {
        SpanNode {
            name: name.to_string(),
            start_micros,
            duration_micros: 0,
            tags: Vec::new(),
            children: Vec::new(),
        }
    }

    /// Depth-first search for a descendant span (or self) named `name`.
    pub fn find(&self, name: &str) -> Option<&SpanNode> {
        if self.name == name {
            return Some(self);
        }
        self.children.iter().find_map(|child| child.find(name))
    }

    /// Value of tag `key` on this span, if present.
    pub fn tag_value(&self, key: &str) -> Option<&str> {
        self.tags.iter().find(|t| t.key == key).map(|t| t.value.as_str())
    }
}

#[derive(Debug)]
struct TraceState {
    base: Instant,
    root: SpanNode,
    /// Open spans, innermost last. Closed spans move into their parent's
    /// `children` (or the root's, when the stack empties).
    stack: Vec<SpanNode>,
}

/// A request-scoped trace handle, cheap to clone and thread through the
/// answer path.
///
/// A disabled context (the default) is a `None`: every method is a branch
/// with no allocation, no locking, and no clock read. An enabled context
/// shares one mutex-protected span tree across clones, so spans opened
/// inside a single-flight closure land in the same tree as the caller's.
#[derive(Debug, Clone, Default)]
pub struct TraceContext {
    inner: Option<Arc<Mutex<TraceState>>>,
}

impl TraceContext {
    /// A context that records nothing and never allocates.
    pub fn disabled() -> Self {
        TraceContext { inner: None }
    }

    /// A recording context whose root span is named `root_name`; the
    /// monotonic clock starts now.
    pub fn enabled(root_name: &str) -> Self {
        SPAN_ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        TraceContext {
            inner: Some(Arc::new(Mutex::new(TraceState {
                base: Instant::now(),
                root: SpanNode::new(root_name, 0),
                stack: Vec::new(),
            }))),
        }
    }

    /// Whether this context records spans.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Open a span named `name`; it closes (and attaches to its parent) when
    /// the returned guard drops. A no-op on disabled contexts.
    pub fn span(&self, name: &str) -> SpanGuard<'_> {
        let Some(inner) = &self.inner else {
            return SpanGuard { inner: None };
        };
        SPAN_ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        let mut state = lock_recover(inner);
        let start = state.base.elapsed().as_micros() as u64;
        let node = SpanNode::new(name, start);
        state.stack.push(node);
        SpanGuard { inner: Some(inner) }
    }

    /// Retroactively record a completed interval of `duration` ending now,
    /// as a child of the innermost open span (or the root). Used for work
    /// measured before the context existed, like request parsing or
    /// queue wait.
    pub fn record(&self, name: &str, duration: Duration) {
        let Some(inner) = &self.inner else { return };
        SPAN_ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        let mut state = lock_recover(inner);
        let now = state.base.elapsed().as_micros() as u64;
        let micros = duration.as_micros().min(u64::MAX as u128) as u64;
        let mut node = SpanNode::new(name, now.saturating_sub(micros));
        node.duration_micros = micros;
        match state.stack.last_mut() {
            Some(open) => open.children.push(node),
            None => state.root.children.push(node),
        }
    }

    /// Annotate the innermost open span (or the root) with `key = value`.
    pub fn tag(&self, key: &str, value: &str) {
        let Some(inner) = &self.inner else { return };
        let mut state = lock_recover(inner);
        let tag = SpanTag { key: key.to_string(), value: value.to_string() };
        match state.stack.last_mut() {
            Some(open) => open.tags.push(tag),
            None => state.root.tags.push(tag),
        }
    }

    /// Close the trace: any still-open spans are closed at the current
    /// instant, the root's duration is set to now, and a clone of the
    /// finished tree is returned. `None` on disabled contexts.
    pub fn finish(&self) -> Option<SpanNode> {
        let inner = self.inner.as_ref()?;
        let mut state = lock_recover(inner);
        let now = state.base.elapsed().as_micros() as u64;
        while let Some(mut node) = state.stack.pop() {
            node.duration_micros = now.saturating_sub(node.start_micros);
            match state.stack.last_mut() {
                Some(parent) => parent.children.push(node),
                None => state.root.children.push(node),
            }
        }
        state.root.duration_micros = now;
        Some(state.root.clone())
    }
}

/// RAII guard that closes the span opened by [`TraceContext::span`].
#[derive(Debug)]
pub struct SpanGuard<'a> {
    inner: Option<&'a Arc<Mutex<TraceState>>>,
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        let Some(inner) = self.inner else { return };
        let mut state = lock_recover(inner);
        let Some(mut node) = state.stack.pop() else { return };
        let now = state.base.elapsed().as_micros() as u64;
        node.duration_micros = now.saturating_sub(node.start_micros);
        match state.stack.last_mut() {
            Some(parent) => parent.children.push(node),
            None => state.root.children.push(node),
        }
    }
}

/// A bounded overwrite-oldest ring of trace entries.
///
/// Writers claim a slot with one atomic increment and store under that
/// slot's own mutex, so pushes never contend with each other (different
/// slots) and snapshots never observe a torn entry (slot mutex). Used for
/// the last-N slow-request log behind the `Trace` verb.
#[derive(Debug)]
pub struct TraceRing<T> {
    slots: Vec<Mutex<Option<(u64, T)>>>,
    head: AtomicU64,
}

impl<T: Clone> TraceRing<T> {
    /// An empty ring holding at most `capacity` entries (minimum 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        TraceRing {
            slots: (0..capacity).map(|_| Mutex::new(None)).collect(),
            head: AtomicU64::new(0),
        }
    }

    /// Maximum number of retained entries.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Append `entry`, overwriting the oldest retained entry when full.
    pub fn push(&self, entry: T) {
        let seq = self.head.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(seq % self.slots.len() as u64) as usize];
        *lock_recover(slot) = Some((seq, entry));
    }

    /// Entries pushed since creation (not capped at capacity).
    pub fn pushed(&self) -> u64 {
        self.head.load(Ordering::Relaxed)
    }

    /// Clone of the retained entries, oldest first.
    pub fn snapshot(&self) -> Vec<T> {
        let mut entries: Vec<(u64, T)> =
            self.slots.iter().filter_map(|slot| lock_recover(slot).clone()).collect();
        entries.sort_by_key(|(seq, _)| *seq);
        entries.into_iter().map(|(_, entry)| entry).collect()
    }
}

/// Number of log2 buckets: bucket 63 absorbs everything ≥ 2^63 µs.
const BUCKETS: usize = 64;

/// A lock-free latency histogram with log2 microsecond buckets.
///
/// Bucket `i` covers `[2^i, 2^(i+1))` microseconds, so one fixed-size array
/// of atomics spans sub-microsecond cache hits and multi-second cold solves
/// with zero allocation on the record path. The wire snapshot lists only
/// non-empty buckets, keyed by their inclusive upper bound.
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum_micros: AtomicU64,
    max_micros: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_micros: AtomicU64::new(0),
            max_micros: AtomicU64::new(0),
        }
    }
}

impl LatencyHistogram {
    /// Record one observation.
    pub fn record(&self, elapsed: Duration) {
        let micros = elapsed.as_micros().min(u64::MAX as u128) as u64;
        let bucket = (64 - micros.max(1).leading_zeros() as usize - 1).min(BUCKETS - 1);
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_micros.fetch_add(micros, Ordering::Relaxed);
        self.max_micros.fetch_max(micros, Ordering::Relaxed);
    }

    /// Serializable snapshot (non-empty buckets only).
    ///
    /// `record` bumps the bucket before the count, and this reads the count
    /// before the buckets — so under concurrent recording a snapshot's
    /// bucket sum is always ≥ its count (never a phantom observation).
    pub fn snapshot(&self) -> LatencySnapshot {
        let count = self.count.load(Ordering::Relaxed);
        let sum = self.sum_micros.load(Ordering::Relaxed);
        LatencySnapshot {
            count,
            sum_micros: sum,
            mean_micros: if count == 0 { 0.0 } else { sum as f64 / count as f64 },
            max_micros: self.max_micros.load(Ordering::Relaxed),
            buckets: self
                .buckets
                .iter()
                .enumerate()
                .filter_map(|(i, c)| {
                    let c = c.load(Ordering::Relaxed);
                    (c > 0).then(|| HistogramBucket {
                        le_micros: if i + 1 >= 64 { u64::MAX } else { (1u64 << (i + 1)) - 1 },
                        count: c,
                    })
                })
                .collect(),
        }
    }
}

/// One non-empty histogram bucket on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistogramBucket {
    /// Upper bound of the bucket, inclusive, in microseconds.
    pub le_micros: u64,
    /// Observations in the bucket (this bucket alone, not cumulative).
    pub count: u64,
}

/// Wire form of one latency distribution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LatencySnapshot {
    /// Observations recorded.
    pub count: u64,
    /// Sum of all observations in microseconds.
    pub sum_micros: u64,
    /// Mean latency in microseconds.
    pub mean_micros: f64,
    /// Worst observed latency in microseconds.
    pub max_micros: u64,
    /// Non-empty log2 buckets, ascending.
    pub buckets: Vec<HistogramBucket>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_context_records_nothing_and_never_allocates() {
        let before = span_allocations();
        let ctx = TraceContext::disabled();
        assert!(!ctx.is_enabled());
        {
            let _outer = ctx.span("outer");
            let _inner = ctx.span("inner");
            ctx.record("late", Duration::from_micros(5));
            ctx.tag("key", "value");
        }
        assert_eq!(ctx.finish(), None);
        assert_eq!(span_allocations(), before, "disabled path must not allocate");
    }

    #[test]
    fn spans_nest_and_attach_in_completion_order() {
        let ctx = TraceContext::enabled("request");
        {
            let _probe = ctx.span("cache_probe");
        }
        {
            let _flight = ctx.span("flight");
            ctx.tag("role", "led");
            {
                let _solve = ctx.span("solve");
                std::thread::sleep(Duration::from_millis(2));
            }
        }
        ctx.record("serialize", Duration::from_micros(40));
        let root = ctx.finish().expect("enabled trace finishes");
        assert_eq!(root.name, "request");
        assert_eq!(
            root.children.iter().map(|c| c.name.as_str()).collect::<Vec<_>>(),
            vec!["cache_probe", "flight", "serialize"]
        );
        let flight = root.find("flight").unwrap();
        assert_eq!(flight.tag_value("role"), Some("led"));
        let solve = flight.find("solve").unwrap();
        assert!(solve.duration_micros >= 2_000, "solve slept 2ms");
        assert!(flight.duration_micros >= solve.duration_micros);
        assert!(root.duration_micros >= flight.duration_micros);
        assert!(solve.start_micros >= flight.start_micros);
        assert!(root.find("missing").is_none());
    }

    #[test]
    fn clones_share_one_tree() {
        let ctx = TraceContext::enabled("request");
        let clone = ctx.clone();
        {
            let _span = clone.span("from_clone");
        }
        let root = ctx.finish().unwrap();
        assert!(root.find("from_clone").is_some());
    }

    #[test]
    fn finish_closes_dangling_spans() {
        let ctx = TraceContext::enabled("request");
        let guard = ctx.span("open");
        let root = ctx.finish().unwrap();
        assert!(root.find("open").is_some());
        drop(guard);
    }

    #[test]
    fn span_tree_serializes_and_round_trips() {
        let ctx = TraceContext::enabled("request");
        {
            let _a = ctx.span("a");
            ctx.tag("k", "v");
        }
        let root = ctx.finish().unwrap();
        let text = serde_json::to_string(&root).unwrap();
        let back: SpanNode = serde_json::from_str(&text).unwrap();
        assert_eq!(back, root);
    }

    #[test]
    fn ring_retains_the_newest_entries_in_order() {
        let ring: TraceRing<u32> = TraceRing::new(4);
        assert_eq!(ring.capacity(), 4);
        assert!(ring.snapshot().is_empty());
        for i in 0..10 {
            ring.push(i);
        }
        assert_eq!(ring.snapshot(), vec![6, 7, 8, 9]);
        assert_eq!(ring.pushed(), 10);
    }

    #[test]
    fn histogram_snapshot_carries_the_sum() {
        let hist = LatencyHistogram::default();
        hist.record(Duration::from_micros(3));
        hist.record(Duration::from_micros(7));
        let snap = hist.snapshot();
        assert_eq!(snap.count, 2);
        assert_eq!(snap.sum_micros, 10);
        assert_eq!(snap.max_micros, 7);
        assert!((snap.mean_micros - 5.0).abs() < 1e-9);
    }

    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// Writers hammer `record` while readers take snapshots: every
        /// snapshot is internally consistent (bucket sum ≥ count, both
        /// bounded by the true total, max from the recorded value set), and
        /// the final quiescent snapshot is exact — no observation is torn
        /// across count/sum/bucket updates.
        #[test]
        fn histogram_snapshots_are_never_torn(
            seed in 0u64..1_000_000,
            writers in 1usize..5,
        ) {
            let hist = LatencyHistogram::default();
            let per_writer = 200u64;
            let total = writers as u64 * per_writer;
            let value = |x: u64| x % 50_000;
            std::thread::scope(|scope| {
                for t in 0..writers {
                    let hist = &hist;
                    scope.spawn(move || {
                        let mut x = seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(t as u64 + 1);
                        for _ in 0..per_writer {
                            x ^= x << 13; x ^= x >> 7; x ^= x << 17;
                            hist.record(Duration::from_micros(value(x)));
                        }
                    });
                }
                let hist = &hist;
                scope.spawn(move || {
                    for _ in 0..400 {
                        let snap = hist.snapshot();
                        let bucket_sum: u64 = snap.buckets.iter().map(|b| b.count).sum();
                        assert!(bucket_sum >= snap.count, "bucket before count in record()");
                        assert!(snap.count <= total);
                        assert!(bucket_sum <= total);
                        assert!(snap.max_micros < 50_000);
                        for b in &snap.buckets {
                            assert!(
                                b.le_micros == u64::MAX || (b.le_micros + 1).is_power_of_two(),
                                "bucket bounds are 2^k - 1"
                            );
                        }
                        std::hint::spin_loop();
                    }
                });
            });
            // Quiescent: totals are exact.
            let mut x_check = 0u64;
            let mut expected_sum = 0u64;
            let mut expected_max = 0u64;
            for t in 0..writers {
                let mut x = seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(t as u64 + 1);
                for _ in 0..per_writer {
                    x ^= x << 13; x ^= x >> 7; x ^= x << 17;
                    expected_sum += value(x);
                    expected_max = expected_max.max(value(x));
                    x_check = x_check.wrapping_add(x);
                }
            }
            let snap = hist.snapshot();
            prop_assert_eq!(snap.count, total);
            prop_assert_eq!(snap.sum_micros, expected_sum);
            prop_assert_eq!(snap.max_micros, expected_max);
            prop_assert_eq!(snap.buckets.iter().map(|b| b.count).sum::<u64>(), total);
        }

        /// Writers push tagged (value, checksum) pairs while readers
        /// snapshot: every observed entry has a valid checksum (no torn
        /// entry), snapshots never exceed capacity, and the final snapshot
        /// holds exactly min(total, capacity) distinct entries.
        #[test]
        fn ring_snapshots_are_never_torn(
            seed in 0u64..1_000_000,
            writers in 1usize..5,
            capacity in 1usize..33,
        ) {
            let ring: TraceRing<(u64, u64)> = TraceRing::new(capacity);
            let per_writer = 100u64;
            let total = writers as u64 * per_writer;
            let checksum = |v: u64| v.wrapping_mul(31).wrapping_add(7);
            std::thread::scope(|scope| {
                for t in 0..writers {
                    let ring = &ring;
                    scope.spawn(move || {
                        let mut x = seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(t as u64 + 1);
                        for _ in 0..per_writer {
                            x ^= x << 13; x ^= x >> 7; x ^= x << 17;
                            ring.push((x, checksum(x)));
                        }
                    });
                }
                let ring = &ring;
                scope.spawn(move || {
                    for _ in 0..200 {
                        let snap = ring.snapshot();
                        assert!(snap.len() <= capacity);
                        for (v, c) in &snap {
                            assert_eq!(*c, checksum(*v), "entry observed un-torn");
                        }
                        std::hint::spin_loop();
                    }
                });
            });
            let snap = ring.snapshot();
            prop_assert_eq!(snap.len() as u64, total.min(capacity as u64));
            prop_assert_eq!(ring.pushed(), total);
            for (v, c) in &snap {
                prop_assert_eq!(*c, checksum(*v));
            }
        }
    }
}
