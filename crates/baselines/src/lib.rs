//! Vendor-library baseline (the oneDNN stand-in).
//!
//! Intel oneDNN is a closed, hand-tuned vendor library. Table 2 of the paper
//! characterizes it as having a highly optimized microkernel but *minimal
//! design-space exploration*: at run time it chooses among a small number of
//! pre-determined blocking schemes based on the layer dimensions. This crate
//! reproduces that behavioural profile:
//!
//! * [`LibraryPlan`] — the blocking decision (direct tiled convolution vs
//!   im2col + GEMM, with fixed blocking parameters chosen by simple rules on
//!   the layer shape and cache sizes),
//! * [`OneDnnLike`] — plans and executes a convolution with that fixed
//!   heuristic, with no search.
//!
//! The point of the baseline is not to match oneDNN's absolute performance
//! (its microkernel is far more tuned than ours) but to provide a
//! no-exploration, heuristically-blocked competitor so the evaluation can
//! reproduce the *relative* behaviour the paper reports: a comprehensive
//! model-driven search (MOpt) matches or beats a fixed-heuristic library and
//! a budgeted auto-tuner on most layers.

use conv_exec::im2col::{conv2d_im2col, GemmBlocking};
use conv_exec::{Tensor4, TiledConv};
use conv_spec::{
    ConvShape, LoopIndex, MachineModel, Permutation, TileConfig, TileSizes, TilingLevel,
};
use serde::{Deserialize, Serialize};

/// Which execution algorithm the library heuristic selects.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LibraryAlgorithm {
    /// Direct multi-level tiled convolution with fixed blocking.
    Direct,
    /// im2col expansion followed by a blocked GEMM.
    Im2colGemm,
}

/// The library's (fixed, heuristic) execution plan for one layer.
#[derive(Debug, Clone, PartialEq)]
pub struct LibraryPlan {
    /// The chosen algorithm.
    pub algorithm: LibraryAlgorithm,
    /// The tiling configuration used by the direct path.
    pub config: TileConfig,
    /// The GEMM blocking used by the im2col path.
    pub gemm: GemmBlocking,
    /// Threads the plan will use.
    pub threads: usize,
}

/// The oneDNN-like baseline library.
#[derive(Debug, Clone)]
pub struct OneDnnLike {
    machine: MachineModel,
}

impl OneDnnLike {
    /// A library instance for a machine.
    pub fn new(machine: MachineModel) -> Self {
        OneDnnLike { machine }
    }

    /// Choose the execution plan for a layer. This is a *fixed* heuristic —
    /// the "minimal design-space exploration" of Table 2: the algorithm is
    /// picked by the kernel size, and blocking factors are derived from the
    /// cache sizes with simple rules, never searched.
    pub fn plan(&self, shape: &ConvShape) -> LibraryPlan {
        let threads = self.machine.threads;
        // Pointwise (1x1) convolutions are pure GEMMs: use im2col.
        let algorithm = if shape.is_pointwise() {
            LibraryAlgorithm::Im2colGemm
        } else {
            LibraryAlgorithm::Direct
        };

        // Fixed blocking rules (register block = SIMD width × a small row
        // count; L1 block sized to roughly half the L1 capacity; L2 block to
        // roughly half of L2).
        let simd = self.machine.simd_width;
        let kb = simd.min(shape.k).max(1);
        let wb = 6.min(shape.w).max(1);
        let register = TileSizes::ones().with(LoopIndex::K, kb).with(LoopIndex::W, wb);

        let l1_cap = self.machine.capacity(TilingLevel::L1) / 2;
        let cb = pick_block(shape.c, 1, 64);
        let hb = pick_block(shape.h, 1, 8);
        let mut l1 = TileSizes::ones()
            .with(LoopIndex::K, kb)
            .with(LoopIndex::C, cb)
            .with(LoopIndex::R, shape.r)
            .with(LoopIndex::S, shape.s)
            .with(LoopIndex::H, hb)
            .with(LoopIndex::W, shape.w.min(28).max(wb));
        shrink_to_capacity(&mut l1, shape, l1_cap);

        let l2_cap = self.machine.capacity(TilingLevel::L2) / 2;
        let mut l2 = TileSizes::ones()
            .with(LoopIndex::K, (4 * kb).min(shape.k))
            .with(LoopIndex::C, shape.c.min(4 * cb))
            .with(LoopIndex::R, shape.r)
            .with(LoopIndex::S, shape.s)
            .with(LoopIndex::H, shape.h.min(4 * hb))
            .with(LoopIndex::W, shape.w);
        shrink_to_capacity(&mut l2, shape, l2_cap);

        let l3 = TileSizes::full(shape);
        let config = TileConfig::new(
            Permutation::parse("nkcrshw").expect("library loop order"),
            [register, l1, l2, l3],
            TileSizes::ones().with(LoopIndex::K, threads.min(shape.k).max(1)),
        )
        .normalized(shape);

        let gemm = GemmBlocking {
            mc: 64.min(shape.k.max(1)),
            kc: 256.min((shape.c * shape.r * shape.s).max(1)),
            nc: 512.min((shape.n * shape.h * shape.w).max(1)),
            mr: 4,
            nr: simd.max(1),
        };
        LibraryPlan { algorithm, config, gemm, threads }
    }

    /// Execute a convolution with the fixed plan.
    pub fn run(&self, shape: &ConvShape, input: &Tensor4, kernel: &Tensor4) -> Tensor4 {
        let plan = self.plan(shape);
        self.run_plan(&plan, shape, input, kernel)
    }

    /// Execute a previously computed plan.
    pub fn run_plan(
        &self,
        plan: &LibraryPlan,
        shape: &ConvShape,
        input: &Tensor4,
        kernel: &Tensor4,
    ) -> Tensor4 {
        match plan.algorithm {
            LibraryAlgorithm::Im2colGemm => {
                conv2d_im2col(shape, input, kernel, &plan.gemm, plan.threads)
            }
            LibraryAlgorithm::Direct => {
                let conv = TiledConv::new(*shape, plan.config.clone(), plan.threads)
                    .expect("library plan is always valid")
                    .with_vec_len(self.machine.simd_width);
                conv.run(input, kernel)
            }
        }
    }
}

/// Pick a block size for an extent: the largest power of two `<= max` that
/// divides or fits the extent, at least `min`.
fn pick_block(extent: usize, min: usize, max: usize) -> usize {
    let mut b = 1;
    while b * 2 <= max && b * 2 <= extent {
        b *= 2;
    }
    b.max(min).min(extent.max(1))
}

/// Halve tile sizes (largest contributor first) until the footprint fits.
fn shrink_to_capacity(tiles: &mut TileSizes, shape: &ConvShape, capacity: usize) {
    let mut guard = 0;
    while tiles.footprint(shape) > capacity && guard < 64 {
        guard += 1;
        // Shrink the largest of the channel/spatial dims.
        let mut best = LoopIndex::C;
        let mut best_val = 0;
        for idx in [LoopIndex::C, LoopIndex::K, LoopIndex::H, LoopIndex::W] {
            if tiles.get(idx) > best_val {
                best_val = tiles.get(idx);
                best = idx;
            }
        }
        if best_val <= 1 {
            break;
        }
        tiles.set(best, (best_val / 2).max(1));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use conv_exec::naive::conv2d_naive;

    fn machine() -> MachineModel {
        MachineModel::i7_9700k()
    }

    #[test]
    fn pointwise_layers_use_gemm_and_others_use_direct() {
        let lib = OneDnnLike::new(machine());
        let pointwise = ConvShape::new(1, 64, 32, 1, 1, 17, 17, 1).unwrap();
        let spatial = ConvShape::new(1, 64, 32, 3, 3, 17, 17, 1).unwrap();
        assert_eq!(lib.plan(&pointwise).algorithm, LibraryAlgorithm::Im2colGemm);
        assert_eq!(lib.plan(&spatial).algorithm, LibraryAlgorithm::Direct);
    }

    #[test]
    fn plans_are_valid_configurations() {
        let lib = OneDnnLike::new(machine());
        for op in conv_spec::benchmarks::scaled_operators(28, 128) {
            let plan = lib.plan(&op.shape);
            assert!(plan.config.validate(&op.shape).is_ok(), "invalid plan for {}", op.name);
            assert!(plan.threads >= 1);
        }
    }

    #[test]
    fn l1_block_fits_half_of_l1() {
        let lib = OneDnnLike::new(machine());
        let shape = ConvShape::new(1, 256, 256, 3, 3, 28, 28, 1).unwrap();
        let plan = lib.plan(&shape);
        let l1_tile = plan.config.level(TilingLevel::L1);
        assert!(l1_tile.footprint(&shape) <= lib.machine.capacity(TilingLevel::L1) / 2);
    }

    #[test]
    fn direct_path_matches_naive() {
        let lib = OneDnnLike::new(machine());
        let shape = ConvShape::new(1, 12, 6, 3, 3, 9, 9, 1).unwrap();
        let input = Tensor4::random(shape.n, shape.c, shape.input_h(), shape.input_w(), 71);
        let kernel = Tensor4::random(shape.k, shape.c, shape.r, shape.s, 72);
        let expected = conv2d_naive(&shape, &input, &kernel);
        let got = lib.run(&shape, &input, &kernel);
        assert!(expected.allclose(&got, 1e-4));
    }

    #[test]
    fn gemm_path_matches_naive() {
        let lib = OneDnnLike::new(machine());
        let shape = ConvShape::new(1, 8, 8, 1, 1, 10, 10, 1).unwrap();
        let input = Tensor4::random(shape.n, shape.c, shape.input_h(), shape.input_w(), 81);
        let kernel = Tensor4::random(shape.k, shape.c, shape.r, shape.s, 82);
        let expected = conv2d_naive(&shape, &input, &kernel);
        let got = lib.run(&shape, &input, &kernel);
        assert!(expected.allclose(&got, 1e-4));
    }

    #[test]
    fn strided_layer_plan_and_execution() {
        let lib = OneDnnLike::new(machine());
        let shape = ConvShape::from_table1(16, 8, 15, 3, 2);
        let input = Tensor4::random(shape.n, shape.c, shape.input_h(), shape.input_w(), 91);
        let kernel = Tensor4::random(shape.k, shape.c, shape.r, shape.s, 92);
        let expected = conv2d_naive(&shape, &input, &kernel);
        let got = lib.run(&shape, &input, &kernel);
        assert!(expected.allclose(&got, 1e-4));
    }

    #[test]
    fn depthwise_and_dilated_layers_plan_and_execute_correctly() {
        let lib = OneDnnLike::new(machine());
        for shape in [
            ConvShape::depthwise(8, 11, 3, 1),
            ConvShape::depthwise(8, 11, 3, 2),
            ConvShape::from_table1_dilated(6, 4, 13, 3, 1, 2),
        ] {
            let plan = lib.plan(&shape);
            assert!(plan.config.validate(&shape).is_ok(), "invalid plan for {shape}");
            let (ni, ci, hi, wi) = shape.input_dims();
            let (kk, kc, kr, ks) = shape.kernel_dims();
            let input = Tensor4::random(ni, ci, hi, wi, 95);
            let kernel = Tensor4::random(kk, kc, kr, ks, 96);
            let expected = conv2d_naive(&shape, &input, &kernel);
            let got = lib.run(&shape, &input, &kernel);
            assert!(expected.allclose(&got, 1e-4), "{shape}");
        }
    }

    #[test]
    fn planning_is_deterministic() {
        let lib = OneDnnLike::new(machine());
        let shape = ConvShape::new(1, 64, 64, 3, 3, 28, 28, 1).unwrap();
        assert_eq!(lib.plan(&shape), lib.plan(&shape));
    }

    #[test]
    fn pick_block_behaviour() {
        assert_eq!(pick_block(64, 1, 64), 64);
        assert_eq!(pick_block(48, 1, 64), 32);
        assert_eq!(pick_block(3, 1, 64), 2);
        assert_eq!(pick_block(1, 1, 64), 1);
    }
}
