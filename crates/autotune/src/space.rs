//! Template-constrained search space over tiling configurations.
//!
//! TVM's conv2d schedule template exposes `split` knobs whose candidate
//! values are divisors (or small factors) of each loop extent, plus a choice
//! among a few loop orders. The search space here mirrors that: per loop
//! index and tiling level, candidate tile sizes are drawn from the divisors
//! of the extent (augmented with powers of two), and the permutation is drawn
//! from a small template list.

use conv_spec::{
    ConvShape, LoopIndex, MachineModel, Permutation, TileConfig, TileSizes, TilingLevel,
    ALL_INDICES, NUM_TILING_LEVELS,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A template-constrained configuration space for one operator on one machine.
#[derive(Debug, Clone)]
pub struct SearchSpace {
    shape: ConvShape,
    /// Candidate tile sizes per loop index (shared by all levels; nesting is
    /// repaired after sampling).
    candidates: Vec<Vec<usize>>,
    /// Loop-order templates candidates may use.
    permutations: Vec<Permutation>,
    threads: usize,
}

impl SearchSpace {
    /// Build the space for a shape and machine (the machine provides the
    /// thread count used by sampled configurations).
    pub fn new(shape: &ConvShape, machine: &MachineModel) -> Self {
        let candidates =
            ALL_INDICES.iter().map(|&idx| candidate_sizes(shape.extent(idx))).collect();
        let permutations = vec![
            Permutation::parse("kcrsnhw").expect("template"),
            Permutation::parse("nkcrshw").expect("template"),
            Permutation::parse("nkhwcrs").expect("template"),
            Permutation::parse("nchrswk").expect("template"),
        ];
        SearchSpace { shape: *shape, candidates, permutations, threads: machine.threads }
    }

    /// The operator shape the space describes.
    pub fn shape(&self) -> &ConvShape {
        &self.shape
    }

    /// Thread count sampled configurations assume.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The loop-order templates.
    pub fn permutations(&self) -> &[Permutation] {
        &self.permutations
    }

    /// Candidate tile sizes for a loop index.
    pub fn candidates_for(&self, idx: LoopIndex) -> &[usize] {
        &self.candidates[idx.canonical_position()]
    }

    /// Approximate size of the space (number of distinct candidate points),
    /// counting one independent size choice per index per level and the
    /// permutation choice.
    pub fn cardinality(&self) -> f64 {
        let per_level: f64 = self.candidates.iter().map(|c| c.len() as f64).product();
        per_level.powi(NUM_TILING_LEVELS as i32) * self.permutations.len() as f64
    }

    /// Sample one random configuration.
    pub fn sample(&self, rng: &mut StdRng) -> TileConfig {
        let perm = self.permutations[rng.gen_range(0..self.permutations.len())].clone();
        let mut levels = [TileSizes::ones(); NUM_TILING_LEVELS];
        for level in TilingLevel::ALL {
            let mut t = TileSizes::ones();
            for &idx in &ALL_INDICES {
                let c = self.candidates_for(idx);
                t.set(idx, c[rng.gen_range(0..c.len())]);
            }
            levels[level.ordinal()] = t;
        }
        TileConfig::new(perm, levels, TileSizes::ones()).normalized(&self.shape)
    }

    /// Sample `count` random configurations with a fixed seed (uniform
    /// sampling of the space, as used for the model-validation experiments).
    pub fn sample_many(&self, count: usize, seed: u64) -> Vec<TileConfig> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..count).map(|_| self.sample(&mut rng)).collect()
    }

    /// A random neighbour of `config`: one knob (a tile size at one level, or
    /// the permutation) is re-sampled.
    pub fn neighbour(&self, config: &TileConfig, rng: &mut StdRng) -> TileConfig {
        let mut next = config.clone();
        if rng.gen_ratio(1, 8) {
            next.permutation = self.permutations[rng.gen_range(0..self.permutations.len())].clone();
        } else {
            let level = TilingLevel::ALL[rng.gen_range(0..NUM_TILING_LEVELS)];
            let idx = ALL_INDICES[rng.gen_range(0..7)];
            let c = self.candidates_for(idx);
            let value = c[rng.gen_range(0..c.len())];
            next.level_mut(level).set(idx, value);
        }
        next.normalized(&self.shape)
    }

    /// Feature vector of a configuration for the learned cost model:
    /// log2 of every tile size at every level plus a one-hot permutation id.
    pub fn features(&self, config: &TileConfig) -> Vec<f64> {
        let mut f = Vec::with_capacity(7 * NUM_TILING_LEVELS + self.permutations.len());
        for level in TilingLevel::ALL {
            for &idx in &ALL_INDICES {
                f.push((config.level(level).get(idx) as f64).log2());
            }
        }
        for p in &self.permutations {
            f.push(if *p == config.permutation { 1.0 } else { 0.0 });
        }
        f
    }
}

/// Candidate tile sizes for an extent: all divisors, plus powers of two up to
/// the extent, deduplicated and sorted.
fn candidate_sizes(extent: usize) -> Vec<usize> {
    let mut set = std::collections::BTreeSet::new();
    for d in 1..=extent {
        if extent.is_multiple_of(d) {
            set.insert(d);
        }
        if d * d > extent && set.len() > 1 {
            // All divisors <= sqrt have been seen; add their complements.
            let small: Vec<usize> = set.iter().cloned().collect();
            for s in small {
                set.insert(extent / s);
            }
            break;
        }
    }
    let mut p = 1;
    while p < extent {
        set.insert(p);
        p *= 2;
    }
    set.insert(extent);
    set.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space() -> SearchSpace {
        let shape = ConvShape::new(1, 24, 16, 3, 3, 20, 20, 1).unwrap();
        SearchSpace::new(&shape, &MachineModel::i7_9700k())
    }

    #[test]
    fn candidates_include_divisors_and_powers_of_two() {
        let c = candidate_sizes(24);
        for d in [1, 2, 3, 4, 6, 8, 12, 24, 16] {
            assert!(c.contains(&d), "missing {d} in {c:?}");
        }
        assert!(c.iter().all(|&v| v <= 24 || v == 24));
        assert_eq!(candidate_sizes(1), vec![1]);
    }

    #[test]
    fn samples_are_valid_configurations() {
        let s = space();
        for cfg in s.sample_many(50, 99) {
            assert!(cfg.validate(s.shape()).is_ok());
            assert!(s.permutations().contains(&cfg.permutation));
        }
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let s = space();
        assert_eq!(s.sample_many(10, 1), s.sample_many(10, 1));
        assert_ne!(s.sample_many(10, 1), s.sample_many(10, 2));
    }

    #[test]
    fn neighbours_stay_valid_and_usually_differ() {
        let s = space();
        let mut rng = StdRng::seed_from_u64(5);
        let base = s.sample(&mut rng);
        let mut changed = 0;
        for _ in 0..20 {
            let n = s.neighbour(&base, &mut rng);
            assert!(n.validate(s.shape()).is_ok());
            if n != base {
                changed += 1;
            }
        }
        assert!(changed > 5, "neighbour sampling never changes the configuration");
    }

    #[test]
    fn features_have_fixed_length_and_reflect_tiles() {
        let s = space();
        let mut rng = StdRng::seed_from_u64(7);
        let a = s.sample(&mut rng);
        let b = s.sample(&mut rng);
        let fa = s.features(&a);
        let fb = s.features(&b);
        assert_eq!(fa.len(), 7 * NUM_TILING_LEVELS + s.permutations().len());
        assert_eq!(fa.len(), fb.len());
        assert_ne!(fa, fb);
    }

    #[test]
    fn cardinality_is_large() {
        // The paper's point: the template space is still huge, hence budgets.
        assert!(space().cardinality() > 1e12);
    }
}
