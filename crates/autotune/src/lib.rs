//! Empirical auto-tuning (the AutoTVM stand-in).
//!
//! The paper compares MOpt against TVM's AutoTVM, which searches a template-
//! constrained space of tile sizes using actual execution of candidates on
//! the target machine, guided by a machine-learning cost model (XGBoost) and
//! a trial budget (1000 trials in the paper). TVM itself is an external
//! system; this crate reproduces the *behavioural* ingredients the comparison
//! depends on:
//!
//! * [`space::SearchSpace`] — a template-constrained configuration space over
//!   tile sizes (factor-based, like TVM's `split` knobs) and a small set of
//!   loop-order templates,
//! * [`tuner`] — three search strategies with a trial budget: pure random
//!   search, simulated annealing, and an ε-greedy model-guided tuner with an
//!   incrementally (re)trained linear cost model over log-tile features
//!   ([`cost_model::OnlineCostModel`]) standing in for the XGBoost ranker,
//! * an `Evaluator` callback so the caller decides what "measuring a
//!   candidate" means: wall-clock execution of `conv-exec` (as TVM does) or a
//!   simulated cost from `cache-sim` (for machine-independent experiments).
//!
//! # Example
//!
//! ```
//! use autotune::{space::SearchSpace, tuner::{RandomTuner, Tuner}};
//! use conv_spec::{ConvShape, MachineModel};
//!
//! let shape = ConvShape::new(1, 16, 16, 3, 3, 14, 14, 1)?;
//! let machine = MachineModel::i7_9700k();
//! let space = SearchSpace::new(&shape, &machine);
//! // Cheap synthetic evaluator: prefer larger register tiles.
//! let mut tuner = RandomTuner::new(7);
//! let result = tuner.tune(&space, &mut |cfg| {
//!     1.0 / (cfg.level(conv_spec::TilingLevel::Register).output_footprint() as f64)
//! }, 20);
//! assert_eq!(result.trials.len(), 20);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod cost_model;
pub mod space;
pub mod tuner;

pub use cost_model::OnlineCostModel;
pub use space::SearchSpace;
pub use tuner::{AnnealingTuner, ModelGuidedTuner, RandomTuner, TuneResult, Tuner};
