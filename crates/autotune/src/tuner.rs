//! Search strategies over the template space, all operating under an
//! explicit trial (measurement) budget like AutoTVM.

use conv_spec::TileConfig;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::cost_model::OnlineCostModel;
use crate::space::SearchSpace;

/// The caller-supplied measurement function: returns the cost of a
/// configuration (seconds, simulated cycles, ... — lower is better).
pub type Evaluator<'a> = dyn FnMut(&TileConfig) -> f64 + 'a;

/// One measured trial.
#[derive(Debug, Clone, PartialEq)]
pub struct Trial {
    /// The configuration that was measured.
    pub config: TileConfig,
    /// Its measured cost (lower is better).
    pub cost: f64,
}

/// The outcome of a tuning run.
#[derive(Debug, Clone, PartialEq)]
pub struct TuneResult {
    /// Every measured trial, in measurement order.
    pub trials: Vec<Trial>,
    /// Index (into `trials`) of the best configuration.
    pub best_index: usize,
}

impl TuneResult {
    fn from_trials(trials: Vec<Trial>) -> Self {
        assert!(!trials.is_empty(), "a tuning run must measure at least one candidate");
        let best_index = trials
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.cost.partial_cmp(&b.1.cost).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(i, _)| i)
            .unwrap_or(0);
        TuneResult { trials, best_index }
    }

    /// The best configuration found.
    pub fn best(&self) -> &Trial {
        &self.trials[self.best_index]
    }

    /// Best cost observed after each trial (a monotone non-increasing curve,
    /// useful for search-efficiency plots).
    pub fn convergence_curve(&self) -> Vec<f64> {
        let mut best = f64::INFINITY;
        self.trials
            .iter()
            .map(|t| {
                best = best.min(t.cost);
                best
            })
            .collect()
    }
}

/// A search strategy with a measurement budget.
pub trait Tuner {
    /// Run the search, measuring at most `budget` configurations.
    fn tune(
        &mut self,
        space: &SearchSpace,
        evaluate: &mut Evaluator<'_>,
        budget: usize,
    ) -> TuneResult;
}

/// Uniform random search.
#[derive(Debug, Clone)]
pub struct RandomTuner {
    seed: u64,
}

impl RandomTuner {
    /// A random tuner with a seed (for reproducible experiments).
    pub fn new(seed: u64) -> Self {
        RandomTuner { seed }
    }
}

impl Tuner for RandomTuner {
    fn tune(
        &mut self,
        space: &SearchSpace,
        evaluate: &mut Evaluator<'_>,
        budget: usize,
    ) -> TuneResult {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let trials = (0..budget.max(1))
            .map(|_| {
                let config = space.sample(&mut rng);
                let cost = evaluate(&config);
                Trial { config, cost }
            })
            .collect();
        TuneResult::from_trials(trials)
    }
}

/// Simulated annealing over the neighbour relation of the search space.
#[derive(Debug, Clone)]
pub struct AnnealingTuner {
    seed: u64,
    /// Initial acceptance temperature, relative to the first measured cost.
    pub initial_temperature: f64,
    /// Multiplicative cooling factor per trial.
    pub cooling: f64,
}

impl AnnealingTuner {
    /// An annealing tuner with a seed and default temperature schedule.
    pub fn new(seed: u64) -> Self {
        AnnealingTuner { seed, initial_temperature: 0.5, cooling: 0.97 }
    }
}

impl Tuner for AnnealingTuner {
    fn tune(
        &mut self,
        space: &SearchSpace,
        evaluate: &mut Evaluator<'_>,
        budget: usize,
    ) -> TuneResult {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut trials = Vec::with_capacity(budget.max(1));
        let mut current = space.sample(&mut rng);
        let mut current_cost = evaluate(&current);
        trials.push(Trial { config: current.clone(), cost: current_cost });
        let mut temperature = self.initial_temperature * current_cost.abs().max(1e-12);
        for _ in 1..budget.max(1) {
            let candidate = space.neighbour(&current, &mut rng);
            let cost = evaluate(&candidate);
            trials.push(Trial { config: candidate.clone(), cost });
            let accept = cost < current_cost || {
                let delta = cost - current_cost;
                rng.gen::<f64>() < (-delta / temperature.max(1e-30)).exp()
            };
            if accept {
                current = candidate;
                current_cost = cost;
            }
            temperature *= self.cooling;
        }
        TuneResult::from_trials(trials)
    }
}

/// ε-greedy model-guided search (the AutoTVM-like strategy): batches of
/// candidates are generated, ranked by the learned cost model, and the top
/// candidates (plus a few random ones for exploration) are measured; the
/// model is refit after every batch.
#[derive(Debug, Clone)]
pub struct ModelGuidedTuner {
    seed: u64,
    /// Candidates generated (and ranked by the model) per batch.
    pub pool_size: usize,
    /// Candidates measured per batch.
    pub batch_size: usize,
    /// Fraction of each measured batch drawn at random instead of by rank.
    pub epsilon: f64,
}

impl ModelGuidedTuner {
    /// A model-guided tuner with the defaults used in the experiments.
    pub fn new(seed: u64) -> Self {
        ModelGuidedTuner { seed, pool_size: 64, batch_size: 8, epsilon: 0.2 }
    }
}

impl Tuner for ModelGuidedTuner {
    fn tune(
        &mut self,
        space: &SearchSpace,
        evaluate: &mut Evaluator<'_>,
        budget: usize,
    ) -> TuneResult {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let feature_dim = space.features(&space.sample(&mut rng)).len();
        let mut model = OnlineCostModel::new(feature_dim);
        let mut trials: Vec<Trial> = Vec::with_capacity(budget.max(1));
        while trials.len() < budget.max(1) {
            let remaining = budget.max(1) - trials.len();
            let batch = self.batch_size.min(remaining).max(1);
            // Generate a candidate pool and rank it with the model.
            let pool: Vec<TileConfig> =
                (0..self.pool_size).map(|_| space.sample(&mut rng)).collect();
            let features: Vec<Vec<f64>> = pool.iter().map(|c| space.features(c)).collect();
            let ranked = model.rank(&features);
            let exploit = ((1.0 - self.epsilon) * batch as f64).round() as usize;
            let mut chosen: Vec<usize> = ranked.iter().copied().take(exploit).collect();
            while chosen.len() < batch {
                chosen.push(rng.gen_range(0..pool.len()));
            }
            for idx in chosen {
                let config = pool[idx].clone();
                let cost = evaluate(&config);
                model.observe(space.features(&config), cost);
                trials.push(Trial { config, cost });
                if trials.len() >= budget.max(1) {
                    break;
                }
            }
            model.fit();
        }
        TuneResult::from_trials(trials)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use conv_spec::{ConvShape, LoopIndex, MachineModel, TilingLevel};

    fn space() -> SearchSpace {
        let shape = ConvShape::new(1, 16, 16, 3, 3, 16, 16, 1).unwrap();
        SearchSpace::new(&shape, &MachineModel::i7_9700k())
    }

    /// A synthetic cost with a clear optimum: prefer register k-tile near 8
    /// and w-tile near 4, penalize everything else.
    fn synthetic_cost(cfg: &TileConfig) -> f64 {
        let reg = cfg.level(TilingLevel::Register);
        let k = reg.get(LoopIndex::K) as f64;
        let w = reg.get(LoopIndex::W) as f64;
        (k - 8.0).powi(2) + (w - 4.0).powi(2) + 1.0
    }

    #[test]
    fn random_tuner_respects_budget_and_finds_reasonable_point() {
        let s = space();
        let mut t = RandomTuner::new(1);
        let res = t.tune(&s, &mut |c| synthetic_cost(c), 60);
        assert_eq!(res.trials.len(), 60);
        assert!(res.best().cost < 30.0, "best {}", res.best().cost);
        let curve = res.convergence_curve();
        assert!(curve.windows(2).all(|w| w[1] <= w[0]));
    }

    #[test]
    fn annealing_tuner_improves_over_time() {
        let s = space();
        let mut t = AnnealingTuner::new(3);
        let res = t.tune(&s, &mut |c| synthetic_cost(c), 80);
        assert_eq!(res.trials.len(), 80);
        let curve = res.convergence_curve();
        assert!(curve.last().unwrap() <= &curve[0]);
        assert!(res.best().cost <= curve[0]);
    }

    #[test]
    fn model_guided_tuner_beats_or_matches_random_on_average() {
        let s = space();
        let budget = 48;
        let mut random_best = Vec::new();
        let mut guided_best = Vec::new();
        for seed in 0..3 {
            let mut r = RandomTuner::new(seed);
            random_best.push(r.tune(&s, &mut |c| synthetic_cost(c), budget).best().cost);
            let mut g = ModelGuidedTuner::new(seed);
            guided_best.push(g.tune(&s, &mut |c| synthetic_cost(c), budget).best().cost);
        }
        let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(
            avg(&guided_best) <= avg(&random_best) * 1.5,
            "guided {guided_best:?} much worse than random {random_best:?}"
        );
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let s = space();
        let run = |seed| RandomTuner::new(seed).tune(&s, &mut |c| synthetic_cost(c), 10);
        assert_eq!(run(9).best().config, run(9).best().config);
    }

    #[test]
    fn budget_of_one_still_works() {
        let s = space();
        let res = ModelGuidedTuner::new(0).tune(&s, &mut |c| synthetic_cost(c), 1);
        assert_eq!(res.trials.len(), 1);
        assert_eq!(res.best_index, 0);
    }
}
