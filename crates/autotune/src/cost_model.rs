//! Online learned cost model (the XGBoost-ranker stand-in).
//!
//! AutoTVM trains a gradient-boosted ranking model on the measurements
//! gathered so far and uses it to pick which candidates to measure next. For
//! the reproduction a ridge-regularized linear model over the search-space
//! features (log tile sizes + permutation one-hot), trained by mini-batch
//! gradient descent on all observations after each batch of measurements, is
//! enough to reproduce the *behaviour* that matters for the comparison:
//! measurement-guided pruning of a template space under a trial budget.

/// An online least-squares cost model.
#[derive(Debug, Clone)]
pub struct OnlineCostModel {
    weights: Vec<f64>,
    bias: f64,
    /// L2 regularization strength.
    pub ridge: f64,
    /// Gradient-descent learning rate.
    pub learning_rate: f64,
    /// Training epochs per refit.
    pub epochs: usize,
    observations: Vec<(Vec<f64>, f64)>,
    target_mean: f64,
    target_scale: f64,
    feature_mean: Vec<f64>,
    feature_scale: Vec<f64>,
}

impl OnlineCostModel {
    /// A model for feature vectors of length `dim`.
    pub fn new(dim: usize) -> Self {
        OnlineCostModel {
            weights: vec![0.0; dim],
            bias: 0.0,
            ridge: 1e-3,
            learning_rate: 0.05,
            epochs: 60,
            observations: Vec::new(),
            target_mean: 0.0,
            target_scale: 1.0,
            feature_mean: vec![0.0; dim],
            feature_scale: vec![1.0; dim],
        }
    }

    /// Number of recorded observations.
    pub fn len(&self) -> usize {
        self.observations.len()
    }

    /// Whether no observation has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.observations.is_empty()
    }

    /// Record a measurement (`cost`, lower is better) for a feature vector.
    pub fn observe(&mut self, features: Vec<f64>, cost: f64) {
        assert_eq!(features.len(), self.weights.len(), "feature dimension mismatch");
        if cost.is_finite() {
            self.observations.push((features, cost));
        }
    }

    /// Refit the model on all observations so far.
    pub fn fit(&mut self) {
        if self.observations.is_empty() {
            return;
        }
        // Normalize targets (costs span orders of magnitude).
        let logs: Vec<f64> = self.observations.iter().map(|(_, c)| c.max(1e-300).ln()).collect();
        let mean = logs.iter().sum::<f64>() / logs.len() as f64;
        let var = logs.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / logs.len() as f64;
        self.target_mean = mean;
        self.target_scale = var.sqrt().max(1e-9);

        // Standardize features so gradient descent is well conditioned.
        let n = self.observations.len() as f64;
        let dim = self.weights.len();
        for j in 0..dim {
            let m: f64 = self.observations.iter().map(|(f, _)| f[j]).sum::<f64>() / n;
            let v: f64 = self.observations.iter().map(|(f, _)| (f[j] - m).powi(2)).sum::<f64>() / n;
            self.feature_mean[j] = m;
            self.feature_scale[j] = v.sqrt().max(1e-9);
        }

        for _ in 0..self.epochs {
            let mut grad_w = vec![0.0; self.weights.len()];
            let mut grad_b = 0.0;
            for ((f, _), log_target) in self.observations.iter().zip(logs.iter()) {
                let target = (log_target - self.target_mean) / self.target_scale;
                let fs = self.standardize(f);
                let pred = self.raw_predict(&fs);
                let err = pred - target;
                for (g, x) in grad_w.iter_mut().zip(fs.iter()) {
                    *g += err * x / n;
                }
                grad_b += err / n;
            }
            for (w, g) in self.weights.iter_mut().zip(grad_w.iter()) {
                *w -= self.learning_rate * (g + self.ridge * *w);
            }
            self.bias -= self.learning_rate * grad_b;
        }
    }

    fn standardize(&self, features: &[f64]) -> Vec<f64> {
        features
            .iter()
            .zip(self.feature_mean.iter().zip(self.feature_scale.iter()))
            .map(|(x, (m, s))| (x - m) / s)
            .collect()
    }

    fn raw_predict(&self, standardized: &[f64]) -> f64 {
        self.bias + self.weights.iter().zip(standardized.iter()).map(|(w, x)| w * x).sum::<f64>()
    }

    /// Predicted cost (same units as the observed costs; lower is better).
    pub fn predict(&self, features: &[f64]) -> f64 {
        assert_eq!(features.len(), self.weights.len(), "feature dimension mismatch");
        if self.observations.is_empty() {
            return 1.0;
        }
        let fs = self.standardize(features);
        (self.raw_predict(&fs) * self.target_scale + self.target_mean).exp()
    }

    /// Rank a set of candidates by predicted cost, best (lowest) first.
    /// Returns indices into `candidates`.
    pub fn rank(&self, candidates: &[Vec<f64>]) -> Vec<usize> {
        let mut order: Vec<usize> = (0..candidates.len()).collect();
        order.sort_by(|&a, &b| {
            self.predict(&candidates[a])
                .partial_cmp(&self.predict(&candidates[b]))
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        order
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Synthetic cost: exp of a linear function of the features.
    fn synth_cost(f: &[f64]) -> f64 {
        (2.0 * f[0] - 1.0 * f[1] + 0.5).exp()
    }

    #[test]
    fn learns_a_monotone_trend() {
        let mut m = OnlineCostModel::new(2);
        for i in 0..40 {
            let f = vec![(i % 7) as f64, (i % 5) as f64];
            let c = synth_cost(&f);
            m.observe(f, c);
        }
        m.fit();
        // A point with small f0 / large f1 must be predicted cheaper than the
        // opposite corner.
        let cheap = m.predict(&[0.0, 4.0]);
        let costly = m.predict(&[6.0, 0.0]);
        assert!(cheap < costly, "cheap {cheap} vs costly {costly}");
    }

    #[test]
    fn ranking_orders_by_prediction() {
        let mut m = OnlineCostModel::new(1);
        for i in 1..=20 {
            m.observe(vec![i as f64], (i as f64).exp());
        }
        m.fit();
        let candidates = vec![vec![10.0], vec![1.0], vec![5.0]];
        let order = m.rank(&candidates);
        assert_eq!(order, vec![1, 2, 0]);
    }

    #[test]
    fn untrained_model_predicts_constant() {
        let m = OnlineCostModel::new(3);
        assert!(m.is_empty());
        assert_eq!(m.predict(&[1.0, 2.0, 3.0]), 1.0);
        assert_eq!(m.predict(&[9.0, 9.0, 9.0]), 1.0);
    }

    #[test]
    fn non_finite_costs_are_ignored() {
        let mut m = OnlineCostModel::new(1);
        m.observe(vec![1.0], f64::INFINITY);
        m.observe(vec![1.0], f64::NAN);
        assert_eq!(m.len(), 0);
        m.observe(vec![1.0], 2.0);
        assert_eq!(m.len(), 1);
    }

    #[test]
    #[should_panic(expected = "feature dimension mismatch")]
    fn wrong_feature_length_panics() {
        let mut m = OnlineCostModel::new(2);
        m.observe(vec![1.0], 1.0);
    }
}
