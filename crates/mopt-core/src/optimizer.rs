//! Algorithm 1: permutation and multi-level tile-size selection.
//!
//! For each pruned permutation class the optimizer solves the multi-level
//! tile-size problem with the most-constrained-level-first strategy of the
//! paper: in every round, each not-yet-fixed level is hypothesized to be the
//! bottleneck, a constrained non-linear problem minimizing that level's
//! bandwidth-scaled data volume (subject to every level's capacity
//! constraint, the tile-nesting constraints, and the "this level dominates
//! the others" constraints) is solved, and the level whose hypothesis yields
//! the smallest cost is fixed at the tile sizes the solver chose. After all
//! levels are fixed, the continuous solution is floored to integers, refined,
//! and load-balanced across threads.

use conv_spec::{
    ConvShape, LayoutConfig, LoopIndex, MachineModel, ParallelAxis, Permutation, Spec, TileConfig,
    TileSizes, TilingLevel, ALL_INDICES, NUM_TILING_LEVELS,
};
use mopt_model::cost::{CostOptions, RealTiles};
use mopt_model::multilevel::{ModelPrediction, MultiLevelModel, MultiLevelTiles, ParallelSpec};
use mopt_model::prune::pruned_classes;
use mopt_solver::{floor_refine, IntegerRefineOptions, MultiStart, NlpSolver, Problem};
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Options controlling the optimizer.
///
/// Every field is integral or boolean, so the options participate directly
/// in hash-keyed schedule caches (`Eq` + `Hash`).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct OptimizerOptions {
    /// Number of threads the generated configuration targets.
    pub threads: usize,
    /// Number of random restarts per non-linear solve.
    pub multistart: usize,
    /// Cache-line size for the spatial-locality cost extension (1 = off).
    pub line_elems: usize,
    /// Number of top configurations to keep (the paper uses 5 for MOpt-5).
    pub keep_top: usize,
    /// Restrict the search to this many pruned classes (8 = all). Lower
    /// values trade optimality for optimization speed; useful in tests.
    pub max_classes: usize,
    /// Use the full-effort multi-start solver (barrier + penalty, many
    /// iterations). The default low-effort profile (penalty method with few
    /// iterations per start) is 10–50x faster and loses little on the
    /// posynomial-like tile problems.
    pub thorough: bool,
    /// How data layout is chosen: `None` and [`LayoutPolicy::Fixed`] keep
    /// the paper's fixed layouts (bit-identical to the pre-layout
    /// optimizer); [`LayoutPolicy::Search`] prices each solved tiling under
    /// the candidate layouts and keeps the one whose loop traffic plus
    /// one-time move cost is cheapest. Optional so requests serialized
    /// before the layout axis existed deserialize (to `None`) unchanged.
    pub layout_policy: Option<LayoutPolicy>,
}

/// How the optimizer treats the data-layout axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LayoutPolicy {
    /// The paper's fixed layouts (NCHW feature maps, KCRS kernel).
    Fixed,
    /// Search layout jointly with tile sizes and the parallel axis: each
    /// candidate layout re-prices the solved tiling with layout-aware
    /// traffic plus the Morello-style one-time transform cost.
    Search,
}

impl Default for OptimizerOptions {
    fn default() -> Self {
        OptimizerOptions {
            threads: 1,
            multistart: 2,
            line_elems: 1,
            keep_top: 5,
            max_classes: 8,
            thorough: false,
            layout_policy: None,
        }
    }
}

impl OptimizerOptions {
    /// A fast configuration for unit tests and examples (fewer restarts).
    pub fn fast() -> Self {
        OptimizerOptions { multistart: 0, ..Self::default() }
    }

    /// Options targeting parallel execution with the machine's thread count.
    pub fn parallel(machine: &MachineModel) -> Self {
        OptimizerOptions { threads: machine.threads, ..Self::default() }
    }
}

/// One optimized candidate configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OptimizedConfig {
    /// The integer tiling configuration (ready for the executor), carrying
    /// the layout it was priced under.
    pub config: TileConfig,
    /// The pruned class the configuration came from (1..=8).
    pub class_id: usize,
    /// The model's bandwidth-scaled bottleneck cost (cycles; lower is
    /// better). Under [`LayoutPolicy::Search`] this is the layout-aware
    /// loop bottleneck plus the one-time layout-transform cost.
    pub predicted_cost: f64,
    /// The model's full per-level prediction.
    pub prediction: ModelPrediction,
}

/// The result of a full design-space exploration for one operator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OptimizeResult {
    /// Candidates sorted by predicted cost (best first); at most
    /// [`OptimizerOptions::keep_top`] entries.
    pub ranked: Vec<OptimizedConfig>,
    /// Wall-clock seconds spent in the optimizer (the paper reports 9–23 s
    /// per operator with AMPL/Ipopt; see the `exp_searchcost` experiment).
    pub optimize_seconds: f64,
}

impl OptimizeResult {
    /// The best configuration (MOpt-1).
    pub fn best(&self) -> &OptimizedConfig {
        &self.ranked[0]
    }

    /// The top-`k` configurations (MOpt-5 uses `k = 5`).
    pub fn top(&self, k: usize) -> &[OptimizedConfig] {
        &self.ranked[..k.min(self.ranked.len())]
    }
}

/// One bottleneck hypothesis evaluated in a search round: `level` was
/// hypothesized to dominate, the constrained solve reached `cost`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LevelHypothesis {
    /// The memory level hypothesized as the bottleneck.
    pub level: TilingLevel,
    /// The bandwidth-scaled cost the constrained solve reached.
    pub cost: f64,
    /// Whether the solution satisfied every level's capacity constraint.
    pub feasible: bool,
}

/// One round of the most-constrained-level-first loop: every unfixed level
/// was hypothesized as the bottleneck and the cheapest hypothesis was fixed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SearchRound {
    /// The level fixed this round.
    pub fixed: TilingLevel,
    /// The winning hypothesis's cost.
    pub fixed_cost: f64,
    /// Every hypothesis evaluated this round (including the winner).
    pub hypotheses: Vec<LevelHypothesis>,
}

/// The search record of one candidate: a permutation class solved under one
/// parallel decomposition.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CandidateSearch {
    /// The pruned class the candidate came from (1..=8).
    pub class_id: usize,
    /// The class representative permutation, rendered.
    pub permutation: String,
    /// Concrete permutations this class stands for after symmetry pruning.
    pub member_count: usize,
    /// Threads the candidate targets.
    pub threads: usize,
    /// Per-dimension parallel factors (canonical index order).
    pub parallel_factors: Vec<usize>,
    /// The most-constrained-level-first rounds, in order.
    pub rounds: Vec<SearchRound>,
    /// Tile configurations enumerated by the non-linear solver.
    pub enumerated: u64,
    /// Enumerated configurations rejected by a capacity constraint.
    pub capacity_pruned: u64,
    /// Feasible bottleneck hypotheses discarded because another level's
    /// hypothesis was cheaper (the min–max dominance choice).
    pub dominance_pruned: u64,
    /// The candidate's final integer-configuration predicted cost.
    pub predicted_cost: f64,
}

/// The optimizer's full search trace, recorded by
/// [`MOptOptimizer::optimize_traced`] and served by the `Explain` verb.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SearchTrace {
    /// Loop permutations the design space contains before pruning (7! = 5040).
    pub permutations_total: u64,
    /// Pruned permutation classes actually searched.
    pub classes_searched: u64,
    /// Permutations never evaluated: the total minus the one representative
    /// solved per searched class (symmetry pruning plus any `max_classes`
    /// restriction).
    pub permutations_pruned: u64,
    /// Tile configurations enumerated across all candidates.
    pub enumerated: u64,
    /// Enumerated configurations rejected by capacity constraints.
    pub capacity_pruned: u64,
    /// Feasible hypotheses discarded by the dominance (min–max) choice.
    pub dominance_pruned: u64,
    /// Per-candidate search records, in evaluation order.
    pub candidates: Vec<CandidateSearch>,
    /// Class id of the winning configuration.
    pub winner_class: usize,
    /// The winner's predicted bottleneck cost.
    pub winner_cost: f64,
    /// The runner-up's predicted cost, when more than one candidate ranked.
    pub runner_up_cost: Option<f64>,
    /// `runner_up_cost - winner_cost`: how decisively the winner won.
    pub margin: Option<f64>,
}

/// Lock-free tallies threaded into the solver's objective closure when a
/// search trace is being recorded (a `None` branch on the untraced path).
#[derive(Debug, Default)]
struct SolveCounters {
    enumerated: AtomicU64,
    capacity_pruned: AtomicU64,
}

/// Capacity-slack tolerance (in elements) below which a continuous solution
/// counts as feasible for trace reporting.
const SLACK_TOLERANCE: f64 = 1e-6;

/// The MOpt optimizer for one operator on one machine.
#[derive(Debug, Clone)]
pub struct MOptOptimizer {
    shape: ConvShape,
    machine: MachineModel,
    options: OptimizerOptions,
}

impl MOptOptimizer {
    /// Create an optimizer.
    pub fn new(shape: ConvShape, machine: MachineModel, options: OptimizerOptions) -> Self {
        MOptOptimizer { shape, machine, options }
    }

    /// Create an optimizer for a generalized [`Spec`] problem.
    ///
    /// The spec is lowered to its conv2d embedding
    /// ([`Spec::embedded_conv_shape`]) and the usual certify/prune pipeline
    /// runs on the embedded loop nest. The analytical model prices access
    /// patterns, not reduction operators, so matmul, pooling, and
    /// elementwise nests cost exactly like the conv nest they embed into.
    pub fn for_spec(spec: &Spec, machine: MachineModel, options: OptimizerOptions) -> Self {
        MOptOptimizer::new(spec.embedded_conv_shape(), machine, options)
    }

    /// Convenience: optimize a generalized [`Spec`] in one call.
    pub fn optimize_spec(
        spec: &Spec,
        machine: MachineModel,
        options: OptimizerOptions,
    ) -> OptimizeResult {
        Self::for_spec(spec, machine, options).optimize()
    }

    /// The default parallel specification (output-channel axis) used by
    /// generated configurations when no axis search happens.
    pub fn parallel_spec(&self) -> ParallelSpec {
        ParallelSpec::default_for(&self.shape, self.options.threads)
    }

    /// The parallel specifications the optimizer searches jointly with the
    /// tile sizes: sequential runs have exactly one (no parallelism); runs
    /// with `threads > 1` try each [`ParallelAxis`] whose factor
    /// decomposition is distinct (on shapes where both axes collapse to the
    /// same factors only one candidate survives).
    pub fn parallel_candidates(&self) -> Vec<ParallelSpec> {
        if self.options.threads <= 1 {
            return vec![ParallelSpec::sequential()];
        }
        let mut specs: Vec<ParallelSpec> = Vec::new();
        for axis in ParallelAxis::ALL {
            let spec = ParallelSpec::along_axis(&self.shape, self.options.threads, axis);
            if !specs.iter().any(|s| s.factors == spec.factors) {
                specs.push(spec);
            }
        }
        specs
    }

    /// Run the full design-space exploration (Algorithm 1) and return the
    /// ranked configurations.
    ///
    /// With `threads > 1` the parallel axis is searched *jointly* with the
    /// tile sizes: every pruned class is solved once per candidate axis
    /// (each solve sees that axis's per-thread extents, L3 capacity share,
    /// and summed DRAM traffic), and the ranking compares the resulting
    /// configurations across axes on equal multicore-model footing.
    ///
    /// # Panics
    ///
    /// Panics if `keep_top` is zero.
    pub fn optimize(&self) -> OptimizeResult {
        self.optimize_inner(None)
    }

    /// Run the exploration while recording a [`SearchTrace`]: hypotheses per
    /// round, enumerated/pruned counts, winner and margin.
    ///
    /// The search itself is byte-identical to [`MOptOptimizer::optimize`]
    /// (the solver is seeded, and recording only tallies on the side), so
    /// the returned result matches an untraced run bit for bit — the
    /// property the `Explain` verb relies on.
    ///
    /// # Panics
    ///
    /// Panics if `keep_top` is zero.
    pub fn optimize_traced(&self) -> (OptimizeResult, SearchTrace) {
        let mut trace = SearchTrace::default();
        let result = self.optimize_inner(Some(&mut trace));
        (result, trace)
    }

    fn optimize_inner(&self, mut trace: Option<&mut SearchTrace>) -> OptimizeResult {
        assert!(self.options.keep_top > 0, "keep_top must be at least 1");
        let start = std::time::Instant::now();
        let mut candidates: Vec<OptimizedConfig> = Vec::new();
        let classes = pruned_classes();
        if let Some(trace) = trace.as_deref_mut() {
            // 7! loop orders exist before pruning; the eight classes'
            // members are cost-equivalent to their representative, everything
            // else is dominated (Sec. 4).
            trace.permutations_total = (1..=7u64).product();
        }
        for class in classes.into_iter().take(self.options.max_classes.max(1)) {
            if let Some(trace) = trace.as_deref_mut() {
                trace.classes_searched += 1;
            }
            for parallel in self.parallel_candidates() {
                let model = MultiLevelModel::new(
                    self.shape,
                    self.machine.clone(),
                    class.representative.clone(),
                )
                .with_options(CostOptions { line_elems: self.options.line_elems })
                .with_parallel(parallel);
                let mut recorder = trace.as_deref_mut().map(|_| CandidateSearch {
                    class_id: class.id,
                    permutation: class.representative.to_string(),
                    member_count: class.member_count,
                    threads: model.parallel.threads,
                    parallel_factors: Self::parallel_factors(&model.parallel).as_array().to_vec(),
                    rounds: Vec::new(),
                    enumerated: 0,
                    capacity_pruned: 0,
                    dominance_pruned: 0,
                    predicted_cost: 0.0,
                });
                let tiles = self.solve_class(&model, recorder.as_mut());
                let config = self.to_integer_config(&model, &tiles, &class.representative);
                let (config, prediction, predicted_cost) = self.choose_layout(&model, config);
                if let (Some(trace), Some(mut rec)) = (trace.as_deref_mut(), recorder) {
                    rec.predicted_cost = predicted_cost;
                    trace.enumerated += rec.enumerated;
                    trace.capacity_pruned += rec.capacity_pruned;
                    trace.dominance_pruned += rec.dominance_pruned;
                    trace.candidates.push(rec);
                }
                candidates.push(OptimizedConfig {
                    config,
                    class_id: class.id,
                    predicted_cost,
                    prediction,
                });
            }
        }
        candidates.sort_by(|a, b| {
            a.predicted_cost.partial_cmp(&b.predicted_cost).unwrap_or(std::cmp::Ordering::Equal)
        });
        candidates.truncate(self.options.keep_top);
        if let Some(trace) = trace {
            trace.permutations_pruned =
                trace.permutations_total.saturating_sub(trace.classes_searched);
            trace.winner_class = candidates[0].class_id;
            trace.winner_cost = candidates[0].predicted_cost;
            trace.runner_up_cost = candidates.get(1).map(|c| c.predicted_cost);
            trace.margin = trace.runner_up_cost.map(|r| r - trace.winner_cost);
        }
        OptimizeResult { ranked: candidates, optimize_seconds: start.elapsed().as_secs_f64() }
    }

    /// The layout assignments priced when layout search is on: the paper
    /// default, a packed kernel at the machine's SIMD width, and fully
    /// channel-blocked feature maps with the packed kernel. With the policy
    /// unset or [`LayoutPolicy::Fixed`], only the default.
    pub fn layout_candidates(&self) -> Vec<LayoutConfig> {
        match self.options.layout_policy {
            None | Some(LayoutPolicy::Fixed) => vec![LayoutConfig::default()],
            Some(LayoutPolicy::Search) => {
                let v = self.machine.simd_width.max(1);
                vec![
                    LayoutConfig::default(),
                    LayoutConfig::packed_kernel(v),
                    LayoutConfig::blocked(v),
                ]
            }
        }
    }

    /// Joint layout selection: re-price one solved tiling under every
    /// candidate layout (layout-aware loop traffic plus the one-time
    /// transform cost, amortized across the nest) and keep the cheapest.
    ///
    /// With the policy unset or fixed, this is exactly the pre-layout
    /// `predict_config` call — the fixed path stays bit-identical.
    fn choose_layout(
        &self,
        model: &MultiLevelModel,
        config: TileConfig,
    ) -> (TileConfig, ModelPrediction, f64) {
        if !matches!(self.options.layout_policy, Some(LayoutPolicy::Search)) {
            let prediction = model.predict_config(&config);
            let cost = prediction.bottleneck_cost;
            return (config, prediction, cost);
        }
        let mut best: Option<(TileConfig, ModelPrediction, f64)> = None;
        for layout in self.layout_candidates() {
            let candidate = config.clone().with_layout(layout);
            let laid = model.clone().with_layout(layout);
            let prediction = laid.predict_config(&candidate);
            let total = prediction.bottleneck_cost + laid.move_total();
            let better = match &best {
                None => true,
                Some((_, _, c)) => total < *c,
            };
            if better {
                best = Some((candidate, prediction, total));
            }
        }
        best.expect("at least the default layout was priced")
    }

    /// Multi-level tile-size selection for one permutation class
    /// (the `while NotVisitedLvls ≠ ∅` loop of Algorithm 1).
    ///
    /// When `recorder` is set, every bottleneck hypothesis and the solver's
    /// enumeration/pruning tallies are recorded into it; the solve itself is
    /// unchanged.
    fn solve_class(
        &self,
        model: &MultiLevelModel,
        mut recorder: Option<&mut CandidateSearch>,
    ) -> MultiLevelTiles {
        let counters = recorder.as_ref().map(|_| Arc::new(SolveCounters::default()));
        let mut fixed: [Option<RealTiles>; NUM_TILING_LEVELS] = [None; NUM_TILING_LEVELS];
        let mut not_visited: Vec<TilingLevel> = TilingLevel::ALL.to_vec();
        while !not_visited.is_empty() {
            let mut best: Option<(TilingLevel, f64, MultiLevelTiles)> = None;
            let mut hypotheses: Vec<LevelHypothesis> = Vec::new();
            for &obj_level in &not_visited {
                let (cost, tiles) =
                    self.arg_min_solve(model, obj_level, &fixed, &not_visited, counters.as_ref());
                if recorder.is_some() {
                    let feasible = TilingLevel::ALL
                        .iter()
                        .all(|&l| model.capacity_slack(&tiles, l) <= SLACK_TOLERANCE);
                    hypotheses.push(LevelHypothesis { level: obj_level, cost, feasible });
                }
                let better = match &best {
                    None => true,
                    Some((_, c, _)) => cost < *c,
                };
                if better {
                    best = Some((obj_level, cost, tiles));
                }
            }
            let (min_level, cost, tiles) =
                best.expect("at least one unvisited level was evaluated");
            if let Some(rec) = recorder.as_deref_mut() {
                rec.dominance_pruned +=
                    hypotheses.iter().filter(|h| h.feasible && h.level != min_level).count() as u64;
                rec.rounds.push(SearchRound { fixed: min_level, fixed_cost: cost, hypotheses });
            }
            fixed[min_level.ordinal()] = Some(*tiles.level(min_level));
            not_visited.retain(|&l| l != min_level);
        }
        if let (Some(rec), Some(counters)) = (recorder, counters) {
            rec.enumerated += counters.enumerated.load(Ordering::Relaxed);
            rec.capacity_pruned += counters.capacity_pruned.load(Ordering::Relaxed);
        }
        MultiLevelTiles {
            levels: [
                fixed[0].expect("register level fixed"),
                fixed[1].expect("L1 level fixed"),
                fixed[2].expect("L2 level fixed"),
                fixed[3].expect("L3 level fixed"),
            ],
        }
    }

    /// One `ArgMinSolve` call: minimize the bandwidth-scaled cost of
    /// `obj_level` over the tile sizes of all not-yet-fixed levels.
    fn arg_min_solve(
        &self,
        model: &MultiLevelModel,
        obj_level: TilingLevel,
        fixed: &[Option<RealTiles>; NUM_TILING_LEVELS],
        not_visited: &[TilingLevel],
        counters: Option<&Arc<SolveCounters>>,
    ) -> (f64, MultiLevelTiles) {
        let free_levels: Vec<TilingLevel> = not_visited.to_vec();
        let dim = free_levels.len() * 7;
        let shape = self.shape;
        let extents = shape.extents();

        // Variable layout: for each free level (in `free_levels` order), the
        // seven tile sizes in canonical index order.
        let assemble = {
            let free_levels = free_levels.clone();
            let fixed = *fixed;
            move |x: &[f64]| -> MultiLevelTiles {
                let mut tiles = MultiLevelTiles::full(&shape);
                for (li, level) in free_levels.iter().enumerate() {
                    let mut t = RealTiles::ones();
                    for (j, &idx) in ALL_INDICES.iter().enumerate() {
                        t.set(idx, x[li * 7 + j]);
                    }
                    *tiles.level_mut(*level) = t;
                }
                for (ord, f) in fixed.iter().enumerate() {
                    if let Some(t) = f {
                        tiles.levels[ord] = *t;
                    }
                }
                tiles.normalized(&shape)
            }
        };

        let lower = vec![1.0; dim];
        let mut upper = Vec::with_capacity(dim);
        for _ in &free_levels {
            for &idx in &ALL_INDICES {
                upper.push(extents[idx.canonical_position()] as f64);
            }
        }

        let model_obj = model.clone();
        let assemble_obj = assemble.clone();
        let counters_obj = counters.cloned();
        let free_obj = free_levels.clone();
        let mut problem = Problem::new(dim).with_bounds(lower, upper).with_objective(move |x| {
            let tiles = assemble_obj(x);
            // Trace-only tallies: a branch on `None` when recording is off,
            // so the untraced hot path is unchanged.
            if let Some(counters) = &counters_obj {
                counters.enumerated.fetch_add(1, Ordering::Relaxed);
                if free_obj.iter().any(|&l| model_obj.capacity_slack(&tiles, l) > 0.0) {
                    counters.capacity_pruned.fetch_add(1, Ordering::Relaxed);
                }
            }
            model_obj.scaled_cost(&tiles, obj_level)
        });

        // Capacity constraints for every level that is still free (fixed
        // levels already satisfy theirs by construction).
        for &level in &free_levels {
            let model_c = model.clone();
            let assemble_c = assemble.clone();
            problem = problem.with_constraint(move |x| {
                let tiles = assemble_c(x);
                model_c.capacity_slack(&tiles, level)
            });
        }
        // Dominance constraints: the hypothesized bottleneck level must cost
        // at least as much as every other level (Sec. 5's min–max
        // decomposition). Scaled by the objective magnitude implicitly via
        // the solver's normalization.
        for &other in TilingLevel::ALL.iter() {
            if other == obj_level {
                continue;
            }
            let model_d = model.clone();
            let assemble_d = assemble.clone();
            problem = problem.with_constraint(move |x| {
                let tiles = assemble_d(x);
                model_d.scaled_cost(&tiles, other) - model_d.scaled_cost(&tiles, obj_level)
            });
        }

        // Starting point: proportional slices of each extent, smaller for
        // inner levels.
        let mut x0 = Vec::with_capacity(dim);
        for &level in &free_levels {
            let frac = match level {
                TilingLevel::Register => 0.05,
                TilingLevel::L1 => 0.15,
                TilingLevel::L2 => 0.4,
                TilingLevel::L3 => 0.8,
            };
            for &idx in &ALL_INDICES {
                let e = extents[idx.canonical_position()] as f64;
                x0.push((e * frac).max(1.0));
            }
        }

        let solver = if self.options.thorough {
            MultiStart::with_starts(self.options.multistart)
        } else {
            MultiStart::cheap(self.options.multistart)
        };
        let result = solver.solve(&problem, &x0);
        let tiles = assemble(&result.x);
        let cost = model.scaled_cost(&tiles, obj_level);
        (cost, tiles)
    }

    /// Floor the continuous solution to integer tile sizes (per level, with a
    /// greedy feasibility-preserving refinement) and apply the load balancer.
    fn to_integer_config(
        &self,
        model: &MultiLevelModel,
        tiles: &MultiLevelTiles,
        permutation: &Permutation,
    ) -> TileConfig {
        let mut int_levels = [TileSizes::ones(); NUM_TILING_LEVELS];
        // Integerize outermost-first so inner levels can respect the outer
        // integers when clamped by `normalized`. Capacity envelopes are the
        // per-thread shares the continuous solves certified against (shared
        // L3 divided among threads; identical to the whole cache at 1).
        for level in [TilingLevel::L3, TilingLevel::L2, TilingLevel::L1, TilingLevel::Register] {
            let capacity = self.machine.capacity_per_thread(level, model.parallel.threads) as f64;
            let shape = self.shape;
            let dim = 7;
            let level_tiles = *tiles.level(level);
            let model_level = model.clone();
            let current = *tiles;
            let problem = Problem::new(dim)
                .with_bounds(
                    vec![1.0; dim],
                    ALL_INDICES.iter().map(|&i| shape.extent(i) as f64).collect(),
                )
                .with_objective(move |x| {
                    let mut t = current;
                    let mut rt = RealTiles::ones();
                    for (j, &idx) in ALL_INDICES.iter().enumerate() {
                        rt.set(idx, x[j]);
                    }
                    *t.level_mut(level) = rt;
                    model_level.scaled_cost(&t.normalized(&shape), level)
                })
                .with_constraint(move |x| {
                    let mut rt = RealTiles::ones();
                    for (j, &idx) in ALL_INDICES.iter().enumerate() {
                        rt.set(idx, x[j]);
                    }
                    mopt_model::cost::total_footprint(&shape, &rt) - capacity
                });
            let x: Vec<f64> = ALL_INDICES.iter().map(|&i| level_tiles.get(i)).collect();
            let (xi, _) = floor_refine(&problem, &x, &IntegerRefineOptions::default());
            let mut t = TileSizes::ones();
            for (j, &idx) in ALL_INDICES.iter().enumerate() {
                t.set(idx, xi[j].round().max(1.0) as usize);
            }
            // For grouped shapes, snap K tiles larger than one group down to
            // a whole number of groups. The solver's continuous group-span
            // relaxation (tk / k_per_group) and the integer footprint's
            // conservative ceil agree exactly at group-aligned K tiles, so
            // this keeps the integer configuration inside the capacity
            // envelope the solver certified.
            if self.shape.groups > 1 {
                let k_per_group = self.shape.k_per_group().max(1);
                let tk = t.get(LoopIndex::K);
                if tk > k_per_group {
                    t.set(LoopIndex::K, (tk / k_per_group) * k_per_group);
                }
            }
            int_levels[level.ordinal()] = t;
        }

        let parallel = Self::parallel_factors(&model.parallel);
        TileConfig::new(permutation.clone(), int_levels, parallel).normalized(&self.shape)
    }

    /// Load balancing (Algorithm 1, line 24): record the solved parallel
    /// specification's per-dimension factors (non-reduction dimensions only,
    /// product equal to the thread count) in the integer configuration.
    fn parallel_factors(spec: &ParallelSpec) -> TileSizes {
        let mut t = TileSizes::ones();
        for &idx in &ALL_INDICES {
            t.set(idx, spec.factor(idx));
        }
        t
    }

    /// Convenience: build the multi-level model for an arbitrary permutation
    /// with this optimizer's options (used by validation and experiments).
    pub fn model_for(&self, permutation: Permutation) -> MultiLevelModel {
        MultiLevelModel::new(self.shape, self.machine.clone(), permutation)
            .with_options(CostOptions { line_elems: self.options.line_elems })
            .with_parallel(self.parallel_spec())
    }

    /// The operator shape.
    pub fn shape(&self) -> &ConvShape {
        &self.shape
    }

    /// The machine model.
    pub fn machine(&self) -> &MachineModel {
        &self.machine
    }

    /// The options.
    pub fn options(&self) -> &OptimizerOptions {
        &self.options
    }
}

/// A quick untuned reference configuration (used by experiments as a sanity
/// baseline): registers get a SIMD-width output-channel block, each cache
/// level gets the largest power-of-two blocks that fit half its capacity.
pub fn heuristic_config(shape: &ConvShape, machine: &MachineModel) -> TileConfig {
    let mut levels = [TileSizes::ones(); NUM_TILING_LEVELS];
    levels[TilingLevel::Register.ordinal()] = TileSizes::ones()
        .with(LoopIndex::K, machine.simd_width.min(shape.k).max(1))
        .with(LoopIndex::W, 4.min(shape.w).max(1));
    for level in [TilingLevel::L1, TilingLevel::L2, TilingLevel::L3] {
        let cap = machine.capacity(level) / 2;
        let mut t = TileSizes::full(shape);
        let mut guard = 0;
        while t.footprint(shape) > cap && guard < 64 {
            guard += 1;
            let mut largest = LoopIndex::K;
            let mut val = 0;
            for idx in [LoopIndex::K, LoopIndex::C, LoopIndex::H, LoopIndex::W] {
                if t.get(idx) > val {
                    val = t.get(idx);
                    largest = idx;
                }
            }
            if val <= 1 {
                break;
            }
            t.set(largest, (val / 2).max(1));
        }
        levels[level.ordinal()] = t;
    }
    TileConfig::new(
        Permutation::parse("kcrsnhw").expect("heuristic permutation"),
        levels,
        TileSizes::ones(),
    )
    .normalized(shape)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_shape() -> ConvShape {
        ConvShape::new(1, 32, 16, 3, 3, 14, 14, 1).unwrap()
    }

    fn optimizer(shape: ConvShape) -> MOptOptimizer {
        let mut opts = OptimizerOptions::fast();
        opts.max_classes = 3;
        MOptOptimizer::new(shape, MachineModel::i7_9700k(), opts)
    }

    #[test]
    fn optimize_produces_valid_ranked_configs() {
        let shape = small_shape();
        let result = optimizer(shape).optimize();
        assert!(!result.ranked.is_empty());
        assert!(result.ranked.len() <= 5);
        for c in &result.ranked {
            assert!(c.config.validate(&shape).is_ok());
            assert!(c.predicted_cost.is_finite() && c.predicted_cost > 0.0);
            assert!((1..=8).contains(&c.class_id));
        }
        // Ranked by predicted cost.
        for pair in result.ranked.windows(2) {
            assert!(pair[0].predicted_cost <= pair[1].predicted_cost);
        }
        assert!(result.optimize_seconds >= 0.0);
    }

    #[test]
    fn optimize_spec_matches_embedded_conv_solve() {
        // The spec path must be the SAME pipeline as the conv path on the
        // embedded shape — identical ranked costs and configurations.
        let spec = Spec::matmul(32, 48, 16);
        let mut opts = OptimizerOptions::fast();
        opts.max_classes = 2;
        let via_spec = MOptOptimizer::optimize_spec(&spec, MachineModel::i7_9700k(), opts.clone());
        let via_conv =
            MOptOptimizer::new(spec.embedded_conv_shape(), MachineModel::i7_9700k(), opts)
                .optimize();
        assert_eq!(via_spec.ranked.len(), via_conv.ranked.len());
        for (a, b) in via_spec.ranked.iter().zip(via_conv.ranked.iter()) {
            assert_eq!(a.config, b.config);
            assert_eq!(a.predicted_cost, b.predicted_cost);
        }
    }

    #[test]
    fn optimized_tiles_fit_cache_capacities() {
        let shape = small_shape();
        let opt = optimizer(shape);
        let result = opt.optimize();
        let best = result.best();
        let machine = opt.machine();
        for level in [TilingLevel::L1, TilingLevel::L2, TilingLevel::L3] {
            let fp = best.config.level(level).footprint(&shape);
            assert!(
                fp <= machine.capacity(level),
                "level {level} footprint {fp} exceeds capacity {}",
                machine.capacity(level)
            );
        }
    }

    #[test]
    fn optimized_config_beats_degenerate_all_ones_tiling() {
        // A capacity-feasible but terrible configuration: every tile is a
        // single iteration point, so no reuse is captured anywhere. The
        // optimizer's pick must be predicted far better than this.
        let shape = small_shape();
        let opt = optimizer(shape);
        let result = opt.optimize();
        let mut degenerate = TileConfig::untiled(&shape);
        for level in TilingLevel::ALL {
            *degenerate.level_mut(level) = TileSizes::ones();
        }
        let degenerate = degenerate.normalized(&shape);
        let model = opt.model_for(degenerate.permutation.clone());
        let bad = model.predict_config(&degenerate);
        assert!(
            result.best().predicted_cost < bad.bottleneck_cost,
            "optimized {} should beat degenerate {}",
            result.best().predicted_cost,
            bad.bottleneck_cost
        );
    }

    #[test]
    fn grouped_configs_have_group_aligned_k_tiles_and_fit_capacities() {
        for shape in [
            ConvShape::new_general(1, 32, 16, 3, 3, 14, 14, 1, 1, 4).unwrap(),
            ConvShape::depthwise(32, 16, 3, 1),
        ] {
            let opt = optimizer(shape);
            let result = opt.optimize();
            let k_per_group = shape.k_per_group().max(1);
            for candidate in &result.ranked {
                for level in TilingLevel::ALL {
                    let tk = candidate.config.level(level).get(LoopIndex::K);
                    assert!(
                        tk <= k_per_group || tk % k_per_group == 0,
                        "{shape}: K tile {tk} straddles groups of {k_per_group} at {level}"
                    );
                }
                // At group-aligned K tiles the integer footprint matches the
                // continuous capacity constraint the solver enforced.
                for level in [TilingLevel::L1, TilingLevel::L2, TilingLevel::L3] {
                    let fp = candidate.config.level(level).footprint(&shape);
                    assert!(
                        fp <= opt.machine().capacity(level),
                        "{shape}: level {level} footprint {fp} exceeds capacity {}",
                        opt.machine().capacity(level)
                    );
                }
            }
        }
    }

    #[test]
    fn optimizer_beats_simple_heuristic_in_model_cost() {
        let shape = ConvShape::new(1, 64, 32, 3, 3, 28, 28, 1).unwrap();
        let opt = optimizer(shape);
        let result = opt.optimize();
        let heuristic = heuristic_config(&shape, opt.machine());
        let model = opt.model_for(heuristic.permutation.clone());
        let heuristic_cost = model.predict_config(&heuristic).bottleneck_cost;
        assert!(
            result.best().predicted_cost <= heuristic_cost * 1.05,
            "MOpt {} should not lose to the power-of-two heuristic {}",
            result.best().predicted_cost,
            heuristic_cost
        );
    }

    #[test]
    fn parallel_options_produce_valid_parallel_spec() {
        let shape = small_shape();
        let machine = MachineModel::i7_9700k();
        let opt = MOptOptimizer::new(
            shape,
            machine.clone(),
            OptimizerOptions {
                threads: machine.threads,
                max_classes: 1,
                multistart: 1,
                ..OptimizerOptions::fast()
            },
        );
        assert!(opt.parallel_spec().is_valid());
        let result = opt.optimize();
        assert_eq!(result.best().config.total_parallelism(), machine.threads);
    }

    #[test]
    fn axis_search_ranks_candidates_from_both_parallel_axes() {
        let shape = small_shape(); // k = 32, h = 14: both axes can host 4 threads
        let opt = MOptOptimizer::new(
            shape,
            MachineModel::i7_9700k(),
            OptimizerOptions {
                threads: 4,
                max_classes: 1,
                multistart: 0,
                keep_top: 8,
                ..OptimizerOptions::fast()
            },
        );
        let specs = opt.parallel_candidates();
        assert_eq!(specs.len(), 2, "k and rows decompositions must be distinct here");
        assert!(specs.iter().all(|s| s.is_valid() && s.total() == 4));
        let result = opt.optimize();
        assert_eq!(result.ranked.len(), 2);
        let axes: std::collections::HashSet<_> =
            result.ranked.iter().map(|c| c.config.parallel_axis()).collect();
        assert_eq!(axes.len(), 2, "one candidate per axis must survive");
        for c in &result.ranked {
            assert_eq!(c.config.total_parallelism(), 4);
            assert!(c.config.validate(&shape).is_ok());
            // The integer tiles respect the per-thread L3 share the solver
            // certified (private L1/L2 keep their whole capacity).
            let l3 = c.config.level(TilingLevel::L3).footprint(&shape);
            assert!(l3 <= opt.machine().capacity_per_thread(TilingLevel::L3, 4));
        }
        // Sequential runs search exactly one (sequential) specification.
        let seq = MOptOptimizer::new(shape, MachineModel::i7_9700k(), OptimizerOptions::fast());
        assert_eq!(seq.parallel_candidates(), vec![ParallelSpec::sequential()]);
    }

    #[test]
    fn heuristic_config_is_valid_and_fits() {
        let shape = ConvShape::new(1, 128, 64, 3, 3, 28, 28, 1).unwrap();
        let machine = MachineModel::i7_9700k();
        let cfg = heuristic_config(&shape, &machine);
        assert!(cfg.validate(&shape).is_ok());
        for level in [TilingLevel::L1, TilingLevel::L2, TilingLevel::L3] {
            assert!(cfg.level(level).footprint(&shape) <= machine.capacity(level));
        }
    }

    #[test]
    fn traced_search_matches_untraced_bit_for_bit_and_accounts_for_the_space() {
        let shape = small_shape();
        let opt = optimizer(shape);
        let plain = opt.optimize();
        let (traced, trace) = opt.optimize_traced();
        // The recorder only tallies on the side: the ranked configurations
        // (tiles, permutations, predictions) are byte-identical.
        assert_eq!(plain.ranked, traced.ranked);
        // The design space is fully accounted for.
        assert_eq!(trace.permutations_total, 5040, "7! loop orders before pruning");
        assert_eq!(trace.classes_searched, 3, "max_classes = 3 in the test optimizer");
        assert_eq!(trace.permutations_pruned, 5040 - 3);
        assert_eq!(trace.candidates.len(), 3, "sequential run: one candidate per class");
        assert!(trace.enumerated > 0, "the solver enumerated configurations");
        assert!(trace.capacity_pruned > 0, "some enumerated configs violated capacity");
        assert!(trace.capacity_pruned <= trace.enumerated);
        for candidate in &trace.candidates {
            assert_eq!(candidate.rounds.len(), 4, "one round per memory level");
            let mut remaining = 4;
            for round in &candidate.rounds {
                assert_eq!(round.hypotheses.len(), remaining);
                remaining -= 1;
                assert!(round.hypotheses.iter().any(|h| h.level == round.fixed));
                assert!(round.fixed_cost.is_finite());
            }
            assert!(candidate.predicted_cost.is_finite() && candidate.predicted_cost > 0.0);
            assert!(candidate.permutation.len() > 2, "rendered representative");
        }
        // Winner bookkeeping matches the ranking.
        assert_eq!(trace.winner_class, traced.ranked[0].class_id);
        assert_eq!(trace.winner_cost, traced.ranked[0].predicted_cost);
        assert_eq!(trace.runner_up_cost, Some(traced.ranked[1].predicted_cost));
        assert!(trace.margin.unwrap() >= 0.0);
    }

    #[test]
    #[should_panic(expected = "keep_top must be at least 1")]
    fn zero_keep_top_panics() {
        let shape = small_shape();
        let mut opts = OptimizerOptions::fast();
        opts.keep_top = 0;
        let _ = MOptOptimizer::new(shape, MachineModel::i7_9700k(), opts).optimize();
    }
}
