//! Model validation utilities (Sec. 9, Figures 5 and 6).
//!
//! The paper validates the analytical model by sampling ~100 tile
//! configurations per operator, ranking them by the model, and comparing the
//! ranking with measured performance and with hardware counters for data
//! movement at each level. This module provides:
//!
//! * [`ValidationPoint`] / [`ValidationReport`] — per-configuration records
//!   pairing a model prediction with a measurement,
//! * [`spearman_correlation`] — rank correlation between two metrics,
//! * [`top_k_loss`] — the top-1/top-2/top-5 loss-of-performance score of
//!   Fig. 5,
//! * [`validate_operator`] — end-to-end: sample configurations, predict with
//!   the model, measure with the tile-granularity simulator, and assemble a
//!   report.

use cache_sim::TileTrafficSimulator;
use conv_spec::{ConvShape, MachineModel, TileConfig, TilingLevel};
use mopt_model::multilevel::{ModelPrediction, MultiLevelModel, ParallelSpec};
use serde::{Deserialize, Serialize};

/// One validated configuration: the model's view and the measured view.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ValidationPoint {
    /// The configuration.
    pub config: TileConfig,
    /// Model prediction.
    pub predicted: ModelPrediction,
    /// Measured (simulated) data volume per level, elements.
    pub measured_volumes: [f64; 4],
    /// Measured figure of merit: bandwidth-scaled bottleneck cost computed
    /// from the measured volumes (lower is better).
    pub measured_cost: f64,
    /// Measured performance proxy in GFLOPS (from the measured cost and the
    /// machine's compute ceiling).
    pub measured_gflops: f64,
}

/// A per-operator validation report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ValidationReport {
    /// Operator name (e.g. `"R9"`).
    pub name: String,
    /// All validated points.
    pub points: Vec<ValidationPoint>,
}

impl ValidationReport {
    /// Spearman rank correlation between the model's figure of merit and the
    /// measured cost (positive and high when the model ranks well).
    pub fn cost_rank_correlation(&self) -> f64 {
        let predicted: Vec<f64> = self.points.iter().map(|p| p.predicted.bottleneck_cost).collect();
        let measured: Vec<f64> = self.points.iter().map(|p| p.measured_cost).collect();
        spearman_correlation(&predicted, &measured)
    }

    /// Spearman rank correlation between the model's figure of merit and the
    /// measured data volume at one level (the per-counter rows of Fig. 6).
    pub fn volume_rank_correlation(&self, level: TilingLevel) -> f64 {
        let predicted: Vec<f64> = self.points.iter().map(|p| p.predicted.bottleneck_cost).collect();
        let measured: Vec<f64> =
            self.points.iter().map(|p| p.measured_volumes[level.ordinal()]).collect();
        spearman_correlation(&predicted, &measured)
    }

    /// Top-k loss of performance (Fig. 5): how much slower the best of the
    /// model's top-k picks is than the measured-best configuration.
    pub fn top_k_loss(&self, k: usize) -> f64 {
        let predicted: Vec<f64> = self.points.iter().map(|p| p.predicted.bottleneck_cost).collect();
        let measured_perf: Vec<f64> = self.points.iter().map(|p| p.measured_gflops).collect();
        top_k_loss(&predicted, &measured_perf, k)
    }
}

/// Spearman rank correlation coefficient between two equally long slices.
/// Returns 0 for degenerate inputs (fewer than two points or zero variance).
pub fn spearman_correlation(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "inputs must have equal length");
    let n = a.len();
    if n < 2 {
        return 0.0;
    }
    let ra = ranks(a);
    let rb = ranks(b);
    pearson(&ra, &rb)
}

fn ranks(values: &[f64]) -> Vec<f64> {
    let mut order: Vec<usize> = (0..values.len()).collect();
    order.sort_by(|&i, &j| values[i].partial_cmp(&values[j]).unwrap_or(std::cmp::Ordering::Equal));
    let mut r = vec![0.0; values.len()];
    let mut i = 0;
    while i < order.len() {
        // Average ranks over ties.
        let mut j = i;
        while j + 1 < order.len() && values[order[j + 1]] == values[order[i]] {
            j += 1;
        }
        let avg = (i + j) as f64 / 2.0 + 1.0;
        for &idx in &order[i..=j] {
            r[idx] = avg;
        }
        i = j + 1;
    }
    r
}

fn pearson(a: &[f64], b: &[f64]) -> f64 {
    let n = a.len() as f64;
    let ma = a.iter().sum::<f64>() / n;
    let mb = b.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut va = 0.0;
    let mut vb = 0.0;
    for (x, y) in a.iter().zip(b.iter()) {
        cov += (x - ma) * (y - mb);
        va += (x - ma).powi(2);
        vb += (y - mb).powi(2);
    }
    if va <= 0.0 || vb <= 0.0 {
        return 0.0;
    }
    cov / (va.sqrt() * vb.sqrt())
}

/// Top-k loss of performance: `1 - best(measured perf of the k best-predicted
/// configurations) / best(measured perf overall)`. Lower is better; 0 means
/// the model's pick is the true best.
pub fn top_k_loss(predicted_cost: &[f64], measured_perf: &[f64], k: usize) -> f64 {
    assert_eq!(predicted_cost.len(), measured_perf.len(), "inputs must have equal length");
    assert!(k >= 1, "k must be at least 1");
    if predicted_cost.is_empty() {
        return 0.0;
    }
    let best_overall = measured_perf.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    if best_overall <= 0.0 {
        return 0.0;
    }
    let mut order: Vec<usize> = (0..predicted_cost.len()).collect();
    order.sort_by(|&i, &j| {
        predicted_cost[i].partial_cmp(&predicted_cost[j]).unwrap_or(std::cmp::Ordering::Equal)
    });
    let best_of_top_k =
        order.iter().take(k).map(|&i| measured_perf[i]).fold(f64::NEG_INFINITY, f64::max);
    (1.0 - best_of_top_k / best_overall).max(0.0)
}

/// Compute the measured bandwidth-scaled bottleneck cost from per-level
/// volumes (the same figure of merit the model uses, applied to measured
/// volumes).
pub fn measured_bottleneck_cost(volumes: &[f64; 4], machine: &MachineModel, threads: usize) -> f64 {
    TilingLevel::ALL
        .iter()
        .map(|&l| {
            let bw = machine.fill_bandwidth(l);
            let t = threads.max(1) as f64;
            match l {
                TilingLevel::L3 => volumes[l.ordinal()] / bw,
                _ => volumes[l.ordinal()] / (bw * t),
            }
        })
        .fold(0.0, f64::max)
}

/// Validate one operator: predict and "measure" (via the tile-granularity
/// traffic simulator) every sampled configuration.
pub fn validate_operator(
    name: &str,
    shape: &ConvShape,
    machine: &MachineModel,
    configs: &[TileConfig],
    threads: usize,
) -> ValidationReport {
    // A modest per-level tile budget keeps the "measurement" of a full
    // 32-operator sweep in the minutes range; the extrapolation error of the
    // truncated walk is well under the differences being ranked.
    let sim = TileTrafficSimulator::new(120_000);
    let parallel = ParallelSpec::default_for(shape, threads);
    let points = configs
        .iter()
        .map(|config| {
            let model = MultiLevelModel::new(*shape, machine.clone(), config.permutation.clone())
                .with_parallel(parallel);
            let predicted = model.predict_config(config);
            let dm = sim.simulate(shape, config);
            let measured_volumes = [
                dm.volume(TilingLevel::Register),
                dm.volume(TilingLevel::L1),
                dm.volume(TilingLevel::L2),
                dm.volume(TilingLevel::L3),
            ];
            let measured_cost = measured_bottleneck_cost(&measured_volumes, machine, threads);
            let fmas_per_cycle = (machine.simd_width * machine.fma_units * threads.max(1)) as f64;
            let compute_cycles = (shape.flops() as f64 / 2.0) / fmas_per_cycle;
            let cycles = measured_cost.max(compute_cycles);
            let measured_gflops = shape.flops() as f64 / (cycles / (machine.clock_ghz * 1e9)) / 1e9;
            ValidationPoint {
                config: config.clone(),
                predicted,
                measured_volumes,
                measured_cost,
                measured_gflops,
            }
        })
        .collect();
    ValidationReport { name: name.to_string(), points }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autotune_free_sampling::sample_configs;

    /// Minimal local sampler so this crate does not depend on `autotune`:
    /// power-of-two tile sizes at each level.
    mod autotune_free_sampling {
        use conv_spec::{ConvShape, Permutation, TileConfig, TileSizes, ALL_INDICES};
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};

        pub fn sample_configs(shape: &ConvShape, count: usize, seed: u64) -> Vec<TileConfig> {
            let mut rng = StdRng::seed_from_u64(seed);
            let perms = ["kcrsnhw", "nkcrshw", "nkhwcrs"];
            (0..count)
                .map(|_| {
                    let perm = Permutation::parse(perms[rng.gen_range(0..perms.len())]).unwrap();
                    let mut levels = [TileSizes::ones(); 4];
                    for level_tiles in levels.iter_mut() {
                        let mut t = TileSizes::ones();
                        for &idx in &ALL_INDICES {
                            let e = shape.extent(idx);
                            let max_pow = (e as f64).log2().floor() as u32;
                            let p = rng.gen_range(0..=max_pow);
                            t.set(idx, (1usize << p).min(e));
                        }
                        *level_tiles = t.min_with(&shape.extents());
                    }
                    TileConfig::new(perm, levels, TileSizes::ones()).normalized(shape)
                })
                .collect()
        }
    }

    #[test]
    fn spearman_perfect_and_inverse() {
        let a = vec![1.0, 2.0, 3.0, 4.0];
        let b = vec![10.0, 20.0, 30.0, 40.0];
        let c = vec![40.0, 30.0, 20.0, 10.0];
        assert!((spearman_correlation(&a, &b) - 1.0).abs() < 1e-12);
        assert!((spearman_correlation(&a, &c) + 1.0).abs() < 1e-12);
        assert_eq!(spearman_correlation(&[1.0], &[2.0]), 0.0);
        assert_eq!(spearman_correlation(&[1.0, 1.0], &[2.0, 3.0]), 0.0);
    }

    #[test]
    fn spearman_handles_ties() {
        let a = vec![1.0, 1.0, 2.0, 3.0];
        let b = vec![5.0, 5.0, 6.0, 7.0];
        let r = spearman_correlation(&a, &b);
        assert!(r > 0.99);
    }

    #[test]
    fn top_k_loss_basics() {
        // Predicted cost picks index 1 first; its measured perf is 80 vs best 100.
        let cost = vec![5.0, 1.0, 3.0];
        let perf = vec![100.0, 80.0, 90.0];
        assert!((top_k_loss(&cost, &perf, 1) - 0.2).abs() < 1e-12);
        // Top-2 adds index 2 (perf 90) → loss 0.1; top-3 includes the best → 0.
        assert!((top_k_loss(&cost, &perf, 2) - 0.1).abs() < 1e-12);
        assert_eq!(top_k_loss(&cost, &perf, 3), 0.0);
        assert_eq!(top_k_loss(&[], &[], 1), 0.0);
    }

    #[test]
    #[should_panic(expected = "k must be at least 1")]
    fn top_k_zero_panics() {
        let _ = top_k_loss(&[1.0], &[1.0], 0);
    }

    #[test]
    fn validation_report_on_small_operator() {
        let shape = ConvShape::new(1, 16, 16, 3, 3, 14, 14, 1).unwrap();
        let machine = MachineModel::i7_9700k();
        let configs = sample_configs(&shape, 24, 7);
        let report = validate_operator("test-op", &shape, &machine, &configs, 1);
        assert_eq!(report.points.len(), 24);
        // The model should rank configurations broadly like the simulator.
        let corr = report.cost_rank_correlation();
        assert!(corr > 0.5, "rank correlation too weak: {corr}");
        // Top-5 loss should not exceed top-1 loss.
        assert!(report.top_k_loss(5) <= report.top_k_loss(1) + 1e-12);
        // Losses are valid fractions.
        for k in [1, 2, 5] {
            let loss = report.top_k_loss(k);
            assert!((0.0..=1.0).contains(&loss));
        }
    }

    #[test]
    fn measured_bottleneck_cost_uses_max() {
        let machine = MachineModel::tiny_test_machine();
        let volumes = [800.0, 400.0, 200.0, 100.0];
        let c = measured_bottleneck_cost(&volumes, &machine, 1);
        assert!((c - 800.0 / machine.fill_bandwidth(TilingLevel::Register)).abs() < 1e-9);
        let c2 = measured_bottleneck_cost(&volumes, &machine, 2);
        assert!(c2 <= c);
    }
}
