//! MOpt: model-driven design-space exploration and multi-level tile-size
//! optimization for CNNs — the paper's primary contribution, assembled from
//! the analytical model (`mopt-model`), the non-linear solver
//! (`mopt-solver`), the memory-hierarchy simulator (`cache-sim`) and the
//! tiled executor (`conv-exec`).
//!
//! * [`optimizer`] — Algorithm 1: for each of the eight pruned permutation
//!   classes, find multi-level tile sizes by repeatedly solving one
//!   constrained non-linear problem per candidate bottleneck level, fixing
//!   the most constrained level first; floor to integers; load-balance; rank
//!   the candidates. `MOpt-1` is the best-ranked configuration, `MOpt-5` the
//!   best five (Sec. 10).
//! * [`validation`] — the model-validation methodology of Sec. 9: rank
//!   correlation between model predictions and measured performance / data
//!   movement, and top-k loss-of-performance against the best of a sampled
//!   configuration set (Figures 5 and 6).
//!
//! The optimizer accepts any [`conv_spec::ConvShape`], including dilated and
//! grouped/depthwise ones: the solver's tile bounds come from the shape's
//! loop-trip counts (so the C tile is bounded by the per-group reduction
//! extent) and the capacity/dominance constraints see the generalized
//! footprints through the model crate.
//!
//! # Example
//!
//! ```
//! use conv_spec::{ConvShape, MachineModel};
//! use mopt_core::optimizer::{MOptOptimizer, OptimizerOptions};
//!
//! let shape = ConvShape::new(1, 32, 16, 3, 3, 14, 14, 1)?;
//! let machine = MachineModel::i7_9700k();
//! let optimizer = MOptOptimizer::new(shape, machine, OptimizerOptions::fast());
//! let result = optimizer.optimize();
//! let best = result.best();
//! assert!(best.config.validate(&shape).is_ok());
//!
//! // A depthwise stage optimizes the same way; its C tile is pinned at the
//! // per-group reduction extent 1.
//! let dw = ConvShape::depthwise(16, 16, 3, 1);
//! let mut options = OptimizerOptions::fast();
//! options.max_classes = 1;
//! let dw_best = MOptOptimizer::new(dw, MachineModel::tiny_test_machine(), options)
//!     .optimize();
//! assert!(dw_best.best().config.validate(&dw).is_ok());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod optimizer;
pub mod validation;

pub use optimizer::{
    CandidateSearch, LayoutPolicy, LevelHypothesis, MOptOptimizer, OptimizeResult, OptimizedConfig,
    OptimizerOptions, SearchRound, SearchTrace,
};
pub use validation::{spearman_correlation, top_k_loss, ValidationPoint, ValidationReport};
