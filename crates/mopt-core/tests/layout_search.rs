//! Layout search end-to-end through the optimizer.
//!
//! With `LayoutPolicy::Search` the optimizer prices every tile candidate
//! under the default, packed-kernel, and blocked-NCHWc layouts (loop-nest
//! bottleneck plus one-time transform moves) and keeps the cheapest. These
//! tests pin the two acceptance properties: the fixed-policy path is
//! bit-identical to the pre-layout optimizer, and on at least one real
//! benchmark suite shape the search picks a non-default layout whose modeled
//! total beats the default's.

use conv_spec::{benchmarks, LayoutConfig, MachineModel};
use mopt_core::{LayoutPolicy, MOptOptimizer, OptimizerOptions};

fn options() -> OptimizerOptions {
    OptimizerOptions { max_classes: 2, ..OptimizerOptions::fast() }
}

#[test]
fn fixed_policy_is_bit_identical_to_unset_policy() {
    let op = benchmarks::by_name("Y0").expect("Yolo9000 suite has Y0");
    let machine = MachineModel::i7_9700k();
    let unset = MOptOptimizer::new(op.shape, machine.clone(), options()).optimize();
    let fixed = MOptOptimizer::new(
        op.shape,
        machine,
        OptimizerOptions { layout_policy: Some(LayoutPolicy::Fixed), ..options() },
    )
    .optimize();
    let (a, b) = (unset.best(), fixed.best());
    assert_eq!(a.config, b.config);
    assert_eq!(a.predicted_cost.to_bits(), b.predicted_cost.to_bits());
    assert!(a.config.layout.is_default());
}

#[test]
fn search_beats_the_default_layout_on_a_benchmark_shape() {
    // A benchmark suite shape with SIMD-friendly channel counts: layout
    // search should find that packing/blocking pays for itself.
    let machine = MachineModel::i7_9700k();
    let mut won = None;
    for op in benchmarks::all_operators() {
        if op.shape.k % 8 != 0 || op.shape.c % 8 != 0 || op.shape.groups != 1 {
            continue;
        }
        let fixed = MOptOptimizer::new(op.shape, machine.clone(), options()).optimize();
        let search = MOptOptimizer::new(
            op.shape,
            machine.clone(),
            OptimizerOptions { layout_policy: Some(LayoutPolicy::Search), ..options() },
        )
        .optimize();
        let best = search.best();
        if !best.config.layout.is_default() {
            // The search total (bottleneck + one-time moves) must beat the
            // fixed-policy total for the same shape.
            assert!(
                best.predicted_cost < fixed.best().predicted_cost,
                "{}: search picked {:?} at {} but fixed costs {}",
                op.name,
                best.config.layout,
                best.predicted_cost,
                fixed.best().predicted_cost
            );
            won = Some((op.name.clone(), best.config.layout));
            break;
        }
    }
    let (name, layout) = won.expect("no benchmark shape picked a non-default layout");
    println!("layout search won on {name}: {layout:?} ({})", layout.tag());
}

#[test]
fn searched_layouts_come_from_the_candidate_set() {
    let op = benchmarks::by_name("Y0").expect("Yolo9000 suite has Y0");
    let machine = MachineModel::i7_9700k();
    let optimizer = MOptOptimizer::new(
        op.shape,
        machine,
        OptimizerOptions { layout_policy: Some(LayoutPolicy::Search), ..options() },
    );
    let candidates = optimizer.layout_candidates();
    assert!(candidates.contains(&LayoutConfig::default()));
    assert!(candidates.len() >= 3, "search must consider packed and blocked layouts");
    let result = optimizer.optimize();
    for cand in &result.ranked {
        assert!(
            candidates.contains(&cand.config.layout),
            "candidate carries an unknown layout {:?}",
            cand.config.layout
        );
        assert!(cand.config.validate(&op.shape).is_ok());
    }
}
