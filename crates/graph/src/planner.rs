//! The fusion-aware cross-layer planner.
//!
//! Per-operator schedules come from `MOptOptimizer` (through a caller-
//! supplied provider, so the service layer can interpose its schedule cache
//! and worker pool); this module decides *where to cut*: a dynamic program
//! over each producer → consumer chain of schedulable operators (conv,
//! matmul, pool) chooses the segments whose interior intermediates are
//! consumed in cache, pricing every candidate fusion with
//! [`mopt_model::fused`] — the store + load of the intermediate tensor is
//! deleted when the segment's joint working set fits the certified L3
//! capacity envelope.
//!
//! An operator pair is *chainable* when the producer's output reaches the
//! consumer through nothing but out-degree-1 elementwise nodes: if the
//! intermediate has any other consumer it must be materialized anyway, so
//! fusion could not delete its store. Conv → conv pairs are admissible under
//! the pointwise-consumer rule of [`mopt_model::fused`]; conv → pool pairs
//! are admissible when the pool window is non-overlapping
//! (`window == stride`), so each produced band is consumed once; matmul
//! never fuses (its operand layout differs from the NCHW stream).

use std::time::Instant;

use conv_spec::{ConvShape, MachineModel, Spec, TilingLevel};
use mopt_core::{OptimizeResult, OptimizedConfig};
use mopt_model::fused::{evaluate_fusion_for_threads, fusable_pair, FusabilityCheck};
use serde::{Deserialize, Serialize};

use crate::ir::{Graph, NodeId, OpKind};
use crate::GraphError;

/// One schedulable operator inside a planned segment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SegmentOp {
    /// The node id in the source graph.
    pub node: NodeId,
    /// The node's display name.
    pub name: String,
    /// The generalized problem the node computes.
    pub spec: Spec,
    /// The conv2d embedding of [`SegmentOp::spec`] (for convs, the shape
    /// itself) — the loop nest the schedule tiles.
    pub shape: ConvShape,
    /// The best per-operator schedule (MOpt-1).
    pub best: OptimizedConfig,
}

/// A planned segment: one or more convolutions executed with their
/// intermediates kept in cache.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlannedSegment {
    /// The convolutions of the segment, producer first.
    pub ops: Vec<SegmentOp>,
    /// For each interior edge, whether a ReLU sits between the producer and
    /// the consumer (the fused executor applies it to the in-cache band).
    pub relu_between: Vec<bool>,
    /// Whether the segment fuses at least one pair (`ops.len() > 1`).
    pub fused: bool,
    /// Whether the segment is the exact depthwise → pointwise pattern the
    /// fused executor in `conv_exec` runs.
    pub executable_dw_pw: bool,
    /// Sum of the member schedules' modeled DRAM-boundary volumes (elements).
    pub unfused_volume: f64,
    /// The segment's modeled DRAM-boundary volume after fusion credits.
    pub volume: f64,
}

impl PlannedSegment {
    /// Elements of modeled DRAM traffic the segment's fusions delete.
    pub fn saving(&self) -> f64 {
        self.unfused_volume - self.volume
    }
}

/// The fusion-aware plan for a whole graph.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GraphPlan {
    /// The graph's display name.
    pub graph: String,
    /// [`Graph::fingerprint`] of the planned graph.
    pub fingerprint: u64,
    /// `MachineModel::fingerprint` of the target machine.
    pub machine_fingerprint: u64,
    /// The chosen segments, in dataflow order.
    pub segments: Vec<PlannedSegment>,
    /// Number of producer → consumer chains the convolutions formed.
    pub chains: usize,
    /// Elementwise (ReLU / add) nodes riding along in the graph.
    pub elementwise_ops: usize,
    /// Structurally fusable adjacent pairs considered by the planner.
    pub fusion_candidates: usize,
    /// Pairs fused in the final plan (interior edges of multi-op segments).
    pub fusions_taken: usize,
    /// Structurally fusable pairs the planner did not fuse (capacity
    /// envelope violations or dynamic-program cuts).
    pub fusions_rejected: usize,
    /// Total modeled DRAM-boundary volume with every op planned in isolation.
    pub unfused_volume: f64,
    /// Total modeled DRAM-boundary volume of the chosen plan.
    pub fused_volume: f64,
    /// Wall-clock seconds spent planning (excluding provider solve time the
    /// caller may have amortized elsewhere).
    pub plan_seconds: f64,
}

impl GraphPlan {
    /// Elements of modeled DRAM traffic the plan's fusions delete.
    pub fn saving(&self) -> f64 {
        self.unfused_volume - self.fused_volume
    }

    /// The fused depthwise → pointwise segments, ready for the fused
    /// executor.
    pub fn executable_segments(&self) -> impl Iterator<Item = &PlannedSegment> {
        self.segments.iter().filter(|s| s.fused && s.executable_dw_pw)
    }
}

/// One link of a convolution chain: consumer id plus whether a ReLU sits on
/// the connecting path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct ChainLink {
    to: NodeId,
    relu: bool,
}

/// Plans whole graphs against one machine model.
#[derive(Debug, Clone)]
pub struct GraphPlanner {
    machine: MachineModel,
    threads: usize,
}

impl GraphPlanner {
    /// A planner for `machine` (sequential execution).
    pub fn new(machine: MachineModel) -> Self {
        GraphPlanner { machine, threads: 1 }
    }

    /// Plan for `threads` active threads: fusion admissibility is checked
    /// against the *per-thread* L3 envelope
    /// ([`MachineModel::capacity_per_thread`]) — with the shared last-level
    /// cache divided among co-running threads, a fused segment's joint
    /// working set must fit one thread's share. `threads == 1` is the
    /// whole-cache envelope.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// The machine model.
    pub fn machine(&self) -> &MachineModel {
        &self.machine
    }

    /// The thread count the fusion envelope assumes.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Plan `graph`: validate it, obtain a per-operator schedule for every
    /// schedulable node (conv, matmul, pool) from `schedule` (typically a
    /// cache-backed `MOptOptimizer` call on the spec's conv embedding), and
    /// run the fusion dynamic program.
    ///
    /// # Errors
    ///
    /// Returns the graph's first validation error; planning itself cannot
    /// fail on a valid graph.
    pub fn plan<F: FnMut(&Spec) -> OptimizeResult>(
        &self,
        graph: &Graph,
        mut schedule: F,
    ) -> Result<GraphPlan, GraphError> {
        graph.validate()?;
        let started = Instant::now();
        let dims = graph.node_output_dims()?;
        let chains = spec_chains(graph);
        let capacity = self.machine.capacity_per_thread(TilingLevel::L3, self.threads) as f64;

        let mut segments = Vec::new();
        let mut fusion_candidates = 0;
        let mut fusions_taken = 0;
        let mut unfused_total = 0.0;
        let mut fused_total = 0.0;
        for chain in &chains {
            // Per-op schedules and model volumes.
            let ops: Vec<SegmentOp> = chain
                .iter()
                .map(|link| {
                    let spec = graph.node_spec(link.to, &dims).expect("chain node is schedulable");
                    let best = schedule(&spec).best().clone();
                    SegmentOp {
                        node: link.to,
                        name: graph.nodes[link.to].name.clone(),
                        spec,
                        shape: spec.embedded_conv_shape(),
                        best,
                    }
                })
                .collect();
            let volumes: Vec<f64> =
                ops.iter().map(|op| op.best.prediction.volume(TilingLevel::L3)).collect();
            let footprints: Vec<f64> = ops
                .iter()
                .map(|op| op.best.config.level(TilingLevel::L3).footprint(&op.shape) as f64)
                .collect();
            // Price every interior edge. Conv → conv pairs go through the
            // fused-segment model (`mopt_model::fused`): the evaluation
            // carries the structural verdict, the deleted store + load
            // credit, and the pairwise capacity-envelope check the DP
            // consumes below. Conv → pool pairs admit under the
            // non-overlapping-window rule with the same store + load credit
            // on the intermediate; everything else never fuses.
            let m = ops.len();
            let mut structural = vec![false; m.saturating_sub(1)];
            let mut savings = vec![0.0f64; m.saturating_sub(1)];
            for i in 0..m.saturating_sub(1) {
                match (&ops[i].spec, &ops[i + 1].spec) {
                    (Spec::Conv(a), Spec::Conv(b)) => {
                        structural[i] = fusable_pair(a, b) == FusabilityCheck::Fusable;
                        let eval = evaluate_fusion_for_threads(
                            a,
                            b,
                            ops[i].best.config.level(TilingLevel::L3),
                            ops[i + 1].best.config.level(TilingLevel::L3),
                            volumes[i],
                            volumes[i + 1],
                            &self.machine,
                            self.threads,
                        );
                        savings[i] = 2.0 * eval.intermediate_elems;
                        // The DP below re-derives pairwise admissibility from
                        // the same two-term footprint sum; keep that
                        // equivalent to the model's verdict so the envelope
                        // has a single definition.
                        debug_assert!(
                            eval.feasible
                                == (structural[i] && footprints[i] + footprints[i + 1] <= capacity)
                        );
                    }
                    (Spec::Conv(a), &Spec::Pool { window, stride, .. }) => {
                        structural[i] = window == stride;
                        savings[i] = 2.0 * a.output_elems() as f64;
                    }
                    _ => {}
                }
                if structural[i] {
                    fusion_candidates += 1;
                }
            }

            // Dynamic program over cut points: best[i] = cheapest plan of
            // ops[..i]. A segment is admissible when every interior pair is
            // structurally fusable and the joint footprint of *all* members
            // fits the L3 capacity — for a two-op segment this is exactly
            // the envelope `evaluate_fusion` certified (its fused_footprint
            // is the same two-term sum), extended additively for longer
            // segments. Both sums are monotone leftward, so the first
            // violation ends the scan.
            let mut best = vec![f64::INFINITY; m + 1];
            let mut cut = vec![0usize; m + 1];
            best[0] = 0.0;
            for i in 1..=m {
                // Single-op segment (always admissible), then grow leftward.
                best[i] = best[i - 1] + volumes[i - 1];
                cut[i] = i - 1;
                let mut fp_sum = footprints[i - 1];
                let mut vol_sum = volumes[i - 1];
                let mut save_sum = 0.0;
                for j in (0..i - 1).rev() {
                    if !structural[j] {
                        break;
                    }
                    fp_sum += footprints[j];
                    if fp_sum > capacity {
                        break;
                    }
                    vol_sum += volumes[j];
                    save_sum += savings[j];
                    let cost = best[j] + (vol_sum - save_sum).max(0.0);
                    if cost < best[i] {
                        best[i] = cost;
                        cut[i] = j;
                    }
                }
            }

            // Reconstruct segments.
            let mut bounds = Vec::new();
            let mut i = m;
            while i > 0 {
                bounds.push((cut[i], i));
                i = cut[i];
            }
            bounds.reverse();
            for (j, i) in bounds {
                let seg_ops = ops[j..i].to_vec();
                let relu_between: Vec<bool> =
                    chain[j + 1..i].iter().map(|link| link.relu).collect();
                let unfused: f64 = volumes[j..i].iter().sum();
                let save: f64 = if i - j > 1 { savings[j..i - 1].iter().sum() } else { 0.0 };
                let volume = (unfused - save).max(0.0);
                let fused = i - j > 1;
                if fused {
                    fusions_taken += i - j - 1;
                }
                let executable = fused
                    && i - j == 2
                    && seg_ops.iter().all(|op| matches!(op.spec, Spec::Conv(_)))
                    && seg_ops[0].shape.is_depthwise()
                    && seg_ops[1].shape.is_pointwise();
                unfused_total += unfused;
                fused_total += volume;
                segments.push(PlannedSegment {
                    ops: seg_ops,
                    relu_between,
                    fused,
                    executable_dw_pw: executable,
                    unfused_volume: unfused,
                    volume,
                });
            }
        }

        let elementwise_ops = graph.nodes.iter().filter(|n| !n.op.is_schedulable()).count();
        Ok(GraphPlan {
            graph: graph.name.clone(),
            fingerprint: graph.fingerprint(),
            machine_fingerprint: self.machine.fingerprint(),
            segments,
            chains: chains.len(),
            elementwise_ops,
            fusion_candidates,
            fusions_taken,
            fusions_rejected: fusion_candidates - fusions_taken,
            unfused_volume: unfused_total,
            fused_volume: fused_total,
            plan_seconds: started.elapsed().as_secs_f64(),
        })
    }
}

/// Decompose the graph's schedulable nodes (conv, matmul, pool) into maximal
/// producer → consumer chains. A link a → b exists when b's data input
/// reaches back to schedulable node a through out-degree-1 elementwise nodes
/// only, and a itself has out-degree 1 (its intermediate has no other
/// consumer). Nodes that link to nothing form singleton chains. Chains are
/// returned in topological order of their heads, each as a list of
/// [`ChainLink`]s whose first entry has `relu == false`.
fn spec_chains(graph: &Graph) -> Vec<Vec<ChainLink>> {
    let scheds = graph.schedulable_nodes();
    // upstream[b] = (a, relu-on-path) for the chain predecessor of node b.
    let mut upstream: Vec<Option<(NodeId, bool)>> = vec![None; graph.nodes.len()];
    for &b in &scheds {
        let mut relu = false;
        let mut inputs = graph.inputs_of(b);
        while let Some(edge) = inputs.first() {
            let p = edge.from;
            if graph.outputs_of(p).len() != 1 {
                break;
            }
            match &graph.nodes[p].op {
                op if op.is_schedulable() => {
                    upstream[b] = Some((p, relu));
                    break;
                }
                OpKind::Relu => {
                    relu = true;
                    inputs = graph.inputs_of(p);
                }
                _ => break,
            }
        }
    }
    // Invert into next-links; heads are nodes that are nobody's successor.
    let mut next: Vec<Option<(NodeId, bool)>> = vec![None; graph.nodes.len()];
    let mut is_successor = vec![false; graph.nodes.len()];
    for &b in &scheds {
        if let Some((a, relu)) = upstream[b] {
            next[a] = Some((b, relu));
            is_successor[b] = true;
        }
    }
    let mut chains = Vec::new();
    for &head in &scheds {
        if is_successor[head] {
            continue;
        }
        let mut chain = vec![ChainLink { to: head, relu: false }];
        let mut cur = head;
        while let Some((b, relu)) = next[cur] {
            chain.push(ChainLink { to: b, relu });
            cur = b;
        }
        chains.push(chain);
    }
    chains
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders;
    use crate::ir::TensorInfo;
    use mopt_core::{MOptOptimizer, OptimizerOptions};

    fn fast_options() -> OptimizerOptions {
        OptimizerOptions { max_classes: 1, ..OptimizerOptions::fast() }
    }

    fn solve_with(machine: &MachineModel) -> impl FnMut(&Spec) -> OptimizeResult + '_ {
        move |spec: &Spec| MOptOptimizer::optimize_spec(spec, machine.clone(), fast_options())
    }

    fn small_block() -> Graph {
        builders::mobilenet_v2_block_from(&ConvShape::depthwise(12, 14, 3, 1), "small-block")
    }

    #[test]
    fn chain_extraction_walks_through_relu() {
        let g = small_block();
        let chains = spec_chains(&g);
        assert_eq!(chains.len(), 1);
        let chain = &chains[0];
        assert_eq!(chain.len(), 3);
        assert_eq!(
            chain.iter().map(|l| g.nodes[l.to].name.as_str()).collect::<Vec<_>>(),
            ["expand", "dw", "project"]
        );
        assert!(!chain[0].relu);
        assert!(chain[1].relu && chain[2].relu);
    }

    #[test]
    fn residual_fanout_breaks_chains() {
        let g = builders::resnet_residual_block_from(
            &ConvShape::new(1, 8, 4, 3, 3, 10, 10, 1).unwrap(),
            "res",
        );
        let chains = spec_chains(&g);
        // conv1 → conv2 chain (conv2's output feeds the add, breaking the
        // chain there) plus the skip conv alone.
        assert_eq!(chains.len(), 2);
        assert_eq!(chains.iter().map(|c| c.len()).sum::<usize>(), 3);
    }

    #[test]
    fn shared_intermediates_are_never_chained() {
        // dw feeds two pointwise consumers: its store cannot be deleted.
        let dw = ConvShape::depthwise(8, 12, 3, 1);
        let pw = ConvShape::new(1, 4, 8, 1, 1, dw.h, dw.w, 1).unwrap();
        let mut g = Graph::new("fanout");
        let a = g.add_conv("dw", dw);
        let b = g.add_conv("pw1", pw);
        let c = g.add_conv("pw2", pw);
        g.connect(a, b, TensorInfo::nchw(dw.output_dims()));
        g.connect(a, c, TensorInfo::nchw(dw.output_dims()));
        g.validate().unwrap();
        let chains = spec_chains(&g);
        assert_eq!(chains.len(), 3);
        assert!(chains.iter().all(|c| c.len() == 1));
    }

    #[test]
    fn plan_fuses_the_dw_pw_tail_on_a_big_enough_machine() {
        let g = small_block();
        let machine = MachineModel::i7_9700k();
        let planner = GraphPlanner::new(machine.clone());
        let plan = planner.plan(&g, solve_with(&machine)).unwrap();
        assert_eq!(plan.fingerprint, g.fingerprint());
        assert_eq!(plan.chains, 1);
        assert_eq!(plan.elementwise_ops, 2);
        // expand → dw is not structurally fusable (dw is 3x3); dw → project
        // is, and the tiny shapes fit the i7's L3 envelope jointly.
        assert_eq!(plan.fusion_candidates, 1);
        assert_eq!(plan.fusions_taken, 1);
        assert_eq!(plan.fusions_rejected, 0);
        assert!(plan.fused_volume < plan.unfused_volume);
        assert!(plan.saving() > 0.0);
        let fused: Vec<_> = plan.executable_segments().collect();
        assert_eq!(fused.len(), 1);
        let seg = fused[0];
        assert_eq!(seg.ops.len(), 2);
        assert!(seg.ops[0].shape.is_depthwise() && seg.ops[1].shape.is_pointwise());
        assert_eq!(seg.relu_between, vec![true]);
        assert_eq!(seg.saving(), 2.0 * seg.ops[0].shape.output_elems() as f64);
        // Every op appears exactly once across segments.
        let total_ops: usize = plan.segments.iter().map(|s| s.ops.len()).sum();
        assert_eq!(total_ops, 3);
    }

    #[test]
    fn capacity_envelope_rejects_fusion_on_the_tiny_machine() {
        // The same block, but the tiny machine's 16K-element L3 cannot hold
        // the joint working set of a full-size V-stage pair.
        let g = builders::mobilenet_v2_block(5).unwrap();
        let machine = MachineModel::tiny_test_machine();
        let planner = GraphPlanner::new(machine.clone());
        let plan = planner.plan(&g, solve_with(&machine)).unwrap();
        assert_eq!(plan.fusion_candidates, 1);
        assert_eq!(plan.fusions_taken, 0);
        assert_eq!(plan.fusions_rejected, 1);
        assert_eq!(plan.fused_volume, plan.unfused_volume);
        assert!(plan.segments.iter().all(|s| !s.fused));
    }

    #[test]
    fn per_thread_envelope_rejects_fusion_under_contention() {
        // The dw → project joint working set (~0.94M elements) fits the
        // i7's whole 3M-element L3, but not a 1/8 share of it: the same
        // graph fuses sequentially and must not when 8 threads co-run.
        let g = builders::mobilenet_v2_block_from(&ConvShape::depthwise(64, 66, 3, 1), "mt-block");
        let machine = MachineModel::i7_9700k();
        let whole = GraphPlanner::new(machine.clone()).plan(&g, solve_with(&machine)).unwrap();
        assert_eq!(whole.fusions_taken, 1);
        let planner = GraphPlanner::new(machine.clone()).with_threads(8);
        assert_eq!(planner.threads(), 8);
        let shared = planner.plan(&g, solve_with(&machine)).unwrap();
        assert_eq!(shared.fusion_candidates, 1);
        assert_eq!(shared.fusions_taken, 0);
        assert_eq!(shared.fusions_rejected, 1);
        assert_eq!(shared.fused_volume, shared.unfused_volume);
    }

    #[test]
    fn invalid_graphs_are_rejected_before_planning() {
        let machine = MachineModel::tiny_test_machine();
        let planner = GraphPlanner::new(machine.clone());
        let mut g = small_block();
        g.edges[0].tensor = TensorInfo::nchw((9, 9, 9, 9));
        let mut calls = 0;
        let err = planner.plan(&g, |spec| {
            calls += 1;
            MOptOptimizer::optimize_spec(spec, machine.clone(), fast_options())
        });
        assert!(err.is_err());
        assert_eq!(calls, 0, "no schedules must be solved for an invalid graph");
    }

    #[test]
    fn pool_after_conv_chains_and_fuses_under_the_nonoverlapping_rule() {
        // conv → relu → pool(2x2 s2): chainable through the relu, and the
        // non-overlapping window admits fusion on a big enough machine.
        let conv = ConvShape::new(1, 8, 4, 3, 3, 10, 10, 1).unwrap();
        let mut g = Graph::new("conv-pool");
        let c = g.add_conv("conv", conv);
        let r = g.add_node("relu", OpKind::Relu);
        let p = g.add_pool("pool", conv_spec::PoolKind::Max, 2, 2);
        let out = TensorInfo::nchw(conv.output_dims());
        g.connect(c, r, out);
        g.connect(r, p, out);
        g.validate().unwrap();

        let machine = MachineModel::i7_9700k();
        let plan = GraphPlanner::new(machine.clone()).plan(&g, solve_with(&machine)).unwrap();
        assert_eq!(plan.chains, 1);
        assert_eq!(plan.fusion_candidates, 1);
        assert_eq!(plan.fusions_taken, 1);
        let seg = &plan.segments[0];
        assert_eq!(seg.ops.len(), 2);
        assert!(matches!(seg.ops[1].spec, Spec::Pool { .. }));
        assert_eq!(seg.relu_between, vec![true]);
        assert_eq!(seg.saving(), 2.0 * conv.output_elems() as f64);
        assert!(!seg.executable_dw_pw);

        // An overlapping window (3x3 s1) is never a fusion candidate.
        let mut g2 = Graph::new("conv-pool-overlap");
        let c = g2.add_conv("conv", conv);
        let p = g2.add_pool("pool", conv_spec::PoolKind::Avg, 3, 1);
        g2.connect(c, p, out);
        let plan2 = GraphPlanner::new(machine.clone()).plan(&g2, solve_with(&machine)).unwrap();
        assert_eq!(plan2.chains, 1);
        assert_eq!(plan2.fusion_candidates, 0);
        assert_eq!(plan2.fusions_taken, 0);
    }

    #[test]
    fn matmul_head_plans_as_its_own_segment() {
        // global-pool → fc: the matmul chains after the pool but never
        // fuses, and its schedule solves on the conv embedding.
        let conv = ConvShape::new(1, 16, 4, 3, 3, 6, 6, 1).unwrap();
        let mut g = Graph::new("head");
        let c = g.add_conv("conv", conv);
        let gp = g.add_pool("gap", conv_spec::PoolKind::Avg, 6, 1);
        let fc = g.add_matmul("fc", 10, 1, 16);
        g.connect(c, gp, TensorInfo::nchw(conv.output_dims()));
        g.connect(gp, fc, TensorInfo::nchw((1, 16, 1, 1)));
        g.validate().unwrap();

        let machine = MachineModel::tiny_test_machine();
        let plan = GraphPlanner::new(machine.clone()).plan(&g, solve_with(&machine)).unwrap();
        let total_ops: usize = plan.segments.iter().map(|s| s.ops.len()).sum();
        assert_eq!(total_ops, 3);
        assert_eq!(plan.chains, 1);
        // Overlap rule rejects the 6x6 s1 global pool; matmul never fuses.
        assert_eq!(plan.fusion_candidates, 0);
        let fc_seg = plan
            .segments
            .iter()
            .find(|s| s.ops.iter().any(|o| matches!(o.spec, Spec::Matmul { .. })))
            .expect("fc planned");
        let fc_op = &fc_seg.ops.last().unwrap();
        assert_eq!(fc_op.shape, fc_op.spec.embedded_conv_shape());
        assert!(fc_op.best.config.validate(&fc_op.shape).is_ok());
    }

    #[test]
    fn plan_round_trips_through_json() {
        let g = small_block();
        let machine = MachineModel::tiny_test_machine();
        let planner = GraphPlanner::new(machine.clone());
        let plan = planner.plan(&g, solve_with(&machine)).unwrap();
        let text = serde_json::to_string(&plan).unwrap();
        let back: GraphPlan = serde_json::from_str(&text).unwrap();
        assert_eq!(plan, back);
    }
}
