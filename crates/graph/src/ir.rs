//! The dataflow IR: CNN graphs of convolution, matmul, pooling, and
//! elementwise operators.
//!
//! A [`Graph`] is a list of [`Node`]s (convolutions, matrix multiplications,
//! poolings, ReLU, residual add) connected by [`Edge`]s that carry the
//! intermediate tensors (dimensions plus [`TensorLayout`]). Nodes with no
//! incoming edge read the graph's input tensor; every source must therefore
//! expect the same input dimensions. The IR is JSON-(de)serializable — it is
//! the payload of the `PlanGraph` service verb — and [`Graph::validate`]
//! checks referential integrity, acyclicity, per-op arity, and tensor-shape
//! consistency along every edge before any planning happens.
//!
//! Every *schedulable* node (conv, matmul, pool) lowers to a
//! [`conv_spec::Spec`] via [`Graph::node_spec`], so one optimizer and one
//! schedule database serve the whole network.

use conv_spec::{ConvShape, PoolKind, Spec, TensorLayout};
use serde::{Deserialize, Serialize};

use crate::GraphError;

/// Index of a node in [`Graph::nodes`].
pub type NodeId = usize;

/// The operator a node computes.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum OpKind {
    /// A convolution with the given problem shape (the weights are implicit
    /// in the shape, as everywhere else in the workspace).
    Conv {
        /// The conv2d problem shape.
        shape: ConvShape,
    },
    /// A dense matrix multiplication `C[m×n] = A[m×k] · B[k×n]` — the
    /// fully-connected head of a classification network, with `m` output
    /// features, `k` input features, and the batch as the `n` columns. The
    /// weight matrix A is implicit (like conv weights); the node's tensor
    /// input is the `(n, k, 1, 1)` activation feeding B.
    MatMul {
        /// Output features (rows of C).
        m: usize,
        /// Batch columns of C.
        n: usize,
        /// Reduction extent (input features).
        k: usize,
    },
    /// A 2-D spatial pooling with a square window. Channel count and batch
    /// pass through; the output extents follow from the input tensor
    /// (`(ih - window) / stride + 1`, exact division required).
    Pool {
        /// The reduction over the window.
        kind: PoolKind,
        /// Window extent (square).
        window: usize,
        /// Window stride.
        stride: usize,
    },
    /// Elementwise rectified linear unit.
    Relu,
    /// Elementwise addition of two equal-shaped tensors (residual connection).
    Add,
}

impl OpKind {
    /// The convolution shape, when this is a conv node.
    pub fn conv_shape(&self) -> Option<&ConvShape> {
        match self {
            OpKind::Conv { shape } => Some(shape),
            _ => None,
        }
    }

    /// Whether the operator takes a per-operator schedule (conv, matmul,
    /// pool — everything that lowers to a [`Spec`]).
    pub fn is_schedulable(&self) -> bool {
        matches!(self, OpKind::Conv { .. } | OpKind::MatMul { .. } | OpKind::Pool { .. })
    }

    /// Number of tensor inputs the operator consumes.
    pub fn arity(&self) -> usize {
        match self {
            OpKind::Conv { .. } | OpKind::MatMul { .. } | OpKind::Pool { .. } | OpKind::Relu => 1,
            OpKind::Add => 2,
        }
    }
}

/// One operator instance in the graph.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Node {
    /// Display name (e.g. `"expand"`, `"dw"`, `"project"`).
    pub name: String,
    /// The operator.
    pub op: OpKind,
}

/// The tensor carried by an edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TensorInfo {
    /// Dimensions in `(N, C, H, W)` order.
    pub dims: [usize; 4],
    /// Memory layout.
    pub layout: TensorLayout,
}

impl TensorInfo {
    /// An NCHW tensor from a dimension tuple.
    pub fn nchw(dims: (usize, usize, usize, usize)) -> Self {
        TensorInfo { dims: [dims.0, dims.1, dims.2, dims.3], layout: TensorLayout::Nchw }
    }

    /// Dimensions as a tuple.
    pub fn dims_tuple(&self) -> (usize, usize, usize, usize) {
        (self.dims[0], self.dims[1], self.dims[2], self.dims[3])
    }

    /// Number of elements.
    pub fn elems(&self) -> usize {
        self.dims.iter().product()
    }
}

/// A dataflow edge: `from`'s output tensor feeds `to`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Edge {
    /// Producer node.
    pub from: NodeId,
    /// Consumer node.
    pub to: NodeId,
    /// The tensor flowing along the edge.
    pub tensor: TensorInfo,
}

/// A CNN dataflow graph.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Graph {
    /// Display name of the graph (e.g. `"mbv2-block5"`).
    pub name: String,
    /// The operators. A node's [`NodeId`] is its index in this vector.
    pub nodes: Vec<Node>,
    /// The dataflow edges.
    pub edges: Vec<Edge>,
}

impl Graph {
    /// An empty graph.
    pub fn new(name: impl Into<String>) -> Self {
        Graph { name: name.into(), nodes: Vec::new(), edges: Vec::new() }
    }

    /// Append a node, returning its id.
    pub fn add_node(&mut self, name: impl Into<String>, op: OpKind) -> NodeId {
        self.nodes.push(Node { name: name.into(), op });
        self.nodes.len() - 1
    }

    /// Append a conv node.
    pub fn add_conv(&mut self, name: impl Into<String>, shape: ConvShape) -> NodeId {
        self.add_node(name, OpKind::Conv { shape })
    }

    /// Append a matmul node (`m` output features, `n` batch columns, `k`
    /// reduction extent).
    pub fn add_matmul(&mut self, name: impl Into<String>, m: usize, n: usize, k: usize) -> NodeId {
        self.add_node(name, OpKind::MatMul { m, n, k })
    }

    /// Append a pooling node.
    pub fn add_pool(
        &mut self,
        name: impl Into<String>,
        kind: PoolKind,
        window: usize,
        stride: usize,
    ) -> NodeId {
        self.add_node(name, OpKind::Pool { kind, window, stride })
    }

    /// Connect `from` → `to` with an explicit tensor description.
    pub fn connect(&mut self, from: NodeId, to: NodeId, tensor: TensorInfo) {
        self.edges.push(Edge { from, to, tensor });
    }

    /// Incoming edges of a node, in insertion order.
    pub fn inputs_of(&self, node: NodeId) -> Vec<&Edge> {
        self.edges.iter().filter(|e| e.to == node).collect()
    }

    /// Outgoing edges of a node.
    pub fn outputs_of(&self, node: NodeId) -> Vec<&Edge> {
        self.edges.iter().filter(|e| e.from == node).collect()
    }

    /// Ids of the conv nodes, in node order.
    pub fn conv_nodes(&self) -> Vec<NodeId> {
        (0..self.nodes.len())
            .filter(|&id| matches!(self.nodes[id].op, OpKind::Conv { .. }))
            .collect()
    }

    /// Ids of the schedulable nodes (conv, matmul, pool), in node order.
    pub fn schedulable_nodes(&self) -> Vec<NodeId> {
        (0..self.nodes.len()).filter(|&id| self.nodes[id].op.is_schedulable()).collect()
    }

    /// The [`Spec`] a schedulable node lowers to, given the per-node output
    /// dimensions from [`Graph::node_output_dims`]. `None` for elementwise
    /// nodes.
    pub fn node_spec(
        &self,
        id: NodeId,
        output_dims: &[(usize, usize, usize, usize)],
    ) -> Option<Spec> {
        match &self.nodes[id].op {
            OpKind::Conv { shape } => Some(Spec::Conv(*shape)),
            &OpKind::MatMul { m, n, k } => {
                Some(Spec::Matmul { m, n, k, dtype: Default::default() })
            }
            &OpKind::Pool { kind, window, stride } => {
                let (n, channels, h, w) = output_dims[id];
                Some(Spec::Pool { kind, n, channels, h, w, window, stride })
            }
            OpKind::Relu | OpKind::Add => None,
        }
    }

    /// A topological order of the nodes (Kahn's algorithm).
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::Cyclic`] when the graph has a cycle, or
    /// [`GraphError::DanglingEdge`] when an edge references a missing node.
    pub fn topo_order(&self) -> Result<Vec<NodeId>, GraphError> {
        let n = self.nodes.len();
        let mut in_degree = vec![0usize; n];
        for e in &self.edges {
            if e.from >= n || e.to >= n {
                return Err(GraphError::DanglingEdge { from: e.from, to: e.to });
            }
            if e.from == e.to {
                return Err(GraphError::Cyclic);
            }
            in_degree[e.to] += 1;
        }
        let mut ready: Vec<NodeId> = (0..n).filter(|&i| in_degree[i] == 0).collect();
        let mut order = Vec::with_capacity(n);
        while let Some(id) = ready.pop() {
            order.push(id);
            for e in self.edges.iter().filter(|e| e.from == id) {
                in_degree[e.to] -= 1;
                if in_degree[e.to] == 0 {
                    ready.push(e.to);
                }
            }
        }
        if order.len() != n {
            return Err(GraphError::Cyclic);
        }
        Ok(order)
    }

    /// The output tensor dimensions of every node, computed in topological
    /// order (elementwise ops propagate their input dimensions; convs produce
    /// their shape's output dimensions).
    ///
    /// # Errors
    ///
    /// Returns the first structural or shape inconsistency found (see
    /// [`Graph::validate`] for the full list).
    pub fn node_output_dims(&self) -> Result<Vec<(usize, usize, usize, usize)>, GraphError> {
        let order = self.topo_order()?;
        let mut dims = vec![(0, 0, 0, 0); self.nodes.len()];
        for id in order {
            let node = &self.nodes[id];
            let inputs = self.inputs_of(id);
            if !inputs.is_empty() && inputs.len() != node.op.arity() {
                return Err(GraphError::BadArity {
                    node: node.name.clone(),
                    expected: node.op.arity(),
                    got: inputs.len(),
                });
            }
            // Every incoming edge must carry the tensor its producer emits.
            for e in &inputs {
                if e.tensor.dims_tuple() != dims[e.from] {
                    return Err(GraphError::EdgeTensorMismatch {
                        from: self.nodes[e.from].name.clone(),
                        to: node.name.clone(),
                        edge: e.tensor.dims_tuple(),
                        produced: dims[e.from],
                    });
                }
            }
            dims[id] = match &node.op {
                OpKind::Conv { shape } => {
                    if let Some(e) = inputs.first() {
                        if e.tensor.dims_tuple() != shape.input_dims() {
                            return Err(GraphError::ConvInputMismatch {
                                node: node.name.clone(),
                                expected: shape.input_dims(),
                                got: e.tensor.dims_tuple(),
                            });
                        }
                    }
                    shape.output_dims()
                }
                &OpKind::MatMul { m, n, k } => {
                    if let Some(e) = inputs.first() {
                        if e.tensor.dims_tuple() != (n, k, 1, 1) {
                            return Err(GraphError::ConvInputMismatch {
                                node: node.name.clone(),
                                expected: (n, k, 1, 1),
                                got: e.tensor.dims_tuple(),
                            });
                        }
                    }
                    (n, m, 1, 1)
                }
                &OpKind::Pool { window, stride, .. } => {
                    let e = inputs.first().ok_or_else(|| GraphError::BadArity {
                        node: node.name.clone(),
                        expected: 1,
                        got: 0,
                    })?;
                    let (b, c, ih, iw) = e.tensor.dims_tuple();
                    let fits = |extent: usize| {
                        extent >= window && (extent - window).is_multiple_of(stride)
                    };
                    if !fits(ih) || !fits(iw) {
                        return Err(GraphError::PoolGeometry {
                            node: node.name.clone(),
                            input: (b, c, ih, iw),
                            window,
                            stride,
                        });
                    }
                    (b, c, (ih - window) / stride + 1, (iw - window) / stride + 1)
                }
                OpKind::Relu => {
                    let e = inputs.first().ok_or_else(|| GraphError::BadArity {
                        node: node.name.clone(),
                        expected: 1,
                        got: 0,
                    })?;
                    e.tensor.dims_tuple()
                }
                OpKind::Add => {
                    if inputs.len() != 2 {
                        return Err(GraphError::BadArity {
                            node: node.name.clone(),
                            expected: 2,
                            got: inputs.len(),
                        });
                    }
                    if inputs[0].tensor.dims_tuple() != inputs[1].tensor.dims_tuple() {
                        return Err(GraphError::EdgeTensorMismatch {
                            from: self.nodes[inputs[1].from].name.clone(),
                            to: node.name.clone(),
                            edge: inputs[1].tensor.dims_tuple(),
                            produced: inputs[0].tensor.dims_tuple(),
                        });
                    }
                    inputs[0].tensor.dims_tuple()
                }
            };
        }
        Ok(dims)
    }

    /// The input dimensions the graph expects: every source node (no incoming
    /// edges) must agree on them.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::SourceMismatch`] when sources disagree, or
    /// [`GraphError::Empty`] when the graph has no nodes.
    pub fn input_dims(&self) -> Result<(usize, usize, usize, usize), GraphError> {
        let mut expected: Option<(usize, usize, usize, usize)> = None;
        for (id, node) in self.nodes.iter().enumerate() {
            if !self.inputs_of(id).is_empty() {
                continue;
            }
            let dims = match &node.op {
                OpKind::Conv { shape } => shape.input_dims(),
                &OpKind::MatMul { n, k, .. } => (n, k, 1, 1),
                // Pool and elementwise sources would read the graph input
                // directly; their dimensionality cannot be derived, so
                // forbid them.
                OpKind::Pool { .. } | OpKind::Relu | OpKind::Add => {
                    return Err(GraphError::BadArity {
                        node: node.name.clone(),
                        expected: node.op.arity(),
                        got: 0,
                    })
                }
            };
            match expected {
                None => expected = Some(dims),
                Some(prev) if prev != dims => {
                    return Err(GraphError::SourceMismatch { a: prev, b: dims })
                }
                Some(_) => {}
            }
        }
        expected.ok_or(GraphError::Empty)
    }

    /// Full structural validation: edges reference real nodes, the graph is
    /// acyclic and non-empty, every op has its arity satisfied, every edge's
    /// tensor matches both its producer's output and its consumer's
    /// expectation, and all sources agree on the graph input dimensions.
    ///
    /// # Errors
    ///
    /// Returns the first violation found.
    pub fn validate(&self) -> Result<(), GraphError> {
        self.input_dims()?;
        self.node_output_dims().map(|_| ())
    }

    /// A stable 64-bit fingerprint of the whole graph — node names, ops,
    /// shapes, edges, and tensors — using the same process-stable FNV-1a as
    /// [`ConvShape::fingerprint`] and `MachineModel::fingerprint`, so
    /// persisted graph-plan caches can key on it.
    pub fn fingerprint(&self) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf29ce484222325;
        const FNV_PRIME: u64 = 0x100000001b3;
        let mut h = FNV_OFFSET;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= b as u64;
                h = h.wrapping_mul(FNV_PRIME);
            }
        };
        eat(self.name.as_bytes());
        eat(&(self.nodes.len() as u64).to_le_bytes());
        for node in &self.nodes {
            eat(node.name.as_bytes());
            match &node.op {
                OpKind::Conv { shape } => {
                    eat(&[0u8]);
                    eat(&shape.fingerprint().to_le_bytes());
                }
                OpKind::Relu => eat(&[1u8]),
                OpKind::Add => eat(&[2u8]),
                &OpKind::MatMul { m, n, k } => {
                    eat(&[3u8]);
                    for v in [m, n, k] {
                        eat(&(v as u64).to_le_bytes());
                    }
                }
                &OpKind::Pool { kind, window, stride } => {
                    eat(&[4u8]);
                    eat(&[match kind {
                        PoolKind::Max => 0u8,
                        PoolKind::Avg => 1u8,
                    }]);
                    for v in [window, stride] {
                        eat(&(v as u64).to_le_bytes());
                    }
                }
            }
        }
        eat(&(self.edges.len() as u64).to_le_bytes());
        for e in &self.edges {
            for v in [e.from as u64, e.to as u64] {
                eat(&v.to_le_bytes());
            }
            for d in e.tensor.dims {
                eat(&(d as u64).to_le_bytes());
            }
            // Tag bytes are append-only: pre-layout-axis graphs only ever
            // contain NCHW/NHWC edges, so their fingerprints are unchanged.
            match e.tensor.layout {
                TensorLayout::Nchw => eat(&[0u8]),
                TensorLayout::Nhwc => eat(&[1u8]),
                TensorLayout::Nchwc { c_block } => {
                    eat(&[2u8]);
                    eat(&(c_block as u64).to_le_bytes());
                }
            }
        }
        h
    }
}

impl std::fmt::Display for Graph {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} ({} nodes, {} edges)", self.name, self.nodes.len(), self.edges.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain_graph() -> Graph {
        let dw = ConvShape::depthwise(8, 12, 3, 1);
        let pw = ConvShape::new(1, 4, 8, 1, 1, dw.h, dw.w, 1).unwrap();
        let mut g = Graph::new("test-chain");
        let a = g.add_conv("dw", dw);
        let r = g.add_node("relu", OpKind::Relu);
        let b = g.add_conv("pw", pw);
        g.connect(a, r, TensorInfo::nchw(dw.output_dims()));
        g.connect(r, b, TensorInfo::nchw(dw.output_dims()));
        g
    }

    #[test]
    fn chain_validates_and_orders() {
        let g = chain_graph();
        g.validate().unwrap();
        let order = g.topo_order().unwrap();
        assert_eq!(order.len(), 3);
        let pos = |id: NodeId| order.iter().position(|&x| x == id).unwrap();
        assert!(pos(0) < pos(1) && pos(1) < pos(2));
        let dims = g.node_output_dims().unwrap();
        assert_eq!(dims[2], (1, 4, 10, 10));
        assert_eq!(g.input_dims().unwrap(), (1, 8, 12, 12));
        assert_eq!(g.conv_nodes(), vec![0, 2]);
    }

    #[test]
    fn cycles_and_dangling_edges_are_rejected() {
        let mut g = chain_graph();
        g.connect(2, 0, TensorInfo::nchw((1, 4, 10, 10)));
        assert!(matches!(g.topo_order(), Err(GraphError::Cyclic)));

        let mut g = chain_graph();
        g.connect(0, 99, TensorInfo::nchw((1, 8, 10, 10)));
        assert!(matches!(g.topo_order(), Err(GraphError::DanglingEdge { .. })));

        let mut g = chain_graph();
        g.connect(1, 1, TensorInfo::nchw((1, 8, 10, 10)));
        assert!(matches!(g.topo_order(), Err(GraphError::Cyclic)));
    }

    #[test]
    fn arity_and_shape_mismatches_are_rejected() {
        // Conv with two inputs.
        let dw = ConvShape::depthwise(8, 12, 3, 1);
        let mut g = Graph::new("bad-arity");
        let a = g.add_conv("a", dw);
        let b = g.add_conv("b", dw);
        let pw = ConvShape::new(1, 4, 8, 1, 1, dw.h, dw.w, 1).unwrap();
        let c = g.add_conv("c", pw);
        g.connect(a, c, TensorInfo::nchw(dw.output_dims()));
        g.connect(b, c, TensorInfo::nchw(dw.output_dims()));
        assert!(matches!(g.validate(), Err(GraphError::BadArity { .. })));

        // Edge whose tensor disagrees with the producer's output.
        let mut g = Graph::new("bad-tensor");
        let a = g.add_conv("a", dw);
        let c = g.add_conv("c", pw);
        g.connect(a, c, TensorInfo::nchw((1, 8, 9, 9)));
        assert!(matches!(g.validate(), Err(GraphError::EdgeTensorMismatch { .. })));

        // Edge consistent with the producer but not with the consumer conv.
        let mut g = Graph::new("bad-conv-input");
        let a = g.add_conv("a", dw);
        let wrong = ConvShape::new(1, 4, 8, 1, 1, 4, 4, 1).unwrap();
        let c = g.add_conv("c", wrong);
        g.connect(a, c, TensorInfo::nchw(dw.output_dims()));
        assert!(matches!(g.validate(), Err(GraphError::ConvInputMismatch { .. })));

        // A relu source has no derivable input.
        let mut g = Graph::new("relu-source");
        g.add_node("r", OpKind::Relu);
        assert!(matches!(g.validate(), Err(GraphError::BadArity { .. })));

        // Empty graph.
        assert!(matches!(Graph::new("empty").validate(), Err(GraphError::Empty)));
    }

    #[test]
    fn add_requires_equal_inputs() {
        let s = ConvShape::new(1, 4, 4, 1, 1, 6, 6, 1).unwrap();
        let t = ConvShape::new(1, 4, 4, 1, 1, 5, 5, 1).unwrap();
        let mut g = Graph::new("bad-add");
        let a = g.add_conv("a", s);
        let b = g.add_conv("b", t);
        let add = g.add_node("add", OpKind::Add);
        g.connect(a, add, TensorInfo::nchw(s.output_dims()));
        g.connect(b, add, TensorInfo::nchw(t.output_dims()));
        // Sources disagree on the graph input first.
        assert!(matches!(g.validate(), Err(GraphError::SourceMismatch { .. })));
        assert!(matches!(g.node_output_dims(), Err(GraphError::EdgeTensorMismatch { .. })));
    }

    #[test]
    fn fingerprints_are_stable_and_distinguish_structure() {
        let g = chain_graph();
        assert_eq!(g.fingerprint(), chain_graph().fingerprint());
        let mut renamed = chain_graph();
        renamed.name = "other".into();
        assert_ne!(g.fingerprint(), renamed.fingerprint());
        let mut reshaped = chain_graph();
        if let OpKind::Conv { shape } = &mut reshaped.nodes[2].op {
            shape.k += 1;
        }
        assert_ne!(g.fingerprint(), reshaped.fingerprint());
        let mut rewired = chain_graph();
        rewired.edges[1].to = 0;
        assert_ne!(g.fingerprint(), rewired.fingerprint());
    }

    #[test]
    fn graph_round_trips_through_json() {
        let g = chain_graph();
        let text = serde_json::to_string(&g).unwrap();
        let back: Graph = serde_json::from_str(&text).unwrap();
        assert_eq!(g, back);
        assert_eq!(g.fingerprint(), back.fingerprint());
    }
}
