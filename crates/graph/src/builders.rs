//! Builders for the benchmark-suite network blocks and whole networks.
//!
//! Besides the block families below, [`resnet50`] and [`mobilenet_v2_full`]
//! assemble complete classification networks — conv body, explicit pooling
//! nodes, and the fully-connected classifier as a matmul — so a single
//! `PlanGraph` request exercises every schedulable [`crate::ir::OpKind`].
//!
//! Two block families ground the graph planner in the existing suites:
//!
//! * [`mobilenet_v2_block`] — the inverted-residual block around one of the
//!   MobileNetV2 depthwise stages `V1` ... `V9`: a pointwise expansion, the
//!   depthwise stage itself, and a pointwise (linear) projection, with ReLUs
//!   after the expansion and the depthwise stage. The depthwise → pointwise
//!   tail is exactly the pattern the fused executor in `conv_exec` runs.
//! * [`resnet_residual_block`] — a ResNet-style residual block around one of
//!   the stride-1 ResNet-18 layers: two 3x3 convolutions on the main path
//!   and a projection convolution on the skip path, joined by an elementwise
//!   add. Because the workspace's convolutions are "valid" (unpadded), the
//!   skip projection uses a 5x5 kernel so both paths land on the same
//!   spatial extent.

use conv_spec::{benchmarks, ConvShape, PoolKind};

use crate::ir::{Graph, NodeId, OpKind, TensorInfo};
use crate::GraphError;

/// The MobileNetV2 inverted-residual block whose depthwise stage is an
/// arbitrary depthwise shape. The expansion factor is 6 when the expanded
/// channel count divides by 6 (the network's usual factor), otherwise 1
/// (the first block).
///
/// # Panics
///
/// Panics if `dw` is not a depthwise convolution.
pub fn mobilenet_v2_block_from(dw: &ConvShape, name: impl Into<String>) -> Graph {
    assert!(dw.is_depthwise(), "{dw} is not depthwise");
    let expanded = dw.k;
    let cin = if expanded.is_multiple_of(6) { expanded / 6 } else { expanded };
    let cout = cin;
    let pw_expand = ConvShape::new(dw.n, expanded, cin, 1, 1, dw.input_h(), dw.input_w(), 1)
        .expect("valid expansion shape");
    let pw_project =
        ConvShape::new(dw.n, cout, expanded, 1, 1, dw.h, dw.w, 1).expect("valid projection shape");

    let mut g = Graph::new(name);
    let expand = g.add_conv("expand", pw_expand);
    let relu1 = g.add_node("relu1", OpKind::Relu);
    let dw_id = g.add_conv("dw", *dw);
    let relu2 = g.add_node("relu2", OpKind::Relu);
    let project = g.add_conv("project", pw_project);
    let expanded_dims = TensorInfo::nchw(pw_expand.output_dims());
    let dw_out = TensorInfo::nchw(dw.output_dims());
    g.connect(expand, relu1, expanded_dims);
    g.connect(relu1, dw_id, expanded_dims);
    g.connect(dw_id, relu2, dw_out);
    g.connect(relu2, project, dw_out);
    g
}

/// The inverted-residual block around MobileNetV2 depthwise stage `V{stage}`
/// (`stage` in `1..=9`, the operators of `benchmarks::mobilenet_v2`).
///
/// # Errors
///
/// Returns [`GraphError::UnknownBlock`] for a stage outside `1..=9`.
pub fn mobilenet_v2_block(stage: usize) -> Result<Graph, GraphError> {
    let ops = benchmarks::mobilenet_v2();
    if stage == 0 || stage > ops.len() {
        return Err(GraphError::UnknownBlock(format!(
            "mbv2 stage {stage} (have 1..={})",
            ops.len()
        )));
    }
    Ok(mobilenet_v2_block_from(&ops[stage - 1].shape, format!("mbv2-block{stage}")))
}

/// A ResNet-style residual block whose first main-path convolution is
/// `conv1` (any dense 3x3 stride-1 shape): main path `conv1 → relu → conv2`
/// (same channel count), skip path a 5x5 projection landing on conv2's
/// output extent, joined by `Add` and a final ReLU.
///
/// # Panics
///
/// Panics if `conv1` is not a dense stride-1 3x3 convolution or its output
/// is too small for the second convolution.
pub fn resnet_residual_block_from(conv1: &ConvShape, name: impl Into<String>) -> Graph {
    assert!(
        conv1.r == 3
            && conv1.s == 3
            && conv1.stride == 1
            && conv1.groups == 1
            && conv1.dilation == 1,
        "{conv1} is not a dense stride-1 3x3 convolution"
    );
    assert!(conv1.h > 2 && conv1.w > 2, "{conv1} output too small for a second 3x3");
    let conv2 = ConvShape::new(conv1.n, conv1.k, conv1.k, 3, 3, conv1.h - 2, conv1.w - 2, 1)
        .expect("valid second conv");
    // Two valid 3x3 convs shrink the spatial extent by 4; a single valid 5x5
    // projection shrinks by the same 4, so the skip path lands on conv2's
    // output extent while reading the same graph input.
    let skip = ConvShape::new(conv1.n, conv1.k, conv1.c, 5, 5, conv1.h - 2, conv1.w - 2, 1)
        .expect("valid skip projection");
    debug_assert_eq!(skip.input_dims(), conv1.input_dims());

    let mut g = Graph::new(name);
    let c1 = g.add_conv("conv1", *conv1);
    let relu1 = g.add_node("relu1", OpKind::Relu);
    let c2 = g.add_conv("conv2", conv2);
    let sk = g.add_conv("skip", skip);
    let add = g.add_node("add", OpKind::Add);
    let relu2 = g.add_node("relu2", OpKind::Relu);
    let mid = TensorInfo::nchw(conv1.output_dims());
    let out = TensorInfo::nchw(conv2.output_dims());
    g.connect(c1, relu1, mid);
    g.connect(relu1, c2, mid);
    g.connect(c2, add, out);
    g.connect(sk, add, out);
    g.connect(add, relu2, out);
    g
}

/// The residual block around a stride-1 ResNet-18 Table-1 layer (`"R2"`,
/// `"R6"`, `"R8"`, `"R9"`, or `"R12"`).
///
/// # Errors
///
/// Returns [`GraphError::UnknownBlock`] for unknown or strided layers.
pub fn resnet_residual_block(layer: &str) -> Result<Graph, GraphError> {
    let op = benchmarks::by_name(layer)
        .filter(|op| op.suite == conv_spec::BenchmarkSuite::ResNet18)
        .ok_or_else(|| GraphError::UnknownBlock(format!("ResNet layer {layer}")))?;
    let s = op.shape;
    if s.stride != 1 || s.r != 3 {
        return Err(GraphError::UnknownBlock(format!(
            "{layer} is not a stride-1 3x3 ResNet layer"
        )));
    }
    Ok(resnet_residual_block_from(&s, format!("resnet-block-{}", op.name.to_lowercase())))
}

/// Tracks the frontier of a network under construction: the last node id and
/// the tensor it emits.
struct Frontier {
    node: NodeId,
    dims: (usize, usize, usize, usize),
}

impl Frontier {
    fn tensor(&self) -> TensorInfo {
        TensorInfo::nchw(self.dims)
    }
}

/// Append `conv` + ReLU to the frontier.
fn push_conv_relu(g: &mut Graph, f: &mut Frontier, name: &str, shape: ConvShape) {
    debug_assert_eq!(shape.input_dims(), f.dims, "{name}: frontier mismatch");
    let c = g.add_conv(name, shape);
    g.connect(f.node, c, f.tensor());
    let r = g.add_node(format!("{name}.relu"), OpKind::Relu);
    *f = Frontier { node: c, dims: shape.output_dims() };
    g.connect(c, r, f.tensor());
    f.node = r;
}

/// Append a pooling node to the frontier.
fn push_pool(
    g: &mut Graph,
    f: &mut Frontier,
    name: &str,
    kind: PoolKind,
    window: usize,
    stride: usize,
) {
    let p = g.add_pool(name, kind, window, stride);
    g.connect(f.node, p, f.tensor());
    let (n, c, h, w) = f.dims;
    *f = Frontier { node: p, dims: (n, c, (h - window) / stride + 1, (w - window) / stride + 1) };
}

/// A ResNet-50-style bottleneck block on the frontier: `1x1 reduce → relu →
/// 3x3 → relu → 1x1 expand` on the main path, a 3x3 projection on the skip
/// path (valid convolutions shrink the extent by 2, so an identity skip is
/// impossible and every block projects), joined by `Add` + ReLU.
fn push_bottleneck(g: &mut Graph, f: &mut Frontier, name: &str, mid: usize, out: usize) {
    let (n, cin, h, w) = f.dims;
    let input = f.tensor();
    let entry = f.node;
    let reduce = ConvShape::new(n, mid, cin, 1, 1, h, w, 1).expect("bottleneck reduce");
    let middle = ConvShape::new(n, mid, mid, 3, 3, h - 2, w - 2, 1).expect("bottleneck 3x3");
    let expand = ConvShape::new(n, out, mid, 1, 1, h - 2, w - 2, 1).expect("bottleneck expand");
    let skip = ConvShape::new(n, out, cin, 3, 3, h - 2, w - 2, 1).expect("bottleneck skip");

    push_conv_relu(g, f, &format!("{name}.reduce"), reduce);
    push_conv_relu(g, f, &format!("{name}.conv3"), middle);
    let c3 = g.add_conv(format!("{name}.expand"), expand);
    g.connect(f.node, c3, f.tensor());
    let sk = g.add_conv(format!("{name}.skip"), skip);
    g.connect(entry, sk, input);
    let add = g.add_node(format!("{name}.add"), OpKind::Add);
    let out_t = TensorInfo::nchw(expand.output_dims());
    g.connect(c3, add, out_t);
    g.connect(sk, add, out_t);
    let relu = g.add_node(format!("{name}.relu"), OpKind::Relu);
    g.connect(add, relu, out_t);
    *f = Frontier { node: relu, dims: expand.output_dims() };
}

/// The whole ResNet-50 as one graph: a 7x7 stride-2 stem with max pooling,
/// four stages of `[3, 4, 6, 3]` bottleneck blocks separated by 2x2
/// non-overlapping max pools (valid convolutions make in-block striding
/// awkward, so downsampling is explicit), a global average pool, and the
/// 1000-way fully-connected classifier as a matmul node — conv, pool, and
/// matmul all plan through the same spec pipeline.
pub fn resnet50(name: impl Into<String>) -> Graph {
    let mut g = Graph::new(name);
    // Extents chosen so every valid conv / pool divides exactly; see the
    // frontier assertions. 541 plays the role of the usual 224 input.
    let stem = ConvShape::new(1, 64, 3, 7, 7, 268, 268, 2).expect("stem");
    let src = g.add_conv("stem", stem);
    let relu = g.add_node("stem.relu", OpKind::Relu);
    g.connect(src, relu, TensorInfo::nchw(stem.output_dims()));
    let mut f = Frontier { node: relu, dims: stem.output_dims() };
    push_pool(&mut g, &mut f, "stem.pool", PoolKind::Max, 2, 2);

    let stages: [(usize, usize, usize); 4] =
        [(3, 64, 256), (4, 128, 512), (6, 256, 1024), (3, 512, 2048)];
    for (si, (blocks, mid, out)) in stages.into_iter().enumerate() {
        for b in 0..blocks {
            push_bottleneck(&mut g, &mut f, &format!("s{}b{}", si + 1, b + 1), mid, out);
        }
        if si + 1 < stages.len() {
            push_pool(&mut g, &mut f, &format!("s{}.down", si + 1), PoolKind::Max, 2, 2);
        }
    }

    // Head: global average pool to 1x1, then the classifier matmul.
    let (_, channels, h, _) = f.dims;
    push_pool(&mut g, &mut f, "gap", PoolKind::Avg, h, 1);
    let fc = g.add_matmul("fc", 1000, 1, channels);
    g.connect(f.node, fc, f.tensor());
    g
}

/// The whole MobileNetV2 as one graph: a 3x3 stride-2 stem, the seven
/// inverted-residual groups (expansion → depthwise → linear projection, with
/// the canonical widths and repeat counts; valid convolutions rule out
/// identity residuals, so blocks chain linearly), the 1x1 head convolution,
/// a global average pool, and the 1000-way classifier matmul.
pub fn mobilenet_v2_full(name: impl Into<String>) -> Graph {
    let mut g = Graph::new(name);
    let stem = ConvShape::new(1, 32, 3, 3, 3, 277, 277, 2).expect("mbv2 stem");
    let src = g.add_conv("stem", stem);
    let relu = g.add_node("stem.relu", OpKind::Relu);
    g.connect(src, relu, TensorInfo::nchw(stem.output_dims()));
    let mut f = Frontier { node: relu, dims: stem.output_dims() };

    // (expansion factor, output channels, repeats, first-block dw stride).
    let groups: [(usize, usize, usize, usize); 7] = [
        (1, 16, 1, 1),
        (6, 24, 2, 2),
        (6, 32, 3, 2),
        (6, 64, 4, 2),
        (6, 96, 3, 1),
        (6, 160, 3, 2),
        (6, 320, 1, 1),
    ];
    for (gi, (t, cout, repeats, first_stride)) in groups.into_iter().enumerate() {
        for b in 0..repeats {
            let stride = if b == 0 { first_stride } else { 1 };
            let name = format!("g{}b{}", gi + 1, b + 1);
            let (n, cin, h, w) = f.dims;
            let expanded = cin * t;
            let expand = ConvShape::new(n, expanded, cin, 1, 1, h, w, 1).expect("mbv2 expand");
            let oh = (h - 3) / stride + 1;
            let ow = (w - 3) / stride + 1;
            let dw = ConvShape::new(n, expanded, expanded, 3, 3, oh, ow, stride)
                .and_then(|s| s.with_groups(expanded))
                .expect("mbv2 dw");
            let project = ConvShape::new(n, cout, expanded, 1, 1, oh, ow, 1).expect("mbv2 project");
            push_conv_relu(&mut g, &mut f, &format!("{name}.expand"), expand);
            push_conv_relu(&mut g, &mut f, &format!("{name}.dw"), dw);
            let pj = g.add_conv(format!("{name}.project"), project);
            g.connect(f.node, pj, f.tensor());
            f = Frontier { node: pj, dims: project.output_dims() };
        }
    }

    // Head: 1x1 conv to 1280, global average pool, classifier matmul.
    let (n, cin, h, w) = f.dims;
    let head = ConvShape::new(n, 1280, cin, 1, 1, h, w, 1).expect("mbv2 head");
    push_conv_relu(&mut g, &mut f, "head", head);
    push_pool(&mut g, &mut f, "gap", PoolKind::Avg, h, 1);
    let fc = g.add_matmul("fc", 1000, 1, 1280);
    g.connect(f.node, fc, f.tensor());
    g
}

/// Resolve a named block: `"mbv2-block3"` / `"mbv2:3"` / `"v2_block_3"`
/// (MobileNetV2 inverted-residual stage 3) or `"resnet-r2"` / `"resnet:R2"`
/// (residual block around ResNet layer R2). Case, `-`, `_`, `:` and spaces
/// are ignored.
///
/// # Errors
///
/// Returns [`GraphError::UnknownBlock`] when the name matches no block.
pub fn by_name(name: &str) -> Result<Graph, GraphError> {
    let norm: String = name
        .trim()
        .to_ascii_lowercase()
        .chars()
        .filter(|c| !['-', '_', ':', ' '].contains(c))
        .collect();
    if norm == "resnet50" {
        return Ok(resnet50("resnet50"));
    }
    if norm == "mbv2full" || norm == "mobilenetv2" || norm == "mbv2net" {
        return Ok(mobilenet_v2_full("mobilenet-v2"));
    }
    if let Some(rest) = norm
        .strip_prefix("mbv2block")
        .or_else(|| norm.strip_prefix("v2block"))
        .or_else(|| norm.strip_prefix("mbv2"))
        .or_else(|| norm.strip_prefix("v2"))
    {
        let stage: usize = rest
            .parse()
            .map_err(|_| GraphError::UnknownBlock(format!("bad MobileNetV2 stage in `{name}`")))?;
        return mobilenet_v2_block(stage);
    }
    if let Some(rest) = norm.strip_prefix("resnetr").or_else(|| norm.strip_prefix("resnetblockr")) {
        return resnet_residual_block(&format!("R{rest}"));
    }
    Err(GraphError::UnknownBlock(format!(
        "`{name}` (try \"mbv2-block1\"..\"mbv2-block9\" or \"resnet-r2\")"
    )))
}

#[cfg(test)]
mod tests {
    use super::*;
    use conv_spec::LoopIndex;

    #[test]
    fn every_mobilenet_v2_block_validates() {
        for stage in 1..=9 {
            let g = mobilenet_v2_block(stage).unwrap();
            g.validate().unwrap_or_else(|e| panic!("stage {stage}: {e}"));
            assert_eq!(g.conv_nodes().len(), 3);
            // The depthwise stage is the V-suite shape.
            let dw = g.nodes[g.conv_nodes()[1]].op.conv_shape().unwrap();
            assert!(dw.is_depthwise());
            assert_eq!(*dw, benchmarks::mobilenet_v2()[stage - 1].shape);
            // Expansion factor 6 for all stages whose width divides by 6.
            let expand = g.nodes[g.conv_nodes()[0]].op.conv_shape().unwrap();
            if dw.k.is_multiple_of(6) {
                assert_eq!(expand.c * 6, dw.k, "stage {stage}");
            }
        }
        assert!(mobilenet_v2_block(0).is_err());
        assert!(mobilenet_v2_block(10).is_err());
    }

    #[test]
    fn mobilenet_block_chains_expand_dw_project() {
        let g = mobilenet_v2_block(5).unwrap();
        let dims = g.node_output_dims().unwrap();
        let convs = g.conv_nodes();
        let dw = g.nodes[convs[1]].op.conv_shape().unwrap();
        // The expansion feeds the depthwise input extent exactly.
        assert_eq!(dims[convs[0]], dw.input_dims());
        // The projection consumes the depthwise output exactly.
        let project = g.nodes[convs[2]].op.conv_shape().unwrap();
        assert_eq!(project.input_dims(), dw.output_dims());
        assert_eq!(project.extent(LoopIndex::R), 1);
    }

    #[test]
    fn resnet_blocks_validate_and_balance_paths() {
        for layer in ["R2", "R6", "R8", "R9", "R12"] {
            let g = resnet_residual_block(layer).unwrap();
            g.validate().unwrap_or_else(|e| panic!("{layer}: {e}"));
            assert_eq!(g.conv_nodes().len(), 3);
            // Exactly one Add joining two equal tensors, checked by validate.
            let adds = g.nodes.iter().filter(|n| n.op == OpKind::Add).count();
            assert_eq!(adds, 1);
        }
        assert!(resnet_residual_block("R1").is_err()); // strided
        assert!(resnet_residual_block("R3").is_err()); // pointwise
        assert!(resnet_residual_block("Y0").is_err()); // wrong suite
    }

    #[test]
    fn scaled_blocks_also_validate() {
        // The builders keep working on scaled-down shapes (used by fast
        // service tests with the tiny machine).
        let dw = ConvShape::depthwise(12, 14, 3, 1);
        let g = mobilenet_v2_block_from(&dw, "tiny-block");
        g.validate().unwrap();
        let small = ConvShape::new(1, 8, 4, 3, 3, 10, 10, 1).unwrap();
        resnet_residual_block_from(&small, "tiny-res").validate().unwrap();
    }

    #[test]
    fn resnet50_validates_with_pool_and_matmul_head() {
        let g = resnet50("resnet50");
        g.validate().unwrap();
        assert!(g.nodes.len() > 50, "{} nodes", g.nodes.len());
        assert_eq!(g.conv_nodes().len(), 1 + 16 * 4);
        let pools = g.nodes.iter().filter(|n| matches!(n.op, OpKind::Pool { .. })).count();
        assert_eq!(pools, 5); // stem + 3 stage downsamples + global avg
        let matmuls = g.nodes.iter().filter(|n| matches!(n.op, OpKind::MatMul { .. })).count();
        assert_eq!(matmuls, 1);
        // The classifier consumes the pooled (1, 2048, 1, 1) feature vector.
        let dims = g.node_output_dims().unwrap();
        let fc = g.nodes.iter().position(|n| n.name == "fc").unwrap();
        assert_eq!(dims[fc], (1, 1000, 1, 1));
        assert_eq!(g.schedulable_nodes().len(), 1 + 16 * 4 + 5 + 1);
    }

    #[test]
    fn mobilenet_v2_full_validates_with_pool_and_matmul_head() {
        let g = mobilenet_v2_full("mobilenet-v2");
        g.validate().unwrap();
        assert!(g.nodes.len() > 50, "{} nodes", g.nodes.len());
        // stem + 17 blocks x 3 convs + head conv.
        assert_eq!(g.conv_nodes().len(), 1 + 17 * 3 + 1);
        let dims = g.node_output_dims().unwrap();
        let fc = g.nodes.iter().position(|n| n.name == "fc").unwrap();
        assert_eq!(dims[fc], (1, 1000, 1, 1));
        // Every depthwise stage really is depthwise.
        for node in &g.nodes {
            if node.name.ends_with(".dw") {
                assert!(node.op.conv_shape().unwrap().is_depthwise(), "{}", node.name);
            }
        }
    }

    #[test]
    fn by_name_resolves_spelling_variants() {
        assert_eq!(by_name("mbv2-block3").unwrap().name, "mbv2-block3");
        assert_eq!(by_name("MBV2:3").unwrap().name, "mbv2-block3");
        assert_eq!(
            by_name("V2_Block_5").unwrap().fingerprint(),
            mobilenet_v2_block(5).unwrap().fingerprint()
        );
        assert_eq!(by_name("resnet-r2").unwrap().name, "resnet-block-r2");
        assert_eq!(by_name("RESNET:R12").unwrap().name, "resnet-block-r12");
        assert_eq!(by_name("resnet-50").unwrap().name, "resnet50");
        assert_eq!(by_name("mbv2-full").unwrap().name, "mobilenet-v2");
        assert_eq!(by_name("MobileNet_V2").unwrap().name, "mobilenet-v2");
        assert!(by_name("mbv2-block99").is_err());
        assert!(by_name("alexnet").is_err());
        assert!(by_name("mbv2-blockx").is_err());
    }
}
