//! Builders for the benchmark-suite network blocks.
//!
//! Two block families ground the graph planner in the existing suites:
//!
//! * [`mobilenet_v2_block`] — the inverted-residual block around one of the
//!   MobileNetV2 depthwise stages `V1` ... `V9`: a pointwise expansion, the
//!   depthwise stage itself, and a pointwise (linear) projection, with ReLUs
//!   after the expansion and the depthwise stage. The depthwise → pointwise
//!   tail is exactly the pattern the fused executor in `conv_exec` runs.
//! * [`resnet_residual_block`] — a ResNet-style residual block around one of
//!   the stride-1 ResNet-18 layers: two 3x3 convolutions on the main path
//!   and a projection convolution on the skip path, joined by an elementwise
//!   add. Because the workspace's convolutions are "valid" (unpadded), the
//!   skip projection uses a 5x5 kernel so both paths land on the same
//!   spatial extent.

use conv_spec::{benchmarks, ConvShape};

use crate::ir::{Graph, OpKind, TensorInfo};
use crate::GraphError;

/// The MobileNetV2 inverted-residual block whose depthwise stage is an
/// arbitrary depthwise shape. The expansion factor is 6 when the expanded
/// channel count divides by 6 (the network's usual factor), otherwise 1
/// (the first block).
///
/// # Panics
///
/// Panics if `dw` is not a depthwise convolution.
pub fn mobilenet_v2_block_from(dw: &ConvShape, name: impl Into<String>) -> Graph {
    assert!(dw.is_depthwise(), "{dw} is not depthwise");
    let expanded = dw.k;
    let cin = if expanded.is_multiple_of(6) { expanded / 6 } else { expanded };
    let cout = cin;
    let pw_expand = ConvShape::new(dw.n, expanded, cin, 1, 1, dw.input_h(), dw.input_w(), 1)
        .expect("valid expansion shape");
    let pw_project =
        ConvShape::new(dw.n, cout, expanded, 1, 1, dw.h, dw.w, 1).expect("valid projection shape");

    let mut g = Graph::new(name);
    let expand = g.add_conv("expand", pw_expand);
    let relu1 = g.add_node("relu1", OpKind::Relu);
    let dw_id = g.add_conv("dw", *dw);
    let relu2 = g.add_node("relu2", OpKind::Relu);
    let project = g.add_conv("project", pw_project);
    let expanded_dims = TensorInfo::nchw(pw_expand.output_dims());
    let dw_out = TensorInfo::nchw(dw.output_dims());
    g.connect(expand, relu1, expanded_dims);
    g.connect(relu1, dw_id, expanded_dims);
    g.connect(dw_id, relu2, dw_out);
    g.connect(relu2, project, dw_out);
    g
}

/// The inverted-residual block around MobileNetV2 depthwise stage `V{stage}`
/// (`stage` in `1..=9`, the operators of `benchmarks::mobilenet_v2`).
///
/// # Errors
///
/// Returns [`GraphError::UnknownBlock`] for a stage outside `1..=9`.
pub fn mobilenet_v2_block(stage: usize) -> Result<Graph, GraphError> {
    let ops = benchmarks::mobilenet_v2();
    if stage == 0 || stage > ops.len() {
        return Err(GraphError::UnknownBlock(format!(
            "mbv2 stage {stage} (have 1..={})",
            ops.len()
        )));
    }
    Ok(mobilenet_v2_block_from(&ops[stage - 1].shape, format!("mbv2-block{stage}")))
}

/// A ResNet-style residual block whose first main-path convolution is
/// `conv1` (any dense 3x3 stride-1 shape): main path `conv1 → relu → conv2`
/// (same channel count), skip path a 5x5 projection landing on conv2's
/// output extent, joined by `Add` and a final ReLU.
///
/// # Panics
///
/// Panics if `conv1` is not a dense stride-1 3x3 convolution or its output
/// is too small for the second convolution.
pub fn resnet_residual_block_from(conv1: &ConvShape, name: impl Into<String>) -> Graph {
    assert!(
        conv1.r == 3
            && conv1.s == 3
            && conv1.stride == 1
            && conv1.groups == 1
            && conv1.dilation == 1,
        "{conv1} is not a dense stride-1 3x3 convolution"
    );
    assert!(conv1.h > 2 && conv1.w > 2, "{conv1} output too small for a second 3x3");
    let conv2 = ConvShape::new(conv1.n, conv1.k, conv1.k, 3, 3, conv1.h - 2, conv1.w - 2, 1)
        .expect("valid second conv");
    // Two valid 3x3 convs shrink the spatial extent by 4; a single valid 5x5
    // projection shrinks by the same 4, so the skip path lands on conv2's
    // output extent while reading the same graph input.
    let skip = ConvShape::new(conv1.n, conv1.k, conv1.c, 5, 5, conv1.h - 2, conv1.w - 2, 1)
        .expect("valid skip projection");
    debug_assert_eq!(skip.input_dims(), conv1.input_dims());

    let mut g = Graph::new(name);
    let c1 = g.add_conv("conv1", *conv1);
    let relu1 = g.add_node("relu1", OpKind::Relu);
    let c2 = g.add_conv("conv2", conv2);
    let sk = g.add_conv("skip", skip);
    let add = g.add_node("add", OpKind::Add);
    let relu2 = g.add_node("relu2", OpKind::Relu);
    let mid = TensorInfo::nchw(conv1.output_dims());
    let out = TensorInfo::nchw(conv2.output_dims());
    g.connect(c1, relu1, mid);
    g.connect(relu1, c2, mid);
    g.connect(c2, add, out);
    g.connect(sk, add, out);
    g.connect(add, relu2, out);
    g
}

/// The residual block around a stride-1 ResNet-18 Table-1 layer (`"R2"`,
/// `"R6"`, `"R8"`, `"R9"`, or `"R12"`).
///
/// # Errors
///
/// Returns [`GraphError::UnknownBlock`] for unknown or strided layers.
pub fn resnet_residual_block(layer: &str) -> Result<Graph, GraphError> {
    let op = benchmarks::by_name(layer)
        .filter(|op| op.suite == conv_spec::BenchmarkSuite::ResNet18)
        .ok_or_else(|| GraphError::UnknownBlock(format!("ResNet layer {layer}")))?;
    let s = op.shape;
    if s.stride != 1 || s.r != 3 {
        return Err(GraphError::UnknownBlock(format!(
            "{layer} is not a stride-1 3x3 ResNet layer"
        )));
    }
    Ok(resnet_residual_block_from(&s, format!("resnet-block-{}", op.name.to_lowercase())))
}

/// Resolve a named block: `"mbv2-block3"` / `"mbv2:3"` / `"v2_block_3"`
/// (MobileNetV2 inverted-residual stage 3) or `"resnet-r2"` / `"resnet:R2"`
/// (residual block around ResNet layer R2). Case, `-`, `_`, `:` and spaces
/// are ignored.
///
/// # Errors
///
/// Returns [`GraphError::UnknownBlock`] when the name matches no block.
pub fn by_name(name: &str) -> Result<Graph, GraphError> {
    let norm: String = name
        .trim()
        .to_ascii_lowercase()
        .chars()
        .filter(|c| !['-', '_', ':', ' '].contains(c))
        .collect();
    if let Some(rest) = norm
        .strip_prefix("mbv2block")
        .or_else(|| norm.strip_prefix("v2block"))
        .or_else(|| norm.strip_prefix("mbv2"))
        .or_else(|| norm.strip_prefix("v2"))
    {
        let stage: usize = rest
            .parse()
            .map_err(|_| GraphError::UnknownBlock(format!("bad MobileNetV2 stage in `{name}`")))?;
        return mobilenet_v2_block(stage);
    }
    if let Some(rest) = norm.strip_prefix("resnetr").or_else(|| norm.strip_prefix("resnetblockr")) {
        return resnet_residual_block(&format!("R{rest}"));
    }
    Err(GraphError::UnknownBlock(format!(
        "`{name}` (try \"mbv2-block1\"..\"mbv2-block9\" or \"resnet-r2\")"
    )))
}

#[cfg(test)]
mod tests {
    use super::*;
    use conv_spec::LoopIndex;

    #[test]
    fn every_mobilenet_v2_block_validates() {
        for stage in 1..=9 {
            let g = mobilenet_v2_block(stage).unwrap();
            g.validate().unwrap_or_else(|e| panic!("stage {stage}: {e}"));
            assert_eq!(g.conv_nodes().len(), 3);
            // The depthwise stage is the V-suite shape.
            let dw = g.nodes[g.conv_nodes()[1]].op.conv_shape().unwrap();
            assert!(dw.is_depthwise());
            assert_eq!(*dw, benchmarks::mobilenet_v2()[stage - 1].shape);
            // Expansion factor 6 for all stages whose width divides by 6.
            let expand = g.nodes[g.conv_nodes()[0]].op.conv_shape().unwrap();
            if dw.k.is_multiple_of(6) {
                assert_eq!(expand.c * 6, dw.k, "stage {stage}");
            }
        }
        assert!(mobilenet_v2_block(0).is_err());
        assert!(mobilenet_v2_block(10).is_err());
    }

    #[test]
    fn mobilenet_block_chains_expand_dw_project() {
        let g = mobilenet_v2_block(5).unwrap();
        let dims = g.node_output_dims().unwrap();
        let convs = g.conv_nodes();
        let dw = g.nodes[convs[1]].op.conv_shape().unwrap();
        // The expansion feeds the depthwise input extent exactly.
        assert_eq!(dims[convs[0]], dw.input_dims());
        // The projection consumes the depthwise output exactly.
        let project = g.nodes[convs[2]].op.conv_shape().unwrap();
        assert_eq!(project.input_dims(), dw.output_dims());
        assert_eq!(project.extent(LoopIndex::R), 1);
    }

    #[test]
    fn resnet_blocks_validate_and_balance_paths() {
        for layer in ["R2", "R6", "R8", "R9", "R12"] {
            let g = resnet_residual_block(layer).unwrap();
            g.validate().unwrap_or_else(|e| panic!("{layer}: {e}"));
            assert_eq!(g.conv_nodes().len(), 3);
            // Exactly one Add joining two equal tensors, checked by validate.
            let adds = g.nodes.iter().filter(|n| n.op == OpKind::Add).count();
            assert_eq!(adds, 1);
        }
        assert!(resnet_residual_block("R1").is_err()); // strided
        assert!(resnet_residual_block("R3").is_err()); // pointwise
        assert!(resnet_residual_block("Y0").is_err()); // wrong suite
    }

    #[test]
    fn scaled_blocks_also_validate() {
        // The builders keep working on scaled-down shapes (used by fast
        // service tests with the tiny machine).
        let dw = ConvShape::depthwise(12, 14, 3, 1);
        let g = mobilenet_v2_block_from(&dw, "tiny-block");
        g.validate().unwrap();
        let small = ConvShape::new(1, 8, 4, 3, 3, 10, 10, 1).unwrap();
        resnet_residual_block_from(&small, "tiny-res").validate().unwrap();
    }

    #[test]
    fn by_name_resolves_spelling_variants() {
        assert_eq!(by_name("mbv2-block3").unwrap().name, "mbv2-block3");
        assert_eq!(by_name("MBV2:3").unwrap().name, "mbv2-block3");
        assert_eq!(
            by_name("V2_Block_5").unwrap().fingerprint(),
            mobilenet_v2_block(5).unwrap().fingerprint()
        );
        assert_eq!(by_name("resnet-r2").unwrap().name, "resnet-block-r2");
        assert_eq!(by_name("RESNET:R12").unwrap().name, "resnet-block-r12");
        assert!(by_name("mbv2-block99").is_err());
        assert!(by_name("alexnet").is_err());
        assert!(by_name("mbv2-blockx").is_err());
    }
}
