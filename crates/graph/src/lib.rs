//! `mopt_graph`: a dataflow IR for CNN graphs and a fusion-aware
//! cross-layer planner on top of the per-operator MOpt optimizer.
//!
//! The paper's analytical model (and `mopt_core`'s Algorithm 1) optimizes
//! each convolution in isolation, so the intermediate tensor between a
//! MobileNet depthwise stage and its pointwise successor is always spilled
//! to memory and re-read. This crate reasons *across* operators:
//!
//! * [`ir`] — a small JSON-(de)serializable dataflow IR: nodes are
//!   convolutions, matrix multiplications, and poolings (everything that
//!   lowers to a `conv_spec::Spec`) plus elementwise ReLU / residual add,
//!   edges carry the intermediate tensors (dimensions + layout), with full
//!   structural validation and a stable [`Graph::fingerprint`] for plan
//!   caching,
//! * [`builders`] — MobileNetV2 inverted-residual and ResNet-style residual
//!   blocks assembled from the existing benchmark suites (`V1` ... `V9`,
//!   `R2`/`R6`/...), plus whole-network [`builders::resnet50`] and
//!   [`builders::mobilenet_v2_full`] graphs with pooling and
//!   fully-connected (matmul) heads,
//! * [`planner`] — a dynamic program over each producer → consumer chain
//!   that picks fusion cut-points: per-operator schedules come from
//!   `MOptOptimizer` (through a caller-supplied provider, so the service
//!   layer interposes its cache and worker pool), and each candidate fusion
//!   is priced with `mopt_model::fused` — the intermediate's store + load at
//!   the DRAM boundary is deleted when the segment's joint working set fits
//!   the certified L3 capacity envelope.
//!
//! The fused depthwise → pointwise segments a plan selects are executable by
//! `conv_exec::FusedDwPw`, which consumes the intermediate band-by-band in
//! cache, bit-for-bit equal to the two convolutions run sequentially.
//!
//! # Example
//!
//! ```
//! use conv_spec::{ConvShape, MachineModel};
//! use mopt_core::{MOptOptimizer, OptimizerOptions};
//! use mopt_graph::{builders, GraphPlanner};
//!
//! // A scaled-down MobileNetV2 inverted-residual block.
//! let block = builders::mobilenet_v2_block_from(
//!     &ConvShape::depthwise(12, 14, 3, 1),
//!     "example-block",
//! );
//! block.validate()?;
//!
//! let machine = MachineModel::i7_9700k();
//! let options = OptimizerOptions { max_classes: 1, ..OptimizerOptions::fast() };
//! let planner = GraphPlanner::new(machine.clone());
//! let plan = planner.plan(&block, |spec| {
//!     MOptOptimizer::optimize_spec(spec, machine.clone(), options.clone())
//! })?;
//!
//! // The depthwise → pointwise tail fuses: the plan moves strictly less
//! // modeled DRAM traffic than planning every layer in isolation.
//! assert!(plan.fusions_taken >= 1);
//! assert!(plan.fused_volume < plan.unfused_volume);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

pub mod builders;
pub mod ir;
pub mod planner;

pub use ir::{Edge, Graph, Node, NodeId, OpKind, TensorInfo};
pub use planner::{GraphPlan, GraphPlanner, PlannedSegment, SegmentOp};

/// Errors produced by graph construction, validation, and planning.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// The graph has no nodes.
    Empty,
    /// The graph contains a cycle (or a self-edge).
    Cyclic,
    /// An edge references a node id that does not exist.
    DanglingEdge {
        /// Producer id of the offending edge.
        from: NodeId,
        /// Consumer id of the offending edge.
        to: NodeId,
    },
    /// A node has the wrong number of inputs for its operator.
    BadArity {
        /// The node's display name.
        node: String,
        /// Inputs the operator needs.
        expected: usize,
        /// Inputs the graph supplies.
        got: usize,
    },
    /// An edge's tensor does not match what its producer emits (or, for an
    /// `Add`, the two input tensors disagree).
    EdgeTensorMismatch {
        /// Producer node name.
        from: String,
        /// Consumer node name.
        to: String,
        /// Dimensions annotated on the edge.
        edge: (usize, usize, usize, usize),
        /// Dimensions the producer actually emits.
        produced: (usize, usize, usize, usize),
    },
    /// A convolution's incoming tensor does not match its shape's input.
    ConvInputMismatch {
        /// The conv node's display name.
        node: String,
        /// The input dimensions the shape implies.
        expected: (usize, usize, usize, usize),
        /// The dimensions the incoming edge carries.
        got: (usize, usize, usize, usize),
    },
    /// A pooling window/stride does not tile the incoming extents exactly.
    PoolGeometry {
        /// The pool node's display name.
        node: String,
        /// The incoming tensor dimensions.
        input: (usize, usize, usize, usize),
        /// The window extent.
        window: usize,
        /// The window stride.
        stride: usize,
    },
    /// Two source nodes expect different graph-input tensors.
    SourceMismatch {
        /// One source's expected input dimensions.
        a: (usize, usize, usize, usize),
        /// Another source's expected input dimensions.
        b: (usize, usize, usize, usize),
    },
    /// A named block does not exist.
    UnknownBlock(String),
}

impl std::fmt::Display for GraphError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GraphError::Empty => write!(f, "graph has no nodes"),
            GraphError::Cyclic => write!(f, "graph contains a cycle"),
            GraphError::DanglingEdge { from, to } => {
                write!(f, "edge {from} -> {to} references a missing node")
            }
            GraphError::BadArity { node, expected, got } => {
                write!(f, "node `{node}` needs {expected} input(s), has {got}")
            }
            GraphError::EdgeTensorMismatch { from, to, edge, produced } => write!(
                f,
                "edge `{from}` -> `{to}` carries {edge:?} but the producer emits {produced:?}"
            ),
            GraphError::ConvInputMismatch { node, expected, got } => {
                write!(f, "conv `{node}` expects input {expected:?} but receives {got:?}")
            }
            GraphError::PoolGeometry { node, input, window, stride } => write!(
                f,
                "pool `{node}` window {window} stride {stride} does not tile input {input:?}"
            ),
            GraphError::SourceMismatch { a, b } => {
                write!(f, "source nodes disagree on the graph input: {a:?} vs {b:?}")
            }
            GraphError::UnknownBlock(name) => write!(f, "unknown block {name}"),
        }
    }
}

impl std::error::Error for GraphError {}
