//! Tensor layouts and index linearization.
//!
//! The paper stores input and output tensors in `NCHW` layout and the kernel
//! in `KCRS` layout, and packs the kernel into a
//! `[K/VecLen, C, R, S, VecLen]` layout before the convolution so that the
//! output-channel dimension (which is vectorized) becomes stride-1 (Sec. 6,
//! "Packing"). This module provides those layouts and the address arithmetic
//! used by the executor and the cache simulator.

use serde::{Deserialize, Serialize};

use crate::shape::ConvShape;

/// Which of the three conv2d tensors an access refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum TensorKind {
    /// The input feature map `In[n][c][h_in][w_in]`.
    Input,
    /// The output feature map `Out[n][k][h][w]`.
    Output,
    /// The convolution kernel `Ker[k][c][r][s]`.
    Kernel,
}

impl TensorKind {
    /// All three tensors.
    pub const ALL: [TensorKind; 3] = [TensorKind::Input, TensorKind::Output, TensorKind::Kernel];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            TensorKind::Input => "In",
            TensorKind::Output => "Out",
            TensorKind::Kernel => "Ker",
        }
    }
}

impl std::fmt::Display for TensorKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Layout of a 4-D feature-map tensor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TensorLayout {
    /// Batch, channel, height, width — the layout the paper uses for `In`
    /// and `Out`.
    Nchw,
    /// Batch, height, width, channel (provided for layout experiments).
    Nhwc,
    /// Channel-blocked `[N][C/c_block][H][W][c_block]` (NCHWc). The channel
    /// dimension is split into blocks of `c_block` lanes that become
    /// stride-1, so a SIMD microkernel reading a fixed spatial position sees
    /// `c_block` contiguous channels. `C` is padded up to a multiple of
    /// `c_block`; padding lanes are zero.
    Nchwc {
        /// Channels per block (the stride-1 lane count).
        c_block: usize,
    },
}

impl TensorLayout {
    /// Linear offset of element `(n, c, h, w)` in a tensor with extents
    /// `(cn, cc, ch, cw)`.
    pub fn offset(
        self,
        (n, c, h, w): (usize, usize, usize, usize),
        dims: (usize, usize, usize, usize),
    ) -> usize {
        let (_dn, dc, dh, dw) = dims;
        match self {
            TensorLayout::Nchw => ((n * dc + c) * dh + h) * dw + w,
            TensorLayout::Nhwc => ((n * dh + h) * dw + w) * dc + c,
            TensorLayout::Nchwc { c_block } => {
                let blocks = dc.div_ceil(c_block);
                let (blk, lane) = (c / c_block, c % c_block);
                (((n * blocks + blk) * dh + h) * dw + w) * c_block + lane
            }
        }
    }

    /// Total number of elements for the given extents (blocked layouts pad
    /// the channel dimension up to a whole number of blocks).
    pub fn len(self, dims: (usize, usize, usize, usize)) -> usize {
        match self {
            TensorLayout::Nchw | TensorLayout::Nhwc => dims.0 * dims.1 * dims.2 * dims.3,
            TensorLayout::Nchwc { c_block } => {
                dims.0 * dims.1.div_ceil(c_block) * c_block * dims.2 * dims.3
            }
        }
    }

    /// Always false; kept for API symmetry with collection types.
    pub fn is_empty(self, dims: (usize, usize, usize, usize)) -> bool {
        self.len(dims) == 0
    }

    /// Number of stride-1 elements a unit step of the channel index stays
    /// within (1 for NCHW where channels are strided, `c_block` for NCHWc,
    /// the full channel extent for NHWC).
    pub fn channel_run(self, dc: usize) -> usize {
        match self {
            TensorLayout::Nchw => 1,
            TensorLayout::Nhwc => dc,
            TensorLayout::Nchwc { c_block } => c_block,
        }
    }
}

/// Layout of the 4-D kernel tensor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum KernelLayout {
    /// Output channel, input channel, kernel row, kernel column — the
    /// unpacked layout of Table 1's experiments.
    Kcrs,
    /// The packed `Ker[K/V][C/G][R][S][V]` layout of Sec. 6: output channels
    /// are blocked into stride-1 groups of `vec_len` lanes (padded with
    /// zeros) so the vectorized K dimension is contiguous.
    Packed {
        /// Output channels per packed group (the SIMD lane count).
        vec_len: usize,
    },
}

impl KernelLayout {
    /// Linear offset of `Ker[k][c][r][s]` for a problem `shape`; `c` is the
    /// group-relative reduction index (`0 <= c < shape.reduction_c()`), which
    /// for dense shapes is simply the input channel.
    pub fn offset(self, shape: &ConvShape, k: usize, c: usize, r: usize, s: usize) -> usize {
        match self {
            KernelLayout::Kcrs => ((k * shape.reduction_c() + c) * shape.r + r) * shape.s + s,
            KernelLayout::Packed { vec_len } => {
                PackedKernelLayout::new(shape, vec_len).offset(k, c, r, s)
            }
        }
    }

    /// Total number of kernel elements stored under this layout (packing
    /// pads `K` up to a multiple of `vec_len`).
    pub fn len(self, shape: &ConvShape) -> usize {
        match self {
            KernelLayout::Kcrs => shape.kernel_elems(),
            KernelLayout::Packed { vec_len } => PackedKernelLayout::new(shape, vec_len).len(),
        }
    }
}

/// Per-tensor layout assignment for one schedule: the layout axis searched
/// by the optimizer alongside tile sizes and the parallel dimension.
///
/// The default (`In`/`Out` in NCHW, `Ker` in KCRS) reproduces the paper's
/// fixed-layout model bit for bit; every serialized form omits nothing, but
/// deserialization treats a missing `layout` field as this default so
/// pre-layout snapshots, db pages, and wire fixtures keep parsing unchanged.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct LayoutConfig {
    /// Layout of the input feature map.
    pub input: TensorLayout,
    /// Layout of the output feature map.
    pub output: TensorLayout,
    /// Layout of the kernel tensor.
    pub kernel: KernelLayout,
}

impl Default for LayoutConfig {
    fn default() -> Self {
        LayoutConfig {
            input: TensorLayout::Nchw,
            output: TensorLayout::Nchw,
            kernel: KernelLayout::Kcrs,
        }
    }
}

impl LayoutConfig {
    /// The paper's fixed layouts: NCHW feature maps, KCRS kernel.
    pub fn paper_default() -> Self {
        Self::default()
    }

    /// Kernel packed for a SIMD width, feature maps untouched — the layout
    /// the packed-kernel executor (`TiledConv`) actually runs.
    pub fn packed_kernel(vec_len: usize) -> Self {
        LayoutConfig { kernel: KernelLayout::Packed { vec_len }, ..Self::default() }
    }

    /// Fully blocked: NCHWc feature maps and a packed kernel sharing one
    /// lane count.
    pub fn blocked(c_block: usize) -> Self {
        LayoutConfig {
            input: TensorLayout::Nchwc { c_block },
            output: TensorLayout::Nchwc { c_block },
            kernel: KernelLayout::Packed { vec_len: c_block },
        }
    }

    /// Whether every tensor is in the paper's default layout.
    pub fn is_default(&self) -> bool {
        *self == Self::default()
    }

    /// Short human-readable tag (`nchw+kcrs`, `nchw+packed8`,
    /// `nchwc8+packed8`) used by Explain output and benchmark reports.
    pub fn tag(&self) -> String {
        let fm = match self.input {
            TensorLayout::Nchw => "nchw".to_string(),
            TensorLayout::Nhwc => "nhwc".to_string(),
            TensorLayout::Nchwc { c_block } => format!("nchwc{c_block}"),
        };
        let ker = match self.kernel {
            KernelLayout::Kcrs => "kcrs".to_string(),
            KernelLayout::Packed { vec_len } => format!("packed{vec_len}"),
        };
        format!("{fm}+{ker}")
    }
}

/// The packed kernel layout `[K/VecLen][C][R][S][VecLen]` produced by the
/// packing pass before convolution (Sec. 6).
///
/// `K` is padded up to a multiple of `vec_len`; the padding lanes are zero so
/// the microkernel can run full vectors unconditionally.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PackedKernelLayout {
    /// Vector length (number of output channels per packed group).
    pub vec_len: usize,
    /// Number of packed groups: `ceil(K / vec_len)`.
    pub k_groups: usize,
    /// Input channels.
    pub c: usize,
    /// Kernel rows.
    pub r: usize,
    /// Kernel columns.
    pub s: usize,
}

impl PackedKernelLayout {
    /// Layout for a problem shape and SIMD vector length. The packed `c`
    /// dimension is the per-group reduction extent (`shape.reduction_c()`),
    /// matching the `Ker[K][C/groups][R][S]` kernel tensor.
    pub fn new(shape: &ConvShape, vec_len: usize) -> Self {
        PackedKernelLayout {
            vec_len,
            k_groups: shape.k.div_ceil(vec_len),
            c: shape.reduction_c(),
            r: shape.r,
            s: shape.s,
        }
    }

    /// Total number of elements of the packed buffer (including padding).
    pub fn len(&self) -> usize {
        self.k_groups * self.c * self.r * self.s * self.vec_len
    }

    /// Whether the packed buffer would be empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Linear offset of packed element for output channel `k`, input channel
    /// `c`, kernel position `(r, s)`.
    pub fn offset(&self, k: usize, c: usize, r: usize, s: usize) -> usize {
        let group = k / self.vec_len;
        let lane = k % self.vec_len;
        (((group * self.c + c) * self.r + r) * self.s + s) * self.vec_len + lane
    }

    /// Offset of the first lane of the group containing output channel `k`.
    pub fn group_base(&self, k: usize, c: usize, r: usize, s: usize) -> usize {
        let group = k / self.vec_len;
        (((group * self.c + c) * self.r + r) * self.s + s) * self.vec_len
    }
}

/// Global "virtual address space" used by the cache simulator: the three
/// tensors are laid out back to back so every element has a unique address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AddressMap {
    /// Base address (element index) of the input tensor.
    pub input_base: usize,
    /// Base address of the kernel tensor.
    pub kernel_base: usize,
    /// Base address of the output tensor.
    pub output_base: usize,
    /// One past the last address.
    pub total: usize,
    input_dims: (usize, usize, usize, usize),
    output_dims: (usize, usize, usize, usize),
    shape: ConvShape,
}

impl AddressMap {
    /// Build the address map for a problem shape with NCHW/KCRS layouts.
    pub fn new(shape: &ConvShape) -> Self {
        let input_dims = (shape.n, shape.c, shape.input_h(), shape.input_w());
        let output_dims = (shape.n, shape.k, shape.h, shape.w);
        let input_len = shape.input_elems();
        let kernel_len = shape.kernel_elems();
        let output_len = shape.output_elems();
        AddressMap {
            input_base: 0,
            kernel_base: input_len,
            output_base: input_len + kernel_len,
            total: input_len + kernel_len + output_len,
            input_dims,
            output_dims,
            shape: *shape,
        }
    }

    /// Address of `In[n][c][h_in][w_in]`.
    pub fn input(&self, n: usize, c: usize, h_in: usize, w_in: usize) -> usize {
        self.input_base + TensorLayout::Nchw.offset((n, c, h_in, w_in), self.input_dims)
    }

    /// Address of `Out[n][k][h][w]`.
    pub fn output(&self, n: usize, k: usize, h: usize, w: usize) -> usize {
        self.output_base + TensorLayout::Nchw.offset((n, k, h, w), self.output_dims)
    }

    /// Address of `Ker[k][c][r][s]`.
    pub fn kernel(&self, k: usize, c: usize, r: usize, s: usize) -> usize {
        self.kernel_base + KernelLayout::Kcrs.offset(&self.shape, k, c, r, s)
    }

    /// Which tensor an address belongs to.
    pub fn classify(&self, addr: usize) -> Option<TensorKind> {
        if addr < self.kernel_base {
            Some(TensorKind::Input)
        } else if addr < self.output_base {
            Some(TensorKind::Kernel)
        } else if addr < self.total {
            Some(TensorKind::Output)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shape::ConvShape;

    #[test]
    fn nchw_offsets_are_row_major() {
        let dims = (2, 3, 4, 5);
        assert_eq!(TensorLayout::Nchw.offset((0, 0, 0, 0), dims), 0);
        assert_eq!(TensorLayout::Nchw.offset((0, 0, 0, 1), dims), 1);
        assert_eq!(TensorLayout::Nchw.offset((0, 0, 1, 0), dims), 5);
        assert_eq!(TensorLayout::Nchw.offset((0, 1, 0, 0), dims), 20);
        assert_eq!(TensorLayout::Nchw.offset((1, 0, 0, 0), dims), 60);
        assert_eq!(TensorLayout::Nchw.len(dims), 120);
    }

    #[test]
    fn nhwc_offsets_make_channel_fastest() {
        let dims = (1, 3, 4, 5);
        assert_eq!(TensorLayout::Nhwc.offset((0, 0, 0, 0), dims), 0);
        assert_eq!(TensorLayout::Nhwc.offset((0, 1, 0, 0), dims), 1);
        assert_eq!(TensorLayout::Nhwc.offset((0, 0, 0, 1), dims), 3);
    }

    #[test]
    fn kcrs_offsets() {
        let shape = ConvShape::new(1, 4, 3, 3, 3, 8, 8, 1).unwrap();
        let l = KernelLayout::Kcrs;
        assert_eq!(l.offset(&shape, 0, 0, 0, 0), 0);
        assert_eq!(l.offset(&shape, 0, 0, 0, 1), 1);
        assert_eq!(l.offset(&shape, 0, 0, 1, 0), 3);
        assert_eq!(l.offset(&shape, 0, 1, 0, 0), 9);
        assert_eq!(l.offset(&shape, 1, 0, 0, 0), 27);
    }

    #[test]
    fn packed_kernel_layout_pads_k() {
        let shape = ConvShape::new(1, 10, 2, 3, 3, 8, 8, 1).unwrap();
        let p = PackedKernelLayout::new(&shape, 8);
        assert_eq!(p.k_groups, 2);
        assert_eq!(p.len(), 2 * 2 * 3 * 3 * 8);
        assert!(!p.is_empty());
        // Lane position is k % vec_len; groups are contiguous blocks.
        assert_eq!(p.offset(0, 0, 0, 0), 0);
        assert_eq!(p.offset(1, 0, 0, 0), 1);
        assert_eq!(p.offset(8, 0, 0, 0), 2 * 3 * 3 * 8);
        assert_eq!(p.group_base(9, 0, 0, 0), p.offset(8, 0, 0, 0));
    }

    #[test]
    fn packed_offsets_are_unique_and_in_bounds() {
        let shape = ConvShape::new(1, 6, 2, 2, 2, 4, 4, 1).unwrap();
        let p = PackedKernelLayout::new(&shape, 4);
        let mut seen = std::collections::HashSet::new();
        for k in 0..shape.k {
            for c in 0..shape.c {
                for r in 0..shape.r {
                    for s in 0..shape.s {
                        let off = p.offset(k, c, r, s);
                        assert!(off < p.len());
                        assert!(seen.insert(off), "duplicate offset {off}");
                    }
                }
            }
        }
    }

    #[test]
    fn nchwc_offsets_block_channels() {
        let l = TensorLayout::Nchwc { c_block: 4 };
        let dims = (2, 6, 3, 5);
        // Two blocks of 4 lanes (channel 6 pads to 8).
        assert_eq!(l.len(dims), 2 * 2 * 4 * 3 * 5);
        assert_eq!(l.offset((0, 0, 0, 0), dims), 0);
        // Channel steps within a block are stride-1...
        assert_eq!(l.offset((0, 1, 0, 0), dims), 1);
        assert_eq!(l.offset((0, 3, 0, 0), dims), 3);
        // ...the spatial step skips the lane block...
        assert_eq!(l.offset((0, 0, 0, 1), dims), 4);
        // ...and crossing a block boundary jumps a whole H*W*c_block plane.
        assert_eq!(l.offset((0, 4, 0, 0), dims), 3 * 5 * 4);
        // Offsets are unique and in bounds over the whole tensor.
        let mut seen = std::collections::HashSet::new();
        for n in 0..dims.0 {
            for c in 0..dims.1 {
                for h in 0..dims.2 {
                    for w in 0..dims.3 {
                        let off = l.offset((n, c, h, w), dims);
                        assert!(off < l.len(dims));
                        assert!(seen.insert(off), "duplicate offset {off}");
                    }
                }
            }
        }
    }

    #[test]
    fn packed_kernel_layout_enum_matches_struct() {
        let shape = ConvShape::new(1, 10, 2, 3, 3, 8, 8, 1).unwrap();
        let l = KernelLayout::Packed { vec_len: 8 };
        let p = PackedKernelLayout::new(&shape, 8);
        assert_eq!(l.len(&shape), p.len());
        for k in 0..shape.k {
            for c in 0..shape.c {
                assert_eq!(l.offset(&shape, k, c, 1, 2), p.offset(k, c, 1, 2));
            }
        }
        assert_eq!(KernelLayout::Kcrs.len(&shape), shape.kernel_elems());
    }

    #[test]
    fn layout_config_default_roundtrip() {
        let def = LayoutConfig::default();
        assert!(def.is_default());
        assert_eq!(def.tag(), "nchw+kcrs");
        assert!(!LayoutConfig::packed_kernel(8).is_default());
        assert_eq!(LayoutConfig::packed_kernel(8).tag(), "nchw+packed8");
        assert_eq!(LayoutConfig::blocked(8).tag(), "nchwc8+packed8");

        let v = serde_json::to_string(&def).unwrap();
        let back: LayoutConfig = serde_json::from_str(&v).unwrap();
        assert_eq!(back, def);
        let v = serde_json::to_string(&LayoutConfig::blocked(16)).unwrap();
        let back: LayoutConfig = serde_json::from_str(&v).unwrap();
        assert_eq!(back, LayoutConfig::blocked(16));
    }

    #[test]
    fn channel_run_reflects_contiguity() {
        assert_eq!(TensorLayout::Nchw.channel_run(64), 1);
        assert_eq!(TensorLayout::Nhwc.channel_run(64), 64);
        assert_eq!(TensorLayout::Nchwc { c_block: 8 }.channel_run(64), 8);
    }

    #[test]
    fn address_map_partitions_space() {
        let shape = ConvShape::new(1, 4, 3, 3, 3, 6, 6, 1).unwrap();
        let map = AddressMap::new(&shape);
        assert_eq!(map.input_base, 0);
        assert_eq!(map.kernel_base, shape.input_elems());
        assert_eq!(map.output_base, shape.input_elems() + shape.kernel_elems());
        assert_eq!(map.total, shape.input_elems() + shape.kernel_elems() + shape.output_elems());

        assert_eq!(map.classify(map.input(0, 0, 0, 0)), Some(TensorKind::Input));
        assert_eq!(map.classify(map.kernel(0, 0, 0, 0)), Some(TensorKind::Kernel));
        assert_eq!(map.classify(map.output(0, 0, 0, 0)), Some(TensorKind::Output));
        assert_eq!(map.classify(map.total), None);

        // Last element of each tensor stays within its region.
        let last_in = map.input(0, 2, shape.input_h() - 1, shape.input_w() - 1);
        assert!(last_in < map.kernel_base);
        let last_ker = map.kernel(3, 2, 2, 2);
        assert!(last_ker < map.output_base);
        let last_out = map.output(0, 3, 5, 5);
        assert!(last_out < map.total);
    }

    #[test]
    fn address_map_respects_stride() {
        let shape = ConvShape::from_table1(4, 3, 9, 3, 2);
        let map = AddressMap::new(&shape);
        // input is 9x9 even though output is 4x4
        assert_eq!(map.kernel_base, 3 * 9 * 9);
    }
}
