//! Benchmark operator suites.
//!
//! The first three suites are the 32 conv2d benchmark operators of Table 1
//! (Yolo-9000, ResNet-18, MobileNet), exactly as used in the paper's
//! evaluation — except that the MobileNet operators are now expressed as the
//! **true depthwise** convolutions of the network (`groups == c == k`)
//! instead of the paper's regular-conv2d stand-ins; the stand-ins remain
//! available as deprecated aliases (`M1pw` ... `M9pw`,
//! [`mobilenet_pointwise_form`]) so existing snapshots and scripts that key
//! on the dense shapes stay warm.
//!
//! Two further suites exercise the generalized convolution support:
//!
//! * [`mobilenet_v2`] — the nine depthwise stages of MobileNetV2
//!   (`V1` ... `V9`, expansion-layer channel counts, strides 1 and 2),
//! * [`dilated_deeplab`] — DeepLab/ESPNet-style dilated (atrous) 3x3
//!   operators (`D1` ... `D5`, dilation 2 and 4, including one dilated
//!   depthwise op).
//!
//! All benchmarks use batch size 1; strides are 1 unless the layer is marked
//! with `*` (stride 2).

use serde::{Deserialize, Serialize};

use crate::shape::ConvShape;

/// Which network a benchmark operator comes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BenchmarkSuite {
    /// Yolo-9000 (11 conv2d operators).
    Yolo9000,
    /// ResNet-18 (12 conv2d operators).
    ResNet18,
    /// MobileNet (9 operators — the depthwise stages of Table 1, now with
    /// their true `groups == c == k` depthwise shapes).
    MobileNet,
    /// MobileNetV2 depthwise stages (9 operators, expansion channel counts).
    MobileNetV2,
    /// DeepLab/ESPNet-style dilated 3x3 operators (5 operators).
    DilatedDeepLab,
}

impl BenchmarkSuite {
    /// The paper's three Table-1 suites, in the order the paper presents them.
    pub const ALL: [BenchmarkSuite; 3] =
        [BenchmarkSuite::Yolo9000, BenchmarkSuite::ResNet18, BenchmarkSuite::MobileNet];

    /// Every suite, including the generalized-convolution extensions.
    pub const EXTENDED: [BenchmarkSuite; 5] = [
        BenchmarkSuite::Yolo9000,
        BenchmarkSuite::ResNet18,
        BenchmarkSuite::MobileNet,
        BenchmarkSuite::MobileNetV2,
        BenchmarkSuite::DilatedDeepLab,
    ];

    /// Human-readable suite name.
    pub fn name(self) -> &'static str {
        match self {
            BenchmarkSuite::Yolo9000 => "Yolo-9000",
            BenchmarkSuite::ResNet18 => "ResNet-18",
            BenchmarkSuite::MobileNet => "MobileNet",
            BenchmarkSuite::MobileNetV2 => "MobileNetV2-DW",
            BenchmarkSuite::DilatedDeepLab => "DeepLab-Dilated",
        }
    }
}

impl std::fmt::Display for BenchmarkSuite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One named conv2d operator from a benchmark suite.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BenchmarkOp {
    /// The layer label used in the paper (e.g. `"Y0"`, `"R1*"`, `"M9"`).
    pub name: String,
    /// The suite the operator belongs to.
    pub suite: BenchmarkSuite,
    /// The conv2d problem shape.
    pub shape: ConvShape,
}

impl BenchmarkOp {
    fn new(
        name: &str,
        suite: BenchmarkSuite,
        k: usize,
        c: usize,
        hw: usize,
        rs: usize,
        stride: usize,
    ) -> Self {
        BenchmarkOp {
            name: name.to_string(),
            suite,
            shape: ConvShape::from_table1(k, c, hw, rs, stride),
        }
    }

    fn depthwise(
        name: &str,
        suite: BenchmarkSuite,
        channels: usize,
        hw: usize,
        rs: usize,
        stride: usize,
    ) -> Self {
        BenchmarkOp {
            name: name.to_string(),
            suite,
            shape: ConvShape::depthwise(channels, hw, rs, stride),
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn dilated(
        name: &str,
        suite: BenchmarkSuite,
        k: usize,
        c: usize,
        hw: usize,
        rs: usize,
        stride: usize,
        dilation: usize,
    ) -> Self {
        BenchmarkOp {
            name: name.to_string(),
            suite,
            shape: ConvShape::from_table1_dilated(k, c, hw, rs, stride, dilation),
        }
    }

    /// Whether the layer uses stride 2 (marked `*` in Table 1).
    pub fn is_strided(&self) -> bool {
        self.shape.stride == 2
    }
}

impl std::fmt::Display for BenchmarkOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} ({})", self.name, self.shape)
    }
}

/// The eleven conv2d operators of Yolo-9000 (Table 1, left).
pub fn yolo9000() -> Vec<BenchmarkOp> {
    use BenchmarkSuite::Yolo9000 as S;
    vec![
        BenchmarkOp::new("Y0", S, 32, 3, 544, 3, 1),
        BenchmarkOp::new("Y2", S, 64, 32, 272, 3, 1),
        BenchmarkOp::new("Y4", S, 128, 64, 136, 3, 1),
        BenchmarkOp::new("Y5", S, 64, 128, 136, 1, 1),
        BenchmarkOp::new("Y8", S, 256, 128, 68, 3, 1),
        BenchmarkOp::new("Y9", S, 128, 256, 68, 1, 1),
        BenchmarkOp::new("Y12", S, 512, 256, 34, 3, 1),
        BenchmarkOp::new("Y13", S, 256, 512, 34, 1, 1),
        BenchmarkOp::new("Y18", S, 1024, 512, 17, 3, 1),
        BenchmarkOp::new("Y19", S, 512, 1024, 17, 1, 1),
        BenchmarkOp::new("Y23", S, 28269, 1024, 17, 1, 1),
    ]
}

/// The twelve conv2d operators of ResNet-18 (Table 1, middle).
/// Layers marked `*` in the paper use stride 2.
pub fn resnet18() -> Vec<BenchmarkOp> {
    use BenchmarkSuite::ResNet18 as S;
    vec![
        BenchmarkOp::new("R1*", S, 64, 3, 224, 7, 2),
        BenchmarkOp::new("R2", S, 64, 64, 56, 3, 1),
        BenchmarkOp::new("R3", S, 64, 64, 56, 1, 1),
        BenchmarkOp::new("R4*", S, 128, 64, 56, 3, 2),
        BenchmarkOp::new("R5*", S, 128, 64, 56, 1, 2),
        BenchmarkOp::new("R6", S, 128, 128, 28, 3, 1),
        BenchmarkOp::new("R7*", S, 256, 128, 28, 3, 2),
        BenchmarkOp::new("R8", S, 256, 128, 28, 3, 1),
        BenchmarkOp::new("R9", S, 256, 256, 14, 3, 1),
        BenchmarkOp::new("R10*", S, 512, 256, 14, 3, 2),
        BenchmarkOp::new("R11*", S, 512, 256, 14, 1, 2),
        BenchmarkOp::new("R12", S, 512, 512, 7, 3, 1),
    ]
}

/// The nine MobileNet operators of Table 1 (right) as **true depthwise**
/// convolutions (`groups == c == k`). The channel counts, spatial extents,
/// kernel sizes, and stride markers are exactly the paper's; only the
/// previously implicit "run the depthwise stage as a regular conv2d"
/// approximation is gone.
pub fn mobilenet() -> Vec<BenchmarkOp> {
    use BenchmarkSuite::MobileNet as S;
    vec![
        BenchmarkOp::depthwise("M1", S, 32, 112, 3, 1),
        BenchmarkOp::depthwise("M2*", S, 64, 112, 3, 2),
        BenchmarkOp::depthwise("M3", S, 128, 56, 3, 1),
        BenchmarkOp::depthwise("M4*", S, 128, 56, 3, 2),
        BenchmarkOp::depthwise("M5", S, 256, 28, 3, 1),
        BenchmarkOp::depthwise("M6*", S, 256, 28, 3, 2),
        BenchmarkOp::depthwise("M7", S, 512, 14, 3, 1),
        BenchmarkOp::depthwise("M8*", S, 512, 14, 3, 2),
        BenchmarkOp::depthwise("M9", S, 1024, 7, 3, 1),
    ]
}

/// Deprecated: the paper's regular-conv2d ("pointwise form") stand-ins for
/// the MobileNet depthwise stages, under the alias names `M1pw` ... `M9pw`.
///
/// Kept so that schedule-cache snapshots and scripts built against the dense
/// shapes keep resolving (and staying warm); new work should use
/// [`mobilenet`] (true depthwise) instead.
#[deprecated(note = "use mobilenet() — the true depthwise shapes — instead")]
pub fn mobilenet_pointwise_form() -> Vec<BenchmarkOp> {
    use BenchmarkSuite::MobileNet as S;
    vec![
        BenchmarkOp::new("M1pw", S, 32, 32, 112, 3, 1),
        BenchmarkOp::new("M2pw*", S, 64, 64, 112, 3, 2),
        BenchmarkOp::new("M3pw", S, 128, 128, 56, 3, 1),
        BenchmarkOp::new("M4pw*", S, 128, 128, 56, 3, 2),
        BenchmarkOp::new("M5pw", S, 256, 256, 28, 3, 1),
        BenchmarkOp::new("M6pw*", S, 256, 256, 28, 3, 2),
        BenchmarkOp::new("M7pw", S, 512, 512, 14, 3, 1),
        BenchmarkOp::new("M8pw*", S, 512, 512, 14, 3, 2),
        BenchmarkOp::new("M9pw", S, 1024, 1024, 7, 3, 1),
    ]
}

/// The nine depthwise stages of MobileNetV2 (inverted-residual expansion
/// channel counts; layers marked `*` use stride 2).
pub fn mobilenet_v2() -> Vec<BenchmarkOp> {
    use BenchmarkSuite::MobileNetV2 as S;
    vec![
        BenchmarkOp::depthwise("V1", S, 32, 112, 3, 1),
        BenchmarkOp::depthwise("V2*", S, 96, 112, 3, 2),
        BenchmarkOp::depthwise("V3", S, 144, 56, 3, 1),
        BenchmarkOp::depthwise("V4*", S, 144, 56, 3, 2),
        BenchmarkOp::depthwise("V5", S, 192, 28, 3, 1),
        BenchmarkOp::depthwise("V6*", S, 192, 28, 3, 2),
        BenchmarkOp::depthwise("V7", S, 384, 14, 3, 1),
        BenchmarkOp::depthwise("V8*", S, 576, 14, 3, 2),
        BenchmarkOp::depthwise("V9", S, 960, 7, 3, 1),
    ]
}

/// DeepLab/ESPNet-style dilated (atrous) operators: 3x3 kernels with
/// dilation 2 and 4 on output-stride-16 feature maps, including one dilated
/// depthwise op (`D5`, ESPNet-style).
pub fn dilated_deeplab() -> Vec<BenchmarkOp> {
    use BenchmarkSuite::DilatedDeepLab as S;
    let mut ops = vec![
        BenchmarkOp::dilated("D1", S, 256, 256, 33, 3, 1, 2),
        BenchmarkOp::dilated("D2", S, 256, 256, 33, 3, 1, 4),
        BenchmarkOp::dilated("D3", S, 512, 512, 17, 3, 1, 2),
        BenchmarkOp::dilated("D4", S, 256, 512, 33, 3, 1, 2),
    ];
    // D5: dilated depthwise (ESPNet's reduced-parameter spatial stage).
    let mut d5 = ConvShape::from_table1_dilated(256, 256, 33, 3, 1, 2);
    d5.groups = 256;
    ops.push(BenchmarkOp { name: "D5".to_string(), suite: S, shape: d5 });
    ops
}

/// All 32 Table-1 operators in paper order (Yolo, ResNet, MobileNet).
pub fn all_operators() -> Vec<BenchmarkOp> {
    let mut v = yolo9000();
    v.extend(resnet18());
    v.extend(mobilenet());
    v
}

/// Every operator of every suite (Table 1 plus the MobileNetV2 depthwise and
/// dilated suites), plus the deprecated MobileNet pointwise-form aliases.
pub fn extended_operators() -> Vec<BenchmarkOp> {
    let mut v = all_operators();
    v.extend(mobilenet_v2());
    v.extend(dilated_deeplab());
    #[allow(deprecated)]
    v.extend(mobilenet_pointwise_form());
    v
}

/// Look up a single operator by its label (e.g. `"Y5"`, `"R9"`, `"M2*"`,
/// `"V3"`, `"D1"`, or the deprecated `"M2pw"` — the trailing `*` may be
/// omitted). Searches every suite including the deprecated aliases.
pub fn by_name(name: &str) -> Option<BenchmarkOp> {
    let norm = name.trim().trim_end_matches('*').to_ascii_uppercase();
    extended_operators()
        .into_iter()
        .find(|op| op.name.trim_end_matches('*').eq_ignore_ascii_case(&norm))
}

/// The deprecated `M1pw` ... `M9pw` dense stand-in aliases, without the
/// deprecation warning at the call site — for servers that must keep
/// answering them (tagged as deprecated) and for catalog listings.
pub fn deprecated_aliases() -> Vec<BenchmarkOp> {
    #[allow(deprecated)]
    mobilenet_pointwise_form()
}

/// Whether an operator label refers to one of the deprecated dense stand-in
/// aliases (`M1pw` ... `M9pw`; trailing `*` and case are ignored, like
/// [`by_name`]). Servers tag responses for these ops `"deprecated": true`.
pub fn is_deprecated_alias(name: &str) -> bool {
    let norm = name.trim().trim_end_matches('*').to_ascii_uppercase();
    deprecated_aliases().iter().any(|op| op.name.trim_end_matches('*').eq_ignore_ascii_case(&norm))
}

/// The operators for one suite.
pub fn suite(s: BenchmarkSuite) -> Vec<BenchmarkOp> {
    match s {
        BenchmarkSuite::Yolo9000 => yolo9000(),
        BenchmarkSuite::ResNet18 => resnet18(),
        BenchmarkSuite::MobileNet => mobilenet(),
        BenchmarkSuite::MobileNetV2 => mobilenet_v2(),
        BenchmarkSuite::DilatedDeepLab => dilated_deeplab(),
    }
}

/// Reduced-size variants of the Table-1 benchmark operators for fast
/// functional tests and examples: spatial extents capped at `max_hw`, channel
/// extents capped at `max_ch`. The aspect of each operator (pointwise vs 3x3,
/// strided vs not, depthwise vs dense, dilation) is preserved.
pub fn scaled_operators(max_hw: usize, max_ch: usize) -> Vec<BenchmarkOp> {
    all_operators().into_iter().map(|op| scale_op(op, max_hw, max_ch)).collect()
}

/// Reduced-size variants of every suite (see [`scaled_operators`]), including
/// the MobileNetV2 depthwise and dilated suites.
pub fn scaled_extended_operators(max_hw: usize, max_ch: usize) -> Vec<BenchmarkOp> {
    extended_operators().into_iter().map(|op| scale_op(op, max_hw, max_ch)).collect()
}

fn scale_op(mut op: BenchmarkOp, max_hw: usize, max_ch: usize) -> BenchmarkOp {
    let s = &mut op.shape;
    let was_depthwise = s.is_depthwise();
    s.k = s.k.min(max_ch);
    s.c = s.c.min(max_ch);
    s.h = s.h.min(max_hw);
    s.w = s.w.min(max_hw);
    if was_depthwise {
        // Depthwise stays depthwise: k == c == groups after capping.
        let ch = s.k.min(s.c);
        s.k = ch;
        s.c = ch;
        s.groups = ch;
    } else if s.groups > 1 {
        // General grouped op: shrink the group count until it divides both
        // capped channel extents (1 always does).
        while !s.c.is_multiple_of(s.groups) || !s.k.is_multiple_of(s.groups) {
            s.groups -= 1;
        }
    }
    op
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shape::LoopIndex;

    #[test]
    fn table1_operator_counts() {
        assert_eq!(yolo9000().len(), 11);
        assert_eq!(resnet18().len(), 12);
        assert_eq!(mobilenet().len(), 9);
        assert_eq!(all_operators().len(), 32);
        assert_eq!(mobilenet_v2().len(), 9);
        assert_eq!(dilated_deeplab().len(), 5);
        assert_eq!(extended_operators().len(), 32 + 9 + 5 + 9);
    }

    #[test]
    fn table1_values_spot_checks() {
        let y23 = by_name("Y23").unwrap();
        assert_eq!(y23.shape.k, 28269);
        assert_eq!(y23.shape.c, 1024);
        assert_eq!(y23.shape.r, 1);
        assert_eq!(y23.shape.h, 17);

        let r1 = by_name("R1").unwrap();
        assert!(r1.is_strided());
        assert_eq!(r1.shape.r, 7);
        assert_eq!(r1.shape.c, 3);

        let m9 = by_name("M9").unwrap();
        assert_eq!(m9.shape.k, 1024);
        assert_eq!(m9.shape.c, 1024);
        assert_eq!(m9.shape.h, 5); // (7 - 3) / 1 + 1
        assert!(m9.shape.is_depthwise());
    }

    #[test]
    fn mobilenet_ops_are_true_depthwise() {
        for op in mobilenet() {
            assert!(op.shape.is_depthwise(), "{} is not depthwise", op.name);
            assert_eq!(op.shape.extent(LoopIndex::C), 1, "{}", op.name);
            assert_eq!(op.shape.r, 3);
        }
        for op in mobilenet_v2() {
            assert!(op.shape.is_depthwise(), "{} is not depthwise", op.name);
        }
    }

    #[test]
    fn deprecated_pointwise_aliases_keep_the_dense_shapes() {
        #[allow(deprecated)]
        let pw = mobilenet_pointwise_form();
        assert_eq!(pw.len(), 9);
        for (dw, dense) in mobilenet().iter().zip(pw.iter()) {
            assert_eq!(dense.shape.groups, 1, "{}", dense.name);
            // Same channel counts, extents, and stride — only groups differ.
            assert_eq!(dw.shape.k, dense.shape.k);
            assert_eq!(dw.shape.c, dense.shape.c);
            assert_eq!(dw.shape.h, dense.shape.h);
            assert_eq!(dw.shape.stride, dense.shape.stride);
        }
        // The aliases resolve through by_name.
        let m5pw = by_name("M5pw").unwrap();
        assert_eq!(m5pw.shape.groups, 1);
        assert_eq!(m5pw.shape.k, 256);
    }

    #[test]
    fn dilated_suite_structure() {
        let ops = dilated_deeplab();
        for op in &ops {
            assert!(op.shape.dilation >= 2, "{} is not dilated", op.name);
            assert_eq!(op.shape.r, 3);
        }
        let d2 = by_name("D2").unwrap();
        assert_eq!(d2.shape.dilation, 4);
        assert_eq!(d2.shape.effective_r(), 9);
        assert_eq!(d2.shape.h, 25); // (33 - 9) / 1 + 1
        let d5 = by_name("D5").unwrap();
        assert!(d5.shape.is_depthwise());
        assert_eq!(d5.shape.dilation, 2);
    }

    #[test]
    fn strided_layers_match_paper_markers() {
        let strided: Vec<String> =
            all_operators().into_iter().filter(|op| op.is_strided()).map(|op| op.name).collect();
        assert_eq!(
            strided,
            vec!["R1*", "R4*", "R5*", "R7*", "R10*", "R11*", "M2*", "M4*", "M6*", "M8*"]
        );
    }

    #[test]
    fn all_names_unique() {
        let ops = extended_operators();
        let names: std::collections::HashSet<&str> = ops.iter().map(|o| o.name.as_str()).collect();
        assert_eq!(names.len(), ops.len());
    }

    #[test]
    fn by_name_is_case_and_star_insensitive() {
        assert!(by_name("r10").is_some());
        assert!(by_name("R10*").is_some());
        assert!(by_name("m2").is_some());
        assert!(by_name("v8").is_some());
        assert!(by_name("d1").is_some());
        assert!(by_name("Z1").is_none());
    }

    #[test]
    fn batch_size_is_one_everywhere() {
        for op in extended_operators() {
            assert_eq!(op.shape.n, 1, "{} must use batch 1", op.name);
        }
    }

    #[test]
    fn scaled_operators_preserve_structure() {
        let scaled = scaled_operators(16, 64);
        assert_eq!(scaled.len(), 32);
        for (orig, small) in all_operators().iter().zip(scaled.iter()) {
            assert_eq!(orig.name, small.name);
            assert_eq!(orig.shape.r, small.shape.r);
            assert_eq!(orig.shape.stride, small.shape.stride);
            assert_eq!(orig.shape.dilation, small.shape.dilation);
            assert_eq!(orig.shape.is_depthwise(), small.shape.is_depthwise());
            assert!(small.shape.h <= 16 && small.shape.k <= 64);
        }
        // Extended scaling keeps every shape valid (groups divide channels).
        for op in scaled_extended_operators(12, 48) {
            assert!(
                ConvShape::new_general(
                    op.shape.n,
                    op.shape.k,
                    op.shape.c,
                    op.shape.r,
                    op.shape.s,
                    op.shape.h,
                    op.shape.w,
                    op.shape.stride,
                    op.shape.dilation,
                    op.shape.groups,
                )
                .is_ok(),
                "scaled {} is invalid",
                op.name
            );
        }
    }
}
