//! The 32 conv2d benchmark operators of Table 1 (Yolo-9000, ResNet-18,
//! MobileNet), exactly as used in the paper's evaluation.
//!
//! All benchmarks use batch size 1; strides are 1 unless the layer is marked
//! with `*` in the paper's table (stride 2).

use serde::{Deserialize, Serialize};

use crate::shape::ConvShape;

/// Which network a benchmark operator comes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BenchmarkSuite {
    /// Yolo-9000 (11 conv2d operators).
    Yolo9000,
    /// ResNet-18 (12 conv2d operators).
    ResNet18,
    /// MobileNet (9 conv2d operators; the paper uses the regular conv2d
    /// form of each depthwise stage's shape).
    MobileNet,
}

impl BenchmarkSuite {
    /// All three suites in the order the paper presents them.
    pub const ALL: [BenchmarkSuite; 3] =
        [BenchmarkSuite::Yolo9000, BenchmarkSuite::ResNet18, BenchmarkSuite::MobileNet];

    /// Human-readable suite name.
    pub fn name(self) -> &'static str {
        match self {
            BenchmarkSuite::Yolo9000 => "Yolo-9000",
            BenchmarkSuite::ResNet18 => "ResNet-18",
            BenchmarkSuite::MobileNet => "MobileNet",
        }
    }
}

impl std::fmt::Display for BenchmarkSuite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One named conv2d operator from Table 1.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BenchmarkOp {
    /// The layer label used in the paper (e.g. `"Y0"`, `"R1*"`, `"M9"`).
    pub name: String,
    /// The suite the operator belongs to.
    pub suite: BenchmarkSuite,
    /// The conv2d problem shape.
    pub shape: ConvShape,
}

impl BenchmarkOp {
    fn new(
        name: &str,
        suite: BenchmarkSuite,
        k: usize,
        c: usize,
        hw: usize,
        rs: usize,
        stride: usize,
    ) -> Self {
        BenchmarkOp {
            name: name.to_string(),
            suite,
            shape: ConvShape::from_table1(k, c, hw, rs, stride),
        }
    }

    /// Whether the layer uses stride 2 (marked `*` in Table 1).
    pub fn is_strided(&self) -> bool {
        self.shape.stride == 2
    }
}

impl std::fmt::Display for BenchmarkOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} ({})", self.name, self.shape)
    }
}

/// The eleven conv2d operators of Yolo-9000 (Table 1, left).
pub fn yolo9000() -> Vec<BenchmarkOp> {
    use BenchmarkSuite::Yolo9000 as S;
    vec![
        BenchmarkOp::new("Y0", S, 32, 3, 544, 3, 1),
        BenchmarkOp::new("Y2", S, 64, 32, 272, 3, 1),
        BenchmarkOp::new("Y4", S, 128, 64, 136, 3, 1),
        BenchmarkOp::new("Y5", S, 64, 128, 136, 1, 1),
        BenchmarkOp::new("Y8", S, 256, 128, 68, 3, 1),
        BenchmarkOp::new("Y9", S, 128, 256, 68, 1, 1),
        BenchmarkOp::new("Y12", S, 512, 256, 34, 3, 1),
        BenchmarkOp::new("Y13", S, 256, 512, 34, 1, 1),
        BenchmarkOp::new("Y18", S, 1024, 512, 17, 3, 1),
        BenchmarkOp::new("Y19", S, 512, 1024, 17, 1, 1),
        BenchmarkOp::new("Y23", S, 28269, 1024, 17, 1, 1),
    ]
}

/// The twelve conv2d operators of ResNet-18 (Table 1, middle).
/// Layers marked `*` in the paper use stride 2.
pub fn resnet18() -> Vec<BenchmarkOp> {
    use BenchmarkSuite::ResNet18 as S;
    vec![
        BenchmarkOp::new("R1*", S, 64, 3, 224, 7, 2),
        BenchmarkOp::new("R2", S, 64, 64, 56, 3, 1),
        BenchmarkOp::new("R3", S, 64, 64, 56, 1, 1),
        BenchmarkOp::new("R4*", S, 128, 64, 56, 3, 2),
        BenchmarkOp::new("R5*", S, 128, 64, 56, 1, 2),
        BenchmarkOp::new("R6", S, 128, 128, 28, 3, 1),
        BenchmarkOp::new("R7*", S, 256, 128, 28, 3, 2),
        BenchmarkOp::new("R8", S, 256, 128, 28, 3, 1),
        BenchmarkOp::new("R9", S, 256, 256, 14, 3, 1),
        BenchmarkOp::new("R10*", S, 512, 256, 14, 3, 2),
        BenchmarkOp::new("R11*", S, 512, 256, 14, 1, 2),
        BenchmarkOp::new("R12", S, 512, 512, 7, 3, 1),
    ]
}

/// The nine conv2d operators of MobileNet (Table 1, right).
/// Layers marked `*` in the paper use stride 2.
pub fn mobilenet() -> Vec<BenchmarkOp> {
    use BenchmarkSuite::MobileNet as S;
    vec![
        BenchmarkOp::new("M1", S, 32, 32, 112, 3, 1),
        BenchmarkOp::new("M2*", S, 64, 64, 112, 3, 2),
        BenchmarkOp::new("M3", S, 128, 128, 56, 3, 1),
        BenchmarkOp::new("M4*", S, 128, 128, 56, 3, 2),
        BenchmarkOp::new("M5", S, 256, 256, 28, 3, 1),
        BenchmarkOp::new("M6*", S, 256, 256, 28, 3, 2),
        BenchmarkOp::new("M7", S, 512, 512, 14, 3, 1),
        BenchmarkOp::new("M8*", S, 512, 512, 14, 3, 2),
        BenchmarkOp::new("M9", S, 1024, 1024, 7, 3, 1),
    ]
}

/// All 32 operators in paper order (Yolo, ResNet, MobileNet).
pub fn all_operators() -> Vec<BenchmarkOp> {
    let mut v = yolo9000();
    v.extend(resnet18());
    v.extend(mobilenet());
    v
}

/// Look up a single operator by its paper label (e.g. `"Y5"`, `"R9"`,
/// `"M2*"` — the trailing `*` may be omitted).
pub fn by_name(name: &str) -> Option<BenchmarkOp> {
    let norm = name.trim().trim_end_matches('*').to_ascii_uppercase();
    all_operators().into_iter().find(|op| op.name.trim_end_matches('*').eq_ignore_ascii_case(&norm))
}

/// The operators for one suite.
pub fn suite(s: BenchmarkSuite) -> Vec<BenchmarkOp> {
    match s {
        BenchmarkSuite::Yolo9000 => yolo9000(),
        BenchmarkSuite::ResNet18 => resnet18(),
        BenchmarkSuite::MobileNet => mobilenet(),
    }
}

/// Reduced-size variants of the benchmark operators for fast functional tests
/// and examples: spatial extents capped at `max_hw`, channel extents capped at
/// `max_ch`. The aspect of each operator (pointwise vs 3x3, strided vs not) is
/// preserved.
pub fn scaled_operators(max_hw: usize, max_ch: usize) -> Vec<BenchmarkOp> {
    all_operators()
        .into_iter()
        .map(|mut op| {
            let s = &mut op.shape;
            s.k = s.k.min(max_ch);
            s.c = s.c.min(max_ch);
            s.h = s.h.min(max_hw);
            s.w = s.w.min(max_hw);
            op
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_operator_counts() {
        assert_eq!(yolo9000().len(), 11);
        assert_eq!(resnet18().len(), 12);
        assert_eq!(mobilenet().len(), 9);
        assert_eq!(all_operators().len(), 32);
    }

    #[test]
    fn table1_values_spot_checks() {
        let y23 = by_name("Y23").unwrap();
        assert_eq!(y23.shape.k, 28269);
        assert_eq!(y23.shape.c, 1024);
        assert_eq!(y23.shape.r, 1);
        assert_eq!(y23.shape.h, 17);

        let r1 = by_name("R1").unwrap();
        assert!(r1.is_strided());
        assert_eq!(r1.shape.r, 7);
        assert_eq!(r1.shape.c, 3);

        let m9 = by_name("M9").unwrap();
        assert_eq!(m9.shape.k, 1024);
        assert_eq!(m9.shape.c, 1024);
        assert_eq!(m9.shape.h, 5); // (7 - 3) / 1 + 1
    }

    #[test]
    fn strided_layers_match_paper_markers() {
        let strided: Vec<String> =
            all_operators().into_iter().filter(|op| op.is_strided()).map(|op| op.name).collect();
        assert_eq!(
            strided,
            vec!["R1*", "R4*", "R5*", "R7*", "R10*", "R11*", "M2*", "M4*", "M6*", "M8*"]
        );
    }

    #[test]
    fn all_names_unique() {
        let ops = all_operators();
        let names: std::collections::HashSet<&str> = ops.iter().map(|o| o.name.as_str()).collect();
        assert_eq!(names.len(), ops.len());
    }

    #[test]
    fn by_name_is_case_and_star_insensitive() {
        assert!(by_name("r10").is_some());
        assert!(by_name("R10*").is_some());
        assert!(by_name("m2").is_some());
        assert!(by_name("Z1").is_none());
    }

    #[test]
    fn batch_size_is_one_everywhere() {
        for op in all_operators() {
            assert_eq!(op.shape.n, 1, "{} must use batch 1", op.name);
        }
    }

    #[test]
    fn scaled_operators_preserve_structure() {
        let scaled = scaled_operators(16, 64);
        assert_eq!(scaled.len(), 32);
        for (orig, small) in all_operators().iter().zip(scaled.iter()) {
            assert_eq!(orig.name, small.name);
            assert_eq!(orig.shape.r, small.shape.r);
            assert_eq!(orig.shape.stride, small.shape.stride);
            assert!(small.shape.h <= 16 && small.shape.k <= 64);
        }
    }
}
