//! Machine (memory hierarchy + compute) descriptions.
//!
//! The paper evaluates on two CPUs:
//!
//! * Intel Core i7-9700K (CoffeeLake): 8 cores, 32 KB L1 / 256 KB L2 per core,
//!   12 MB shared L3, two AVX2 FMA units per core;
//! * Intel Core i9-10980XE (CascadeLake): 18 cores, 32 KB L1 / 1 MB L2 per
//!   core, 24.75 MB shared L3, AVX-512.
//!
//! The analytical model only needs, per memory level: the capacity available
//! to one tile (in elements), whether the level is shared, and the bandwidth
//! of the link toward the next-slower level (used to bandwidth-scale data
//! volumes, Sec. 5). The microkernel needs the SIMD width and FMA
//! latency/throughput (Sec. 6).

use serde::{Deserialize, Serialize};

use crate::tiling::TilingLevel;

/// A memory level: registers or one of the caches, or main memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MemoryLevel {
    /// The register file (holds the register tile).
    Registers,
    /// First-level cache.
    L1,
    /// Second-level cache.
    L2,
    /// Last-level cache.
    L3,
    /// Main memory (unbounded capacity).
    Dram,
}

impl MemoryLevel {
    /// The levels whose capacity constrains a tile, innermost first.
    pub const CONSTRAINED: [MemoryLevel; 4] =
        [MemoryLevel::Registers, MemoryLevel::L1, MemoryLevel::L2, MemoryLevel::L3];

    /// The corresponding tiling level (None for DRAM, which is not tiled for).
    pub fn tiling_level(self) -> Option<TilingLevel> {
        match self {
            MemoryLevel::Registers => Some(TilingLevel::Register),
            MemoryLevel::L1 => Some(TilingLevel::L1),
            MemoryLevel::L2 => Some(TilingLevel::L2),
            MemoryLevel::L3 => Some(TilingLevel::L3),
            MemoryLevel::Dram => None,
        }
    }

    /// Short display name.
    pub fn name(self) -> &'static str {
        match self {
            MemoryLevel::Registers => "Reg",
            MemoryLevel::L1 => "L1",
            MemoryLevel::L2 => "L2",
            MemoryLevel::L3 => "L3",
            MemoryLevel::Dram => "DRAM",
        }
    }
}

impl std::fmt::Display for MemoryLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One cache (or register-file) level of the hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CacheLevel {
    /// Which level this describes.
    pub level: MemoryLevel,
    /// Capacity in *elements* (single-precision floats) available to one core
    /// (for private levels) or to all cores (for shared levels).
    pub capacity_elems: usize,
    /// Whether the level is shared among all cores (true for L3 in both
    /// evaluation machines).
    pub shared: bool,
    /// Sustained bandwidth, in elements per cycle per core, of the link that
    /// feeds this level from the next slower level (e.g. for `L1`, the L2→L1
    /// bandwidth). Used to bandwidth-scale data volumes.
    pub fill_bandwidth: f64,
    /// Cache line size in elements (used by the spatial-locality extension
    /// and by the set-associative simulator).
    pub line_elems: usize,
    /// Associativity (ways); `0` denotes fully associative.
    pub associativity: usize,
}

/// A machine description: the memory hierarchy plus compute parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MachineModel {
    /// Human-readable machine name.
    pub name: String,
    /// Number of physical cores.
    pub cores: usize,
    /// Number of threads used by the paper's parallel experiments (8 on the
    /// i7, 16 on the i9).
    pub threads: usize,
    /// SIMD vector width in single-precision lanes (8 for AVX2, 16 for
    /// AVX-512).
    pub simd_width: usize,
    /// Number of FMA units per core.
    pub fma_units: usize,
    /// FMA latency in cycles (used with Little's law to size the register
    /// tile, Sec. 6).
    pub fma_latency: usize,
    /// Core clock in GHz (base frequency; the paper locks the clock).
    pub clock_ghz: f64,
    /// Register-file capacity in elements usable by the microkernel
    /// accumulators (e.g. 16 vector registers × 8 lanes on AVX2).
    pub register_elems: usize,
    /// Cache levels, ordered from L1 to L3.
    pub caches: Vec<CacheLevel>,
    /// Bandwidth of the DRAM→L3 link in elements per cycle (whole chip).
    pub dram_bandwidth: f64,
}

impl MachineModel {
    /// The Intel Core i7-9700K (CoffeeLake) description used in the paper
    /// (8 cores, AVX2, 32 KB L1, 256 KB L2, 12 MB shared L3).
    ///
    /// Bandwidth figures are representative sustained values (elements/cycle)
    /// of the class of machine; the paper measures them with synthetic
    /// benchmarks. Their absolute values only matter through the *ratios*
    /// that decide which level is the bottleneck.
    pub fn i7_9700k() -> Self {
        MachineModel {
            name: "Intel i7-9700K (CoffeeLake)".to_string(),
            cores: 8,
            threads: 8,
            simd_width: 8,
            fma_units: 2,
            fma_latency: 5,
            clock_ghz: 3.6,
            register_elems: 16 * 8,
            caches: vec![
                CacheLevel {
                    level: MemoryLevel::L1,
                    capacity_elems: 32 * 1024 / 4,
                    shared: false,
                    fill_bandwidth: 16.0,
                    line_elems: 16,
                    associativity: 8,
                },
                CacheLevel {
                    level: MemoryLevel::L2,
                    capacity_elems: 256 * 1024 / 4,
                    shared: false,
                    fill_bandwidth: 8.0,
                    line_elems: 16,
                    associativity: 4,
                },
                CacheLevel {
                    level: MemoryLevel::L3,
                    capacity_elems: 12 * 1024 * 1024 / 4,
                    shared: true,
                    fill_bandwidth: 4.0,
                    line_elems: 16,
                    associativity: 16,
                },
            ],
            dram_bandwidth: 2.0,
        }
    }

    /// The Intel Core i9-10980XE (CascadeLake) description used in the paper
    /// (18 cores, AVX-512, 32 KB L1, 1 MB L2, 24.75 MB shared L3; the paper
    /// runs with 16 threads).
    pub fn i9_10980xe() -> Self {
        MachineModel {
            name: "Intel i9-10980XE (CascadeLake)".to_string(),
            cores: 18,
            threads: 16,
            simd_width: 16,
            fma_units: 2,
            fma_latency: 5,
            clock_ghz: 3.0,
            register_elems: 32 * 16,
            caches: vec![
                CacheLevel {
                    level: MemoryLevel::L1,
                    capacity_elems: 32 * 1024 / 4,
                    shared: false,
                    fill_bandwidth: 32.0,
                    line_elems: 16,
                    associativity: 8,
                },
                CacheLevel {
                    level: MemoryLevel::L2,
                    capacity_elems: 1024 * 1024 / 4,
                    shared: false,
                    fill_bandwidth: 16.0,
                    line_elems: 16,
                    associativity: 16,
                },
                CacheLevel {
                    level: MemoryLevel::L3,
                    capacity_elems: (24.75 * 1024.0 * 1024.0 / 4.0) as usize,
                    shared: true,
                    fill_bandwidth: 6.0,
                    line_elems: 16,
                    associativity: 11,
                },
            ],
            dram_bandwidth: 3.0,
        }
    }

    /// A small synthetic machine used by unit tests and fast examples
    /// (tiny caches so interesting tiling decisions arise at small problem
    /// sizes).
    pub fn tiny_test_machine() -> Self {
        MachineModel {
            name: "tiny-test".to_string(),
            cores: 2,
            threads: 2,
            simd_width: 4,
            fma_units: 1,
            fma_latency: 4,
            clock_ghz: 1.0,
            register_elems: 32,
            caches: vec![
                CacheLevel {
                    level: MemoryLevel::L1,
                    capacity_elems: 256,
                    shared: false,
                    fill_bandwidth: 8.0,
                    line_elems: 4,
                    associativity: 4,
                },
                CacheLevel {
                    level: MemoryLevel::L2,
                    capacity_elems: 2048,
                    shared: false,
                    fill_bandwidth: 4.0,
                    line_elems: 4,
                    associativity: 4,
                },
                CacheLevel {
                    level: MemoryLevel::L3,
                    capacity_elems: 16384,
                    shared: true,
                    fill_bandwidth: 2.0,
                    line_elems: 4,
                    associativity: 8,
                },
            ],
            dram_bandwidth: 1.0,
        }
    }

    /// The cache description for a memory level, if it is a cache level.
    pub fn cache(&self, level: MemoryLevel) -> Option<&CacheLevel> {
        self.caches.iter().find(|c| c.level == level)
    }

    /// Capacity, in elements, usable by one tile at a tiling level.
    ///
    /// For the register level this is the register-file budget; for cache
    /// levels it is that cache's capacity. Shared caches are reported whole;
    /// the parallel cost model divides them by the thread count where
    /// appropriate.
    pub fn capacity(&self, level: TilingLevel) -> usize {
        match level {
            TilingLevel::Register => self.register_elems,
            TilingLevel::L1 => self.cache(MemoryLevel::L1).map_or(0, |c| c.capacity_elems),
            TilingLevel::L2 => self.cache(MemoryLevel::L2).map_or(0, |c| c.capacity_elems),
            TilingLevel::L3 => self.cache(MemoryLevel::L3).map_or(0, |c| c.capacity_elems),
        }
    }

    /// Capacity, in elements, available to *one* thread at a tiling level
    /// when `threads` active threads share the chip.
    ///
    /// Private levels (registers, L1, L2 on both evaluation machines) are
    /// per-core and unaffected; shared levels divide their capacity evenly
    /// among the active threads — the contention model the multicore cost
    /// uses for its capacity constraints. At `threads == 1` this is exactly
    /// [`capacity`](Self::capacity).
    pub fn capacity_per_thread(&self, level: TilingLevel, threads: usize) -> usize {
        let cap = self.capacity(level);
        let threads = threads.max(1);
        if threads == 1 {
            return cap;
        }
        let shared = match level {
            TilingLevel::Register => false,
            TilingLevel::L1 => self.cache(MemoryLevel::L1).is_some_and(|c| c.shared),
            TilingLevel::L2 => self.cache(MemoryLevel::L2).is_some_and(|c| c.shared),
            TilingLevel::L3 => self.cache(MemoryLevel::L3).is_some_and(|c| c.shared),
        };
        if shared {
            (cap / threads).max(1)
        } else {
            cap
        }
    }

    /// Bandwidth (elements / cycle, per core for private levels, whole chip
    /// for shared levels) of the link that *fills* a tiling level:
    /// Register ← L1, L1 ← L2, L2 ← L3, L3 ← DRAM.
    pub fn fill_bandwidth(&self, level: TilingLevel) -> f64 {
        match level {
            TilingLevel::Register => self.cache(MemoryLevel::L1).map_or(1.0, |c| c.fill_bandwidth),
            TilingLevel::L1 => self.cache(MemoryLevel::L2).map_or(1.0, |c| c.fill_bandwidth),
            TilingLevel::L2 => self.cache(MemoryLevel::L3).map_or(1.0, |c| c.fill_bandwidth),
            TilingLevel::L3 => self.dram_bandwidth,
        }
    }

    /// Peak single-precision GFLOP/s of the whole chip
    /// (`2 × simd_width × fma_units × cores × clock`).
    pub fn peak_gflops(&self) -> f64 {
        2.0 * self.simd_width as f64 * self.fma_units as f64 * self.cores as f64 * self.clock_ghz
    }

    /// Peak single-precision GFLOP/s of one core.
    pub fn peak_gflops_per_core(&self) -> f64 {
        self.peak_gflops() / self.cores as f64
    }

    /// The amount of independent FMA parallelism required to saturate the FMA
    /// pipelines, by Little's law: `latency × throughput` where throughput is
    /// `fma_units × simd_width` FMAs per cycle (Sec. 6: 6 × 16 = 96 on AVX2
    /// with latency rounded up).
    pub fn required_fma_parallelism(&self) -> usize {
        self.fma_latency * self.fma_units * self.simd_width
    }

    /// A stable 64-bit fingerprint of every model parameter that influences
    /// optimization results.
    ///
    /// Two machines with the same fingerprint produce identical optimizer
    /// outputs, so cached schedules can be keyed on it. The hash is a fixed
    /// FNV-1a (not `std::hash`, whose SipHash keys are randomized per
    /// process), so fingerprints are stable across processes and platforms —
    /// a requirement for persisted schedule caches.
    pub fn fingerprint(&self) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf29ce484222325;
        const FNV_PRIME: u64 = 0x100000001b3;
        let mut h = FNV_OFFSET;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= b as u64;
                h = h.wrapping_mul(FNV_PRIME);
            }
        };
        eat(self.name.as_bytes());
        for v in [
            self.cores as u64,
            self.threads as u64,
            self.simd_width as u64,
            self.fma_units as u64,
            self.fma_latency as u64,
            self.clock_ghz.to_bits(),
            self.register_elems as u64,
            self.dram_bandwidth.to_bits(),
            self.caches.len() as u64,
        ] {
            eat(&v.to_le_bytes());
        }
        for c in &self.caches {
            for v in [
                c.level as u64,
                c.capacity_elems as u64,
                c.shared as u64,
                c.fill_bandwidth.to_bits(),
                c.line_elems as u64,
                c.associativity as u64,
            ] {
                eat(&v.to_le_bytes());
            }
        }
        h
    }
}

impl std::fmt::Display for MachineModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} ({} cores, {}-wide SIMD, L1 {} KiB, L2 {} KiB, L3 {} KiB)",
            self.name,
            self.cores,
            self.simd_width,
            self.capacity(TilingLevel::L1) * 4 / 1024,
            self.capacity(TilingLevel::L2) * 4 / 1024,
            self.capacity(TilingLevel::L3) * 4 / 1024,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn i7_matches_paper_cache_sizes() {
        let m = MachineModel::i7_9700k();
        assert_eq!(m.cores, 8);
        assert_eq!(m.capacity(TilingLevel::L1) * 4, 32 * 1024);
        assert_eq!(m.capacity(TilingLevel::L2) * 4, 256 * 1024);
        assert_eq!(m.capacity(TilingLevel::L3) * 4, 12 * 1024 * 1024);
        assert_eq!(m.simd_width, 8);
    }

    #[test]
    fn i9_matches_paper_cache_sizes() {
        let m = MachineModel::i9_10980xe();
        assert_eq!(m.cores, 18);
        assert_eq!(m.threads, 16);
        assert_eq!(m.capacity(TilingLevel::L2) * 4, 1024 * 1024);
        assert_eq!(m.simd_width, 16);
    }

    #[test]
    fn bandwidths_decrease_moving_away_from_the_core() {
        for m in [
            MachineModel::i7_9700k(),
            MachineModel::i9_10980xe(),
            MachineModel::tiny_test_machine(),
        ] {
            assert!(m.fill_bandwidth(TilingLevel::Register) >= m.fill_bandwidth(TilingLevel::L1));
            assert!(m.fill_bandwidth(TilingLevel::L1) >= m.fill_bandwidth(TilingLevel::L2));
            assert!(m.fill_bandwidth(TilingLevel::L2) >= m.fill_bandwidth(TilingLevel::L3));
        }
    }

    #[test]
    fn capacities_increase_moving_away_from_the_core() {
        for m in [
            MachineModel::i7_9700k(),
            MachineModel::i9_10980xe(),
            MachineModel::tiny_test_machine(),
        ] {
            assert!(m.capacity(TilingLevel::Register) < m.capacity(TilingLevel::L1));
            assert!(m.capacity(TilingLevel::L1) < m.capacity(TilingLevel::L2));
            assert!(m.capacity(TilingLevel::L2) < m.capacity(TilingLevel::L3));
        }
    }

    #[test]
    fn littles_law_parallelism() {
        let m = MachineModel::i7_9700k();
        // 5 cycles latency × 2 FMA units × 8 lanes = 80 independent FMAs;
        // the paper quotes 6 × 16 = 96 with a 6-cycle latency estimate.
        assert_eq!(m.required_fma_parallelism(), 80);
        assert!(m.required_fma_parallelism() >= 64);
    }

    #[test]
    fn peak_gflops_sane() {
        let m = MachineModel::i7_9700k();
        // 2 * 8 lanes * 2 FMA * 8 cores * 3.6 GHz = 921.6 GF/s
        assert!((m.peak_gflops() - 921.6).abs() < 1e-6);
        assert!((m.peak_gflops_per_core() - 115.2).abs() < 1e-6);
    }

    #[test]
    fn fingerprints_distinguish_machines_and_are_stable() {
        let i7 = MachineModel::i7_9700k();
        let i9 = MachineModel::i9_10980xe();
        let tiny = MachineModel::tiny_test_machine();
        assert_eq!(i7.fingerprint(), MachineModel::i7_9700k().fingerprint());
        assert_ne!(i7.fingerprint(), i9.fingerprint());
        assert_ne!(i7.fingerprint(), tiny.fingerprint());
        assert_ne!(i9.fingerprint(), tiny.fingerprint());
    }

    #[test]
    fn fingerprint_tracks_every_parameter_class() {
        let base = MachineModel::i7_9700k();
        let mut threads = base.clone();
        threads.threads = 4;
        assert_ne!(base.fingerprint(), threads.fingerprint());
        let mut clock = base.clone();
        clock.clock_ghz += 0.1;
        assert_ne!(base.fingerprint(), clock.fingerprint());
        let mut cache = base.clone();
        cache.caches[0].capacity_elems *= 2;
        assert_ne!(base.fingerprint(), cache.fingerprint());
        let mut bw = base.clone();
        bw.caches[2].fill_bandwidth += 1.0;
        assert_ne!(base.fingerprint(), bw.fingerprint());
    }

    #[test]
    fn per_thread_capacity_divides_shared_levels_only() {
        let m = MachineModel::i7_9700k();
        // threads == 1 is the whole-cache view, bit for bit.
        for level in TilingLevel::ALL {
            assert_eq!(m.capacity_per_thread(level, 1), m.capacity(level));
            assert_eq!(m.capacity_per_thread(level, 0), m.capacity(level));
        }
        // Private L1/L2 (and registers) are per-core: unaffected by threads.
        assert_eq!(m.capacity_per_thread(TilingLevel::Register, 8), m.register_elems);
        assert_eq!(m.capacity_per_thread(TilingLevel::L1, 8), m.capacity(TilingLevel::L1));
        assert_eq!(m.capacity_per_thread(TilingLevel::L2, 8), m.capacity(TilingLevel::L2));
        // The shared L3 splits evenly among active threads.
        assert_eq!(m.capacity_per_thread(TilingLevel::L3, 8), m.capacity(TilingLevel::L3) / 8);
        assert_eq!(m.capacity_per_thread(TilingLevel::L3, 3), m.capacity(TilingLevel::L3) / 3);
    }

    #[test]
    fn cache_lookup_and_display() {
        let m = MachineModel::tiny_test_machine();
        assert!(m.cache(MemoryLevel::L1).is_some());
        assert!(m.cache(MemoryLevel::Dram).is_none());
        assert!(!format!("{m}").is_empty());
        assert!(m.cache(MemoryLevel::L3).unwrap().shared);
    }
}
