//! Tile-size vectors and multi-level tiling configurations.

use serde::{DeError, Deserialize, Serialize, Value};

use crate::layout::LayoutConfig;
use crate::shape::{ConvShape, LoopIndex, Permutation, ALL_INDICES};
use crate::SpecError;

/// Number of tiling levels used by the full MOpt formulation:
/// register tile, L1, L2, L3 (Sec. 5 / Algorithm 1).
pub const NUM_TILING_LEVELS: usize = 4;

/// A level of the tiling hierarchy, innermost (registers) first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum TilingLevel {
    /// Register tile (the microkernel footprint).
    Register,
    /// L1-cache tile.
    L1,
    /// L2-cache tile.
    L2,
    /// L3-cache tile.
    L3,
}

impl TilingLevel {
    /// All levels from innermost (Register) to outermost (L3).
    pub const ALL: [TilingLevel; NUM_TILING_LEVELS] =
        [TilingLevel::Register, TilingLevel::L1, TilingLevel::L2, TilingLevel::L3];

    /// Zero-based position, Register = 0 ... L3 = 3.
    pub fn ordinal(self) -> usize {
        match self {
            TilingLevel::Register => 0,
            TilingLevel::L1 => 1,
            TilingLevel::L2 => 2,
            TilingLevel::L3 => 3,
        }
    }

    /// The next outer level, if any.
    pub fn outer(self) -> Option<TilingLevel> {
        match self {
            TilingLevel::Register => Some(TilingLevel::L1),
            TilingLevel::L1 => Some(TilingLevel::L2),
            TilingLevel::L2 => Some(TilingLevel::L3),
            TilingLevel::L3 => None,
        }
    }

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            TilingLevel::Register => "Reg",
            TilingLevel::L1 => "L1",
            TilingLevel::L2 => "L2",
            TilingLevel::L3 => "L3",
        }
    }
}

impl std::fmt::Display for TilingLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Which loop dimension a schedule partitions across threads (Sec. 7).
///
/// Parallelism is restricted to non-reduction dimensions so threads never
/// write the same output element. The two axes the paper's generated code
/// uses are the output-channel dimension `k` and the `n·h` output rows; the
/// optimizer searches both jointly with the tile sizes and records the
/// winner in [`TileConfig::parallel`]'s per-dimension factors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ParallelAxis {
    /// Partition the `k` (output channel) dimension across threads.
    OutputChannels,
    /// Partition the `n·h` output rows across threads.
    OutputRows,
}

impl ParallelAxis {
    /// Both searchable axes.
    pub const ALL: [ParallelAxis; 2] = [ParallelAxis::OutputChannels, ParallelAxis::OutputRows];

    /// The non-reduction dimensions this axis prefers to split, most
    /// preferred first. Later entries absorb thread counts the leading
    /// dimension's extent cannot.
    pub fn priority(self) -> [LoopIndex; 4] {
        match self {
            ParallelAxis::OutputChannels => {
                [LoopIndex::K, LoopIndex::H, LoopIndex::W, LoopIndex::N]
            }
            ParallelAxis::OutputRows => [LoopIndex::H, LoopIndex::N, LoopIndex::W, LoopIndex::K],
        }
    }

    /// Short display name.
    pub fn name(self) -> &'static str {
        match self {
            ParallelAxis::OutputChannels => "k",
            ParallelAxis::OutputRows => "rows",
        }
    }
}

impl std::fmt::Display for ParallelAxis {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A vector of seven tile sizes, one per loop index, for one tiling level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TileSizes {
    sizes: [usize; 7],
}

impl TileSizes {
    /// Tile sizes from an array in canonical `[n, k, c, r, s, h, w]` order.
    pub fn from_array(sizes: [usize; 7]) -> Self {
        TileSizes { sizes }
    }

    /// All tile sizes equal to 1.
    pub fn ones() -> Self {
        TileSizes { sizes: [1; 7] }
    }

    /// Tile sizes equal to the full problem extents ("untiled").
    pub fn full(shape: &ConvShape) -> Self {
        TileSizes { sizes: shape.extents() }
    }

    /// The tile size for a given loop index.
    pub fn get(&self, idx: LoopIndex) -> usize {
        self.sizes[idx.canonical_position()]
    }

    /// Set the tile size for a given loop index.
    pub fn set(&mut self, idx: LoopIndex, value: usize) {
        self.sizes[idx.canonical_position()] = value;
    }

    /// Builder-style [`set`](Self::set).
    pub fn with(mut self, idx: LoopIndex, value: usize) -> Self {
        self.set(idx, value);
        self
    }

    /// Tile sizes in canonical order.
    pub fn as_array(&self) -> [usize; 7] {
        self.sizes
    }

    /// Validate tile sizes against an enclosing extent vector (either the
    /// problem extents or the next-outer level's tile sizes).
    ///
    /// # Errors
    ///
    /// Returns [`SpecError::InvalidTileSize`] if any tile size is zero or
    /// exceeds the corresponding extent.
    pub fn validate(&self, enclosing: &[usize; 7]) -> Result<(), SpecError> {
        for &idx in &ALL_INDICES {
            let t = self.get(idx);
            let e = enclosing[idx.canonical_position()];
            if t == 0 || t > e {
                return Err(SpecError::InvalidTileSize { index: idx, tile: t, extent: e });
            }
        }
        Ok(())
    }

    /// Clamp every tile size into `1..=enclosing`.
    pub fn clamped(&self, enclosing: &[usize; 7]) -> TileSizes {
        let mut out = *self;
        for &idx in &ALL_INDICES {
            let e = enclosing[idx.canonical_position()];
            let t = out.get(idx).clamp(1, e.max(1));
            out.set(idx, t);
        }
        out
    }

    /// The data footprint (in elements) of one tile of the three tensors, as
    /// used in the paper's capacity constraint (Eq. 4):
    ///
    /// `Tn*Tc*(Th+Tr-1)*(Tw+Ts-1) + Tk*Tc*Tr*Ts + Tn*Tk*Th*Tw`
    ///
    /// generalized for the shape's stride, dilation, and groups: the input
    /// slice spans `(Th-1)*stride + (Tr-1)*dilation + 1` rows (similarly for
    /// columns), and when the K tile spans several channel groups the input
    /// slice covers one per-group channel band per spanned group.
    pub fn footprint(&self, shape: &ConvShape) -> usize {
        self.input_footprint(shape) + self.kernel_footprint() + self.output_footprint()
    }

    /// Footprint of the input-tensor slice accessed by one tile.
    pub fn input_footprint(&self, shape: &ConvShape) -> usize {
        let th = self.get(LoopIndex::H);
        let tw = self.get(LoopIndex::W);
        let tr = self.get(LoopIndex::R);
        let ts = self.get(LoopIndex::S);
        let in_h = (th - 1) * shape.stride + (tr - 1) * shape.dilation + 1;
        let in_w = (tw - 1) * shape.stride + (ts - 1) * shape.dilation + 1;
        let span = self.group_span(shape);
        self.get(LoopIndex::N) * self.get(LoopIndex::C) * span * in_h * in_w
    }

    /// Number of channel groups a K tile of this size can span (1 for dense
    /// shapes): `ceil(Tk / (K/groups))`, capped at the group count.
    pub fn group_span(&self, shape: &ConvShape) -> usize {
        if shape.groups <= 1 {
            return 1;
        }
        let k_per_group = shape.k_per_group().max(1);
        self.get(LoopIndex::K).div_ceil(k_per_group).clamp(1, shape.groups)
    }

    /// Footprint of the kernel-tensor slice accessed by one tile.
    pub fn kernel_footprint(&self) -> usize {
        self.get(LoopIndex::K)
            * self.get(LoopIndex::C)
            * self.get(LoopIndex::R)
            * self.get(LoopIndex::S)
    }

    /// Footprint of the output-tensor slice accessed by one tile.
    pub fn output_footprint(&self) -> usize {
        self.get(LoopIndex::N)
            * self.get(LoopIndex::K)
            * self.get(LoopIndex::H)
            * self.get(LoopIndex::W)
    }

    /// Number of tiles (product over indices of `ceil(extent/tile)`) when this
    /// tile vector subdivides `enclosing`.
    pub fn tile_count(&self, enclosing: &[usize; 7]) -> usize {
        ALL_INDICES
            .iter()
            .map(|&idx| {
                let e = enclosing[idx.canonical_position()];
                let t = self.get(idx).max(1);
                e.div_ceil(t)
            })
            .product()
    }

    /// Element-wise minimum with an extent vector (useful to cap tiles at the
    /// problem size).
    pub fn min_with(&self, enclosing: &[usize; 7]) -> TileSizes {
        let mut out = *self;
        for &idx in &ALL_INDICES {
            let e = enclosing[idx.canonical_position()];
            out.set(idx, out.get(idx).min(e).max(1));
        }
        out
    }
}

impl Default for TileSizes {
    fn default() -> Self {
        TileSizes::ones()
    }
}

impl std::fmt::Display for TileSizes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "[n{} k{} c{} r{} s{} h{} w{}]",
            self.sizes[0],
            self.sizes[1],
            self.sizes[2],
            self.sizes[3],
            self.sizes[4],
            self.sizes[5],
            self.sizes[6]
        )
    }
}

/// A complete multi-level tiling configuration for one conv2d operator:
/// one permutation and one [`TileSizes`] vector per tiling level, plus the
/// degree of parallelism assigned to each non-reduction dimension at the L2
/// level (Sec. 7).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TileConfig {
    /// The tile-loop permutation (shared across levels, as in the paper's
    /// per-class formulation; each level may use any member of the class).
    pub permutation: Permutation,
    /// Tile sizes per level, indexed by [`TilingLevel::ordinal`]:
    /// `[register, l1, l2, l3]`.
    pub tiles: [TileSizes; NUM_TILING_LEVELS],
    /// Parallelization factors per loop index (how many threads split this
    /// dimension at the L2-tile level). Product must equal the thread count.
    pub parallel: TileSizes,
    /// Per-tensor data layouts this schedule was planned (and is executed)
    /// under. Defaults to the paper's fixed layouts; schedules serialized
    /// before the layout axis existed deserialize to that default.
    pub layout: LayoutConfig,
}

impl Serialize for TileConfig {
    fn to_value(&self) -> Value {
        let mut pairs = vec![
            ("permutation".to_string(), self.permutation.to_value()),
            ("tiles".to_string(), self.tiles.to_value()),
            ("parallel".to_string(), self.parallel.to_value()),
        ];
        // The default layout is omitted, not written: database page
        // checksums cover the *re-serialized* record list, so a pre-layout
        // schedule must serialize byte-identically to its pre-layout form or
        // every legacy page would read back as corrupt.
        if !self.layout.is_default() {
            pairs.push(("layout".to_string(), self.layout.to_value()));
        }
        Value::Object(pairs)
    }
}

impl Deserialize for TileConfig {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let pairs = v.as_object().ok_or_else(|| DeError::custom("TileConfig: expected object"))?;
        let permutation: Permutation = serde::de_field(pairs, "permutation", "TileConfig")?;
        let tiles: [TileSizes; NUM_TILING_LEVELS] = serde::de_field(pairs, "tiles", "TileConfig")?;
        let parallel: TileSizes = serde::de_field(pairs, "parallel", "TileConfig")?;
        // Pre-layout schedules have no `layout` field: the paper default.
        let layout = match pairs.iter().find(|(k, _)| k == "layout").map(|(_, val)| val) {
            None | Some(Value::Null) => LayoutConfig::default(),
            Some(val) => LayoutConfig::from_value(val)?,
        };
        Ok(TileConfig { permutation, tiles, parallel, layout })
    }
}

impl TileConfig {
    /// A configuration with all tile sizes equal to the full problem extents
    /// and no parallelism (single thread).
    pub fn untiled(shape: &ConvShape) -> Self {
        TileConfig {
            permutation: Permutation::canonical(),
            tiles: [TileSizes::full(shape); NUM_TILING_LEVELS],
            parallel: TileSizes::ones(),
            layout: LayoutConfig::default(),
        }
    }

    /// Construct from explicit parts (paper-default layouts).
    pub fn new(
        permutation: Permutation,
        tiles: [TileSizes; NUM_TILING_LEVELS],
        parallel: TileSizes,
    ) -> Self {
        TileConfig { permutation, tiles, parallel, layout: LayoutConfig::default() }
    }

    /// Builder: the same schedule under different tensor layouts.
    pub fn with_layout(mut self, layout: LayoutConfig) -> Self {
        self.layout = layout;
        self
    }

    /// Tile sizes for a level.
    pub fn level(&self, level: TilingLevel) -> &TileSizes {
        &self.tiles[level.ordinal()]
    }

    /// Mutable tile sizes for a level.
    pub fn level_mut(&mut self, level: TilingLevel) -> &mut TileSizes {
        &mut self.tiles[level.ordinal()]
    }

    /// Total number of threads implied by the parallelization factors.
    pub fn total_parallelism(&self) -> usize {
        ALL_INDICES.iter().map(|&i| self.parallel.get(i)).product()
    }

    /// The schedule's parallel axis, derived from the per-dimension factors:
    /// [`ParallelAxis::OutputRows`] when the `n·h` split is wider than the
    /// `k` split, [`ParallelAxis::OutputChannels`] otherwise (including the
    /// sequential case, where every factor is 1).
    pub fn parallel_axis(&self) -> ParallelAxis {
        let rows = self.parallel.get(LoopIndex::N) * self.parallel.get(LoopIndex::H);
        if rows > self.parallel.get(LoopIndex::K) {
            ParallelAxis::OutputRows
        } else {
            ParallelAxis::OutputChannels
        }
    }

    /// Validate nesting: `register ⊆ l1 ⊆ l2 ⊆ l3 ⊆ shape`, all non-zero.
    ///
    /// # Errors
    ///
    /// Returns the first violated [`SpecError::InvalidTileSize`].
    pub fn validate(&self, shape: &ConvShape) -> Result<(), SpecError> {
        let ext = shape.extents();
        self.tiles[TilingLevel::L3.ordinal()].validate(&ext)?;
        for lvl in [TilingLevel::L2, TilingLevel::L1, TilingLevel::Register] {
            let outer = self.tiles[lvl.ordinal() + 1].as_array();
            self.tiles[lvl.ordinal()].validate(&outer)?;
        }
        Ok(())
    }

    /// Return a copy with every level clamped so the nesting invariant holds
    /// (each level is element-wise ≤ the next outer level, which is ≤ the
    /// problem extents).
    pub fn normalized(&self, shape: &ConvShape) -> TileConfig {
        let mut out = self.clone();
        let ext = shape.extents();
        out.tiles[TilingLevel::L3.ordinal()] = out.tiles[TilingLevel::L3.ordinal()].min_with(&ext);
        for lvl in [TilingLevel::L2, TilingLevel::L1, TilingLevel::Register] {
            let outer = out.tiles[lvl.ordinal() + 1].as_array();
            out.tiles[lvl.ordinal()] = out.tiles[lvl.ordinal()].min_with(&outer);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shape() -> ConvShape {
        ConvShape::new(1, 16, 8, 3, 3, 14, 14, 1).unwrap()
    }

    #[test]
    fn tile_levels_order_and_outer() {
        assert_eq!(TilingLevel::Register.ordinal(), 0);
        assert_eq!(TilingLevel::L3.ordinal(), 3);
        assert_eq!(TilingLevel::Register.outer(), Some(TilingLevel::L1));
        assert_eq!(TilingLevel::L3.outer(), None);
        assert_eq!(TilingLevel::ALL.len(), NUM_TILING_LEVELS);
    }

    #[test]
    fn footprint_matches_eq4() {
        let s = ConvShape::new(2, 16, 8, 3, 3, 14, 14, 1).unwrap();
        let t = TileSizes::from_array([2, 4, 3, 3, 3, 5, 6]);
        // In: Tn*Tc*(Th+Tr-1)*(Tw+Ts-1) = 2*3*7*8 = 336
        assert_eq!(t.input_footprint(&s), 2 * 3 * (5 + 3 - 1) * (6 + 3 - 1));
        // Ker: Tk*Tc*Tr*Ts = 4*3*3*3 = 108
        assert_eq!(t.kernel_footprint(), 4 * 3 * 3 * 3);
        // Out: Tn*Tk*Th*Tw = 2*4*5*6 = 240
        assert_eq!(t.output_footprint(), 2 * 4 * 5 * 6);
        assert_eq!(t.footprint(&s), 336 + 108 + 240);
    }

    #[test]
    fn footprint_with_stride_two() {
        let s = ConvShape::from_table1(1, 1, 9, 3, 2);
        let t = TileSizes::from_array([1, 1, 1, 3, 3, 4, 4]);
        // input rows = (4-1)*2 + 3 = 9
        assert_eq!(t.input_footprint(&s), 9 * 9);
    }

    #[test]
    fn footprint_with_dilation_widens_the_halo() {
        let dense = ConvShape::new(1, 4, 4, 3, 3, 8, 8, 1).unwrap();
        let dilated = dense.with_dilation(2).unwrap();
        let t = TileSizes::from_array([1, 2, 2, 3, 3, 4, 4]);
        // Dense rows: (4-1)*1 + 3 = 6; dilated rows: (4-1)*1 + (3-1)*2+1 = 8.
        assert_eq!(t.input_footprint(&dense), 2 * 6 * 6);
        assert_eq!(t.input_footprint(&dilated), 2 * 8 * 8);
        assert!(t.footprint(&dilated) > t.footprint(&dense));
    }

    #[test]
    fn footprint_group_span_counts_spanned_groups() {
        let grouped = ConvShape::new_general(1, 16, 8, 3, 3, 8, 8, 1, 1, 4).unwrap();
        // k_per_group = 4. A K tile of 4 stays in one group, 5 spans two,
        // 16 spans all four.
        let base = TileSizes::from_array([1, 4, 2, 3, 3, 4, 4]);
        assert_eq!(base.group_span(&grouped), 1);
        assert_eq!(base.with(LoopIndex::K, 5).group_span(&grouped), 2);
        assert_eq!(base.with(LoopIndex::K, 16).group_span(&grouped), 4);
        // Input footprint scales with the spanned groups.
        let one = base.input_footprint(&grouped);
        let all = base.with(LoopIndex::K, 16).input_footprint(&grouped);
        assert_eq!(all, one * 4);
        // Dense shapes always span one "group".
        let dense = ConvShape::new(1, 16, 8, 3, 3, 8, 8, 1).unwrap();
        assert_eq!(base.with(LoopIndex::K, 16).group_span(&dense), 1);
    }

    #[test]
    fn validate_rejects_oversized_and_zero() {
        let s = shape();
        let ext = s.extents();
        assert!(TileSizes::from_array([1, 1, 1, 1, 1, 1, 1]).validate(&ext).is_ok());
        assert!(TileSizes::full(&s).validate(&ext).is_ok());
        assert!(TileSizes::from_array([2, 1, 1, 1, 1, 1, 1]).validate(&ext).is_err());
        assert!(TileSizes::from_array([1, 0, 1, 1, 1, 1, 1]).validate(&ext).is_err());
    }

    #[test]
    fn tile_count_uses_ceiling_division() {
        let s = shape();
        let t = TileSizes::from_array([1, 5, 8, 3, 3, 4, 14]);
        // k: ceil(16/5)=4, h: ceil(14/4)=4, others 1
        assert_eq!(t.tile_count(&s.extents()), 4 * 4);
    }

    #[test]
    fn config_validate_checks_nesting() {
        let s = shape();
        let mut cfg = TileConfig::untiled(&s);
        assert!(cfg.validate(&s).is_ok());
        // Make register tile larger than L1 tile: invalid.
        cfg.tiles[TilingLevel::L1.ordinal()] = TileSizes::ones();
        assert!(cfg.validate(&s).is_err());
        // Normalizing repairs the nesting.
        let fixed = cfg.normalized(&s);
        assert!(fixed.validate(&s).is_ok());
    }

    #[test]
    fn total_parallelism_is_product() {
        let s = shape();
        let mut cfg = TileConfig::untiled(&s);
        cfg.parallel = TileSizes::ones().with(LoopIndex::K, 4).with(LoopIndex::H, 2);
        assert_eq!(cfg.total_parallelism(), 8);
    }

    #[test]
    fn parallel_axis_is_derived_from_the_factors() {
        let s = shape();
        let mut cfg = TileConfig::untiled(&s);
        // Sequential configurations default to the output-channel axis.
        assert_eq!(cfg.parallel_axis(), ParallelAxis::OutputChannels);
        cfg.parallel = TileSizes::ones().with(LoopIndex::K, 8);
        assert_eq!(cfg.parallel_axis(), ParallelAxis::OutputChannels);
        cfg.parallel = TileSizes::ones().with(LoopIndex::H, 4).with(LoopIndex::N, 2);
        assert_eq!(cfg.parallel_axis(), ParallelAxis::OutputRows);
        // Axis priorities lead with their namesake dimension.
        assert_eq!(ParallelAxis::OutputChannels.priority()[0], LoopIndex::K);
        assert_eq!(ParallelAxis::OutputRows.priority()[0], LoopIndex::H);
        assert_eq!(ParallelAxis::ALL.len(), 2);
        assert_eq!(format!("{}", ParallelAxis::OutputRows), "rows");
    }

    #[test]
    fn clamped_and_min_with() {
        let ext = [4, 4, 4, 4, 4, 4, 4];
        let t = TileSizes::from_array([0, 9, 2, 4, 5, 1, 7]).clamped(&ext);
        assert_eq!(t.as_array(), [1, 4, 2, 4, 4, 1, 4]);
    }
}
