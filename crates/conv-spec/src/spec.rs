//! The generalized problem IR: conv, matmul, pooling, and elementwise
//! computations as one tagged [`Spec`] type.
//!
//! The optimizer's analytical machinery — per-level footprints, capacity and
//! dominance pruning, certified bottleneck costs — is defined over the
//! seven-index conv2d loop nest, but none of it is conv-*specific*: every
//! other problem class this module adds embeds into that nest exactly.
//!
//! * **Matmul** `C[m][n] += A[m][k] · B[k][n]` is the conv nest with
//!   `N=1, K=m, C=k, R=S=H=1, W=n`: the kernel tensor `Ker[K][C][1][1]`
//!   *is* `A` (row-major `m×k`), the input `In[1][C][1][W]` *is* `B`
//!   (row-major `k×n`), and the output `Out[1][K][1][W]` *is* `C`
//!   (row-major `m×n`). This is precisely the GEMM that `im2col` lowers a
//!   pointwise conv to, so schedules and cost expressions transfer verbatim.
//! * **Pooling** over a `window × window` region with a stride is the
//!   depthwise conv nest (`groups == C == K`) with `R = S = window` — the
//!   data access pattern (and therefore every footprint and traffic
//!   expression) of max/average pooling is identical to a depthwise
//!   convolution of the same geometry; only the reduction operator differs,
//!   and the cost model never looks at the operator.
//! * **Elementwise** maps over `len` elements are the degenerate nest
//!   `N=K=C=R=S=H=1, W=len`: pure streaming traffic.
//!
//! [`Spec::embedded_conv_shape`] realizes the embedding;
//! [`Spec::fingerprint`] keys caches and the persistent database, with
//! `Spec::Conv` fingerprinting **bit-identically** to the bare
//! [`ConvShape`] it wraps so every pre-existing cache entry, snapshot, and
//! database page stays valid. On the wire a spec is a tagged single-key
//! object (`{"Conv": {...}}`, `{"Matmul": {...}}`, ...); a bare conv-shape
//! object is accepted as a legacy alias for `Spec::Conv`.

use serde::{Deserialize, Serialize};

use crate::shape::ConvShape;
use crate::SpecError;

/// Element type of a problem's tensors.
///
/// The executors currently compute in `f32`; `I8` is carried through
/// fingerprints and the wire format so quantized records are first-class
/// keys before the int8 executors land.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DType {
    /// 32-bit IEEE-754 float (the default everywhere).
    #[default]
    F32,
    /// 8-bit signed integer (quantized serving).
    I8,
}

impl DType {
    /// Bytes per element.
    pub fn width_bytes(self) -> usize {
        match self {
            DType::F32 => 4,
            DType::I8 => 1,
        }
    }

    fn tag(self) -> u8 {
        match self {
            DType::F32 => 0,
            DType::I8 => 1,
        }
    }
}

/// The reduction operator of a pooling spec.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PoolKind {
    /// Maximum over the window.
    Max,
    /// Arithmetic mean over the window.
    Avg,
}

impl PoolKind {
    fn tag(self) -> u8 {
        match self {
            PoolKind::Max => 0,
            PoolKind::Avg => 1,
        }
    }
}

/// The operator of an elementwise spec.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EwOp {
    /// `max(x, 0)`.
    Relu,
    /// `x + y` (two inputs).
    Add,
    /// `x · y` (two inputs).
    Mul,
}

impl EwOp {
    fn tag(self) -> u8 {
        match self {
            EwOp::Relu => 0,
            EwOp::Add => 1,
            EwOp::Mul => 2,
        }
    }

    /// Number of input tensors the operator reads.
    pub fn arity(self) -> usize {
        match self {
            EwOp::Relu => 1,
            EwOp::Add | EwOp::Mul => 2,
        }
    }
}

/// A problem specification: the tagged union the whole serving stack keys on.
///
/// Every variant embeds into the conv2d loop nest
/// ([`Spec::embedded_conv_shape`]), so one optimizer, one cost model, and
/// one schedule database serve all of them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Spec {
    /// A convolution (the original problem class).
    Conv(ConvShape),
    /// A matrix multiplication `C[m][n] += A[m][k] · B[k][n]`.
    Matmul {
        /// Rows of `A` and `C`.
        m: usize,
        /// Columns of `B` and `C`.
        n: usize,
        /// The reduction extent (columns of `A`, rows of `B`).
        k: usize,
        /// Element type.
        dtype: DType,
    },
    /// 2-D pooling over `channels` feature maps.
    Pool {
        /// Reduction operator.
        kind: PoolKind,
        /// Batch size.
        n: usize,
        /// Number of channels (pooling is per-channel).
        channels: usize,
        /// Output height.
        h: usize,
        /// Output width.
        w: usize,
        /// Square window extent.
        window: usize,
        /// Window stride.
        stride: usize,
    },
    /// An elementwise map over `len` elements.
    Elementwise {
        /// The operator.
        op: EwOp,
        /// Number of output elements.
        len: usize,
        /// Whether the inputs are read with a non-unit stride (stride 2);
        /// the traffic model treats strided streams as uncoalesced.
        strided: bool,
    },
}

impl Spec {
    /// Wrap a conv shape.
    pub fn conv(shape: ConvShape) -> Self {
        Spec::Conv(shape)
    }

    /// A dense f32 matmul spec.
    pub fn matmul(m: usize, n: usize, k: usize) -> Self {
        Spec::Matmul { m, n, k, dtype: DType::F32 }
    }

    /// Validate the extents (every extent non-zero, stride non-zero).
    ///
    /// # Errors
    ///
    /// Returns [`SpecError::InvalidShape`] naming the zero field.
    pub fn validate(&self) -> Result<(), SpecError> {
        let bad = |what: &str| Err(SpecError::InvalidShape(format!("{what} must be non-zero")));
        match *self {
            Spec::Conv(_) => Ok(()), // ConvShape constructors already validate.
            Spec::Matmul { m, n, k, .. } => {
                if m == 0 || n == 0 || k == 0 {
                    bad("matmul m/n/k")
                } else {
                    Ok(())
                }
            }
            Spec::Pool { n, channels, h, w, window, stride, .. } => {
                if n == 0 || channels == 0 || h == 0 || w == 0 || window == 0 || stride == 0 {
                    bad("pool n/channels/h/w/window/stride")
                } else {
                    Ok(())
                }
            }
            Spec::Elementwise { len, .. } => {
                if len == 0 {
                    bad("elementwise len")
                } else {
                    Ok(())
                }
            }
        }
    }

    /// The conv2d loop nest this problem embeds into (see the module docs
    /// for why each mapping is access-pattern exact).
    pub fn embedded_conv_shape(&self) -> ConvShape {
        match *self {
            Spec::Conv(shape) => shape,
            Spec::Matmul { m, n, k, .. } => ConvShape::new(1, m, k, 1, 1, 1, n, 1)
                .expect("validated matmul extents embed into a valid conv shape"),
            Spec::Pool { n, channels, h, w, window, stride, .. } => {
                ConvShape::new(n, channels, channels, window, window, h, w, stride)
                    .expect("validated pool extents embed into a valid conv shape")
                    .with_groups(channels)
                    .expect("per-channel pooling is a valid depthwise grouping")
            }
            Spec::Elementwise { len, .. } => ConvShape::new(1, 1, 1, 1, 1, 1, len, 1)
                .expect("validated elementwise length embeds into a valid conv shape"),
        }
    }

    /// Stable FNV-1a fingerprint.
    ///
    /// `Spec::Conv` hashes **exactly** like the bare [`ConvShape`]
    /// (`shape.fingerprint()`, no variant tag), so cache keys, snapshots,
    /// and database pages written before the spec IR existed keep resolving
    /// to the same entries. The other variants fold a variant tag byte first
    /// so a matmul can never collide with the conv it embeds into.
    pub fn fingerprint(&self) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf29ce484222325;
        const FNV_PRIME: u64 = 0x100000001b3;
        let mut hash = FNV_OFFSET;
        let mut eat = |v: u64| {
            for b in v.to_le_bytes() {
                hash ^= b as u64;
                hash = hash.wrapping_mul(FNV_PRIME);
            }
        };
        match *self {
            Spec::Conv(shape) => return shape.fingerprint(),
            Spec::Matmul { m, n, k, dtype } => {
                eat(1);
                eat(m as u64);
                eat(n as u64);
                eat(k as u64);
                eat(dtype.tag() as u64);
            }
            Spec::Pool { kind, n, channels, h, w, window, stride } => {
                eat(2);
                eat(kind.tag() as u64);
                eat(n as u64);
                eat(channels as u64);
                eat(h as u64);
                eat(w as u64);
                eat(window as u64);
                eat(stride as u64);
            }
            Spec::Elementwise { op, len, strided } => {
                eat(3);
                eat(op.tag() as u64);
                eat(len as u64);
                eat(strided as u64);
            }
        }
        hash
    }

    /// Total floating-point (or integer) operations.
    pub fn flops(&self) -> usize {
        match *self {
            Spec::Conv(shape) => shape.flops(),
            // Matmul and pool inherit the embedded nest's arithmetic count.
            Spec::Matmul { .. } | Spec::Pool { .. } => self.embedded_conv_shape().flops(),
            Spec::Elementwise { op, len, .. } => op.arity() * len,
        }
    }

    /// Number of output elements.
    pub fn output_elems(&self) -> usize {
        self.embedded_conv_shape().output_elems()
    }

    /// The conv shape when this is a conv spec.
    pub fn as_conv(&self) -> Option<&ConvShape> {
        match self {
            Spec::Conv(shape) => Some(shape),
            _ => None,
        }
    }

    /// Short problem-class name for stats and traces.
    pub fn class_name(&self) -> &'static str {
        match self {
            Spec::Conv(_) => "conv",
            Spec::Matmul { .. } => "matmul",
            Spec::Pool { .. } => "pool",
            Spec::Elementwise { .. } => "elementwise",
        }
    }

    /// A short human-readable description.
    pub fn describe(&self) -> String {
        match *self {
            Spec::Conv(shape) => shape.describe(),
            Spec::Matmul { m, n, k, dtype } => format!("matmul {m}x{k} * {k}x{n} ({dtype:?})"),
            Spec::Pool { kind, n, channels, h, w, window, stride } => {
                format!("{kind:?}pool N{n} C{channels} HW{h}x{w} win{window} s{stride}")
            }
            Spec::Elementwise { op, len, strided } => {
                format!("{op:?} len {len}{}", if strided { " strided" } else { "" })
            }
        }
    }
}

impl From<ConvShape> for Spec {
    fn from(shape: ConvShape) -> Self {
        Spec::Conv(shape)
    }
}

impl std::fmt::Display for Spec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.describe())
    }
}

impl Serialize for Spec {
    fn to_value(&self) -> serde::Value {
        let (tag, body) = match *self {
            Spec::Conv(shape) => ("Conv", shape.to_value()),
            Spec::Matmul { m, n, k, dtype } => (
                "Matmul",
                serde::Value::Object(vec![
                    ("m".to_string(), m.to_value()),
                    ("n".to_string(), n.to_value()),
                    ("k".to_string(), k.to_value()),
                    ("dtype".to_string(), dtype.to_value()),
                ]),
            ),
            Spec::Pool { kind, n, channels, h, w, window, stride } => (
                "Pool",
                serde::Value::Object(vec![
                    ("kind".to_string(), kind.to_value()),
                    ("n".to_string(), n.to_value()),
                    ("channels".to_string(), channels.to_value()),
                    ("h".to_string(), h.to_value()),
                    ("w".to_string(), w.to_value()),
                    ("window".to_string(), window.to_value()),
                    ("stride".to_string(), stride.to_value()),
                ]),
            ),
            Spec::Elementwise { op, len, strided } => (
                "Elementwise",
                serde::Value::Object(vec![
                    ("op".to_string(), op.to_value()),
                    ("len".to_string(), len.to_value()),
                    ("strided".to_string(), strided.to_value()),
                ]),
            ),
        };
        serde::Value::Object(vec![(tag.to_string(), body)])
    }
}

impl Deserialize for Spec {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        let obj = v.as_object().ok_or_else(|| serde::DeError::expected("object", "Spec"))?;
        // Tagged form: a single-key object whose key names the variant.
        if let Some((tag, body)) = obj.first() {
            let spec = match tag.as_str() {
                "Conv" => Some(Spec::Conv(ConvShape::from_value(body)?)),
                "Matmul" => {
                    let fields = body
                        .as_object()
                        .ok_or_else(|| serde::DeError::expected("object", "Spec::Matmul"))?;
                    let dtype = match fields.iter().find(|(key, _)| key == "dtype") {
                        None | Some((_, serde::Value::Null)) => DType::F32,
                        Some((_, value)) => DType::from_value(value)?,
                    };
                    Some(Spec::Matmul {
                        m: serde::de_field(fields, "m", "Spec::Matmul")?,
                        n: serde::de_field(fields, "n", "Spec::Matmul")?,
                        k: serde::de_field(fields, "k", "Spec::Matmul")?,
                        dtype,
                    })
                }
                "Pool" => {
                    let fields = body
                        .as_object()
                        .ok_or_else(|| serde::DeError::expected("object", "Spec::Pool"))?;
                    Some(Spec::Pool {
                        kind: serde::de_field(fields, "kind", "Spec::Pool")?,
                        n: serde::de_field(fields, "n", "Spec::Pool")?,
                        channels: serde::de_field(fields, "channels", "Spec::Pool")?,
                        h: serde::de_field(fields, "h", "Spec::Pool")?,
                        w: serde::de_field(fields, "w", "Spec::Pool")?,
                        window: serde::de_field(fields, "window", "Spec::Pool")?,
                        stride: serde::de_field(fields, "stride", "Spec::Pool")?,
                    })
                }
                "Elementwise" => {
                    let fields = body
                        .as_object()
                        .ok_or_else(|| serde::DeError::expected("object", "Spec::Elementwise"))?;
                    Some(Spec::Elementwise {
                        op: serde::de_field(fields, "op", "Spec::Elementwise")?,
                        len: serde::de_field(fields, "len", "Spec::Elementwise")?,
                        strided: serde::de_field(fields, "strided", "Spec::Elementwise")?,
                    })
                }
                _ => None,
            };
            if let Some(spec) = spec {
                spec.validate()
                    .map_err(|e| serde::DeError::custom(format!("invalid Spec: {e}")))?;
                return Ok(spec);
            }
        }
        // Legacy alias: a bare conv-shape object is Spec::Conv.
        ConvShape::from_value(v).map(Spec::Conv).map_err(|_| {
            serde::DeError::expected("a tagged Spec object or a bare ConvShape object", "Spec")
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conv_spec_fingerprint_matches_the_bare_shape() {
        let shape = ConvShape::new(1, 32, 16, 3, 3, 56, 56, 1).unwrap();
        assert_eq!(Spec::Conv(shape).fingerprint(), shape.fingerprint());
    }

    #[test]
    fn matmul_embeds_as_the_im2col_gemm_nest() {
        let spec = Spec::matmul(64, 196, 512);
        let conv = spec.embedded_conv_shape();
        assert_eq!((conv.n, conv.k, conv.c), (1, 64, 512));
        assert_eq!((conv.r, conv.s, conv.h, conv.w), (1, 1, 1, 196));
        assert_eq!(conv.stride, 1);
        // FLOPs of the embedding are the matmul's 2·m·n·k.
        assert_eq!(spec.flops(), 2 * 64 * 196 * 512);
        assert_eq!(spec.output_elems(), 64 * 196);
    }

    #[test]
    fn pool_embeds_as_a_depthwise_conv() {
        let spec = Spec::Pool {
            kind: PoolKind::Max,
            n: 1,
            channels: 64,
            h: 56,
            w: 56,
            window: 3,
            stride: 2,
        };
        let conv = spec.embedded_conv_shape();
        assert!(conv.is_depthwise());
        assert_eq!((conv.k, conv.c, conv.groups), (64, 64, 64));
        assert_eq!((conv.r, conv.s, conv.stride), (3, 3, 2));
    }

    #[test]
    fn elementwise_embeds_as_a_stream() {
        let spec = Spec::Elementwise { op: EwOp::Add, len: 4096, strided: false };
        let conv = spec.embedded_conv_shape();
        assert_eq!(conv.output_elems(), 4096);
        assert_eq!(spec.flops(), 2 * 4096);
    }

    #[test]
    fn fingerprints_distinguish_classes_and_fields() {
        let mm = Spec::matmul(64, 196, 512);
        // The embedded conv of a matmul is a *different* key from the matmul
        // itself: the class tag separates them.
        assert_ne!(mm.fingerprint(), Spec::Conv(mm.embedded_conv_shape()).fingerprint());
        assert_ne!(mm.fingerprint(), Spec::matmul(196, 64, 512).fingerprint());
        assert_ne!(
            mm.fingerprint(),
            Spec::Matmul { m: 64, n: 196, k: 512, dtype: DType::I8 }.fingerprint()
        );
        let pool =
            Spec::Pool { kind: PoolKind::Max, n: 1, channels: 8, h: 8, w: 8, window: 2, stride: 2 };
        let avg =
            Spec::Pool { kind: PoolKind::Avg, n: 1, channels: 8, h: 8, w: 8, window: 2, stride: 2 };
        assert_ne!(pool.fingerprint(), avg.fingerprint());
        assert_ne!(
            Spec::Elementwise { op: EwOp::Relu, len: 64, strided: false }.fingerprint(),
            Spec::Elementwise { op: EwOp::Relu, len: 64, strided: true }.fingerprint(),
        );
    }

    #[test]
    fn tagged_round_trip_preserves_every_variant() {
        let specs = [
            Spec::Conv(ConvShape::new(2, 8, 4, 3, 3, 10, 10, 1).unwrap()),
            Spec::matmul(1000, 1, 2048),
            Spec::Matmul { m: 3, n: 5, k: 7, dtype: DType::I8 },
            Spec::Pool {
                kind: PoolKind::Avg,
                n: 1,
                channels: 2048,
                h: 1,
                w: 1,
                window: 7,
                stride: 1,
            },
            Spec::Elementwise { op: EwOp::Mul, len: 100, strided: true },
        ];
        for spec in specs {
            let text = serde_json::to_string(&spec).unwrap();
            let back: Spec = serde_json::from_str(&text).unwrap();
            assert_eq!(spec, back, "round trip failed for {text}");
            assert_eq!(spec.fingerprint(), back.fingerprint());
        }
    }

    #[test]
    fn bare_conv_shape_objects_parse_as_legacy_conv_specs() {
        let shape = ConvShape::new(1, 8, 4, 3, 3, 10, 10, 1).unwrap();
        let legacy = serde_json::to_string(&shape).unwrap();
        assert!(legacy.starts_with("{\"n\""), "bare shape text: {legacy}");
        let spec: Spec = serde_json::from_str(&legacy).unwrap();
        assert_eq!(spec, Spec::Conv(shape));
        assert_eq!(spec.fingerprint(), shape.fingerprint());
        // Matmul dtype is optional on the wire (defaults to f32).
        let spec: Spec = serde_json::from_str("{\"Matmul\":{\"m\":4,\"n\":5,\"k\":6}}").unwrap();
        assert_eq!(spec, Spec::matmul(4, 5, 6));
    }

    #[test]
    fn invalid_specs_are_rejected_on_parse() {
        for text in [
            "{\"Matmul\":{\"m\":0,\"n\":5,\"k\":6}}",
            "{\"Pool\":{\"kind\":\"Max\",\"n\":1,\"channels\":0,\"h\":1,\"w\":1,\"window\":1,\"stride\":1}}",
            "{\"Elementwise\":{\"op\":\"Relu\",\"len\":0,\"strided\":false}}",
            "{\"Unknown\":{}}",
            "42",
        ] {
            assert!(serde_json::from_str::<Spec>(text).is_err(), "{text} must not parse");
        }
    }
}
