//! Convolution problem shapes and the seven-index loop algebra.

use serde::{Deserialize, Serialize};

use crate::SpecError;

/// The seven loop indices of the conv2d loop nest.
///
/// The order of the enum discriminants matches the canonical loop order used
/// throughout the paper: `n, k, c, r, s, h, w` (Listing 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum LoopIndex {
    /// Batch dimension.
    N,
    /// Output-channel dimension.
    K,
    /// Input-channel (reduction) dimension.
    C,
    /// Kernel-row (reduction) dimension.
    R,
    /// Kernel-column (reduction) dimension.
    S,
    /// Output-row dimension.
    H,
    /// Output-column dimension.
    W,
}

/// All seven loop indices in canonical order.
pub const ALL_INDICES: [LoopIndex; 7] = [
    LoopIndex::N,
    LoopIndex::K,
    LoopIndex::C,
    LoopIndex::R,
    LoopIndex::S,
    LoopIndex::H,
    LoopIndex::W,
];

impl LoopIndex {
    /// Position of this index in the canonical order (`N` = 0, ..., `W` = 6).
    pub fn canonical_position(self) -> usize {
        match self {
            LoopIndex::N => 0,
            LoopIndex::K => 1,
            LoopIndex::C => 2,
            LoopIndex::R => 3,
            LoopIndex::S => 4,
            LoopIndex::H => 5,
            LoopIndex::W => 6,
        }
    }

    /// Lower-case single-letter name used in diagnostics and printed tables.
    pub fn name(self) -> &'static str {
        match self {
            LoopIndex::N => "n",
            LoopIndex::K => "k",
            LoopIndex::C => "c",
            LoopIndex::R => "r",
            LoopIndex::S => "s",
            LoopIndex::H => "h",
            LoopIndex::W => "w",
        }
    }

    /// Whether the index appears in the `Out[n][k][h][w]` access.
    pub fn present_in_output(self) -> bool {
        matches!(self, LoopIndex::N | LoopIndex::K | LoopIndex::H | LoopIndex::W)
    }

    /// Whether the index appears in the `In[n][c][h+r][w+s]` access.
    pub fn present_in_input(self) -> bool {
        !matches!(self, LoopIndex::K)
    }

    /// Whether the index appears in the `Ker[k][c][r][s]` access.
    pub fn present_in_kernel(self) -> bool {
        matches!(self, LoopIndex::K | LoopIndex::C | LoopIndex::R | LoopIndex::S)
    }

    /// Whether the index is a reduction dimension (absent from the output).
    pub fn is_reduction(self) -> bool {
        !self.present_in_output()
    }

    /// Parse a single-letter (case-insensitive) index name.
    pub fn parse(s: &str) -> Option<Self> {
        match s.trim().to_ascii_lowercase().as_str() {
            "n" => Some(LoopIndex::N),
            "k" => Some(LoopIndex::K),
            "c" => Some(LoopIndex::C),
            "r" => Some(LoopIndex::R),
            "s" => Some(LoopIndex::S),
            "h" => Some(LoopIndex::H),
            "w" => Some(LoopIndex::W),
            _ => None,
        }
    }
}

impl std::fmt::Display for LoopIndex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A conv2d problem shape: the seven loop extents plus the kernel stride.
///
/// `h` and `w` are the *output* spatial extents; the input spatial extents are
/// derived (`input_h()` / `input_w()`). The paper's Table 1 specifies the
/// input image height/width `H/W`; [`ConvShape::from_table1`] converts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ConvShape {
    /// Batch size.
    pub n: usize,
    /// Number of output channels.
    pub k: usize,
    /// Number of input channels.
    pub c: usize,
    /// Kernel height.
    pub r: usize,
    /// Kernel width.
    pub s: usize,
    /// Output height.
    pub h: usize,
    /// Output width.
    pub w: usize,
    /// Kernel stride (same in both spatial dimensions, 1 or 2 in the paper).
    pub stride: usize,
}

impl ConvShape {
    /// Create a shape, validating that every extent is non-zero.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError::InvalidShape`] if any extent or the stride is zero.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        n: usize,
        k: usize,
        c: usize,
        r: usize,
        s: usize,
        h: usize,
        w: usize,
        stride: usize,
    ) -> Result<Self, SpecError> {
        let shape = ConvShape { n, k, c, r, s, h, w, stride };
        for &idx in &ALL_INDICES {
            if shape.extent(idx) == 0 {
                return Err(SpecError::InvalidShape(format!("extent of {idx} is zero")));
            }
        }
        if stride == 0 {
            return Err(SpecError::InvalidShape("stride is zero".into()));
        }
        Ok(shape)
    }

    /// A shape from a Table-1 style row: `K`, `C`, input `H/W` (square),
    /// kernel `R/S` (square), stride, batch 1.
    ///
    /// The output spatial extent is `(H_in - R) / stride + 1` ("valid"
    /// convolution, as in the paper's generated code which does not pad).
    pub fn from_table1(k: usize, c: usize, hw_in: usize, rs: usize, stride: usize) -> Self {
        let out = (hw_in - rs) / stride + 1;
        ConvShape { n: 1, k, c, r: rs, s: rs, h: out, w: out, stride }
    }

    /// A degenerate shape with all extents 1 except `which`, which is 2.
    /// Useful in unit tests of the loop algebra.
    pub fn unit(which: LoopIndex) -> Self {
        let mut s = ConvShape { n: 1, k: 1, c: 1, r: 1, s: 1, h: 1, w: 1, stride: 1 };
        s.set_extent(which, 1);
        s
    }

    /// The extent of the loop for `idx`.
    pub fn extent(&self, idx: LoopIndex) -> usize {
        match idx {
            LoopIndex::N => self.n,
            LoopIndex::K => self.k,
            LoopIndex::C => self.c,
            LoopIndex::R => self.r,
            LoopIndex::S => self.s,
            LoopIndex::H => self.h,
            LoopIndex::W => self.w,
        }
    }

    /// Set the extent of the loop for `idx`.
    pub fn set_extent(&mut self, idx: LoopIndex, value: usize) {
        match idx {
            LoopIndex::N => self.n = value,
            LoopIndex::K => self.k = value,
            LoopIndex::C => self.c = value,
            LoopIndex::R => self.r = value,
            LoopIndex::S => self.s = value,
            LoopIndex::H => self.h = value,
            LoopIndex::W => self.w = value,
        }
    }

    /// All extents in canonical `[n, k, c, r, s, h, w]` order.
    pub fn extents(&self) -> [usize; 7] {
        [self.n, self.k, self.c, self.r, self.s, self.h, self.w]
    }

    /// Input image height required by this output shape.
    pub fn input_h(&self) -> usize {
        (self.h - 1) * self.stride + self.r
    }

    /// Input image width required by this output shape.
    pub fn input_w(&self) -> usize {
        (self.w - 1) * self.stride + self.s
    }

    /// Number of elements of the output tensor `Out[n][k][h][w]`.
    pub fn output_elems(&self) -> usize {
        self.n * self.k * self.h * self.w
    }

    /// Number of elements of the input tensor `In[n][c][h_in][w_in]`.
    pub fn input_elems(&self) -> usize {
        self.n * self.c * self.input_h() * self.input_w()
    }

    /// Number of elements of the kernel tensor `Ker[k][c][r][s]`.
    pub fn kernel_elems(&self) -> usize {
        self.k * self.c * self.r * self.s
    }

    /// Total floating-point operations (multiply + add counted separately).
    pub fn flops(&self) -> usize {
        2 * self.n * self.k * self.c * self.r * self.s * self.h * self.w
    }

    /// Number of iterations of the seven-deep loop nest (MACs).
    pub fn macs(&self) -> usize {
        self.flops() / 2
    }

    /// Whether this is a 1x1 ("pointwise") convolution.
    pub fn is_pointwise(&self) -> bool {
        self.r == 1 && self.s == 1
    }

    /// A short human-readable description such as `K64 C32 HW272 RS3 s1`.
    pub fn describe(&self) -> String {
        format!(
            "N{} K{} C{} HW{}x{} RS{}x{} s{}",
            self.n, self.k, self.c, self.h, self.w, self.r, self.s, self.stride
        )
    }
}

impl std::fmt::Display for ConvShape {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.describe())
    }
}

/// A permutation of the seven tile-loop indices.
///
/// Index 0 of the inner vector is the **outermost** loop and index 6 is the
/// **innermost** loop. (The paper writes permutations as `⟨p7, ..., p1⟩` with
/// `p1` innermost; we store the same order, outermost first.)
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Permutation {
    order: [LoopIndex; 7],
}

impl Permutation {
    /// Build a permutation from outermost to innermost order.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError::InvalidPermutation`] if the seven indices are not
    /// each present exactly once.
    pub fn new(order: [LoopIndex; 7]) -> Result<Self, SpecError> {
        let mut seen = [false; 7];
        for &idx in &order {
            let p = idx.canonical_position();
            if seen[p] {
                return Err(SpecError::InvalidPermutation(format!("duplicate index {idx}")));
            }
            seen[p] = true;
        }
        Ok(Permutation { order })
    }

    /// The canonical loop order `n, k, c, r, s, h, w` (outermost to innermost).
    pub fn canonical() -> Self {
        Permutation { order: ALL_INDICES }
    }

    /// Parse a permutation from a string of seven letters, outermost first,
    /// e.g. `"kcrsnhw"`.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError::InvalidPermutation`] on malformed input.
    pub fn parse(text: &str) -> Result<Self, SpecError> {
        let letters: Vec<char> = text.trim().chars().filter(|c| !c.is_whitespace()).collect();
        if letters.len() != 7 {
            return Err(SpecError::InvalidPermutation(format!(
                "expected 7 loop letters, got {}",
                letters.len()
            )));
        }
        let mut order = [LoopIndex::N; 7];
        for (i, ch) in letters.iter().enumerate() {
            order[i] = LoopIndex::parse(&ch.to_string()).ok_or_else(|| {
                SpecError::InvalidPermutation(format!("unknown loop letter '{ch}'"))
            })?;
        }
        Permutation::new(order)
    }

    /// Loop order from outermost (first) to innermost (last).
    pub fn outer_to_inner(&self) -> &[LoopIndex; 7] {
        &self.order
    }

    /// Loop order from innermost (first) to outermost (last).
    pub fn inner_to_outer(&self) -> [LoopIndex; 7] {
        let mut rev = self.order;
        rev.reverse();
        rev
    }

    /// The innermost tile-loop index.
    pub fn innermost(&self) -> LoopIndex {
        self.order[6]
    }

    /// The outermost tile-loop index.
    pub fn outermost(&self) -> LoopIndex {
        self.order[0]
    }

    /// Position of `idx` counted from the innermost loop, 1-based as in the
    /// paper (innermost = 1, outermost = 7).
    pub fn position_from_inner(&self, idx: LoopIndex) -> usize {
        let pos_from_outer =
            self.order.iter().position(|&x| x == idx).expect("permutation contains all indices");
        7 - pos_from_outer
    }

    /// The indices strictly *outside* (surrounding) position `pos` counted
    /// from the innermost loop. E.g. `surrounding_of_position(1)` returns the
    /// six outer loops of the innermost loop.
    pub fn indices_outside_position(&self, pos: usize) -> Vec<LoopIndex> {
        self.order.iter().copied().filter(|&idx| self.position_from_inner(idx) > pos).collect()
    }

    /// Enumerate all 5040 permutations of the seven loop indices.
    pub fn enumerate_all() -> Vec<Permutation> {
        let mut result = Vec::with_capacity(5040);
        let mut current = ALL_INDICES;
        permute_recursive(&mut current, 0, &mut result);
        result
    }

    /// A compact textual form, outermost first, e.g. `kcrsnhw`.
    pub fn compact(&self) -> String {
        self.order.iter().map(|i| i.name()).collect()
    }
}

fn permute_recursive(arr: &mut [LoopIndex; 7], start: usize, out: &mut Vec<Permutation>) {
    if start == arr.len() {
        out.push(Permutation { order: *arr });
        return;
    }
    for i in start..arr.len() {
        arr.swap(start, i);
        permute_recursive(arr, start + 1, out);
        arr.swap(start, i);
    }
}

impl std::fmt::Display for Permutation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "⟨{}⟩", self.compact())
    }
}

impl Default for Permutation {
    fn default() -> Self {
        Permutation::canonical()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_presence_matches_paper_structure() {
        // Each of the seven loop indices is present in exactly two of the
        // three tensors (Sec. 4 of the paper).
        for &idx in &ALL_INDICES {
            let count = [idx.present_in_output(), idx.present_in_input(), idx.present_in_kernel()]
                .iter()
                .filter(|&&b| b)
                .count();
            assert_eq!(count, 2, "{idx} should be present in exactly two tensors");
        }
    }

    #[test]
    fn output_absent_indices_are_reductions() {
        assert!(LoopIndex::C.is_reduction());
        assert!(LoopIndex::R.is_reduction());
        assert!(LoopIndex::S.is_reduction());
        assert!(!LoopIndex::N.is_reduction());
        assert!(!LoopIndex::K.is_reduction());
        assert!(!LoopIndex::H.is_reduction());
        assert!(!LoopIndex::W.is_reduction());
    }

    #[test]
    fn shape_new_rejects_zero_extent() {
        assert!(ConvShape::new(1, 0, 1, 1, 1, 1, 1, 1).is_err());
        assert!(ConvShape::new(1, 1, 1, 1, 1, 1, 1, 0).is_err());
        assert!(ConvShape::new(1, 2, 3, 1, 1, 4, 4, 1).is_ok());
    }

    #[test]
    fn from_table1_computes_output_extent() {
        // Yolo layer Y0: K=32, C=3, H/W=544, R/S=3, stride 1 → output 542.
        let y0 = ConvShape::from_table1(32, 3, 544, 3, 1);
        assert_eq!(y0.h, 542);
        assert_eq!(y0.w, 542);
        assert_eq!(y0.input_h(), 544);
        assert_eq!(y0.input_w(), 544);
        // ResNet R1*: K=64, C=3, H/W=224, R/S=7, stride 2 → output 109.
        let r1 = ConvShape::from_table1(64, 3, 224, 7, 2);
        assert_eq!(r1.h, (224 - 7) / 2 + 1);
        assert_eq!(r1.input_h(), (r1.h - 1) * 2 + 7);
    }

    #[test]
    fn flops_and_element_counts() {
        let s = ConvShape::new(2, 4, 3, 3, 3, 8, 8, 1).unwrap();
        assert_eq!(s.flops(), 2 * 2 * 4 * 3 * 3 * 3 * 8 * 8);
        assert_eq!(s.macs() * 2, s.flops());
        assert_eq!(s.output_elems(), 2 * 4 * 8 * 8);
        assert_eq!(s.kernel_elems(), 4 * 3 * 3 * 3);
        assert_eq!(s.input_elems(), 2 * 3 * 10 * 10);
    }

    #[test]
    fn extent_roundtrip() {
        let mut s = ConvShape::new(1, 2, 3, 4, 5, 6, 7, 1).unwrap();
        for (i, &idx) in ALL_INDICES.iter().enumerate() {
            assert_eq!(s.extent(idx), i + 1);
            s.set_extent(idx, 10 + i);
            assert_eq!(s.extent(idx), 10 + i);
        }
    }

    #[test]
    fn permutation_parse_and_display() {
        let p = Permutation::parse("kcrsnhw").unwrap();
        assert_eq!(p.innermost(), LoopIndex::W);
        assert_eq!(p.outermost(), LoopIndex::K);
        assert_eq!(p.compact(), "kcrsnhw");
        assert!(Permutation::parse("kcrsnh").is_err());
        assert!(Permutation::parse("kcrsnhh").is_err());
        assert!(Permutation::parse("kcrsnhx").is_err());
    }

    #[test]
    fn permutation_positions_are_one_based_from_inner() {
        let p = Permutation::parse("kcrsnhw").unwrap();
        assert_eq!(p.position_from_inner(LoopIndex::W), 1);
        assert_eq!(p.position_from_inner(LoopIndex::H), 2);
        assert_eq!(p.position_from_inner(LoopIndex::N), 3);
        assert_eq!(p.position_from_inner(LoopIndex::K), 7);
        let outside = p.indices_outside_position(3);
        assert_eq!(outside.len(), 4);
        assert!(outside.contains(&LoopIndex::K));
        assert!(!outside.contains(&LoopIndex::N));
    }

    #[test]
    fn enumerate_all_has_5040_unique_permutations() {
        let all = Permutation::enumerate_all();
        assert_eq!(all.len(), 5040);
        let unique: std::collections::HashSet<String> = all.iter().map(|p| p.compact()).collect();
        assert_eq!(unique.len(), 5040);
    }

    #[test]
    fn inner_to_outer_reverses() {
        let p = Permutation::parse("nkcrshw").unwrap();
        let rev = p.inner_to_outer();
        assert_eq!(rev[0], LoopIndex::W);
        assert_eq!(rev[6], LoopIndex::N);
    }
}
