//! Convolution problem shapes and the seven-index loop algebra.

use serde::{Deserialize, Serialize};

use crate::SpecError;

/// The seven loop indices of the conv2d loop nest.
///
/// The order of the enum discriminants matches the canonical loop order used
/// throughout the paper: `n, k, c, r, s, h, w` (Listing 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum LoopIndex {
    /// Batch dimension.
    N,
    /// Output-channel dimension.
    K,
    /// Input-channel (reduction) dimension.
    C,
    /// Kernel-row (reduction) dimension.
    R,
    /// Kernel-column (reduction) dimension.
    S,
    /// Output-row dimension.
    H,
    /// Output-column dimension.
    W,
}

/// All seven loop indices in canonical order.
pub const ALL_INDICES: [LoopIndex; 7] = [
    LoopIndex::N,
    LoopIndex::K,
    LoopIndex::C,
    LoopIndex::R,
    LoopIndex::S,
    LoopIndex::H,
    LoopIndex::W,
];

impl LoopIndex {
    /// Position of this index in the canonical order (`N` = 0, ..., `W` = 6).
    pub fn canonical_position(self) -> usize {
        match self {
            LoopIndex::N => 0,
            LoopIndex::K => 1,
            LoopIndex::C => 2,
            LoopIndex::R => 3,
            LoopIndex::S => 4,
            LoopIndex::H => 5,
            LoopIndex::W => 6,
        }
    }

    /// Lower-case single-letter name used in diagnostics and printed tables.
    pub fn name(self) -> &'static str {
        match self {
            LoopIndex::N => "n",
            LoopIndex::K => "k",
            LoopIndex::C => "c",
            LoopIndex::R => "r",
            LoopIndex::S => "s",
            LoopIndex::H => "h",
            LoopIndex::W => "w",
        }
    }

    /// Whether the index appears in the `Out[n][k][h][w]` access.
    pub fn present_in_output(self) -> bool {
        matches!(self, LoopIndex::N | LoopIndex::K | LoopIndex::H | LoopIndex::W)
    }

    /// Whether the index appears in the `In[n][c][h+r][w+s]` access.
    pub fn present_in_input(self) -> bool {
        !matches!(self, LoopIndex::K)
    }

    /// Whether the index appears in the `Ker[k][c][r][s]` access.
    pub fn present_in_kernel(self) -> bool {
        matches!(self, LoopIndex::K | LoopIndex::C | LoopIndex::R | LoopIndex::S)
    }

    /// Whether the index is a reduction dimension (absent from the output).
    pub fn is_reduction(self) -> bool {
        !self.present_in_output()
    }

    /// Parse a single-letter (case-insensitive) index name.
    pub fn parse(s: &str) -> Option<Self> {
        match s.trim().to_ascii_lowercase().as_str() {
            "n" => Some(LoopIndex::N),
            "k" => Some(LoopIndex::K),
            "c" => Some(LoopIndex::C),
            "r" => Some(LoopIndex::R),
            "s" => Some(LoopIndex::S),
            "h" => Some(LoopIndex::H),
            "w" => Some(LoopIndex::W),
            _ => None,
        }
    }
}

impl std::fmt::Display for LoopIndex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A conv2d problem shape: the seven loop extents plus the kernel stride,
/// dilation, and channel-group count.
///
/// `h` and `w` are the *output* spatial extents; the input spatial extents are
/// derived (`input_h()` / `input_w()`). The paper's Table 1 specifies the
/// input image height/width `H/W`; [`ConvShape::from_table1`] converts.
///
/// # Generalized convolution
///
/// Beyond the paper's dense stride-1/2 conv2d, a shape carries:
///
/// * `dilation` — the kernel is sampled every `dilation` input pixels, so a
///   `R×S` kernel covers an effective window of
///   `((R-1)·dilation+1) × ((S-1)·dilation+1)` input pixels (DeepLab/ESPNet
///   style atrous convolution). `dilation == 1` is the dense case.
/// * `groups` — input and output channels are split into `groups` independent
///   convolutions: output channel `k` reduces only over the
///   `C/groups` input channels of its group. The kernel tensor shrinks to
///   `Ker[K][C/groups][R][S]`, and the canonical C loop runs over the
///   *per-group* reduction extent [`ConvShape::reduction_c`].
///   `groups == C == K` is a depthwise convolution (MobileNet).
///
/// `c` and `k` always store the *total* channel counts of the tensors;
/// [`ConvShape::extent`] reports the loop-trip counts (so
/// `extent(LoopIndex::C) == c / groups`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ConvShape {
    /// Batch size.
    pub n: usize,
    /// Number of output channels.
    pub k: usize,
    /// Total number of input channels (across all groups).
    pub c: usize,
    /// Kernel height.
    pub r: usize,
    /// Kernel width.
    pub s: usize,
    /// Output height.
    pub h: usize,
    /// Output width.
    pub w: usize,
    /// Kernel stride (same in both spatial dimensions, 1 or 2 in the paper).
    pub stride: usize,
    /// Kernel dilation (same in both spatial dimensions); 1 = dense.
    pub dilation: usize,
    /// Number of channel groups; 1 = dense, `c == k == groups` = depthwise.
    pub groups: usize,
}

impl ConvShape {
    /// Create a dense (dilation 1, a single channel group) shape, validating
    /// that every extent is non-zero.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError::InvalidShape`] if any extent or the stride is zero.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        n: usize,
        k: usize,
        c: usize,
        r: usize,
        s: usize,
        h: usize,
        w: usize,
        stride: usize,
    ) -> Result<Self, SpecError> {
        Self::new_general(n, k, c, r, s, h, w, stride, 1, 1)
    }

    /// Create a fully general shape (stride, dilation, groups), validating
    /// every field.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError::InvalidShape`] if any extent, the stride, the
    /// dilation, or the group count is zero, or if `groups` does not divide
    /// both `c` and `k`.
    #[allow(clippy::too_many_arguments)]
    pub fn new_general(
        n: usize,
        k: usize,
        c: usize,
        r: usize,
        s: usize,
        h: usize,
        w: usize,
        stride: usize,
        dilation: usize,
        groups: usize,
    ) -> Result<Self, SpecError> {
        let shape = ConvShape { n, k, c, r, s, h, w, stride, dilation, groups };
        if groups == 0 {
            return Err(SpecError::InvalidShape("groups is zero".into()));
        }
        for &idx in &ALL_INDICES {
            if shape.extent(idx) == 0 {
                return Err(SpecError::InvalidShape(format!("extent of {idx} is zero")));
            }
        }
        if stride == 0 {
            return Err(SpecError::InvalidShape("stride is zero".into()));
        }
        if dilation == 0 {
            return Err(SpecError::InvalidShape("dilation is zero".into()));
        }
        if !c.is_multiple_of(groups) || !k.is_multiple_of(groups) {
            return Err(SpecError::InvalidShape(format!(
                "groups {groups} must divide both c {c} and k {k}"
            )));
        }
        Ok(shape)
    }

    /// Builder-style copy with a different dilation.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError::InvalidShape`] when `dilation` is zero.
    pub fn with_dilation(self, dilation: usize) -> Result<Self, SpecError> {
        Self::new_general(
            self.n,
            self.k,
            self.c,
            self.r,
            self.s,
            self.h,
            self.w,
            self.stride,
            dilation,
            self.groups,
        )
    }

    /// Builder-style copy with a different group count.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError::InvalidShape`] when `groups` is zero or does not
    /// divide both channel counts.
    pub fn with_groups(self, groups: usize) -> Result<Self, SpecError> {
        Self::new_general(
            self.n,
            self.k,
            self.c,
            self.r,
            self.s,
            self.h,
            self.w,
            self.stride,
            self.dilation,
            groups,
        )
    }

    /// A shape from a Table-1 style row: `K`, `C`, input `H/W` (square),
    /// kernel `R/S` (square), stride, batch 1.
    ///
    /// The output spatial extent is `(H_in - R) / stride + 1` ("valid"
    /// convolution, as in the paper's generated code which does not pad).
    ///
    /// # Panics
    ///
    /// Panics if the kernel does not fit the input (`rs > hw_in`).
    pub fn from_table1(k: usize, c: usize, hw_in: usize, rs: usize, stride: usize) -> Self {
        assert!(rs <= hw_in, "kernel extent {rs} exceeds input extent {hw_in}");
        let out = (hw_in - rs) / stride + 1;
        ConvShape { n: 1, k, c, r: rs, s: rs, h: out, w: out, stride, dilation: 1, groups: 1 }
    }

    /// A depthwise shape (`groups == c == k`) in Table-1 style: `channels`,
    /// square input `H/W`, square kernel `R/S`, stride, batch 1.
    pub fn depthwise(channels: usize, hw_in: usize, rs: usize, stride: usize) -> Self {
        let mut shape = Self::from_table1(channels, channels, hw_in, rs, stride);
        shape.groups = channels;
        shape
    }

    /// A dilated shape in Table-1 style: the output extent accounts for the
    /// effective (dilated) kernel window, `(H_in - (R-1)·dilation - 1) /
    /// stride + 1`.
    ///
    /// # Panics
    ///
    /// Panics if the effective (dilated) kernel window does not fit the
    /// input (`(rs-1)·dilation + 1 > hw_in`) — easy to hit with large
    /// dilations on small feature maps.
    pub fn from_table1_dilated(
        k: usize,
        c: usize,
        hw_in: usize,
        rs: usize,
        stride: usize,
        dilation: usize,
    ) -> Self {
        let eff = (rs - 1) * dilation + 1;
        assert!(
            eff <= hw_in,
            "effective dilated kernel extent {eff} (rs {rs}, dilation {dilation}) exceeds input extent {hw_in}"
        );
        let out = (hw_in - eff) / stride + 1;
        ConvShape { n: 1, k, c, r: rs, s: rs, h: out, w: out, stride, dilation, groups: 1 }
    }

    /// A degenerate shape with all extents 1 except `which`, which is 2.
    /// Useful in unit tests of the loop algebra.
    pub fn unit(which: LoopIndex) -> Self {
        let mut s = ConvShape {
            n: 1,
            k: 1,
            c: 1,
            r: 1,
            s: 1,
            h: 1,
            w: 1,
            stride: 1,
            dilation: 1,
            groups: 1,
        };
        s.set_extent(which, 1);
        s
    }

    /// The loop-trip count for `idx`.
    ///
    /// For every index but `C` this is the corresponding field; for `C` it is
    /// the *per-group* reduction extent `c / groups`, because the canonical C
    /// loop of a grouped convolution only runs over the channels of one group.
    pub fn extent(&self, idx: LoopIndex) -> usize {
        match idx {
            LoopIndex::N => self.n,
            LoopIndex::K => self.k,
            LoopIndex::C => self.reduction_c(),
            LoopIndex::R => self.r,
            LoopIndex::S => self.s,
            LoopIndex::H => self.h,
            LoopIndex::W => self.w,
        }
    }

    /// Set the loop-trip count for `idx`. Setting `C` scales the total
    /// channel count so that [`ConvShape::extent`] round-trips
    /// (`c = value * groups`).
    pub fn set_extent(&mut self, idx: LoopIndex, value: usize) {
        match idx {
            LoopIndex::N => self.n = value,
            LoopIndex::K => self.k = value,
            LoopIndex::C => self.c = value * self.groups,
            LoopIndex::R => self.r = value,
            LoopIndex::S => self.s = value,
            LoopIndex::H => self.h = value,
            LoopIndex::W => self.w = value,
        }
    }

    /// All loop-trip counts in canonical `[n, k, c/groups, r, s, h, w]` order.
    pub fn extents(&self) -> [usize; 7] {
        [self.n, self.k, self.reduction_c(), self.r, self.s, self.h, self.w]
    }

    /// The per-group reduction extent of the C loop (`c / groups`).
    pub fn reduction_c(&self) -> usize {
        self.c / self.groups.max(1)
    }

    /// Output channels per group (`k / groups`).
    pub fn k_per_group(&self) -> usize {
        self.k / self.groups.max(1)
    }

    /// The group an output channel belongs to.
    pub fn group_of_k(&self, k: usize) -> usize {
        k / self.k_per_group().max(1)
    }

    /// The absolute input channel addressed by output channel `k` and
    /// group-relative reduction index `c_rel` (`0 <= c_rel < reduction_c()`).
    pub fn input_channel(&self, k: usize, c_rel: usize) -> usize {
        self.group_of_k(k) * self.reduction_c() + c_rel
    }

    /// The inclusive range of channel groups reached by a K range of
    /// `k_len >= 1` output channels starting at `k_start` — the shared
    /// band arithmetic of the executors and simulators. Dense shapes always
    /// span exactly group `0..=0`.
    pub fn groups_spanned(&self, k_start: usize, k_len: usize) -> std::ops::RangeInclusive<usize> {
        let first = self.group_of_k(k_start);
        let last = self.group_of_k(k_start + k_len.max(1) - 1);
        first..=last
    }

    /// Effective (dilated) kernel height in input pixels.
    pub fn effective_r(&self) -> usize {
        (self.r - 1) * self.dilation + 1
    }

    /// Effective (dilated) kernel width in input pixels.
    pub fn effective_s(&self) -> usize {
        (self.s - 1) * self.dilation + 1
    }

    /// Input image height required by this output shape.
    pub fn input_h(&self) -> usize {
        (self.h - 1) * self.stride + self.effective_r()
    }

    /// Input image width required by this output shape.
    pub fn input_w(&self) -> usize {
        (self.w - 1) * self.stride + self.effective_s()
    }

    /// Number of elements of the output tensor `Out[n][k][h][w]`.
    pub fn output_elems(&self) -> usize {
        self.n * self.k * self.h * self.w
    }

    /// Number of elements of the input tensor `In[n][c][h_in][w_in]`.
    pub fn input_elems(&self) -> usize {
        self.n * self.c * self.input_h() * self.input_w()
    }

    /// Number of elements of the kernel tensor `Ker[k][c/groups][r][s]`.
    /// Grouping shrinks the weight tensor by `1/groups`.
    pub fn kernel_elems(&self) -> usize {
        self.k * self.reduction_c() * self.r * self.s
    }

    /// Dimensions of the input tensor, `(n, c, input_h, input_w)`.
    pub fn input_dims(&self) -> (usize, usize, usize, usize) {
        (self.n, self.c, self.input_h(), self.input_w())
    }

    /// Dimensions of the kernel tensor, `(k, c/groups, r, s)`.
    pub fn kernel_dims(&self) -> (usize, usize, usize, usize) {
        (self.k, self.reduction_c(), self.r, self.s)
    }

    /// Dimensions of the output tensor, `(n, k, h, w)`.
    pub fn output_dims(&self) -> (usize, usize, usize, usize) {
        (self.n, self.k, self.h, self.w)
    }

    /// Total floating-point operations (multiply + add counted separately).
    /// Grouping shrinks the reduction, hence the FLOPs, by `1/groups`.
    pub fn flops(&self) -> usize {
        2 * self.n * self.k * self.reduction_c() * self.r * self.s * self.h * self.w
    }

    /// Number of iterations of the seven-deep loop nest (MACs).
    pub fn macs(&self) -> usize {
        self.flops() / 2
    }

    /// Whether this is a 1x1 ("pointwise") convolution.
    pub fn is_pointwise(&self) -> bool {
        self.r == 1 && self.s == 1
    }

    /// Whether this is a depthwise convolution (`groups == c == k`).
    pub fn is_depthwise(&self) -> bool {
        self.groups > 1 && self.groups == self.c && self.groups == self.k
    }

    /// A short human-readable description such as `K64 C32 HW272 RS3 s1`;
    /// dilation and groups are appended only when not 1 (`d2`, `g32`).
    pub fn describe(&self) -> String {
        let mut text = format!(
            "N{} K{} C{} HW{}x{} RS{}x{} s{}",
            self.n, self.k, self.c, self.h, self.w, self.r, self.s, self.stride
        );
        if self.dilation != 1 {
            text.push_str(&format!(" d{}", self.dilation));
        }
        if self.groups != 1 {
            text.push_str(&format!(" g{}", self.groups));
        }
        text
    }

    /// A stable 64-bit fingerprint of every shape field (FNV-1a, like
    /// [`crate::machine::MachineModel::fingerprint`]): identical across
    /// processes and platforms, so persisted schedule caches can key on it.
    /// Two shapes with different `dilation` or `groups` never share a
    /// fingerprint even when their seven extents agree.
    pub fn fingerprint(&self) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf29ce484222325;
        const FNV_PRIME: u64 = 0x100000001b3;
        let mut hash = FNV_OFFSET;
        for v in [
            self.n,
            self.k,
            self.c,
            self.r,
            self.s,
            self.h,
            self.w,
            self.stride,
            self.dilation,
            self.groups,
        ] {
            for b in (v as u64).to_le_bytes() {
                hash ^= b as u64;
                hash = hash.wrapping_mul(FNV_PRIME);
            }
        }
        hash
    }
}

// Serde is written by hand (the derive would make `dilation` and `groups`
// required fields): both are optional on the wire and default to 1, so JSON
// produced before the generalization — requests, snapshots, cached plans —
// still deserializes to the same dense shape.
impl Serialize for ConvShape {
    fn to_value(&self) -> serde::Value {
        serde::Value::Object(vec![
            ("n".to_string(), self.n.to_value()),
            ("k".to_string(), self.k.to_value()),
            ("c".to_string(), self.c.to_value()),
            ("r".to_string(), self.r.to_value()),
            ("s".to_string(), self.s.to_value()),
            ("h".to_string(), self.h.to_value()),
            ("w".to_string(), self.w.to_value()),
            ("stride".to_string(), self.stride.to_value()),
            ("dilation".to_string(), self.dilation.to_value()),
            ("groups".to_string(), self.groups.to_value()),
        ])
    }
}

impl Deserialize for ConvShape {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        let obj = v.as_object().ok_or_else(|| serde::DeError::expected("object", "ConvShape"))?;
        let opt_one = |name: &str| -> Result<usize, serde::DeError> {
            match obj.iter().find(|(key, _)| key == name) {
                None => Ok(1),
                Some((_, value)) => usize::from_value(value).map_err(|e| {
                    serde::DeError::custom(format!("field `{name}` of ConvShape: {e}"))
                }),
            }
        };
        let shape = ConvShape {
            n: serde::de_field(obj, "n", "ConvShape")?,
            k: serde::de_field(obj, "k", "ConvShape")?,
            c: serde::de_field(obj, "c", "ConvShape")?,
            r: serde::de_field(obj, "r", "ConvShape")?,
            s: serde::de_field(obj, "s", "ConvShape")?,
            h: serde::de_field(obj, "h", "ConvShape")?,
            w: serde::de_field(obj, "w", "ConvShape")?,
            stride: serde::de_field(obj, "stride", "ConvShape")?,
            dilation: opt_one("dilation")?,
            groups: opt_one("groups")?,
        };
        ConvShape::new_general(
            shape.n,
            shape.k,
            shape.c,
            shape.r,
            shape.s,
            shape.h,
            shape.w,
            shape.stride,
            shape.dilation,
            shape.groups,
        )
        .map_err(|e| serde::DeError::custom(format!("invalid ConvShape: {e}")))
    }
}

impl std::fmt::Display for ConvShape {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.describe())
    }
}

/// A permutation of the seven tile-loop indices.
///
/// Index 0 of the inner vector is the **outermost** loop and index 6 is the
/// **innermost** loop. (The paper writes permutations as `⟨p7, ..., p1⟩` with
/// `p1` innermost; we store the same order, outermost first.)
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Permutation {
    order: [LoopIndex; 7],
}

impl Permutation {
    /// Build a permutation from outermost to innermost order.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError::InvalidPermutation`] if the seven indices are not
    /// each present exactly once.
    pub fn new(order: [LoopIndex; 7]) -> Result<Self, SpecError> {
        let mut seen = [false; 7];
        for &idx in &order {
            let p = idx.canonical_position();
            if seen[p] {
                return Err(SpecError::InvalidPermutation(format!("duplicate index {idx}")));
            }
            seen[p] = true;
        }
        Ok(Permutation { order })
    }

    /// The canonical loop order `n, k, c, r, s, h, w` (outermost to innermost).
    pub fn canonical() -> Self {
        Permutation { order: ALL_INDICES }
    }

    /// Parse a permutation from a string of seven letters, outermost first,
    /// e.g. `"kcrsnhw"`.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError::InvalidPermutation`] on malformed input.
    pub fn parse(text: &str) -> Result<Self, SpecError> {
        let letters: Vec<char> = text.trim().chars().filter(|c| !c.is_whitespace()).collect();
        if letters.len() != 7 {
            return Err(SpecError::InvalidPermutation(format!(
                "expected 7 loop letters, got {}",
                letters.len()
            )));
        }
        let mut order = [LoopIndex::N; 7];
        for (i, ch) in letters.iter().enumerate() {
            order[i] = LoopIndex::parse(&ch.to_string()).ok_or_else(|| {
                SpecError::InvalidPermutation(format!("unknown loop letter '{ch}'"))
            })?;
        }
        Permutation::new(order)
    }

    /// Loop order from outermost (first) to innermost (last).
    pub fn outer_to_inner(&self) -> &[LoopIndex; 7] {
        &self.order
    }

    /// Loop order from innermost (first) to outermost (last).
    pub fn inner_to_outer(&self) -> [LoopIndex; 7] {
        let mut rev = self.order;
        rev.reverse();
        rev
    }

    /// The innermost tile-loop index.
    pub fn innermost(&self) -> LoopIndex {
        self.order[6]
    }

    /// The outermost tile-loop index.
    pub fn outermost(&self) -> LoopIndex {
        self.order[0]
    }

    /// Position of `idx` counted from the innermost loop, 1-based as in the
    /// paper (innermost = 1, outermost = 7).
    pub fn position_from_inner(&self, idx: LoopIndex) -> usize {
        let pos_from_outer =
            self.order.iter().position(|&x| x == idx).expect("permutation contains all indices");
        7 - pos_from_outer
    }

    /// The indices strictly *outside* (surrounding) position `pos` counted
    /// from the innermost loop. E.g. `surrounding_of_position(1)` returns the
    /// six outer loops of the innermost loop.
    pub fn indices_outside_position(&self, pos: usize) -> Vec<LoopIndex> {
        self.order.iter().copied().filter(|&idx| self.position_from_inner(idx) > pos).collect()
    }

    /// Enumerate all 5040 permutations of the seven loop indices.
    pub fn enumerate_all() -> Vec<Permutation> {
        let mut result = Vec::with_capacity(5040);
        let mut current = ALL_INDICES;
        permute_recursive(&mut current, 0, &mut result);
        result
    }

    /// A compact textual form, outermost first, e.g. `kcrsnhw`.
    pub fn compact(&self) -> String {
        self.order.iter().map(|i| i.name()).collect()
    }
}

fn permute_recursive(arr: &mut [LoopIndex; 7], start: usize, out: &mut Vec<Permutation>) {
    if start == arr.len() {
        out.push(Permutation { order: *arr });
        return;
    }
    for i in start..arr.len() {
        arr.swap(start, i);
        permute_recursive(arr, start + 1, out);
        arr.swap(start, i);
    }
}

impl std::fmt::Display for Permutation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "⟨{}⟩", self.compact())
    }
}

impl Default for Permutation {
    fn default() -> Self {
        Permutation::canonical()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_presence_matches_paper_structure() {
        // Each of the seven loop indices is present in exactly two of the
        // three tensors (Sec. 4 of the paper).
        for &idx in &ALL_INDICES {
            let count = [idx.present_in_output(), idx.present_in_input(), idx.present_in_kernel()]
                .iter()
                .filter(|&&b| b)
                .count();
            assert_eq!(count, 2, "{idx} should be present in exactly two tensors");
        }
    }

    #[test]
    fn output_absent_indices_are_reductions() {
        assert!(LoopIndex::C.is_reduction());
        assert!(LoopIndex::R.is_reduction());
        assert!(LoopIndex::S.is_reduction());
        assert!(!LoopIndex::N.is_reduction());
        assert!(!LoopIndex::K.is_reduction());
        assert!(!LoopIndex::H.is_reduction());
        assert!(!LoopIndex::W.is_reduction());
    }

    #[test]
    fn shape_new_rejects_zero_extent() {
        assert!(ConvShape::new(1, 0, 1, 1, 1, 1, 1, 1).is_err());
        assert!(ConvShape::new(1, 1, 1, 1, 1, 1, 1, 0).is_err());
        assert!(ConvShape::new(1, 2, 3, 1, 1, 4, 4, 1).is_ok());
    }

    #[test]
    fn from_table1_computes_output_extent() {
        // Yolo layer Y0: K=32, C=3, H/W=544, R/S=3, stride 1 → output 542.
        let y0 = ConvShape::from_table1(32, 3, 544, 3, 1);
        assert_eq!(y0.h, 542);
        assert_eq!(y0.w, 542);
        assert_eq!(y0.input_h(), 544);
        assert_eq!(y0.input_w(), 544);
        // ResNet R1*: K=64, C=3, H/W=224, R/S=7, stride 2 → output 109.
        let r1 = ConvShape::from_table1(64, 3, 224, 7, 2);
        assert_eq!(r1.h, (224 - 7) / 2 + 1);
        assert_eq!(r1.input_h(), (r1.h - 1) * 2 + 7);
    }

    #[test]
    fn flops_and_element_counts() {
        let s = ConvShape::new(2, 4, 3, 3, 3, 8, 8, 1).unwrap();
        assert_eq!(s.flops(), 2 * 2 * 4 * 3 * 3 * 3 * 8 * 8);
        assert_eq!(s.macs() * 2, s.flops());
        assert_eq!(s.output_elems(), 2 * 4 * 8 * 8);
        assert_eq!(s.kernel_elems(), 4 * 3 * 3 * 3);
        assert_eq!(s.input_elems(), 2 * 3 * 10 * 10);
    }

    #[test]
    fn extent_roundtrip() {
        let mut s = ConvShape::new(1, 2, 3, 4, 5, 6, 7, 1).unwrap();
        for (i, &idx) in ALL_INDICES.iter().enumerate() {
            assert_eq!(s.extent(idx), i + 1);
            s.set_extent(idx, 10 + i);
            assert_eq!(s.extent(idx), 10 + i);
        }
    }

    #[test]
    fn general_shape_validation() {
        // groups must divide both channel counts.
        assert!(ConvShape::new_general(1, 8, 8, 3, 3, 4, 4, 1, 1, 4).is_ok());
        assert!(ConvShape::new_general(1, 8, 6, 3, 3, 4, 4, 1, 1, 4).is_err());
        assert!(ConvShape::new_general(1, 6, 8, 3, 3, 4, 4, 1, 1, 4).is_err());
        assert!(ConvShape::new_general(1, 8, 8, 3, 3, 4, 4, 1, 0, 1).is_err());
        assert!(ConvShape::new_general(1, 8, 8, 3, 3, 4, 4, 1, 1, 0).is_err());
        let dense = ConvShape::new(1, 8, 8, 3, 3, 4, 4, 1).unwrap();
        assert_eq!(dense.dilation, 1);
        assert_eq!(dense.groups, 1);
        assert!(dense.with_groups(2).is_ok());
        assert!(dense.with_groups(3).is_err());
        assert!(dense.with_dilation(2).is_ok());
        assert!(dense.with_dilation(0).is_err());
    }

    #[test]
    fn grouped_shape_shrinks_reduction_kernel_and_flops() {
        let dense = ConvShape::new(1, 16, 8, 3, 3, 6, 6, 1).unwrap();
        let grouped = dense.with_groups(4).unwrap();
        assert_eq!(grouped.extent(LoopIndex::C), 2);
        assert_eq!(grouped.reduction_c(), 2);
        assert_eq!(grouped.k_per_group(), 4);
        assert_eq!(grouped.kernel_elems(), dense.kernel_elems() / 4);
        assert_eq!(grouped.flops(), dense.flops() / 4);
        // The input tensor keeps all channels.
        assert_eq!(grouped.input_elems(), dense.input_elems());
        assert_eq!(grouped.kernel_dims(), (16, 2, 3, 3));
        // Output channel 5 is in group 1, reading channels 2..4.
        assert_eq!(grouped.group_of_k(5), 1);
        assert_eq!(grouped.input_channel(5, 1), 3);
        // K ranges map to inclusive group bands (k_per_group = 4).
        assert_eq!(grouped.groups_spanned(0, 4), 0..=0);
        assert_eq!(grouped.groups_spanned(3, 2), 0..=1);
        assert_eq!(grouped.groups_spanned(0, 16), 0..=3);
        let dense2 = ConvShape::new(1, 16, 8, 3, 3, 6, 6, 1).unwrap();
        assert_eq!(dense2.groups_spanned(0, 16), 0..=0);
    }

    #[test]
    fn depthwise_shape_has_unit_reduction() {
        let dw = ConvShape::depthwise(32, 112, 3, 1);
        assert!(dw.is_depthwise());
        assert_eq!((dw.k, dw.c, dw.groups), (32, 32, 32));
        assert_eq!(dw.extent(LoopIndex::C), 1);
        assert_eq!(dw.kernel_dims(), (32, 1, 3, 3));
        assert_eq!(dw.h, 110);
        assert!(!ConvShape::new(1, 4, 4, 3, 3, 4, 4, 1).unwrap().is_depthwise());
    }

    #[test]
    #[should_panic(expected = "effective dilated kernel")]
    fn from_table1_dilated_rejects_oversized_windows() {
        let _ = ConvShape::from_table1_dilated(4, 4, 8, 3, 1, 4);
    }

    #[test]
    #[should_panic(expected = "kernel extent")]
    fn from_table1_rejects_oversized_kernels() {
        let _ = ConvShape::from_table1(4, 4, 2, 3, 1);
    }

    #[test]
    fn dilation_widens_the_input_halo() {
        let d = ConvShape::from_table1_dilated(4, 4, 33, 3, 1, 2);
        assert_eq!(d.effective_r(), 5);
        assert_eq!(d.h, 29);
        assert_eq!(d.input_h(), 33);
        let dense = ConvShape::from_table1(4, 4, 33, 3, 1);
        assert_eq!(dense.effective_r(), 3);
        assert!(d.input_elems() == 4 * 33 * 33);
        // Same kernel element count regardless of dilation.
        assert_eq!(d.kernel_elems(), dense.kernel_elems());
    }

    #[test]
    fn set_extent_c_round_trips_under_groups() {
        let mut g = ConvShape::new_general(1, 8, 8, 3, 3, 4, 4, 1, 1, 4).unwrap();
        assert_eq!(g.extent(LoopIndex::C), 2);
        g.set_extent(LoopIndex::C, 3);
        assert_eq!(g.extent(LoopIndex::C), 3);
        assert_eq!(g.c, 12);
    }

    #[test]
    fn describe_mentions_dilation_and_groups_only_when_general() {
        let dense = ConvShape::new(1, 8, 8, 3, 3, 4, 4, 1).unwrap();
        assert!(!dense.describe().contains(" d"));
        assert!(!dense.describe().contains(" g"));
        let general = dense.with_dilation(2).unwrap().with_groups(2).unwrap();
        assert!(general.describe().contains("d2"));
        assert!(general.describe().contains("g2"));
    }

    #[test]
    fn shape_fingerprints_distinguish_dilation_and_groups() {
        let dense = ConvShape::new(1, 8, 8, 3, 3, 4, 4, 1).unwrap();
        assert_eq!(
            dense.fingerprint(),
            ConvShape::new(1, 8, 8, 3, 3, 4, 4, 1).unwrap().fingerprint()
        );
        assert_ne!(dense.fingerprint(), dense.with_dilation(2).unwrap().fingerprint());
        assert_ne!(dense.fingerprint(), dense.with_groups(2).unwrap().fingerprint());
        assert_ne!(
            dense.with_dilation(2).unwrap().fingerprint(),
            dense.with_groups(2).unwrap().fingerprint()
        );
    }

    #[test]
    fn serde_defaults_keep_legacy_shapes_parseable() {
        use crate::shape::ConvShape;
        // A legacy wire form without dilation/groups parses as the dense shape.
        let legacy = serde::Value::Object(vec![
            ("n".into(), serde::Value::UInt(1)),
            ("k".into(), serde::Value::UInt(8)),
            ("c".into(), serde::Value::UInt(4)),
            ("r".into(), serde::Value::UInt(3)),
            ("s".into(), serde::Value::UInt(3)),
            ("h".into(), serde::Value::UInt(10)),
            ("w".into(), serde::Value::UInt(10)),
            ("stride".into(), serde::Value::UInt(1)),
        ]);
        let parsed = <ConvShape as serde::Deserialize>::from_value(&legacy).unwrap();
        assert_eq!(parsed, ConvShape::new(1, 8, 4, 3, 3, 10, 10, 1).unwrap());
        // Round trip preserves the general fields.
        let dw = ConvShape::depthwise(8, 10, 3, 1).with_dilation(2).unwrap();
        let round = <ConvShape as serde::Deserialize>::from_value(&serde::Serialize::to_value(&dw));
        assert_eq!(round.unwrap(), dw);
        // Invalid group structure is rejected at the serde boundary.
        let bad = serde::Value::Object(vec![
            ("n".into(), serde::Value::UInt(1)),
            ("k".into(), serde::Value::UInt(8)),
            ("c".into(), serde::Value::UInt(3)),
            ("r".into(), serde::Value::UInt(1)),
            ("s".into(), serde::Value::UInt(1)),
            ("h".into(), serde::Value::UInt(4)),
            ("w".into(), serde::Value::UInt(4)),
            ("stride".into(), serde::Value::UInt(1)),
            ("groups".into(), serde::Value::UInt(2)),
        ]);
        assert!(<ConvShape as serde::Deserialize>::from_value(&bad).is_err());
    }

    #[test]
    fn permutation_parse_and_display() {
        let p = Permutation::parse("kcrsnhw").unwrap();
        assert_eq!(p.innermost(), LoopIndex::W);
        assert_eq!(p.outermost(), LoopIndex::K);
        assert_eq!(p.compact(), "kcrsnhw");
        assert!(Permutation::parse("kcrsnh").is_err());
        assert!(Permutation::parse("kcrsnhh").is_err());
        assert!(Permutation::parse("kcrsnhx").is_err());
    }

    #[test]
    fn permutation_positions_are_one_based_from_inner() {
        let p = Permutation::parse("kcrsnhw").unwrap();
        assert_eq!(p.position_from_inner(LoopIndex::W), 1);
        assert_eq!(p.position_from_inner(LoopIndex::H), 2);
        assert_eq!(p.position_from_inner(LoopIndex::N), 3);
        assert_eq!(p.position_from_inner(LoopIndex::K), 7);
        let outside = p.indices_outside_position(3);
        assert_eq!(outside.len(), 4);
        assert!(outside.contains(&LoopIndex::K));
        assert!(!outside.contains(&LoopIndex::N));
    }

    #[test]
    fn enumerate_all_has_5040_unique_permutations() {
        let all = Permutation::enumerate_all();
        assert_eq!(all.len(), 5040);
        let unique: std::collections::HashSet<String> = all.iter().map(|p| p.compact()).collect();
        assert_eq!(unique.len(), 5040);
    }

    #[test]
    fn inner_to_outer_reverses() {
        let p = Permutation::parse("nkcrshw").unwrap();
        let rev = p.inner_to_outer();
        assert_eq!(rev[0], LoopIndex::W);
        assert_eq!(rev[6], LoopIndex::N);
    }
}
