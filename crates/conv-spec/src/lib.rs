//! Problem, layout, benchmark, and machine descriptions shared by every crate
//! of the MOpt reproduction.
//!
//! The CNN (conv2d) computation optimized by the paper, generalized over
//! stride, dilation, and channel groups, is
//!
//! ```text
//! Out[n][k][h][w] += In[n][g·(C/G) + c][h·stride + r·dilation][w·stride + s·dilation]
//!                    · Ker[k][c][r][s]        with g = k / (K/G)
//! ```
//!
//! a seven-dimensional loop nest over the indices `n, k, c, r, s, h, w`
//! (batch, output channel, per-group input channel, kernel row, kernel
//! column, output row, output column). Dense conv2d is the special case
//! `dilation == 1, groups == 1`; `groups == C == K` is a depthwise
//! convolution (MobileNet) and `dilation > 1` an atrous one (DeepLab).
//! This crate defines:
//!
//! * [`ConvShape`] — the seven problem extents plus stride, dilation, and
//!   groups, with derived quantities (FLOP count, tensor sizes, input
//!   extents, the per-group reduction extent) and a stable
//!   [`ConvShape::fingerprint`],
//! * [`LoopIndex`] and [`Permutation`] — the loop-index algebra used by the
//!   analytical model and the pruning analysis,
//! * [`TileSizes`], [`TileConfig`] and [`TilingLevel`] — tile-size vectors for
//!   single- and multi-level tiling, with shape-aware footprints,
//! * [`benchmarks`] — the 32 conv2d operators of Table 1 (Yolo-9000,
//!   ResNet-18, MobileNet — the latter as true depthwise shapes), plus
//!   MobileNetV2 depthwise and DeepLab-style dilated suites,
//! * [`machine`] — memory-hierarchy descriptions (cache capacities,
//!   bandwidths, cores, SIMD width) with presets for the two CPUs used in the
//!   paper's evaluation,
//! * [`layout`] — tensor layout descriptors (NCHW, KCRS and the packed
//!   microkernel layout) and index linearization helpers,
//! * [`canonical`] — cost-preserving normalization of shapes
//!   ([`CanonicalSpec`]) with an invertible schedule rewrite
//!   ([`SpecTransform`]), the key space of the persistent schedule
//!   database (`mopt_db`),
//! * [`spec`] — the generalized problem IR ([`Spec`]): conv, matmul,
//!   pooling, and elementwise computations as one tagged type, each
//!   embedding into the conv2d loop nest so one optimizer and one schedule
//!   database serve all of them.
//!
//! # Example
//!
//! ```
//! use conv_spec::{benchmarks, ConvShape, LoopIndex};
//!
//! let yolo0 = benchmarks::yolo9000()[0].clone();
//! assert_eq!(yolo0.shape.k, 32);
//! // output spatial extent is 542 for a 544x544 input with a 3x3 kernel
//! assert_eq!(yolo0.shape.flops(), 2 * 32 * 3 * 542 * 542 * 3 * 3);
//! assert!(ConvShape::unit(LoopIndex::N).n == 1);
//!
//! // Generalized shapes: a depthwise MobileNet stage and a dilated conv.
//! let dw = ConvShape::depthwise(32, 112, 3, 1);
//! assert!(dw.is_depthwise());
//! assert_eq!(dw.extent(LoopIndex::C), 1);          // per-group reduction
//! assert_eq!(dw.kernel_dims(), (32, 1, 3, 3));     // 1/groups the weights
//!
//! let atrous = ConvShape::from_table1_dilated(64, 64, 33, 3, 1, 2);
//! assert_eq!(atrous.effective_r(), 5);             // (3-1)*2 + 1
//! assert_eq!(atrous.input_h(), 33);
//! ```

#![warn(missing_docs)]

pub mod benchmarks;
pub mod canonical;
pub mod layout;
pub mod machine;
pub mod shape;
pub mod spec;
pub mod tiling;

pub use benchmarks::{BenchmarkOp, BenchmarkSuite};
pub use canonical::{canonicalize, canonicalize_spec, CanonicalSpec, SpecTransform, PAD_QUANTUM};
pub use layout::{KernelLayout, LayoutConfig, PackedKernelLayout, TensorKind, TensorLayout};
pub use machine::{CacheLevel, MachineModel, MemoryLevel};
pub use shape::{ConvShape, LoopIndex, Permutation, ALL_INDICES};
pub use spec::{DType, EwOp, PoolKind, Spec};
pub use tiling::{ParallelAxis, TileConfig, TileSizes, TilingLevel, NUM_TILING_LEVELS};

/// Crate-wide error type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpecError {
    /// A tile size was zero or exceeded the corresponding problem extent.
    InvalidTileSize {
        /// The loop index whose tile size is invalid.
        index: LoopIndex,
        /// The offending tile size.
        tile: usize,
        /// The problem (or outer-tile) extent it must not exceed.
        extent: usize,
    },
    /// A permutation did not contain each of the seven loop indices exactly once.
    InvalidPermutation(String),
    /// A shape field was zero.
    InvalidShape(String),
}

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpecError::InvalidTileSize { index, tile, extent } => {
                write!(f, "invalid tile size {tile} for loop {index:?} (extent {extent})")
            }
            SpecError::InvalidPermutation(msg) => write!(f, "invalid permutation: {msg}"),
            SpecError::InvalidShape(msg) => write!(f, "invalid shape: {msg}"),
        }
    }
}

impl std::error::Error for SpecError {}
