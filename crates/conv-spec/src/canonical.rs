//! Canonical convolution specs: cost-preserving normalization of
//! [`ConvShape`] for the persistent schedule database.
//!
//! Two raw shapes that the analytical cost model cannot distinguish — or
//! whose optimized schedules transfer between each other by a mechanical
//! rewrite — should share one database entry. This module defines that
//! equivalence and the rewrite:
//!
//! 1. **R/S orientation.** The model is symmetric under jointly transposing
//!    the kernel window and the output plane (`r ↔ s` together with
//!    `h ↔ w`): every cost expression treats the two spatial axes
//!    identically once the permutation letters are swapped along. The
//!    canonical form orients the window so `r ≤ s` (ties broken by
//!    `h ≤ w`).
//! 2. **Dilation default.** A `1×1` window has no spatial reach, so any
//!    dilation is observationally equal to `dilation == 1`; pointwise specs
//!    normalize it away.
//! 3. **Divisor-equivalent padding of free dims.** The free output extents
//!    `h` and `w` are rounded up to the next multiple of
//!    [`PAD_QUANTUM`] (when larger than it). Schedules solved for the
//!    padded extents clamp down to any raw extent in the same bucket via
//!    [`TileConfig::normalized`], so nearby sizes (e.g. `h = 57` and
//!    `h = 63`) resolve to one canonical entry whose top-k schedules are
//!    re-priced exactly at the raw shape on lookup.
//!
//! [`canonicalize`] returns the canonical spec plus a [`SpecTransform`]
//! that rewrites schedules in both directions:
//! `transform.denormalize_config(canonical_schedule)` is a valid schedule
//! for the raw shape, and the round-trip is property-tested (execution of
//! the denormalized schedule is bit-for-bit equal to the raw reference).

use serde::{Deserialize, Serialize};

use crate::shape::{ConvShape, LoopIndex, Permutation};
use crate::spec::Spec;
use crate::tiling::{TileConfig, TileSizes, TilingLevel};

/// Free output extents (`h`, `w`) are rounded up to the next multiple of
/// this quantum (when larger than it) so nearby sizes share one canonical
/// entry.
pub const PAD_QUANTUM: usize = 8;

/// A shape normalized under the database's cost-preserving symmetries.
///
/// The canonical shape is itself a valid [`ConvShape`] (schedules are
/// solved for it directly); its [`fingerprint`](CanonicalSpec::fingerprint)
/// keys the persistent database.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CanonicalSpec {
    /// The normalized shape (`r ≤ s` orientation, default dilation on
    /// pointwise windows, padded free dims).
    pub shape: ConvShape,
}

impl CanonicalSpec {
    /// Stable FNV-1a fingerprint of the canonical shape — the database key.
    pub fn fingerprint(&self) -> u64 {
        self.shape.fingerprint()
    }
}

impl std::fmt::Display for CanonicalSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "canonical[{}]", self.shape)
    }
}

/// The invertible rewrite between a raw shape and its canonical form.
///
/// Padding needs no coordinate change (tiles clamp), so the transform
/// records only the spatial transpose plus the raw shape to clamp against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpecTransform {
    /// Whether the canonical form swapped `r ↔ s` and `h ↔ w`.
    pub transposed: bool,
    /// Whether the canonical form swapped the `K` and `W` loop extents.
    ///
    /// This is the matmul `m ↔ n` transpose symmetry: under the conv
    /// embedding (`K = m`, `W = n`, see [`Spec::embedded_conv_shape`]),
    /// `Cᵀ = Bᵀ·Aᵀ` swaps the `K` and `W` extents while the cost model —
    /// which treats both as free output dimensions whose tensors it prices
    /// by footprint, not by role — is invariant. Never set for conv specs:
    /// a conv's `K` (channel) and `W` (spatial) loops index *different
    /// tensors* and are not interchangeable.
    pub swap_kw: bool,
    /// The raw shape the transform denormalizes back to.
    pub raw: ConvShape,
}

/// Normalize a shape under the canonical symmetries, returning the
/// canonical spec and the transform back to the raw shape.
pub fn canonicalize(shape: &ConvShape) -> (CanonicalSpec, SpecTransform) {
    let mut canon = *shape;
    // (2) Pointwise windows cannot reach; dilation is meaningless.
    if canon.r == 1 && canon.s == 1 {
        canon.dilation = 1;
    }
    // (1) Orient the window: r ≤ s, ties broken toward h ≤ w.
    let transposed = canon.r > canon.s || (canon.r == canon.s && canon.h > canon.w);
    if transposed {
        std::mem::swap(&mut canon.r, &mut canon.s);
        std::mem::swap(&mut canon.h, &mut canon.w);
    }
    // (3) Pad the free output extents up to the quantum.
    canon.h = pad_up(canon.h);
    canon.w = pad_up(canon.w);
    (CanonicalSpec { shape: canon }, SpecTransform { transposed, swap_kw: false, raw: *shape })
}

/// Normalize a generalized [`Spec`] under the canonical symmetries.
///
/// Every spec canonicalizes *through its conv embedding*, so the database
/// key space stays one space of conv shapes:
///
/// * `Spec::Conv` delegates to [`canonicalize`] — bit-identical canonical
///   fingerprints to the pre-spec-IR database.
/// * `Spec::Matmul` first orients `m ≤ n` (the `m ↔ n` transpose symmetry:
///   `C = A·B` and `Cᵀ = Bᵀ·Aᵀ` cost the same, so both orientations share
///   one record), recording the swap as [`SpecTransform::swap_kw`], then
///   canonicalizes the oriented embedding (which pads `w = n` into the
///   divisor buckets, exactly like a conv's free spatial extent).
/// * `Spec::Pool` and `Spec::Elementwise` canonicalize their embeddings
///   directly.
///
/// The returned transform denormalizes canonical schedules back to the
/// spec's *raw* embedded shape, so stored entries re-rank for either matmul
/// orientation.
pub fn canonicalize_spec(spec: &Spec) -> (CanonicalSpec, SpecTransform) {
    match *spec {
        Spec::Conv(shape) => canonicalize(&shape),
        Spec::Matmul { m, n, k, dtype } => {
            let raw = spec.embedded_conv_shape();
            let oriented =
                Spec::Matmul { m: m.min(n), n: m.max(n), k, dtype }.embedded_conv_shape();
            let (canonical, inner) = canonicalize(&oriented);
            debug_assert!(!inner.transposed, "h = 1 <= w never transposes");
            (canonical, SpecTransform { transposed: inner.transposed, swap_kw: m > n, raw })
        }
        Spec::Pool { .. } | Spec::Elementwise { .. } => canonicalize(&spec.embedded_conv_shape()),
    }
}

fn pad_up(extent: usize) -> usize {
    if extent <= PAD_QUANTUM {
        extent
    } else {
        extent.div_ceil(PAD_QUANTUM) * PAD_QUANTUM
    }
}

/// Swap the `r ↔ s` and `h ↔ w` entries of a tile-size vector.
fn transpose_tiles(tiles: &TileSizes) -> TileSizes {
    tiles
        .with(LoopIndex::R, tiles.get(LoopIndex::S))
        .with(LoopIndex::S, tiles.get(LoopIndex::R))
        .with(LoopIndex::H, tiles.get(LoopIndex::W))
        .with(LoopIndex::W, tiles.get(LoopIndex::H))
}

/// Swap the `r ↔ s` and `h ↔ w` letters of a permutation in place.
fn transpose_permutation(permutation: &Permutation) -> Permutation {
    let mut order = *permutation.outer_to_inner();
    for idx in &mut order {
        *idx = match *idx {
            LoopIndex::R => LoopIndex::S,
            LoopIndex::S => LoopIndex::R,
            LoopIndex::H => LoopIndex::W,
            LoopIndex::W => LoopIndex::H,
            other => other,
        };
    }
    Permutation::new(order).expect("transposing a permutation preserves validity")
}

/// Apply the spatial transpose to a whole configuration (all four tile
/// levels, the parallel factors, and the permutation letters). Involutive.
fn transpose_config(config: &TileConfig) -> TileConfig {
    let mut tiles = config.tiles;
    for level in TilingLevel::ALL {
        tiles[level.ordinal()] = transpose_tiles(config.level(level));
    }
    TileConfig::new(
        transpose_permutation(&config.permutation),
        tiles,
        transpose_tiles(&config.parallel),
    )
}

/// Swap the `k ↔ w` entries of a tile-size vector (matmul `m ↔ n`).
fn swap_kw_tiles(tiles: &TileSizes) -> TileSizes {
    tiles.with(LoopIndex::K, tiles.get(LoopIndex::W)).with(LoopIndex::W, tiles.get(LoopIndex::K))
}

/// Swap the `k ↔ w` letters of a permutation.
fn swap_kw_permutation(permutation: &Permutation) -> Permutation {
    let mut order = *permutation.outer_to_inner();
    for idx in &mut order {
        *idx = match *idx {
            LoopIndex::K => LoopIndex::W,
            LoopIndex::W => LoopIndex::K,
            other => other,
        };
    }
    Permutation::new(order).expect("swapping two letters preserves validity")
}

/// Apply the `k ↔ w` swap to a whole configuration. Involutive.
fn swap_kw_config(config: &TileConfig) -> TileConfig {
    let mut tiles = config.tiles;
    for level in TilingLevel::ALL {
        tiles[level.ordinal()] = swap_kw_tiles(config.level(level));
    }
    TileConfig::new(
        swap_kw_permutation(&config.permutation),
        tiles,
        swap_kw_tiles(&config.parallel),
    )
}

impl SpecTransform {
    /// Rewrite a schedule for the raw shape into canonical coordinates.
    ///
    /// Raw extents never exceed the canonical (padded) extents, so the
    /// rewritten tiles are valid for the canonical shape as-is. (For a
    /// `swap_kw` transform the raw `K`/`W` extents are the canonical
    /// `W`/`K` extents — before padding — so the same holds.)
    pub fn canonicalize_config(&self, config: &TileConfig) -> TileConfig {
        let oriented = if self.swap_kw { swap_kw_config(config) } else { config.clone() };
        if self.transposed {
            transpose_config(&oriented)
        } else {
            oriented
        }
    }

    /// Rewrite a schedule solved for the canonical shape back into a valid
    /// schedule for the raw shape: undo the transpose and the `k ↔ w`
    /// orientation swap, then clamp padded tile extents down to the raw
    /// extents.
    pub fn denormalize_config(&self, config: &TileConfig) -> TileConfig {
        let oriented = if self.transposed { transpose_config(config) } else { config.clone() };
        let unswapped = if self.swap_kw { swap_kw_config(&oriented) } else { oriented };
        unswapped.normalized(&self.raw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tiling::NUM_TILING_LEVELS;

    fn raw_asymmetric() -> ConvShape {
        ConvShape::new(1, 32, 16, 5, 3, 10, 14, 1).unwrap()
    }

    #[test]
    fn canonical_form_orients_the_window() {
        let (canon, transform) = canonicalize(&raw_asymmetric());
        assert!(transform.transposed);
        assert_eq!((canon.shape.r, canon.shape.s), (3, 5));
        // h and w swapped (14, 10) then padded up to the quantum.
        assert_eq!((canon.shape.h, canon.shape.w), (16, 16));
    }

    #[test]
    fn canonicalize_is_idempotent() {
        let (canon, _) = canonicalize(&raw_asymmetric());
        let (again, transform) = canonicalize(&canon.shape);
        assert!(!transform.transposed);
        assert_eq!(canon, again);
    }

    #[test]
    fn transpose_pair_shares_one_canonical_entry() {
        let a = ConvShape::new(1, 32, 16, 3, 5, 14, 10, 1).unwrap();
        let b = ConvShape::new(1, 32, 16, 5, 3, 10, 14, 1).unwrap();
        assert_ne!(a.fingerprint(), b.fingerprint());
        let (ca, _) = canonicalize(&a);
        let (cb, _) = canonicalize(&b);
        assert_eq!(ca, cb);
        assert_eq!(ca.fingerprint(), cb.fingerprint());
    }

    #[test]
    fn pointwise_dilation_normalizes_away() {
        let base = ConvShape::new(1, 32, 16, 1, 1, 14, 14, 1).unwrap();
        let dilated = base.with_dilation(3).unwrap();
        let (ca, _) = canonicalize(&base);
        let (cb, _) = canonicalize(&dilated);
        assert_eq!(ca, cb);
    }

    #[test]
    fn padding_buckets_nearby_free_dims() {
        let a = ConvShape::new(1, 32, 16, 3, 3, 57, 57, 1).unwrap();
        let b = ConvShape::new(1, 32, 16, 3, 3, 63, 63, 1).unwrap();
        let (ca, _) = canonicalize(&a);
        let (cb, _) = canonicalize(&b);
        assert_eq!(ca, cb);
        assert_eq!((ca.shape.h, ca.shape.w), (64, 64));
        // Small extents are left alone so tiny shapes stay exact.
        let small = ConvShape::new(1, 4, 3, 3, 3, 7, 7, 1).unwrap();
        assert_eq!(canonicalize(&small).0.shape.h, 7);
    }

    #[test]
    fn config_round_trip_is_valid_on_the_raw_shape() {
        let raw = raw_asymmetric();
        let (canon, transform) = canonicalize(&raw);
        // A schedule "solved" for the canonical shape.
        let mut cfg = TileConfig::untiled(&canon.shape);
        cfg.permutation = Permutation::parse("kcsrnwh").unwrap();
        cfg.tiles[0] = TileSizes::from_array([1, 8, 1, 1, 1, 1, 4]);
        cfg.tiles[1] = TileSizes::from_array([1, 16, 4, 3, 5, 4, 8]);
        cfg.tiles[2] = TileSizes::from_array([1, 32, 8, 3, 5, 8, 16]);
        let cfg = cfg.normalized(&canon.shape);
        assert!(cfg.validate(&canon.shape).is_ok());
        let back = transform.denormalize_config(&cfg);
        assert!(back.validate(&raw).is_ok());
        // The transpose moved the window letters along with the tiles.
        assert_eq!(back.level(TilingLevel::L1).get(LoopIndex::R), 5);
        assert_eq!(back.level(TilingLevel::L1).get(LoopIndex::S), 3);
        // Round-tripping back to canonical coordinates undoes the transpose
        // exactly (no padding was clamped in this direction).
        let forward = transform.canonicalize_config(&back);
        assert!(forward.validate(&canon.shape).is_ok());
        for level in TilingLevel::ALL {
            for idx in [LoopIndex::N, LoopIndex::K, LoopIndex::C] {
                assert_eq!(forward.level(level).get(idx), cfg.level(level).get(idx));
            }
        }
    }

    #[test]
    fn transpose_config_is_an_involution() {
        let raw = raw_asymmetric();
        let cfg = TileConfig::untiled(&raw);
        let twice = transpose_config(&transpose_config(&cfg));
        assert_eq!(twice, cfg);
        assert_eq!(cfg.tiles.len(), NUM_TILING_LEVELS);
    }

    #[test]
    fn matmul_orientations_share_one_canonical_entry() {
        let tall = Spec::matmul(512, 64, 128);
        let wide = Spec::matmul(64, 512, 128);
        let (ct, tt) = canonicalize_spec(&tall);
        let (cw, tw) = canonicalize_spec(&wide);
        assert_eq!(ct, cw, "m<->n transposes must share a canonical spec");
        assert_eq!(ct.fingerprint(), cw.fingerprint());
        assert!(tt.swap_kw, "the tall orientation records the swap");
        assert!(!tw.swap_kw, "the wide orientation is already canonical");
        // The canonical embedding is the oriented (m <= n) one, padded.
        assert_eq!(ct.shape.k, 64);
        assert_eq!(ct.shape.w, 512);
        assert_eq!(ct.shape.c, 128);
        // Conv specs never swap.
        let (_, t) = canonicalize_spec(&Spec::Conv(raw_asymmetric()));
        assert!(!t.swap_kw);
    }

    #[test]
    fn swap_kw_round_trip_is_valid_on_the_raw_matmul_embedding() {
        let tall = Spec::matmul(512, 64, 128);
        let raw = tall.embedded_conv_shape();
        let (canon, transform) = canonicalize_spec(&tall);
        // A schedule "solved" for the canonical (oriented) embedding.
        let mut cfg = TileConfig::untiled(&canon.shape);
        cfg.permutation = Permutation::parse("kcwnhrs").unwrap();
        cfg.tiles[0] = TileSizes::from_array([1, 4, 8, 1, 1, 1, 16]);
        cfg.tiles[1] = TileSizes::from_array([1, 16, 32, 1, 1, 1, 64]);
        cfg.tiles[2] = TileSizes::from_array([1, 64, 128, 1, 1, 1, 256]);
        let cfg = cfg.normalized(&canon.shape);
        assert!(cfg.validate(&canon.shape).is_ok());
        let back = transform.denormalize_config(&cfg);
        assert!(back.validate(&raw).is_ok(), "denormalized schedule must fit the raw embedding");
        // K and W tile factors swapped: the canonical K-tile (4) became the
        // raw W-tile, and the canonical W-tile (16) the raw K-tile.
        assert_eq!(back.level(TilingLevel::Register).get(LoopIndex::W), 4);
        assert_eq!(back.level(TilingLevel::Register).get(LoopIndex::K), 16);
        // The permutation letters swapped along.
        let letters: String = back.permutation.outer_to_inner().iter().map(|i| i.name()).collect();
        assert_eq!(letters, "wcknhrs");
        // Round-tripping back to canonical coordinates is exact here (the
        // canonical extents were fully used, nothing clamped).
        assert_eq!(transform.canonicalize_config(&back), cfg);
    }

    #[test]
    fn pool_and_elementwise_canonicalize_through_their_embeddings() {
        let pool = Spec::Pool {
            kind: crate::spec::PoolKind::Max,
            n: 1,
            channels: 64,
            h: 57,
            w: 57,
            window: 3,
            stride: 2,
        };
        let (canon, transform) = canonicalize_spec(&pool);
        assert!(canon.shape.is_depthwise());
        assert_eq!((canon.shape.h, canon.shape.w), (64, 64), "free extents pad");
        assert!(!transform.swap_kw);
        assert_eq!(transform.raw, pool.embedded_conv_shape());
        let ew = Spec::Elementwise { op: crate::spec::EwOp::Relu, len: 100, strided: false };
        let (canon, _) = canonicalize_spec(&ew);
        assert_eq!(canon.shape.w, 104, "stream length pads into divisor buckets");
    }

    #[test]
    fn untransposed_shapes_pass_configs_through() {
        let raw = ConvShape::new(1, 8, 4, 3, 3, 8, 8, 1).unwrap();
        let (canon, transform) = canonicalize(&raw);
        assert_eq!(canon.shape, raw);
        let cfg = TileConfig::untiled(&raw);
        assert_eq!(transform.canonicalize_config(&cfg), cfg);
        assert_eq!(transform.denormalize_config(&cfg), cfg);
    }
}
