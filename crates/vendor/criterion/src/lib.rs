//! Offline stand-in for `criterion`, vendored into the workspace.
//!
//! Provides the API surface the repository's benches use — `Criterion`,
//! `benchmark_group`, `bench_function`, `Bencher::iter`, `Throughput`,
//! `black_box`, and the `criterion_group!` / `criterion_main!` macros — with
//! a simple measured-median harness: warm up briefly, run timed batches, and
//! print ns/iteration (plus element throughput when configured). No
//! statistical analysis or HTML reports.
//!
//! Like real criterion, `--test` on the bench binary's command line
//! (`cargo bench -- --test`) switches to smoke mode: every benchmark body
//! runs exactly once, untimed, so CI can verify the harnesses still build
//! and execute without paying measurement time.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Whether the bench binary was invoked in smoke mode (`-- --test`).
fn test_mode() -> bool {
    std::env::args().any(|a| a == "--test")
}

/// The per-benchmark measurement driver.
pub struct Bencher {
    iters_timed: u64,
    total: Duration,
    test_mode: bool,
}

impl Bencher {
    /// Measure a closure: brief warm-up, then timed batches sized so the
    /// measurement lasts a few milliseconds. In `--test` smoke mode the
    /// closure runs exactly once.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if self.test_mode {
            let start = Instant::now();
            black_box(f());
            self.total = start.elapsed();
            self.iters_timed = 1;
            return;
        }
        // Warm-up and batch sizing: time one call, target ~20 ms of
        // measurement, capped to keep even multi-second benches bounded.
        let t0 = Instant::now();
        black_box(f());
        let once = t0.elapsed().max(Duration::from_nanos(20));
        let target = Duration::from_millis(20);
        let batch = (target.as_nanos() / once.as_nanos()).clamp(1, 10_000) as u64;

        let start = Instant::now();
        for _ in 0..batch {
            black_box(f());
        }
        self.total = start.elapsed();
        self.iters_timed = batch;
    }

    fn ns_per_iter(&self) -> f64 {
        self.total.as_nanos() as f64 / self.iters_timed.max(1) as f64
    }
}

/// The harness entry point.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Run one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_bench(name, None, f);
        self
    }

    /// Open a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _parent: self, name: name.to_string(), throughput: None }
    }
}

/// A group of related benchmarks sharing a name prefix and throughput.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the vendored harness sizes batches
    /// automatically.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Set the per-iteration throughput used in reports.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one named benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_bench(&format!("{}/{}", self.name, name), self.throughput, f);
        self
    }

    /// Finish the group (no-op; exists for API compatibility).
    pub fn finish(&mut self) {}
}

fn run_bench<F: FnMut(&mut Bencher)>(name: &str, throughput: Option<Throughput>, mut f: F) {
    let mut b = Bencher { iters_timed: 0, total: Duration::ZERO, test_mode: test_mode() };
    f(&mut b);
    if b.test_mode {
        println!("bench {name:<48} ok (smoke)");
        return;
    }
    let ns = b.ns_per_iter();
    let rate = match throughput {
        Some(Throughput::Elements(n)) => {
            format!("  {:.3} Melem/s", n as f64 / ns * 1e3)
        }
        Some(Throughput::Bytes(n)) => {
            format!("  {:.3} MiB/s", n as f64 / ns * 1e9 / (1024.0 * 1024.0))
        }
        None => String::new(),
    };
    println!("bench {name:<48} {ns:>14.1} ns/iter ({} iters){rate}", b.iters_timed);
}

/// Collect benchmark functions into one runner function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emit `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        let mut group = c.benchmark_group("grp");
        group.sample_size(10).throughput(Throughput::Elements(128));
        group.bench_function("sum", |b| b.iter(|| (0..128u64).sum::<u64>()));
        group.finish();
    }
}
