//! Offline stand-in for `serde`, vendored into the workspace.
//!
//! The build environment has no network access to crates.io, so the workspace
//! vendors a minimal implementation with the same import surface the code
//! base uses: `use serde::{Serialize, Deserialize}` plus
//! `#[derive(Serialize, Deserialize)]`. Unlike real serde there is no
//! pluggable data format: serialization goes through the JSON-shaped
//! [`Value`] tree, and the sibling `serde_json` crate renders/parses it.
//!
//! Supported shapes (everything this repository derives on):
//!
//! * structs with named fields → JSON objects,
//! * unit structs → empty objects,
//! * tuple structs → JSON arrays,
//! * enums with unit variants → JSON strings (`"Variant"`),
//! * enums with tuple/struct variants → externally tagged single-key objects
//!   (`{"Variant": ...}`), matching serde's default representation.
//!
//! Unknown object fields are ignored on deserialization so that versioned
//! snapshots can evolve.

pub use serde_derive::{Deserialize, Serialize};

/// A JSON-shaped value tree: the single interchange format of this stand-in.
///
/// Objects preserve insertion order (a `Vec` of pairs, not a hash map) so
/// serialized output is deterministic.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON `true` / `false`.
    Bool(bool),
    /// A negative integer (or any integer that fits `i64`).
    Int(i64),
    /// A non-negative integer that may exceed `i64::MAX`.
    UInt(u64),
    /// A floating-point number.
    Float(f64),
    /// A JSON string.
    String(String),
    /// A JSON array.
    Array(Vec<Value>),
    /// A JSON object, insertion-ordered.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The object pairs, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Look up a field of an object.
    pub fn get(&self, name: &str) -> Option<&Value> {
        self.as_object()?.iter().find(|(k, _)| k == name).map(|(_, v)| v)
    }

    /// Numeric value widened to `f64`, if this is any number.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::Int(i) => Some(i as f64),
            Value::UInt(u) => Some(u as f64),
            Value::Float(f) => Some(f),
            _ => None,
        }
    }

    /// Numeric value as `u64`, if this is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::Int(i) if i >= 0 => Some(i as u64),
            Value::UInt(u) => Some(u),
            Value::Float(f) if f >= 0.0 && f.fract() == 0.0 && f <= u64::MAX as f64 => {
                Some(f as u64)
            }
            _ => None,
        }
    }

    /// Numeric value as `i64`, if this is an integer in range.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::Int(i) => Some(i),
            Value::UInt(u) if u <= i64::MAX as u64 => Some(u as i64),
            Value::Float(f) if f.fract() == 0.0 && f.abs() <= i64::MAX as f64 => Some(f as i64),
            _ => None,
        }
    }
}

/// Deserialization error: what was expected and what was found.
#[derive(Debug, Clone, PartialEq)]
pub struct DeError {
    message: String,
}

impl DeError {
    /// An error with a free-form message.
    pub fn custom(message: impl Into<String>) -> Self {
        DeError { message: message.into() }
    }

    /// An "expected X while deserializing Y" error.
    pub fn expected(what: &str, context: &str) -> Self {
        DeError { message: format!("expected {what} while deserializing {context}") }
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for DeError {}

/// Types that can render themselves into a [`Value`].
pub trait Serialize {
    /// Convert to the interchange tree.
    fn to_value(&self) -> Value;
}

/// Types that can be rebuilt from a [`Value`].
pub trait Deserialize: Sized {
    /// Rebuild from the interchange tree.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

/// Look up a required object field (used by derived code).
pub fn field<'a>(pairs: &'a [(String, Value)], name: &str) -> Result<&'a Value, DeError> {
    pairs
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v)
        .ok_or_else(|| DeError::custom(format!("missing field `{name}`")))
}

/// Deserialize one struct field (used by derived code): a missing field is
/// treated as `null`, so `Option` fields may be omitted from the text form;
/// for non-optional fields the `null` fails and the error names the field.
pub fn de_field<T: Deserialize>(
    pairs: &[(String, Value)],
    name: &str,
    context: &str,
) -> Result<T, DeError> {
    let value = pairs.iter().find(|(k, _)| k == name).map(|(_, v)| v);
    T::from_value(value.unwrap_or(&Value::Null)).map_err(|e| {
        if value.is_none() {
            DeError::custom(format!("missing field `{name}` of {context}"))
        } else {
            DeError::custom(format!("field `{name}` of {context}: {e}"))
        }
    })
}

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let u = v.as_u64().ok_or_else(|| DeError::expected("unsigned integer", stringify!($t)))?;
                <$t>::try_from(u).map_err(|_| DeError::custom(format!("{u} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let i = v.as_i64().ok_or_else(|| DeError::expected("integer", stringify!($t)))?;
                <$t>::try_from(i).map_err(|_| DeError::custom(format!("{i} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_serde_uint!(u8, u16, u32, u64, usize);
impl_serde_int!(i8, i16, i32, i64, isize);

impl Serialize for u128 {
    fn to_value(&self) -> Value {
        // The Value tree stores integers at 64 bits; wider values fall back
        // to a decimal string (accepted back by Deserialize below).
        match u64::try_from(*self) {
            Ok(u) => Value::UInt(u),
            Err(_) => Value::String(self.to_string()),
        }
    }
}

impl Deserialize for u128 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        if let Some(u) = v.as_u64() {
            return Ok(u as u128);
        }
        v.as_str()
            .and_then(|s| s.parse::<u128>().ok())
            .ok_or_else(|| DeError::expected("unsigned integer or decimal string", "u128"))
    }
}

impl Serialize for i128 {
    fn to_value(&self) -> Value {
        match i64::try_from(*self) {
            Ok(i) => Value::Int(i),
            Err(_) => Value::String(self.to_string()),
        }
    }
}

impl Deserialize for i128 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        if let Some(i) = v.as_i64() {
            return Ok(i as i128);
        }
        v.as_str()
            .and_then(|s| s.parse::<i128>().ok())
            .ok_or_else(|| DeError::expected("integer or decimal string", "i128"))
    }
}

macro_rules! impl_serde_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Float(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                v.as_f64()
                    .map(|f| f as $t)
                    .ok_or_else(|| DeError::expected("number", stringify!($t)))
            }
        }
    )*};
}

impl_serde_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(DeError::expected("bool", "bool")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_str().map(str::to_string).ok_or_else(|| DeError::expected("string", "String"))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_array()
            .ok_or_else(|| DeError::expected("array", "Vec"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items = v.as_array().ok_or_else(|| DeError::expected("array", "array"))?;
        if items.len() != N {
            return Err(DeError::custom(format!(
                "expected array of length {N}, got {}",
                items.len()
            )));
        }
        let parsed: Vec<T> = items.iter().map(T::from_value).collect::<Result<_, _>>()?;
        parsed.try_into().map_err(|_| DeError::custom("array length mismatch after parse"))
    }
}

macro_rules! impl_serde_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let items = v.as_array().ok_or_else(|| DeError::expected("array", "tuple"))?;
                let mut it = items.iter();
                Ok(($(
                    $name::from_value(
                        it.next().ok_or_else(|| DeError::expected("tuple element", "tuple"))?,
                    )?,
                )+))
            }
        }
    )*};
}

impl_serde_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::from_value(&42usize.to_value()).unwrap(), 42);
        assert_eq!(i32::from_value(&(-7i64).to_value()).unwrap(), -7);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(String::from_value(&"hi".to_string().to_value()).unwrap(), "hi");
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![1usize, 2, 3];
        assert_eq!(Vec::<usize>::from_value(&v.to_value()).unwrap(), v);
        let a = [1.0f64, 2.0, 3.0];
        assert_eq!(<[f64; 3]>::from_value(&a.to_value()).unwrap(), a);
        assert_eq!(Option::<u32>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(Option::<u32>::from_value(&5u32.to_value()).unwrap(), Some(5));
    }

    #[test]
    fn length_mismatch_is_an_error() {
        let v = vec![1usize, 2].to_value();
        assert!(<[usize; 3]>::from_value(&v).is_err());
    }

    #[test]
    fn object_field_lookup() {
        let obj = Value::Object(vec![("x".into(), Value::Int(1))]);
        assert_eq!(obj.get("x"), Some(&Value::Int(1)));
        assert_eq!(obj.get("y"), None);
    }
}
