//! Offline stand-in for `rand` 0.8, vendored into the workspace.
//!
//! Implements the API surface this repository uses — `rand::rngs::StdRng`,
//! [`SeedableRng::seed_from_u64`], [`Rng::gen`], [`Rng::gen_range`],
//! [`Rng::gen_ratio`] — over a xoshiro256++ generator seeded via SplitMix64.
//! Deterministic across platforms and processes for a given seed (the
//! repository seeds every generator explicitly).

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// A uniformly random value of `T` (`f64`/`f32` in `[0, 1)`, integers
    /// over their whole range, `bool` fair).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// A uniformly random value in `range` (half-open or inclusive).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// `true` with probability `numerator / denominator`.
    fn gen_ratio(&mut self, numerator: u32, denominator: u32) -> bool
    where
        Self: Sized,
    {
        assert!(denominator > 0, "gen_ratio denominator must be positive");
        assert!(numerator <= denominator, "gen_ratio numerator exceeds denominator");
        self.gen_range(0..denominator) < numerator
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability out of range");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore> Rng for R {}

/// Types with a "standard" distribution for [`Rng::gen`].
pub trait Standard {
    /// Draw one sample.
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for usize {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Types that can be sampled uniformly from a bounded range.
pub trait SampleUniform: Sized {
    /// One sample in `[start, end)` (or `[start, end]` when `inclusive`).
    fn sample_range<R: RngCore>(rng: &mut R, start: Self, end: Self, inclusive: bool) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore>(rng: &mut R, start: Self, end: Self, inclusive: bool) -> Self {
                let extra = u128::from(inclusive);
                let span = (end as i128 - start as i128) as u128 + extra;
                assert!(span > 0, "cannot sample empty range");
                let offset = (rng.next_u64() as u128) % span;
                (start as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore>(rng: &mut R, start: Self, end: Self, _inclusive: bool) -> Self {
                assert!(start <= end, "cannot sample empty range");
                let unit = <$t as Standard>::sample_standard(rng);
                start + unit * (end - start)
            }
        }
    )*};
}

impl_sample_uniform_float!(f32, f64);

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draw one sample from the range.
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_range(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform + PartialOrd + Copy> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample empty range");
        T::sample_range(rng, start, end, true)
    }
}

/// Generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard generator: xoshiro256++ seeded via SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9e3779b97f4a7c15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
                z ^ (z >> 31)
            };
            StdRng { state: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.state;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(-5i32..=5);
            assert!((-5..=5).contains(&y));
            let f = rng.gen_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&f));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn ranges_reach_both_halves() {
        let mut rng = StdRng::seed_from_u64(1);
        let (mut low, mut high) = (0, 0);
        for _ in 0..1000 {
            if rng.gen_range(0usize..10) < 5 {
                low += 1;
            } else {
                high += 1;
            }
        }
        assert!(low > 300 && high > 300, "low {low} high {high}");
    }

    #[test]
    fn gen_ratio_extremes() {
        let mut rng = StdRng::seed_from_u64(9);
        assert!((0..100).all(|_| !rng.gen_ratio(0, 10)));
        assert!((0..100).all(|_| rng.gen_ratio(10, 10)));
    }
}
