//! Offline vendored readiness-polling shim.
//!
//! The build environment has no crates.io access, so the event-loop server
//! cannot use `mio`/`tokio`; this crate is the minimal replacement: a
//! level-triggered [`Poller`] over raw `epoll(7)` on Linux (the syscalls are
//! declared directly against the C library every Rust std build already
//! links) and over `poll(2)` on other Unix platforms, plus a [`Waker`] that
//! lets worker threads interrupt a blocked [`Poller::wait`].
//!
//! The API surface is deliberately tiny — register/modify/deregister an fd
//! with a `u64` token and a read/write [`Interest`], then `wait` for
//! [`Event`]s — because that is all a readiness loop over non-blocking
//! `std::net` sockets needs.
//!
//! ```
//! use miniepoll::{Interest, Poller};
//! use std::io::Write;
//! use std::os::unix::net::UnixStream;
//! use std::os::unix::io::AsRawFd;
//!
//! let poller = Poller::new().unwrap();
//! let (mut a, b) = UnixStream::pair().unwrap();
//! poller.register(b.as_raw_fd(), 7, Interest::READABLE).unwrap();
//! a.write_all(b"x").unwrap();
//! let mut events = Vec::new();
//! poller.wait(&mut events, Some(std::time::Duration::from_secs(5))).unwrap();
//! assert!(events.iter().any(|e| e.token == 7 && e.readable));
//! ```

#![warn(missing_docs)]

use std::io;
use std::os::unix::io::{AsRawFd, RawFd};
use std::time::Duration;

/// Which readiness conditions an fd is registered for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Wake when the fd becomes readable (or the peer hangs up).
    pub readable: bool,
    /// Wake when the fd becomes writable.
    pub writable: bool,
}

impl Interest {
    /// Readable only.
    pub const READABLE: Interest = Interest { readable: true, writable: false };
    /// Writable only.
    pub const WRITABLE: Interest = Interest { readable: false, writable: true };
    /// Readable and writable.
    pub const BOTH: Interest = Interest { readable: true, writable: true };
}

/// One readiness event delivered by [`Poller::wait`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// The token the fd was registered with.
    pub token: u64,
    /// The fd is readable (data, EOF, or a hangup to observe via read).
    pub readable: bool,
    /// The fd is writable.
    pub writable: bool,
    /// The peer closed its end (`EPOLLHUP`/`EPOLLRDHUP`/`POLLHUP`).
    pub hangup: bool,
    /// An error condition is pending on the fd.
    pub error: bool,
}

#[cfg(target_os = "linux")]
mod sys {
    use super::*;
    use std::os::raw::c_int;

    // `struct epoll_event` is packed on x86-64 (the kernel's EPOLL_PACKED);
    // on other architectures it has natural alignment. Mirroring the C
    // layout exactly is what makes these declarations safe.
    #[cfg_attr(target_arch = "x86_64", repr(C, packed))]
    #[cfg_attr(not(target_arch = "x86_64"), repr(C))]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    const EPOLL_CLOEXEC: c_int = 0o2000000;
    const EPOLL_CTL_ADD: c_int = 1;
    const EPOLL_CTL_DEL: c_int = 2;
    const EPOLL_CTL_MOD: c_int = 3;
    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;
    const EPOLLRDHUP: u32 = 0x2000;

    extern "C" {
        fn epoll_create1(flags: c_int) -> c_int;
        fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
        fn epoll_wait(
            epfd: c_int,
            events: *mut EpollEvent,
            maxevents: c_int,
            timeout: c_int,
        ) -> c_int;
        fn close(fd: c_int) -> c_int;
    }

    fn cvt(ret: c_int) -> io::Result<c_int> {
        if ret < 0 {
            Err(io::Error::last_os_error())
        } else {
            Ok(ret)
        }
    }

    fn mask(interest: Interest) -> u32 {
        let mut mask = EPOLLRDHUP;
        if interest.readable {
            mask |= EPOLLIN;
        }
        if interest.writable {
            mask |= EPOLLOUT;
        }
        mask
    }

    /// Level-triggered readiness poller over `epoll(7)`.
    #[derive(Debug)]
    pub struct Poller {
        epfd: RawFd,
    }

    impl Poller {
        /// A fresh epoll instance (close-on-exec).
        pub fn new() -> io::Result<Self> {
            // SAFETY: epoll_create1 takes no pointers.
            let epfd = cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
            Ok(Poller { epfd })
        }

        fn ctl(&self, op: c_int, fd: RawFd, event: Option<EpollEvent>) -> io::Result<()> {
            let mut event = event;
            let ptr = event.as_mut().map_or(std::ptr::null_mut(), |e| e as *mut EpollEvent);
            // SAFETY: `ptr` is null (DEL) or points at a live EpollEvent.
            cvt(unsafe { epoll_ctl(self.epfd, op, fd, ptr) })?;
            Ok(())
        }

        /// Start watching `fd` under `token`.
        pub fn register(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            self.ctl(EPOLL_CTL_ADD, fd, Some(EpollEvent { events: mask(interest), data: token }))
        }

        /// Change the interest set (and token) of a watched fd.
        pub fn modify(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            self.ctl(EPOLL_CTL_MOD, fd, Some(EpollEvent { events: mask(interest), data: token }))
        }

        /// Stop watching `fd`.
        pub fn deregister(&self, fd: RawFd) -> io::Result<()> {
            self.ctl(EPOLL_CTL_DEL, fd, None)
        }

        /// Block until at least one event is ready (or `timeout` elapses —
        /// `None` blocks indefinitely), appending into `events` after
        /// clearing it. Returns the number of events delivered; 0 means the
        /// timeout fired. `EINTR` is retried internally.
        pub fn wait(
            &self,
            events: &mut Vec<Event>,
            timeout: Option<Duration>,
        ) -> io::Result<usize> {
            events.clear();
            let timeout_ms: c_int = match timeout {
                None => -1,
                Some(t) => t.as_millis().min(c_int::MAX as u128) as c_int,
            };
            let mut buf = [EpollEvent { events: 0, data: 0 }; 64];
            let n = loop {
                // SAFETY: `buf` is a live array of `buf.len()` EpollEvents.
                match cvt(unsafe {
                    epoll_wait(self.epfd, buf.as_mut_ptr(), buf.len() as c_int, timeout_ms)
                }) {
                    Ok(n) => break n as usize,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(e) => return Err(e),
                }
            };
            for raw in &buf[..n] {
                // Copy out of the (possibly packed) struct before use.
                let (bits, data) = (raw.events, raw.data);
                events.push(Event {
                    token: data,
                    readable: bits & (EPOLLIN | EPOLLHUP | EPOLLRDHUP) != 0,
                    writable: bits & EPOLLOUT != 0,
                    hangup: bits & (EPOLLHUP | EPOLLRDHUP) != 0,
                    error: bits & EPOLLERR != 0,
                });
            }
            Ok(n)
        }
    }

    impl Drop for Poller {
        fn drop(&mut self) {
            // SAFETY: epfd is a live fd this struct owns.
            unsafe { close(self.epfd) };
        }
    }
}

#[cfg(not(target_os = "linux"))]
mod sys {
    use super::*;
    use std::collections::BTreeMap;
    use std::os::raw::{c_int, c_short};
    use std::sync::Mutex;

    #[repr(C)]
    #[derive(Clone, Copy)]
    struct PollFd {
        fd: c_int,
        events: c_short,
        revents: c_short,
    }

    const POLLIN: c_short = 0x001;
    const POLLOUT: c_short = 0x004;
    const POLLERR: c_short = 0x008;
    const POLLHUP: c_short = 0x010;

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: usize, timeout: c_int) -> c_int;
    }

    /// Level-triggered readiness poller over POSIX `poll(2)` — the portable
    /// fallback for non-Linux Unix hosts. Same contract as the epoll
    /// implementation.
    #[derive(Debug)]
    pub struct Poller {
        registered: Mutex<BTreeMap<RawFd, (u64, Interest)>>,
    }

    impl Poller {
        /// A fresh poller.
        pub fn new() -> io::Result<Self> {
            Ok(Poller { registered: Mutex::new(BTreeMap::new()) })
        }

        /// Start watching `fd` under `token`.
        pub fn register(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            self.registered.lock().unwrap().insert(fd, (token, interest));
            Ok(())
        }

        /// Change the interest set (and token) of a watched fd.
        pub fn modify(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            self.register(fd, token, interest)
        }

        /// Stop watching `fd`.
        pub fn deregister(&self, fd: RawFd) -> io::Result<()> {
            self.registered.lock().unwrap().remove(&fd);
            Ok(())
        }

        /// Block until at least one event is ready (or `timeout` elapses).
        pub fn wait(
            &self,
            events: &mut Vec<Event>,
            timeout: Option<Duration>,
        ) -> io::Result<usize> {
            events.clear();
            let watched: Vec<(RawFd, u64, Interest)> = self
                .registered
                .lock()
                .unwrap()
                .iter()
                .map(|(&fd, &(token, interest))| (fd, token, interest))
                .collect();
            let mut fds: Vec<PollFd> = watched
                .iter()
                .map(|&(fd, _, interest)| PollFd {
                    fd,
                    events: if interest.readable { POLLIN } else { 0 }
                        | if interest.writable { POLLOUT } else { 0 },
                    revents: 0,
                })
                .collect();
            let timeout_ms: c_int = match timeout {
                None => -1,
                Some(t) => t.as_millis().min(c_int::MAX as u128) as c_int,
            };
            let n = loop {
                // SAFETY: `fds` is a live slice of pollfds.
                let ret = unsafe { poll(fds.as_mut_ptr(), fds.len(), timeout_ms) };
                if ret >= 0 {
                    break ret as usize;
                }
                let e = io::Error::last_os_error();
                if e.kind() != io::ErrorKind::Interrupted {
                    return Err(e);
                }
            };
            for (pollfd, &(_, token, _)) in fds.iter().zip(&watched) {
                if pollfd.revents != 0 {
                    events.push(Event {
                        token,
                        readable: pollfd.revents & (POLLIN | POLLHUP) != 0,
                        writable: pollfd.revents & POLLOUT != 0,
                        hangup: pollfd.revents & POLLHUP != 0,
                        error: pollfd.revents & POLLERR != 0,
                    });
                }
            }
            Ok(n)
        }
    }
}

pub use sys::Poller;

/// Wakes a [`Poller`] blocked in [`Poller::wait`] from another thread.
///
/// Implemented as a non-blocking socket pair (pure `std`): the read end is
/// registered with the poller, [`Waker::wake`] writes one byte, and the loop
/// calls [`Waker::drain`] when its token fires. Writes to a full pipe are
/// dropped — one pending byte is enough to wake.
#[derive(Debug)]
pub struct Waker {
    read: std::os::unix::net::UnixStream,
    write: std::os::unix::net::UnixStream,
}

impl Waker {
    /// A fresh waker, not yet registered with any poller.
    pub fn new() -> io::Result<Self> {
        let (read, write) = std::os::unix::net::UnixStream::pair()?;
        read.set_nonblocking(true)?;
        write.set_nonblocking(true)?;
        Ok(Waker { read, write })
    }

    /// The fd to register (readable interest) with the poller.
    pub fn fd(&self) -> RawFd {
        self.read.as_raw_fd()
    }

    /// Make the poller's next (or current) `wait` return. Safe to call from
    /// any thread, any number of times.
    pub fn wake(&self) {
        use std::io::Write;
        // A WouldBlock means the pipe already holds a wake-up; nothing to do.
        let _ = (&self.write).write(&[1u8]);
    }

    /// Consume pending wake-up bytes (call when the waker's token fires).
    pub fn drain(&self) {
        use std::io::Read;
        let mut buf = [0u8; 64];
        while matches!((&self.read).read(&mut buf), Ok(n) if n > 0) {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::os::unix::net::UnixStream;

    #[test]
    fn readable_event_is_delivered_with_the_registered_token() {
        let poller = Poller::new().unwrap();
        let (mut a, b) = UnixStream::pair().unwrap();
        poller.register(b.as_raw_fd(), 42, Interest::READABLE).unwrap();
        let mut events = Vec::new();
        // Nothing to read yet: the wait times out.
        let n = poller.wait(&mut events, Some(Duration::from_millis(10))).unwrap();
        assert_eq!(n, 0);
        a.write_all(b"hello").unwrap();
        poller.wait(&mut events, Some(Duration::from_secs(5))).unwrap();
        assert!(events.iter().any(|e| e.token == 42 && e.readable && !e.error));
    }

    #[test]
    fn writable_interest_fires_and_modify_switches_it_off() {
        let poller = Poller::new().unwrap();
        let (a, _b) = UnixStream::pair().unwrap();
        poller.register(a.as_raw_fd(), 7, Interest::BOTH).unwrap();
        let mut events = Vec::new();
        poller.wait(&mut events, Some(Duration::from_secs(5))).unwrap();
        assert!(events.iter().any(|e| e.token == 7 && e.writable));
        // Read-only interest on an idle socket: no events.
        poller.modify(a.as_raw_fd(), 7, Interest::READABLE).unwrap();
        let n = poller.wait(&mut events, Some(Duration::from_millis(10))).unwrap();
        assert_eq!(n, 0);
        poller.deregister(a.as_raw_fd()).unwrap();
    }

    #[test]
    fn hangup_is_reported_readable() {
        let poller = Poller::new().unwrap();
        let (a, b) = UnixStream::pair().unwrap();
        poller.register(b.as_raw_fd(), 9, Interest::READABLE).unwrap();
        drop(a);
        let mut events = Vec::new();
        poller.wait(&mut events, Some(Duration::from_secs(5))).unwrap();
        let ev = events.iter().find(|e| e.token == 9).expect("hangup event");
        assert!(ev.readable, "a hangup must be observable via read (EOF)");
        assert!(ev.hangup);
    }

    #[test]
    fn waker_interrupts_a_blocked_wait() {
        let poller = std::sync::Arc::new(Poller::new().unwrap());
        let waker = std::sync::Arc::new(Waker::new().unwrap());
        poller.register(waker.fd(), u64::MAX, Interest::READABLE).unwrap();
        let handle = {
            let waker = waker.clone();
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(50));
                waker.wake();
                waker.wake(); // repeated wakes coalesce
            })
        };
        let mut events = Vec::new();
        poller.wait(&mut events, Some(Duration::from_secs(10))).unwrap();
        assert!(events.iter().any(|e| e.token == u64::MAX && e.readable));
        // Join before draining: a drain that lands between the two wakes
        // would leave the second wake armed and the final wait non-empty.
        handle.join().unwrap();
        waker.drain();
        // Drained: the next wait times out quietly.
        let n = poller.wait(&mut events, Some(Duration::from_millis(10))).unwrap();
        assert_eq!(n, 0);
    }
}
