//! `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the vendored serde
//! stand-in.
//!
//! The build environment is offline, so this macro is written against the
//! bare `proc_macro` API (no `syn` / `quote`). It supports exactly the item
//! shapes the workspace derives on:
//!
//! * structs with named fields, unit structs, tuple structs,
//! * enums whose variants are unit, tuple, or struct-like,
//! * no generic parameters, no `#[serde(...)]` attributes.
//!
//! Representations match serde's defaults: named structs are objects, tuple
//! structs are arrays, unit enum variants are strings, and payload-carrying
//! variants are externally tagged single-key objects.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum Body {
    /// Named-field struct: field identifiers in declaration order.
    Struct(Vec<String>),
    /// Tuple struct: number of fields.
    TupleStruct(usize),
    /// Unit struct.
    UnitStruct,
    /// Enum: (variant name, variant body) pairs.
    Enum(Vec<(String, VariantBody)>),
}

#[derive(Debug)]
enum VariantBody {
    Unit,
    Tuple(usize),
    Struct(Vec<String>),
}

struct Item {
    name: String,
    body: Body,
}

/// Advance past a run of `#[...]` attributes starting at `i`.
fn skip_attrs(tokens: &[TokenTree], mut i: usize) -> usize {
    while i + 1 < tokens.len() {
        match (&tokens[i], &tokens[i + 1]) {
            (TokenTree::Punct(p), TokenTree::Group(g))
                if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
            {
                i += 2;
            }
            _ => break,
        }
    }
    i
}

/// Advance past an optional `pub` / `pub(...)` visibility at `i`.
fn skip_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    if let Some(TokenTree::Ident(id)) = tokens.get(i) {
        if id.to_string() == "pub" {
            i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
        }
    }
    i
}

/// Split a token stream on top-level commas, dropping empty segments.
fn split_commas(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut segments = Vec::new();
    let mut current = Vec::new();
    for tok in stream {
        match &tok {
            TokenTree::Punct(p) if p.as_char() == ',' => {
                if !current.is_empty() {
                    segments.push(std::mem::take(&mut current));
                }
            }
            _ => current.push(tok),
        }
    }
    if !current.is_empty() {
        segments.push(current);
    }
    segments
}

/// Parse `name: Type` field segments into field names.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    split_commas(stream)
        .into_iter()
        .map(|seg| {
            let toks: Vec<TokenTree> = seg;
            let mut i = skip_attrs(&toks, 0);
            i = skip_vis(&toks, i);
            match toks.get(i) {
                Some(TokenTree::Ident(id)) => id.to_string(),
                other => panic!("serde_derive: expected field name, found {other:?}"),
            }
        })
        .collect()
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs(&tokens, 0);
    i = skip_vis(&tokens, i);
    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected `struct` or `enum`, found {other:?}"),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected item name, found {other:?}"),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!("serde_derive: generic types are not supported by the vendored serde ({name})");
        }
    }

    let body = match kind.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Body::Struct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Body::TupleStruct(split_commas(g.stream()).len())
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Body::UnitStruct,
            other => panic!("serde_derive: malformed struct body for {name}: {other:?}"),
        },
        "enum" => {
            let group = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g,
                other => panic!("serde_derive: malformed enum body for {name}: {other:?}"),
            };
            let mut variants = Vec::new();
            for seg in split_commas(group.stream()) {
                let toks: Vec<TokenTree> = seg;
                let mut j = skip_attrs(&toks, 0);
                let vname = match toks.get(j) {
                    Some(TokenTree::Ident(id)) => id.to_string(),
                    other => panic!("serde_derive: expected variant name, found {other:?}"),
                };
                j += 1;
                let vbody = match toks.get(j) {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                        VariantBody::Tuple(split_commas(g.stream()).len())
                    }
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        VariantBody::Struct(parse_named_fields(g.stream()))
                    }
                    _ => VariantBody::Unit,
                };
                variants.push((vname, vbody));
            }
            Body::Enum(variants)
        }
        other => panic!("serde_derive: expected `struct` or `enum`, found `{other}`"),
    };
    Item { name, body }
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let name = &item.name;
    let body = match &item.body {
        Body::Struct(fields) => {
            let mut pushes = String::new();
            for f in fields {
                pushes.push_str(&format!(
                    "obj.push((\"{f}\".to_string(), ::serde::Serialize::to_value(&self.{f})));\n"
                ));
            }
            format!(
                "let mut obj: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = \
                 ::std::vec::Vec::new();\n{pushes}::serde::Value::Object(obj)"
            )
        }
        Body::TupleStruct(n) => {
            let items: Vec<String> =
                (0..*n).map(|k| format!("::serde::Serialize::to_value(&self.{k})")).collect();
            format!("::serde::Value::Array(vec![{}])", items.join(", "))
        }
        Body::UnitStruct => "::serde::Value::Object(::std::vec::Vec::new())".to_string(),
        Body::Enum(variants) => {
            let mut arms = String::new();
            for (vname, vbody) in variants {
                match vbody {
                    VariantBody::Unit => arms.push_str(&format!(
                        "{name}::{vname} => ::serde::Value::String(\"{vname}\".to_string()),\n"
                    )),
                    VariantBody::Tuple(n) => {
                        let binders: Vec<String> = (0..*n).map(|k| format!("ref __f{k}")).collect();
                        let payload = if *n == 1 {
                            "::serde::Serialize::to_value(__f0)".to_string()
                        } else {
                            let items: Vec<String> = (0..*n)
                                .map(|k| format!("::serde::Serialize::to_value(__f{k})"))
                                .collect();
                            format!("::serde::Value::Array(vec![{}])", items.join(", "))
                        };
                        arms.push_str(&format!(
                            "{name}::{vname}({}) => ::serde::Value::Object(vec![(\"{vname}\".to_string(), {payload})]),\n",
                            binders.join(", ")
                        ));
                    }
                    VariantBody::Struct(fields) => {
                        let binders: Vec<String> =
                            fields.iter().map(|f| format!("ref {f}")).collect();
                        let items: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!("(\"{f}\".to_string(), ::serde::Serialize::to_value({f}))")
                            })
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vname} {{ {} }} => ::serde::Value::Object(vec![(\"{vname}\".to_string(), ::serde::Value::Object(vec![{}]))]),\n",
                            binders.join(", "),
                            items.join(", ")
                        ));
                    }
                }
            }
            format!("match *self {{\n{arms}}}")
        }
    };
    let output = format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n}}\n"
    );
    output.parse().expect("serde_derive: generated Serialize impl must parse")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let name = &item.name;
    let body = match &item.body {
        Body::Struct(fields) => {
            let mut inits = String::new();
            for f in fields {
                inits.push_str(&format!("{f}: ::serde::de_field(obj, \"{f}\", \"{name}\")?,\n"));
            }
            format!(
                "let obj = v.as_object().ok_or_else(|| ::serde::DeError::expected(\"object\", \"{name}\"))?;\n\
                 ::std::result::Result::Ok({name} {{\n{inits}}})"
            )
        }
        Body::TupleStruct(n) => {
            let mut inits = String::new();
            for k in 0..*n {
                inits.push_str(&format!(
                    "::serde::Deserialize::from_value(items.get({k}).ok_or_else(|| ::serde::DeError::expected(\"array element\", \"{name}\"))?)?,\n"
                ));
            }
            format!(
                "let items = v.as_array().ok_or_else(|| ::serde::DeError::expected(\"array\", \"{name}\"))?;\n\
                 ::std::result::Result::Ok({name}({inits}))"
            )
        }
        Body::UnitStruct => format!("::std::result::Result::Ok({name})"),
        Body::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut payload_arms = String::new();
            for (vname, vbody) in variants {
                match vbody {
                    VariantBody::Unit => unit_arms.push_str(&format!(
                        "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}),\n"
                    )),
                    VariantBody::Tuple(n) => {
                        let expr = if *n == 1 {
                            format!(
                                "::std::result::Result::Ok({name}::{vname}(::serde::Deserialize::from_value(payload)?))"
                            )
                        } else {
                            let mut inits = String::new();
                            for k in 0..*n {
                                inits.push_str(&format!(
                                    "::serde::Deserialize::from_value(items.get({k}).ok_or_else(|| ::serde::DeError::expected(\"array element\", \"{name}::{vname}\"))?)?,\n"
                                ));
                            }
                            format!(
                                "{{ let items = payload.as_array().ok_or_else(|| ::serde::DeError::expected(\"array\", \"{name}::{vname}\"))?;\n\
                                 ::std::result::Result::Ok({name}::{vname}({inits})) }}"
                            )
                        };
                        payload_arms.push_str(&format!("\"{vname}\" => {expr},\n"));
                    }
                    VariantBody::Struct(fields) => {
                        let mut inits = String::new();
                        for f in fields {
                            inits.push_str(&format!(
                                "{f}: ::serde::de_field(obj, \"{f}\", \"{name}::{vname}\")?,\n"
                            ));
                        }
                        payload_arms.push_str(&format!(
                            "\"{vname}\" => {{ let obj = payload.as_object().ok_or_else(|| ::serde::DeError::expected(\"object\", \"{name}::{vname}\"))?;\n\
                             ::std::result::Result::Ok({name}::{vname} {{\n{inits}}}) }},\n"
                        ));
                    }
                }
            }
            format!(
                "match v {{\n\
                 ::serde::Value::String(s) => match s.as_str() {{\n{unit_arms}\
                 other => ::std::result::Result::Err(::serde::DeError::custom(format!(\"unknown variant `{{other}}` of {name}\"))),\n}},\n\
                 ::serde::Value::Object(pairs) if pairs.len() == 1 => {{\n\
                 let (tag, payload) = &pairs[0];\n\
                 match tag.as_str() {{\n{payload_arms}\
                 other => ::std::result::Result::Err(::serde::DeError::custom(format!(\"unknown variant `{{other}}` of {name}\"))),\n}}\n}},\n\
                 _ => ::std::result::Result::Err(::serde::DeError::expected(\"string or single-key object\", \"{name}\")),\n}}"
            )
        }
    };
    let output = format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_value(v: &::serde::Value) -> ::std::result::Result<{name}, ::serde::DeError> {{\n{body}\n}}\n}}\n"
    );
    output.parse().expect("serde_derive: generated Deserialize impl must parse")
}
