//! Offline stand-in for `proptest`, vendored into the workspace.
//!
//! Implements the subset this repository's property tests use: range and
//! tuple strategies, `prop_map`, `proptest::array::uniform7`, the
//! [`proptest!`] macro with an optional `#![proptest_config(...)]` header,
//! and the `prop_assert!` / `prop_assert_eq!` / `prop_assume!` macros.
//!
//! No shrinking is performed: a failing case panics with the generated
//! inputs' debug representation so it can be reproduced by hand. Generation
//! is deterministic per test (seeded from the test name), so failures are
//! reproducible run to run.

use rand::rngs::StdRng;
use rand::SeedableRng;

pub use rand::Rng as __Rng;

/// Deterministic per-test random source.
#[derive(Debug, Clone)]
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// A generator seeded from the test name (stable across runs).
    pub fn deterministic(name: &str) -> Self {
        let mut seed = 0xcbf29ce484222325u64;
        for b in name.bytes() {
            seed ^= b as u64;
            seed = seed.wrapping_mul(0x100000001b3);
        }
        TestRng { inner: StdRng::seed_from_u64(seed) }
    }

    /// The underlying generator.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.inner
    }
}

/// Why a single generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; try another case.
    Reject,
    /// `prop_assert!` failed; the whole test fails.
    Fail(String),
}

/// Configuration for a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` accepted cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A value generator.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rand::Rng::gen_range(rng.rng(), self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rand::Rng::gen_range(rng.rng(), self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7, I: 8)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7, I: 8, J: 9)
}

/// Fixed-size array strategies.
pub mod array {
    use super::{Strategy, TestRng};

    /// A strategy generating `[S::Value; N]` from one element strategy.
    pub struct UniformArray<S, const N: usize> {
        element: S,
    }

    impl<S: Strategy, const N: usize> Strategy for UniformArray<S, N> {
        type Value = [S::Value; N];

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            std::array::from_fn(|_| self.element.generate(rng))
        }
    }

    macro_rules! uniform_fn {
        ($($name:ident => $n:literal),*) => {$(
            /// An array of independent draws from one strategy.
            pub fn $name<S: Strategy>(element: S) -> UniformArray<S, $n> {
                UniformArray { element }
            }
        )*};
    }

    uniform_fn!(
        uniform2 => 2, uniform3 => 3, uniform4 => 4, uniform5 => 5,
        uniform6 => 6, uniform7 => 7, uniform8 => 8
    );
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};

    /// A strategy generating `Vec<S::Value>` with a length drawn from `len`.
    pub struct VecStrategy<S> {
        element: S,
        len: std::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = rand::Rng::gen_range(rng.rng(), self.len.clone());
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A vector of independent draws with length in `len`.
    pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }
}

/// The common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just, ProptestConfig,
        Strategy,
    };

    /// Namespace mirror of `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::array;
        pub use crate::collection;
    }
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                format!("assertion failed: {}: {}", stringify!($cond), format!($($fmt)+)),
            ));
        }
    };
}

/// Fail the current case unless the two expressions compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `{:?}` != `{:?}`",
                l, r
            )));
        }
    }};
}

/// Fail the current case if the two expressions compare equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `{:?}` == `{:?}`",
                l, r
            )));
        }
    }};
}

/// Reject the current case (it does not count toward the case budget).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` accepted random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { @cfg($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (@cfg($cfg:expr)) => {};
    (@cfg($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::deterministic(stringify!($name));
            let mut accepted = 0u32;
            let mut attempts = 0u32;
            let max_attempts = cfg.cases.saturating_mul(20).max(100);
            while accepted < cfg.cases && attempts < max_attempts {
                attempts += 1;
                $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                let inputs = format!(
                    concat!($(stringify!($arg), " = {:?}; "),+),
                    $(&$arg),+
                );
                let outcome = (|| -> ::std::result::Result<(), $crate::TestCaseError> {
                    $body
                    ::std::result::Result::Ok(())
                })();
                match outcome {
                    ::std::result::Result::Ok(()) => accepted += 1,
                    ::std::result::Result::Err($crate::TestCaseError::Reject) => {}
                    ::std::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest case failed for {}: {}\ninputs: {}",
                            stringify!($name), msg, inputs
                        );
                    }
                }
            }
            assert!(
                accepted > 0,
                "proptest {}: every generated case was rejected by prop_assume!",
                stringify!($name)
            );
        }
        $crate::__proptest_items! { @cfg($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(x in 3usize..10, y in 0.25f64..=0.75) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((0.25..=0.75).contains(&y));
        }

        #[test]
        fn tuples_and_maps_compose(pair in (1usize..4, 1usize..4).prop_map(|(a, b)| a * b)) {
            prop_assert!((1..16).contains(&pair));
        }

        #[test]
        fn assume_rejects_without_failing(n in 0usize..100) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }

        #[test]
        fn arrays_generate_full_width(a in crate::array::uniform7(0.0f64..1.0)) {
            prop_assert_eq!(a.len(), 7);
            prop_assert!(a.iter().all(|v| (0.0..1.0).contains(v)));
        }
    }

    #[test]
    fn deterministic_generation_per_test_name() {
        let mut a = crate::TestRng::deterministic("t");
        let mut b = crate::TestRng::deterministic("t");
        let s = 0usize..1000;
        for _ in 0..10 {
            assert_eq!(
                crate::Strategy::generate(&s, &mut a),
                crate::Strategy::generate(&s, &mut b)
            );
        }
    }
}
