//! Offline stand-in for `serde_json`, vendored into the workspace.
//!
//! Renders and parses JSON text over the vendored [`serde::Value`] tree.
//! Floats are printed with Rust's shortest round-trip formatting, so a value
//! survives `to_string` → `from_str` exactly; integers are printed exactly.

pub use serde::Value;
use serde::{DeError, Deserialize, Serialize};

/// Error produced by JSON parsing or deserialization.
#[derive(Debug, Clone, PartialEq)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Self {
        Error { message: message.into() }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error::new(e.to_string())
    }
}

/// Serialize a value to compact JSON text.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Serialize a value to two-space-indented JSON text.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

/// Deserialize a value from JSON text.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let value = parse_value(text)?;
    Ok(T::from_value(&value)?)
}

/// Parse JSON text into a [`Value`] tree.
pub fn parse_value(text: &str) -> Result<Value, Error> {
    let bytes = text.as_bytes();
    let mut pos = 0;
    let value = parse_at(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {pos}")));
    }
    Ok(value)
}

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                let s = format!("{f}");
                out.push_str(&s);
                // Keep floats distinguishable from integers in the text form.
                if !s.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                out.push_str("null");
            }
        }
        Value::String(s) => write_string(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(item, out, indent, depth + 1);
            }
            if !items.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push(']');
        }
        Value::Object(pairs) => {
            out.push('{');
            for (i, (k, item)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(item, out, indent, depth + 1);
            }
            if !pairs.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_at(bytes: &[u8], pos: &mut usize) -> Result<Value, Error> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(Error::new("unexpected end of input")),
        Some(b'n') => parse_keyword(bytes, pos, "null", Value::Null),
        Some(b't') => parse_keyword(bytes, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_keyword(bytes, pos, "false", Value::Bool(false)),
        Some(b'"') => Ok(Value::String(parse_string(bytes, pos)?)),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Array(items));
            }
            loop {
                items.push(parse_at(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Array(items));
                    }
                    _ => return Err(Error::new(format!("expected ',' or ']' at byte {pos}"))),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut pairs = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Object(pairs));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(Error::new(format!("expected ':' at byte {pos}")));
                }
                *pos += 1;
                let value = parse_at(bytes, pos)?;
                pairs.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Object(pairs));
                    }
                    _ => return Err(Error::new(format!("expected ',' or '}}' at byte {pos}"))),
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_keyword(
    bytes: &[u8],
    pos: &mut usize,
    keyword: &str,
    value: Value,
) -> Result<Value, Error> {
    if bytes[*pos..].starts_with(keyword.as_bytes()) {
        *pos += keyword.len();
        Ok(value)
    } else {
        Err(Error::new(format!("invalid literal at byte {pos}")))
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, Error> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(Error::new(format!("expected string at byte {pos}")));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(Error::new("unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let mut code = parse_hex4(bytes, *pos + 1)?;
                        *pos += 4;
                        if (0xD800..=0xDBFF).contains(&code) {
                            // RFC 8259: non-BMP characters arrive as a
                            // UTF-16 surrogate pair of \u escapes.
                            if bytes.get(*pos + 1..*pos + 3) != Some(br"\u") {
                                return Err(Error::new("unpaired high surrogate in \\u escape"));
                            }
                            let low = parse_hex4(bytes, *pos + 3)?;
                            if !(0xDC00..=0xDFFF).contains(&low) {
                                return Err(Error::new("invalid low surrogate in \\u escape"));
                            }
                            code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                            *pos += 6;
                        }
                        out.push(
                            char::from_u32(code)
                                .ok_or_else(|| Error::new("invalid \\u code point"))?,
                        );
                    }
                    _ => return Err(Error::new("invalid escape")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 encoded character.
                let rest = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| Error::new("invalid UTF-8 in string"))?;
                let c = rest.chars().next().expect("non-empty rest");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_hex4(bytes: &[u8], at: usize) -> Result<u32, Error> {
    let hex = bytes.get(at..at + 4).ok_or_else(|| Error::new("truncated \\u escape"))?;
    u32::from_str_radix(
        std::str::from_utf8(hex).map_err(|_| Error::new("non-ascii \\u escape"))?,
        16,
    )
    .map_err(|_| Error::new("invalid \\u escape"))
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, Error> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    let text =
        std::str::from_utf8(&bytes[start..*pos]).map_err(|_| Error::new("invalid number"))?;
    if text.is_empty() {
        return Err(Error::new(format!("expected value at byte {start}")));
    }
    if !text.contains(['.', 'e', 'E']) {
        if let Ok(u) = text.parse::<u64>() {
            return Ok(Value::UInt(u));
        }
        if let Ok(i) = text.parse::<i64>() {
            return Ok(Value::Int(i));
        }
    }
    text.parse::<f64>()
        .map(Value::Float)
        .map_err(|_| Error::new(format!("invalid number `{text}`")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip_through_text() {
        for text in ["null", "true", "false", "0", "-17", "18446744073709551615"] {
            let v = parse_value(text).unwrap();
            assert_eq!(to_string(&v).unwrap(), text);
        }
    }

    #[test]
    fn floats_round_trip_exactly() {
        for f in [0.1, -2.5e-9, 1.0 / 3.0, 123456.789] {
            let text = to_string(&f).unwrap();
            let back: f64 = from_str(&text).unwrap();
            assert_eq!(back, f);
        }
    }

    #[test]
    fn nested_structures() {
        let text = r#"{"a": [1, 2.5, "x\ny"], "b": {"c": null}}"#;
        let v = parse_value(text).unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 3);
        let compact = to_string(&v).unwrap();
        assert_eq!(parse_value(&compact).unwrap(), v);
        let pretty = to_string_pretty(&v).unwrap();
        assert_eq!(parse_value(&pretty).unwrap(), v);
    }

    #[test]
    fn string_escapes() {
        let original = "line1\nline2\ttab \"quoted\" back\\slash ünïcode";
        let text = to_string(&original.to_string()).unwrap();
        let back: String = from_str(&text).unwrap();
        assert_eq!(back, original);
    }

    #[test]
    fn surrogate_pairs_decode() {
        // RFC 8259 escape form, as emitted by e.g. python's json.dumps.
        let v = parse_value(r#""\ud83d\ude00 ok \u00e9""#).unwrap();
        assert_eq!(v, Value::String("\u{1F600} ok \u{e9}".to_string()));
        // Raw UTF-8 (what our writer emits) parses identically.
        assert_eq!(parse_value("\"\u{1F600} ok \u{e9}\"").unwrap(), v);
        assert!(parse_value(r#""\ud83d""#).is_err(), "lone high surrogate");
        assert!(parse_value(r#""\ud83dA""#).is_err(), "bad low surrogate");
    }

    #[test]
    fn errors_on_garbage() {
        assert!(parse_value("{").is_err());
        assert!(parse_value("[1,]").is_err());
        assert!(parse_value("12 34").is_err());
        assert!(parse_value("nul").is_err());
    }
}
