//! Re-pricing stored candidates for new query settings.
//!
//! A record's entries were solved once, for the canonical shape, and are
//! stored stripped to their sequential form. A query arrives for a *raw*
//! shape at some `threads`/options setting; instead of re-running the
//! optimizer, the candidates are
//!
//! 1. rewritten to the raw shape ([`conv_spec::SpecTransform`]),
//! 2. combined with each parallel decomposition the optimizer itself would
//!    search ([`mopt_core::MOptOptimizer::parallel_candidates`]), with the
//!    L3 tile clamped into one thread's slice and greedily shrunk until it
//!    fits the per-thread L3 share — the same envelope the direct solver
//!    certifies against,
//! 3. re-priced with the analytical model exactly as
//!    [`MOptOptimizer::optimize`](mopt_core::MOptOptimizer::optimize)
//!    prices its own candidates,
//!
//! and ranked. The served schedule is therefore one the direct optimizer
//! would certify: valid for the raw shape, parallelism equal to the
//! requested thread count, inside every capacity envelope, with a cost that
//! is bit-identical to the direct model's prediction for that schedule.

use conv_spec::{
    canonicalize, canonicalize_spec, CanonicalSpec, ConvShape, LoopIndex, MachineModel, Spec,
    SpecTransform, TileConfig, TileSizes, TilingLevel,
};
use mopt_core::{LayoutPolicy, MOptOptimizer, OptimizeResult, OptimizedConfig, OptimizerOptions};
use mopt_model::cost::CostOptions;
use mopt_model::multilevel::{MultiLevelModel, ParallelSpec};

use crate::store::ScheduleEntry;

/// Convert a solved [`OptimizeResult`] for a raw shape into storable
/// entries: each ranked configuration is rewritten into canonical
/// coordinates, stripped of its parallel factors, and re-priced at the
/// canonical shape with the sequential reference model so entries from
/// solves at different thread counts merge into one coherent ranking.
pub fn entries_from_result(
    canonical: &CanonicalSpec,
    transform: &SpecTransform,
    machine: &MachineModel,
    solved_threads: usize,
    result: &OptimizeResult,
) -> Vec<ScheduleEntry> {
    result
        .ranked
        .iter()
        .map(|candidate| {
            let oriented = transform.canonicalize_config(&candidate.config);
            let config =
                TileConfig::new(oriented.permutation.clone(), oriented.tiles, TileSizes::ones())
                    .normalized(&canonical.shape);
            let sequential_cost =
                MultiLevelModel::new(canonical.shape, machine.clone(), config.permutation.clone())
                    .predict_config(&config)
                    .bottleneck_cost;
            ScheduleEntry { config, class_id: candidate.class_id, sequential_cost, solved_threads }
        })
        .collect()
}

/// Convenience: canonicalize a raw shape and convert its solve result into
/// storable entries in one call.
pub fn entries_for_shape(
    raw: &ConvShape,
    machine: &MachineModel,
    solved_threads: usize,
    result: &OptimizeResult,
) -> (CanonicalSpec, Vec<ScheduleEntry>) {
    let (canonical, transform) = canonicalize(raw);
    let entries = entries_from_result(&canonical, &transform, machine, solved_threads, result);
    (canonical, entries)
}

/// Convenience: canonicalize a generalized [`Spec`] and convert its solve
/// result into storable entries in one call. Unlike [`entries_for_shape`]
/// this goes through [`conv_spec::canonicalize_spec`], so problem-level
/// symmetries the embedded conv shape cannot see (the matmul `m ↔ n`
/// transpose, recorded as [`SpecTransform::swap_kw`]) fold into one record.
pub fn entries_for_spec(
    spec: &Spec,
    machine: &MachineModel,
    solved_threads: usize,
    result: &OptimizeResult,
) -> (CanonicalSpec, SpecTransform, Vec<ScheduleEntry>) {
    let (canonical, transform) = canonicalize_spec(spec);
    let entries = entries_from_result(&canonical, &transform, machine, solved_threads, result);
    (canonical, transform, entries)
}

/// Answer a query for a generalized [`Spec`] from stored entries: the
/// entries are rewritten back through `transform` (including the matmul
/// `K ↔ W` swap when the record was stored in the transposed orientation)
/// and re-priced at the spec's embedded conv shape. See [`rerank`].
pub fn rerank_spec(
    spec: &Spec,
    transform: &SpecTransform,
    entries: &[ScheduleEntry],
    machine: &MachineModel,
    options: &OptimizerOptions,
) -> Option<OptimizeResult> {
    rerank(&spec.embedded_conv_shape(), transform, entries, machine, options)
}

/// Clamp a configuration's L3 tile into one thread's slice of the problem
/// and greedily shrink it until it fits the per-thread L3 capacity share,
/// then re-nest the inner levels. Returns `None` if no fitting tile exists
/// within the shrink budget (the candidate is skipped).
fn fit_to_envelope(
    config: &TileConfig,
    shape: &ConvShape,
    machine: &MachineModel,
    spec: &ParallelSpec,
) -> Option<TileConfig> {
    let mut config = config.clone();
    let mut l3 = *config.level(TilingLevel::L3);
    // One thread's slice: each parallelized dimension's extent shrinks by
    // its factor (contiguous slices, so the largest slice is the ceiling).
    if spec.threads > 1 {
        let mut slice = TileSizes::full(shape);
        for &idx in &conv_spec::ALL_INDICES {
            let f = spec.factor(idx);
            if f > 1 {
                slice = slice.with(idx, shape.extent(idx).div_ceil(f).max(1));
            }
        }
        l3 = l3.min_with(&slice.as_array());
    }
    let capacity = machine.capacity_per_thread(TilingLevel::L3, spec.threads);
    let mut guard = 0;
    while l3.footprint(shape) > capacity {
        guard += 1;
        if guard > 64 {
            return None;
        }
        let mut largest = LoopIndex::K;
        let mut val = 0;
        for idx in [LoopIndex::K, LoopIndex::C, LoopIndex::H, LoopIndex::W] {
            if l3.get(idx) > val {
                val = l3.get(idx);
                largest = idx;
            }
        }
        if val <= 1 {
            return None;
        }
        l3 = l3.with(largest, (val / 2).max(1));
    }
    *config.level_mut(TilingLevel::L3) = l3;
    Some(config.normalized(shape))
}

/// Answer a query for `raw` at `options` from stored entries, without
/// running the optimizer. Returns `None` when no stored candidate survives
/// (e.g. nothing fits the per-thread envelope), in which case the caller
/// falls back to a direct solve.
///
/// The returned result is shaped exactly like
/// [`MOptOptimizer::optimize`](mopt_core::MOptOptimizer::optimize)'s:
/// ranked by the model's bandwidth-scaled bottleneck cost under the query's
/// thread count and cost options, truncated to `options.keep_top`.
pub fn rerank(
    raw: &ConvShape,
    transform: &SpecTransform,
    entries: &[ScheduleEntry],
    machine: &MachineModel,
    options: &OptimizerOptions,
) -> Option<OptimizeResult> {
    let start = std::time::Instant::now();
    let optimizer = MOptOptimizer::new(*raw, machine.clone(), options.clone());
    let parallel_candidates = optimizer.parallel_candidates();
    let mut candidates: Vec<OptimizedConfig> = Vec::new();
    for entry in entries {
        let base = transform.denormalize_config(&entry.config);
        for spec in &parallel_candidates {
            let Some(fitted) = fit_to_envelope(&base, raw, machine, spec) else {
                continue;
            };
            let mut factors = TileSizes::ones();
            for &idx in &conv_spec::ALL_INDICES {
                factors = factors.with(idx, spec.factor(idx));
            }
            let config = TileConfig::new(fitted.permutation.clone(), fitted.tiles, factors);
            if config.validate(raw).is_err() {
                continue;
            }
            let model = MultiLevelModel::new(*raw, machine.clone(), config.permutation.clone())
                .with_options(CostOptions { line_elems: options.line_elems })
                .with_parallel(*spec);
            // Entries are stored layout-stripped; a `Search`-policy query
            // re-prices each candidate under every layout the direct
            // optimizer would consider (bottleneck + one-time moves) and
            // serves the cheapest — the fixed/unset path is bit-identical
            // to the pre-layout rerank.
            if matches!(options.layout_policy, Some(LayoutPolicy::Search)) {
                let mut best: Option<OptimizedConfig> = None;
                for layout in optimizer.layout_candidates() {
                    let candidate = config.clone().with_layout(layout);
                    let laid = model.clone().with_layout(layout);
                    let prediction = laid.predict_config(&candidate);
                    let total = prediction.bottleneck_cost + laid.move_total();
                    if best.as_ref().is_none_or(|b| total < b.predicted_cost) {
                        best = Some(OptimizedConfig {
                            config: candidate,
                            class_id: entry.class_id,
                            predicted_cost: total,
                            prediction,
                        });
                    }
                }
                candidates.extend(best);
            } else {
                let prediction = model.predict_config(&config);
                candidates.push(OptimizedConfig {
                    config,
                    class_id: entry.class_id,
                    predicted_cost: prediction.bottleneck_cost,
                    prediction,
                });
            }
        }
    }
    if candidates.is_empty() {
        return None;
    }
    candidates.sort_by(|a, b| {
        a.predicted_cost.partial_cmp(&b.predicted_cost).unwrap_or(std::cmp::Ordering::Equal)
    });
    candidates.truncate(options.keep_top.max(1));
    Some(OptimizeResult { ranked: candidates, optimize_seconds: start.elapsed().as_secs_f64() })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_options(threads: usize) -> OptimizerOptions {
        OptimizerOptions { threads, max_classes: 1, keep_top: 8, ..OptimizerOptions::fast() }
    }

    fn machine() -> MachineModel {
        MachineModel::tiny_test_machine()
    }

    fn solve(shape: &ConvShape, threads: usize) -> OptimizeResult {
        MOptOptimizer::new(*shape, machine(), fast_options(threads)).optimize()
    }

    #[test]
    fn stored_entries_are_sequential_and_canonical() {
        let raw = ConvShape::new(1, 16, 8, 5, 3, 10, 12, 1).unwrap();
        let result = solve(&raw, 1);
        let (canonical, entries) = entries_for_shape(&raw, &machine(), 1, &result);
        assert_eq!(entries.len(), result.ranked.len());
        for entry in &entries {
            assert_eq!(entry.config.total_parallelism(), 1);
            assert!(entry.config.validate(&canonical.shape).is_ok());
            assert!(entry.sequential_cost.is_finite() && entry.sequential_cost > 0.0);
            assert_eq!(entry.solved_threads, 1);
        }
    }

    #[test]
    fn rerank_serves_threads_8_from_a_threads_1_solve() {
        // The acceptance-criterion scenario: solve once sequentially, store,
        // then answer an 8-thread query by re-ranking alone.
        let raw = ConvShape::new(1, 32, 16, 3, 3, 16, 16, 1).unwrap();
        let result = solve(&raw, 1);
        let (canonical, transform) = canonicalize(&raw);
        let entries = entries_from_result(&canonical, &transform, &machine(), 1, &result);
        let options = fast_options(8);
        let served = rerank(&raw, &transform, &entries, &machine(), &options)
            .expect("rerank must serve this query");
        let best = &served.ranked[0];
        // The served schedule is one the direct optimizer would certify:
        // valid, with the requested parallelism, inside the per-thread L3
        // envelope the solver enforces on its own candidates.
        assert!(best.config.validate(&raw).is_ok());
        assert_eq!(best.config.total_parallelism(), 8);
        let l3 = best.config.level(TilingLevel::L3).footprint(&raw);
        assert!(l3 <= machine().capacity_per_thread(TilingLevel::L3, 8));
        // And its price is bit-identical to the direct model's prediction
        // for that schedule (same pricing path as `optimize()`).
        let spec = ParallelSpec { threads: 8, factors: best.config.parallel.as_array() };
        assert!(spec.is_valid());
        let direct = MultiLevelModel::new(raw, machine(), best.config.permutation.clone())
            .with_options(CostOptions { line_elems: options.line_elems })
            .with_parallel(spec)
            .predict_config(&best.config);
        assert_eq!(best.predicted_cost, direct.bottleneck_cost);
        assert_eq!(best.prediction, direct);
    }

    #[test]
    fn rerank_at_the_solved_settings_reproduces_the_solved_best() {
        // Round trip at identical settings: the best stored candidate
        // re-prices to exactly the cost the optimizer reported.
        let raw = ConvShape::new(1, 16, 8, 3, 3, 12, 12, 1).unwrap();
        let options = fast_options(1);
        let result = solve(&raw, 1);
        let (canonical, transform) = canonicalize(&raw);
        let entries = entries_from_result(&canonical, &transform, &machine(), 1, &result);
        let served = rerank(&raw, &transform, &entries, &machine(), &options).unwrap();
        assert_eq!(served.ranked[0].config, result.ranked[0].config);
        assert_eq!(served.ranked[0].predicted_cost, result.ranked[0].predicted_cost);
    }

    #[test]
    fn rerank_respects_keep_top() {
        let raw = ConvShape::new(1, 16, 8, 3, 3, 12, 12, 1).unwrap();
        let result = solve(&raw, 1);
        let (canonical, transform) = canonicalize(&raw);
        let entries = entries_from_result(&canonical, &transform, &machine(), 1, &result);
        let options = OptimizerOptions { keep_top: 1, ..fast_options(1) };
        let served = rerank(&raw, &transform, &entries, &machine(), &options).unwrap();
        assert_eq!(served.ranked.len(), 1);
    }

    #[test]
    fn search_policy_rerank_reprices_stored_entries_under_layouts() {
        // Entries are stored layout-stripped; a Search-policy query re-prices
        // them jointly with layout. The default layout stays in the candidate
        // set, so the served best is never worse than the fixed-policy best.
        let raw = ConvShape::new(1, 32, 16, 3, 3, 16, 16, 1).unwrap();
        let result = solve(&raw, 1);
        let (canonical, transform) = canonicalize(&raw);
        let entries = entries_from_result(&canonical, &transform, &machine(), 1, &result);
        let fixed = rerank(&raw, &transform, &entries, &machine(), &fast_options(1)).unwrap();
        let options = OptimizerOptions {
            layout_policy: Some(mopt_core::LayoutPolicy::Search),
            ..fast_options(1)
        };
        let searched = rerank(&raw, &transform, &entries, &machine(), &options).unwrap();
        assert!(searched.ranked[0].predicted_cost <= fixed.ranked[0].predicted_cost);
        let allowed = MOptOptimizer::new(raw, machine(), options.clone()).layout_candidates();
        for cand in &searched.ranked {
            assert!(allowed.contains(&cand.config.layout));
            assert!(cand.config.validate(&raw).is_ok());
        }
        // Fixed-policy rerank stays bit-identical to the unset-policy path.
        let explicit = OptimizerOptions {
            layout_policy: Some(mopt_core::LayoutPolicy::Fixed),
            ..fast_options(1)
        };
        let pinned = rerank(&raw, &transform, &entries, &machine(), &explicit).unwrap();
        assert_eq!(pinned.ranked[0].config, fixed.ranked[0].config);
        assert_eq!(
            pinned.ranked[0].predicted_cost.to_bits(),
            fixed.ranked[0].predicted_cost.to_bits()
        );
    }

    #[test]
    fn rerank_of_empty_entries_is_none() {
        let raw = ConvShape::new(1, 8, 4, 3, 3, 8, 8, 1).unwrap();
        let (_, transform) = canonicalize(&raw);
        assert!(rerank(&raw, &transform, &[], &machine(), &fast_options(1)).is_none());
    }

    #[test]
    fn transposed_raw_shapes_are_served_through_the_shared_entry() {
        // Solve for one orientation, serve the transposed twin through the
        // same canonical entry set.
        let a = ConvShape::new(1, 16, 8, 3, 5, 12, 10, 1).unwrap();
        let b = ConvShape::new(1, 16, 8, 5, 3, 10, 12, 1).unwrap();
        let result = solve(&a, 1);
        let (canon_a, entries) = entries_for_shape(&a, &machine(), 1, &result);
        let (canon_b, transform_b) = canonicalize(&b);
        assert_eq!(canon_a.fingerprint(), canon_b.fingerprint());
        let served = rerank(&b, &transform_b, &entries, &machine(), &fast_options(1)).unwrap();
        assert!(served.ranked[0].config.validate(&b).is_ok());
    }

    #[test]
    fn matmul_transpose_twins_are_served_through_the_shared_entry() {
        // Solve the tall matmul, store through the spec canonicalizer, and
        // serve the wide transpose twin from the same record — the `m ↔ n`
        // swap only exists at the spec level, so this exercises the
        // `swap_kw` rewrite end to end.
        let tall = Spec::matmul(48, 16, 24);
        let wide = Spec::matmul(16, 48, 24);
        let result = MOptOptimizer::optimize_spec(&tall, machine(), fast_options(1));
        let (canon_tall, _, entries) = entries_for_spec(&tall, &machine(), 1, &result);
        let (canon_wide, transform_wide) = canonicalize_spec(&wide);
        assert_eq!(canon_tall.fingerprint(), canon_wide.fingerprint());
        let served =
            rerank_spec(&wide, &transform_wide, &entries, &machine(), &fast_options(1)).unwrap();
        let raw_wide = wide.embedded_conv_shape();
        assert!(served.ranked[0].config.validate(&raw_wide).is_ok());
        // Serving the solved orientation itself reproduces the solved best.
        let (_, transform_tall) = canonicalize_spec(&tall);
        let round =
            rerank_spec(&tall, &transform_tall, &entries, &machine(), &fast_options(1)).unwrap();
        assert_eq!(round.ranked[0].config, result.ranked[0].config);
        assert_eq!(round.ranked[0].predicted_cost, result.ranked[0].predicted_cost);
    }
}
