//! The paged on-disk store: canonical spec → top-k schedule entries.
//!
//! The database is a directory:
//!
//! ```text
//! db/
//!   MANIFEST.json     {"version":1,"pages":64,"k":8}
//!   page-0000.json    {"version":1,"page":0,"checksum":"<fnv1a hex>","records":[...]}
//!   page-0017.json    ...
//! ```
//!
//! A record lives on page `canonical_fingerprint % pages`. Each page file
//! carries the format version and an FNV-1a checksum of its serialized
//! record list, verified on load; pages are replaced atomically via
//! [`crate::ioutil::atomic_write`]. A bounded in-memory page LRU keeps hot
//! pages resident (dirty victims are flushed on eviction), so repeated
//! lookups don't re-read or re-parse disk.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use conv_spec::{ConvShape, TileConfig};
use serde::{Deserialize, Serialize};

use crate::{fnv1a, DbError};

/// Current on-disk format version (manifest and pages).
pub const DB_VERSION: u32 = 1;

/// Default number of page files a fresh database is created with.
pub const DEFAULT_PAGES: usize = 64;

/// Default top-k entries kept per `(spec, machine)` record.
pub const DEFAULT_K: usize = 8;

/// Number of pages the in-memory LRU keeps resident.
const RESIDENT_PAGES: usize = 16;

/// One stored schedule candidate, in canonical coordinates.
///
/// Entries are stored *sequentially*: the parallel factors are stripped to
/// ones and the cost is re-priced at the canonical shape with a sequential
/// reference model, so entries solved at different thread counts merge into
/// one coherently sorted top-k list. Queries at any `threads` re-price the
/// candidates through [`crate::rerank()`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScheduleEntry {
    /// The tiling configuration (canonical coordinates, sequential).
    pub config: TileConfig,
    /// The pruned permutation class the configuration came from (1..=8).
    pub class_id: usize,
    /// Bandwidth-scaled bottleneck cost at the canonical shape, sequential
    /// reference model — the merge-sort key, not a serving price.
    pub sequential_cost: f64,
    /// The thread count of the solve that produced the entry (provenance).
    pub solved_threads: usize,
}

/// All stored entries for one `(canonical spec, machine)` pair.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpecRecord {
    /// The canonical shape the entries were solved for.
    pub spec: ConvShape,
    /// [`conv_spec::MachineModel::fingerprint`] of the target machine.
    pub machine: u64,
    /// Top-k entries, sorted by [`ScheduleEntry::sequential_cost`].
    pub entries: Vec<ScheduleEntry>,
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct Manifest {
    version: u32,
    pages: usize,
    k: usize,
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct PageDoc {
    version: u32,
    page: usize,
    checksum: String,
    records: Vec<SpecRecord>,
}

struct PageState {
    records: Vec<SpecRecord>,
    dirty: bool,
    last_used: u64,
}

struct Inner {
    resident: HashMap<usize, PageState>,
    clock: u64,
}

/// Point-in-time database counters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DbStats {
    /// Number of page files the database hashes over.
    pub pages: usize,
    /// Top-k bound per record.
    pub k: usize,
    /// Pages currently resident in the LRU.
    pub resident_pages: usize,
    /// Lookups that found a record.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Records merged in (one per [`SpecDb::merge`] call).
    pub inserts: u64,
    /// Page files read (and parsed) from disk.
    pub pages_loaded: u64,
    /// Resident pages evicted to stay within the LRU bound.
    pub page_evictions: u64,
}

/// The paged spec database. All methods take `&self`; the handle is meant
/// to be shared across server threads (e.g. in an `Arc`).
pub struct SpecDb {
    root: PathBuf,
    pages: usize,
    k: usize,
    inner: Mutex<Inner>,
    hits: AtomicU64,
    misses: AtomicU64,
    inserts: AtomicU64,
    pages_loaded: AtomicU64,
    page_evictions: AtomicU64,
}

impl SpecDb {
    /// Open (or create) a database directory with the default geometry.
    ///
    /// A fresh directory gets a `MANIFEST.json`; an existing one must carry
    /// a manifest of the supported [`DB_VERSION`], whose geometry (page
    /// count, k) overrides the defaults so databases stay self-describing.
    pub fn open(path: &Path) -> Result<Self, DbError> {
        Self::open_with(path, DEFAULT_PAGES, DEFAULT_K)
    }

    /// Open (or create) a database with an explicit geometry for fresh
    /// directories. An existing manifest always wins.
    pub fn open_with(path: &Path, pages: usize, k: usize) -> Result<Self, DbError> {
        std::fs::create_dir_all(path)?;
        let manifest_path = path.join("MANIFEST.json");
        let manifest = match std::fs::read_to_string(&manifest_path) {
            Ok(text) => {
                let manifest: Manifest =
                    serde_json::from_str(&text).map_err(|e| DbError::Format(e.to_string()))?;
                if manifest.version != DB_VERSION {
                    return Err(DbError::VersionMismatch {
                        found: manifest.version,
                        expected: DB_VERSION,
                    });
                }
                if manifest.pages == 0 || manifest.k == 0 {
                    return Err(DbError::Format("manifest pages and k must be nonzero".into()));
                }
                manifest
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                let manifest = Manifest { version: DB_VERSION, pages: pages.max(1), k: k.max(1) };
                let text = serde_json::to_string_pretty(&manifest)
                    .map_err(|e| DbError::Format(e.to_string()))?;
                crate::ioutil::atomic_write(&manifest_path, &text)?;
                manifest
            }
            Err(e) => return Err(e.into()),
        };
        // Reap temps a killed writer left next to any page (one sweep keyed
        // on a representative page path covers the shared directory).
        crate::ioutil::remove_stale_temps(&path.join("page-0000.json")).ok();
        Ok(SpecDb {
            root: path.to_path_buf(),
            pages: manifest.pages,
            k: manifest.k,
            inner: Mutex::new(Inner { resident: HashMap::new(), clock: 0 }),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            inserts: AtomicU64::new(0),
            pages_loaded: AtomicU64::new(0),
            page_evictions: AtomicU64::new(0),
        })
    }

    /// The database directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The top-k bound per record.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The page a canonical fingerprint hashes to.
    pub fn page_of(&self, spec_fingerprint: u64) -> usize {
        (spec_fingerprint % self.pages as u64) as usize
    }

    fn page_path(&self, page: usize) -> PathBuf {
        self.root.join(format!("page-{page:04}.json"))
    }

    fn load_page(&self, page: usize) -> Result<Vec<SpecRecord>, DbError> {
        let path = self.page_path(page);
        let text = match std::fs::read_to_string(&path) {
            Ok(text) => text,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => return Err(e.into()),
        };
        self.pages_loaded.fetch_add(1, Ordering::Relaxed);
        let doc: PageDoc =
            serde_json::from_str(&text).map_err(|e| DbError::Format(e.to_string()))?;
        if doc.version != DB_VERSION {
            return Err(DbError::VersionMismatch { found: doc.version, expected: DB_VERSION });
        }
        if doc.page != page {
            return Err(DbError::Corrupt {
                page,
                detail: format!("file claims to be page {}", doc.page),
            });
        }
        let expected = Self::records_checksum(&doc.records)?;
        if doc.checksum != expected {
            return Err(DbError::Corrupt {
                page,
                detail: format!("checksum {} does not match records ({expected})", doc.checksum),
            });
        }
        Ok(doc.records)
    }

    fn records_checksum(records: &[SpecRecord]) -> Result<String, DbError> {
        let text =
            serde_json::to_string(&records.to_vec()).map_err(|e| DbError::Format(e.to_string()))?;
        Ok(format!("{:016x}", fnv1a(text.as_bytes())))
    }

    fn write_page(&self, page: usize, records: &[SpecRecord]) -> Result<(), DbError> {
        let doc = PageDoc {
            version: DB_VERSION,
            page,
            checksum: Self::records_checksum(records)?,
            records: records.to_vec(),
        };
        let text = serde_json::to_string(&doc).map_err(|e| DbError::Format(e.to_string()))?;
        crate::ioutil::atomic_write(&self.page_path(page), &text)?;
        Ok(())
    }

    /// Run `f` over the (resident or freshly loaded) records of a page,
    /// marking the page dirty when `f` returns `true`. Evicts the least
    /// recently used resident page — flushing it first if dirty — when the
    /// residency bound is exceeded.
    fn with_page<T>(
        &self,
        page: usize,
        f: impl FnOnce(&mut Vec<SpecRecord>) -> (T, bool),
    ) -> Result<T, DbError> {
        let mut inner = self.inner.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
        inner.clock += 1;
        let tick = inner.clock;
        if let std::collections::hash_map::Entry::Vacant(slot) = inner.resident.entry(page) {
            let records = self.load_page(page)?;
            slot.insert(PageState { records, dirty: false, last_used: tick });
            if inner.resident.len() > RESIDENT_PAGES {
                let victim = inner
                    .resident
                    .iter()
                    .filter(|(id, _)| **id != page)
                    .min_by_key(|(_, state)| state.last_used)
                    .map(|(id, _)| *id);
                if let Some(victim) = victim {
                    let state = inner.resident.remove(&victim).expect("victim is resident");
                    self.page_evictions.fetch_add(1, Ordering::Relaxed);
                    if state.dirty {
                        self.write_page(victim, &state.records)?;
                    }
                }
            }
        }
        let state = inner.resident.get_mut(&page).expect("page resident after load");
        state.last_used = tick;
        let (out, dirtied) = f(&mut state.records);
        state.dirty |= dirtied;
        Ok(out)
    }

    /// Look up the stored entries for a canonical spec fingerprint on a
    /// machine. `Ok(None)` is a clean miss; errors surface page corruption.
    pub fn lookup(
        &self,
        spec_fingerprint: u64,
        machine_fingerprint: u64,
    ) -> Result<Option<Vec<ScheduleEntry>>, DbError> {
        let page = self.page_of(spec_fingerprint);
        let found = self.with_page(page, |records| {
            let found = records
                .iter()
                .find(|r| {
                    r.machine == machine_fingerprint && r.spec.fingerprint() == spec_fingerprint
                })
                .map(|r| r.entries.clone());
            (found, false)
        })?;
        match &found {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        Ok(found)
    }

    /// Merge entries into the record for `(spec, machine)`: deduplicate by
    /// configuration, sort by sequential cost, truncate to the top-k bound.
    /// Returns the resulting entry count. The page is flushed lazily (on
    /// [`flush`](Self::flush) or LRU eviction).
    pub fn merge(
        &self,
        spec: &ConvShape,
        machine_fingerprint: u64,
        entries: Vec<ScheduleEntry>,
    ) -> Result<usize, DbError> {
        if entries.is_empty() {
            return Ok(0);
        }
        let spec_fingerprint = spec.fingerprint();
        let page = self.page_of(spec_fingerprint);
        let k = self.k;
        let spec = *spec;
        let count = self.with_page(page, move |records| {
            let record = match records
                .iter_mut()
                .find(|r| r.machine == machine_fingerprint && r.spec == spec)
            {
                Some(record) => record,
                None => {
                    records.push(SpecRecord {
                        spec,
                        machine: machine_fingerprint,
                        entries: Vec::new(),
                    });
                    records.last_mut().expect("just pushed")
                }
            };
            for entry in entries {
                if !record.entries.iter().any(|e| e.config == entry.config) {
                    record.entries.push(entry);
                }
            }
            record.entries.sort_by(|a, b| {
                a.sequential_cost
                    .partial_cmp(&b.sequential_cost)
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
            record.entries.truncate(k);
            (record.entries.len(), true)
        })?;
        self.inserts.fetch_add(1, Ordering::Relaxed);
        Ok(count)
    }

    /// Write every dirty resident page to disk. Returns the number of pages
    /// written.
    pub fn flush(&self) -> Result<usize, DbError> {
        let dirty: Vec<(usize, Vec<SpecRecord>)> = {
            let mut inner = self.inner.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
            inner
                .resident
                .iter_mut()
                .filter(|(_, state)| state.dirty)
                .map(|(&id, state)| {
                    state.dirty = false;
                    (id, state.records.clone())
                })
                .collect()
        };
        let n = dirty.len();
        for (page, records) in dirty {
            self.write_page(page, &records)?;
        }
        Ok(n)
    }

    /// Snapshot of the database counters.
    pub fn stats(&self) -> DbStats {
        let resident = {
            let inner = self.inner.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
            inner.resident.len()
        };
        DbStats {
            pages: self.pages,
            k: self.k,
            resident_pages: resident,
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            inserts: self.inserts.load(Ordering::Relaxed),
            pages_loaded: self.pages_loaded.load(Ordering::Relaxed),
            page_evictions: self.page_evictions.load(Ordering::Relaxed),
        }
    }
}

impl std::fmt::Debug for SpecDb {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpecDb").field("root", &self.root).field("stats", &self.stats()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use conv_spec::canonicalize;

    fn temp_db(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("mopt-db-{name}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    fn entry(shape: &ConvShape, cost: f64) -> ScheduleEntry {
        ScheduleEntry {
            config: TileConfig::untiled(shape).normalized(shape),
            class_id: 1,
            sequential_cost: cost,
            solved_threads: 1,
        }
    }

    fn entry_with_register_k(shape: &ConvShape, k: usize, cost: f64) -> ScheduleEntry {
        let mut config = TileConfig::untiled(shape);
        config.tiles[0] = config.tiles[0].with(conv_spec::LoopIndex::K, k);
        ScheduleEntry {
            config: config.normalized(shape),
            class_id: 2,
            sequential_cost: cost,
            solved_threads: 1,
        }
    }

    fn canon_shape() -> ConvShape {
        canonicalize(&ConvShape::new(1, 8, 4, 3, 3, 8, 8, 1).unwrap()).0.shape
    }

    #[test]
    fn open_creates_manifest_and_reopens_it() {
        let dir = temp_db("manifest");
        let db = SpecDb::open_with(&dir, 8, 4).unwrap();
        assert_eq!(db.k(), 4);
        drop(db);
        // Reopen with different defaults: the manifest wins.
        let db = SpecDb::open(&dir).unwrap();
        assert_eq!(db.k(), 4);
        assert!(dir.join("MANIFEST.json").exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn merge_lookup_round_trips_across_processes() {
        let dir = temp_db("roundtrip");
        let shape = canon_shape();
        let fp = shape.fingerprint();
        {
            let db = SpecDb::open(&dir).unwrap();
            db.merge(&shape, 7, vec![entry(&shape, 10.0)]).unwrap();
            assert_eq!(db.flush().unwrap(), 1);
        }
        // A second handle (a "different process") sees the entries.
        let db = SpecDb::open(&dir).unwrap();
        let entries = db.lookup(fp, 7).unwrap().expect("persisted record");
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].sequential_cost, 10.0);
        // Different machine fingerprint is a distinct record.
        assert!(db.lookup(fp, 8).unwrap().is_none());
        let stats = db.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn merge_dedupes_sorts_and_truncates_to_k() {
        let dir = temp_db("topk");
        let shape = canon_shape();
        let db = SpecDb::open_with(&dir, 8, 3).unwrap();
        // Six distinct configs with shuffled costs, plus one duplicate.
        let entries: Vec<ScheduleEntry> = [4.0, 2.0, 6.0, 1.0, 5.0, 3.0]
            .iter()
            .enumerate()
            .map(|(i, &c)| entry_with_register_k(&shape, i + 1, c))
            .collect();
        db.merge(&shape, 7, entries.clone()).unwrap();
        let n = db.merge(&shape, 7, vec![entries[0].clone()]).unwrap();
        assert_eq!(n, 3, "top-k bound must hold after merging");
        let got = db.lookup(shape.fingerprint(), 7).unwrap().unwrap();
        let costs: Vec<f64> = got.iter().map(|e| e.sequential_cost).collect();
        assert_eq!(costs, vec![1.0, 2.0, 3.0]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupted_page_is_detected_by_checksum() {
        let dir = temp_db("corrupt");
        let shape = canon_shape();
        let fp = shape.fingerprint();
        let page;
        {
            let db = SpecDb::open(&dir).unwrap();
            db.merge(&shape, 7, vec![entry(&shape, 10.0)]).unwrap();
            db.flush().unwrap();
            page = db.page_of(fp);
        }
        let path = dir.join(format!("page-{page:04}.json"));
        let text = std::fs::read_to_string(&path).unwrap();
        // Flip the stored cost without updating the checksum.
        let tampered = text.replace("10", "99");
        assert_ne!(text, tampered);
        std::fs::write(&path, tampered).unwrap();
        let db = SpecDb::open(&dir).unwrap();
        match db.lookup(fp, 7) {
            Err(DbError::Corrupt { page: p, .. }) => assert_eq!(p, page),
            other => panic!("expected corruption to be detected, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn version_mismatch_is_rejected() {
        let dir = temp_db("version");
        SpecDb::open(&dir).unwrap();
        let manifest_path = dir.join("MANIFEST.json");
        let text = std::fs::read_to_string(&manifest_path).unwrap();
        std::fs::write(&manifest_path, text.replace("1", "2")).unwrap();
        assert!(matches!(SpecDb::open(&dir), Err(DbError::VersionMismatch { .. })));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn page_lru_evicts_and_flushes_dirty_victims() {
        let dir = temp_db("lru");
        // More pages than the residency bound; every spec hits its own page.
        let db = SpecDb::open_with(&dir, 257, 8).unwrap();
        let mut fps = Vec::new();
        let mut k = 1;
        while fps.len() < RESIDENT_PAGES + 4 {
            let shape = ConvShape::new(1, k, 3, 3, 3, 8, 8, 1).unwrap();
            k += 1;
            let fp = shape.fingerprint();
            if fps.iter().any(|&(_, p)| p == db.page_of(fp)) {
                continue; // want distinct pages to force evictions
            }
            db.merge(&shape, 7, vec![entry(&shape, k as f64)]).unwrap();
            fps.push((fp, db.page_of(fp)));
        }
        let stats = db.stats();
        assert!(stats.resident_pages <= RESIDENT_PAGES);
        assert!(stats.page_evictions > 0);
        // Every record — including those on evicted (flushed) pages — is
        // still found.
        for &(fp, _) in &fps {
            assert!(db.lookup(fp, 7).unwrap().is_some(), "record lost after eviction");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn concurrent_merges_and_lookups_are_safe() {
        let dir = temp_db("concurrent");
        let db = std::sync::Arc::new(SpecDb::open(&dir).unwrap());
        let shapes: Vec<ConvShape> =
            (1..=16).map(|k| ConvShape::new(1, k, 3, 3, 3, 8, 8, 1).unwrap()).collect();
        std::thread::scope(|scope| {
            for t in 0..4 {
                let db = db.clone();
                let shapes = shapes.clone();
                scope.spawn(move || {
                    for (i, shape) in shapes.iter().enumerate() {
                        if (i + t) % 2 == 0 {
                            db.merge(shape, 7, vec![entry(shape, i as f64)]).unwrap();
                        } else {
                            let _ = db.lookup(shape.fingerprint(), 7).unwrap();
                        }
                    }
                });
            }
        });
        db.flush().unwrap();
        let stats = db.stats();
        assert_eq!(stats.inserts, 32);
        std::fs::remove_dir_all(&dir).ok();
    }
}
