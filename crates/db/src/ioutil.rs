//! Atomic file replacement with temp-file hygiene.
//!
//! Shared by the database's page writer and the service's snapshot writer
//! (`mopt_service::persist` delegates here): writes go to a uniquely named
//! temporary sibling (`{stem}.tmp.{pid}.{seq}`) that is fsynced and renamed
//! into place, so a crash mid-write never corrupts an existing file, racing
//! writers never interleave into one file, and a failed write never leaks
//! its temp.

use std::io::Write;
use std::path::Path;

/// Atomically replace `path` with `contents`.
///
/// Safe under concurrent calls: each call writes a uniquely named temp file
/// (pid + process-wide sequence number) before the atomic rename, so racing
/// writers never interleave — the last complete write wins.
///
/// The temp file never outlives a failed write: every error path (creation,
/// write, `sync_all`, rename) removes it before the error is returned.
/// Temps leaked by a *killed* process are reaped by [`remove_stale_temps`].
pub fn atomic_write(path: &Path, contents: &str) -> std::io::Result<()> {
    static SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let tmp = path.with_extension(format!(
        "tmp.{}.{}",
        std::process::id(),
        SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
    ));
    let written = (|| {
        let mut file = std::fs::File::create(&tmp)?;
        file.write_all(contents.as_bytes())?;
        file.sync_all()?;
        std::fs::rename(&tmp, path)
    })();
    if written.is_err() {
        std::fs::remove_file(&tmp).ok();
    }
    written
}

/// Remove temp files (`{stem}.tmp.{pid}.{seq}`) left next to `path` by
/// writes that never completed — a crashed or killed process cannot run its
/// own error-path cleanup, and the unique names mean no later write ever
/// reuses (or removes) them. Returns the number of files removed.
///
/// Call this at startup, before the first write: the target path has a
/// single owning process, so anything matching the temp pattern at that
/// point is garbage from a dead process, never an in-flight write.
pub fn remove_stale_temps(path: &Path) -> std::io::Result<usize> {
    let Some(stem) = path.file_stem().and_then(|s| s.to_str()) else {
        return Ok(0);
    };
    let prefix = format!("{stem}.tmp.");
    let dir = match path.parent() {
        Some(parent) if !parent.as_os_str().is_empty() => parent.to_path_buf(),
        _ => std::path::PathBuf::from("."),
    };
    let mut removed = 0;
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if name.starts_with(&prefix) && std::fs::remove_file(entry.path()).is_ok() {
            removed += 1;
        }
    }
    Ok(removed)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("mopt-db-ioutil-{name}-{}.json", std::process::id()))
    }

    #[test]
    fn atomic_write_replaces_contents() {
        let path = temp_path("replace");
        atomic_write(&path, "first").unwrap();
        atomic_write(&path, "second").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "second");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn failed_write_leaves_no_temp_behind() {
        // Renaming onto a non-empty directory fails.
        let dir = temp_path("rename-fails");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(dir.join("occupied")).unwrap();
        assert!(atomic_write(&dir, "payload").is_err());
        let stem = dir.file_stem().unwrap().to_str().unwrap().to_string();
        let leaked: Vec<_> = std::fs::read_dir(dir.parent().unwrap())
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| {
                e.file_name().to_str().is_some_and(|n| n.starts_with(&format!("{stem}.tmp.")))
            })
            .collect();
        assert!(leaked.is_empty(), "failed writes must not leak temps: {leaked:?}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stale_temp_sweep_reaps_only_matching_files() {
        let path = temp_path("sweep");
        std::fs::write(&path, "{}").unwrap();
        let stem = path.file_stem().unwrap().to_str().unwrap();
        let parent = path.parent().unwrap();
        std::fs::write(parent.join(format!("{stem}.tmp.1.0")), "partial").unwrap();
        let unrelated = parent.join(format!("{stem}-other.json"));
        std::fs::write(&unrelated, "keep").unwrap();
        assert_eq!(remove_stale_temps(&path).unwrap(), 1);
        assert!(unrelated.exists());
        assert_eq!(remove_stale_temps(&path).unwrap(), 0);
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(&unrelated).ok();
    }
}
