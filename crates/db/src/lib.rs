//! A persistent, canonicalized top-k schedule database.
//!
//! Every in-process cache in the serving layer memoizes exact
//! `(shape, machine, options, threads)` keys and dies with its process, so
//! a fleet of `moptd` instances re-solves the same problems forever and a
//! restart starts cold. This crate is the durable tier underneath them,
//! after the shape of Morello's `FilesDatabase`: a paged on-disk store of
//! *canonical* spec → top-k [`ScheduleEntry`] lists, shared across runs and
//! composed by the search itself.
//!
//! Three pieces make cross-process reuse real:
//!
//! * **Canonical keys** ([`conv_spec::canonical`]): raw shapes normalize
//!   under cost-preserving symmetries (R/S orientation, pointwise dilation
//!   default, divisor-equivalent padding of the free dims), so distinct raw
//!   requests resolve to one stored entry; schedules rewrite back through
//!   [`conv_spec::SpecTransform`].
//! * **Paged storage** ([`store`]): entries live in page files keyed by
//!   `fingerprint % pages`, each with a versioned header and an FNV-1a
//!   checksum, replaced atomically (temp file + rename — the same hygiene
//!   as the service's snapshot writer, shared via [`ioutil`]). An in-memory
//!   page LRU keeps hot lookups off disk.
//! * **Re-ranking** ([`mod@rerank`]): entries are stored stripped to their
//!   sequential canonical form; a query at any `threads`/options setting is
//!   answered by rewriting the candidates to the raw shape, repairing them
//!   into the per-thread capacity envelope, and re-pricing them with
//!   `mopt_model` — no optimizer run needed.
//!
//! # Example
//!
//! ```
//! use conv_spec::{canonicalize, ConvShape};
//! use mopt_db::{ScheduleEntry, SpecDb};
//!
//! let dir = std::env::temp_dir().join(format!("mopt-db-doc-{}", std::process::id()));
//! let db = SpecDb::open(&dir).unwrap();
//! let (canon, _) = canonicalize(&ConvShape::new(1, 8, 4, 3, 3, 8, 8, 1).unwrap());
//! assert!(db.lookup(canon.fingerprint(), 7).unwrap().is_none());
//! # std::fs::remove_dir_all(&dir).ok();
//! ```

#![warn(missing_docs)]

pub mod ioutil;
pub mod rerank;
pub mod store;

pub use rerank::{entries_for_spec, entries_from_result, rerank, rerank_spec};
pub use store::{DbStats, ScheduleEntry, SpecDb, SpecRecord, DB_VERSION};

/// Errors produced by the database.
#[derive(Debug)]
pub enum DbError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// A manifest or page file was not a valid document.
    Format(String),
    /// A file was written by an incompatible format version.
    VersionMismatch {
        /// Version found in the file.
        found: u32,
        /// Version this build understands.
        expected: u32,
    },
    /// A page failed its checksum or internal consistency checks.
    Corrupt {
        /// The page number.
        page: usize,
        /// What went wrong.
        detail: String,
    },
}

impl std::fmt::Display for DbError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DbError::Io(e) => write!(f, "database I/O error: {e}"),
            DbError::Format(msg) => write!(f, "database format error: {msg}"),
            DbError::VersionMismatch { found, expected } => {
                write!(f, "database version {found} is not the supported version {expected}")
            }
            DbError::Corrupt { page, detail } => {
                write!(f, "database page {page} is corrupt: {detail}")
            }
        }
    }
}

impl std::error::Error for DbError {}

impl From<std::io::Error> for DbError {
    fn from(e: std::io::Error) -> Self {
        DbError::Io(e)
    }
}

/// The FNV-1a hash used for page checksums (the same function — offset
/// basis and prime — as the stable fingerprints in `conv_spec`).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}
