//! Versioned JSON snapshots of the schedule cache.
//!
//! A warm cache is the product of hours of solve time; losing it on restart
//! would mean re-paying that cost. Snapshots serialize every resident
//! `(key, result)` pair — in recency order, so reloading reproduces the
//! eviction order — together with a format version that is checked on load.
//! Writes go through [`mopt_db::ioutil`]'s atomic replacement (temp sibling
//! file + fsync + rename, with temp-file hygiene shared with the schedule
//! database's page writer), so a crash mid-save never corrupts an existing
//! snapshot.

use std::path::Path;

use serde::{Deserialize, Serialize};

use crate::cache::{CacheKey, ScheduleCache};
use mopt_core::OptimizeResult;

/// Current snapshot format version.
pub const SNAPSHOT_VERSION: u32 = 1;

/// One persisted cache entry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SnapshotEntry {
    /// The cache key.
    pub key: CacheKey,
    /// The cached optimization result.
    pub result: OptimizeResult,
}

/// The on-disk snapshot document.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Snapshot {
    /// Format version; load refuses mismatches.
    pub version: u32,
    /// Entries in recency order, least recently used first.
    pub entries: Vec<SnapshotEntry>,
}

impl Snapshot {
    /// Capture the current cache contents.
    pub fn capture(cache: &ScheduleCache) -> Self {
        Snapshot {
            version: SNAPSHOT_VERSION,
            entries: cache
                .entries()
                .into_iter()
                .map(|(key, result)| SnapshotEntry { key, result })
                .collect(),
        }
    }

    /// Re-insert every entry into `cache` (least recently used first, so
    /// relative recency survives the round trip). Returns the entry count.
    pub fn restore(self, cache: &ScheduleCache) -> usize {
        let n = self.entries.len();
        for entry in self.entries {
            cache.insert(entry.key, entry.result);
        }
        n
    }
}

/// Errors produced by snapshot save/load.
#[derive(Debug)]
pub enum PersistError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// The file was not a valid snapshot document.
    Format(String),
    /// The snapshot was written by an incompatible format version.
    VersionMismatch {
        /// Version found in the file.
        found: u32,
        /// Version this build understands.
        expected: u32,
    },
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "snapshot I/O error: {e}"),
            PersistError::Format(msg) => write!(f, "snapshot format error: {msg}"),
            PersistError::VersionMismatch { found, expected } => {
                write!(f, "snapshot version {found} is not the supported version {expected}")
            }
        }
    }
}

impl std::error::Error for PersistError {}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}

/// Save the cache to `path` (atomically: temp file + rename, via
/// [`mopt_db::ioutil::atomic_write`]).
///
/// Safe under concurrent calls: each call writes a uniquely named temp file
/// (pid + sequence number) before the atomic rename, so racing saves never
/// interleave into one file — the last complete snapshot wins. A failed
/// save never leaks its temp; temps leaked by a *killed* process are reaped
/// at startup by [`remove_stale_temps`]. I/O errors are annotated with the
/// snapshot path so clients of the `Save` verb see the cause.
pub fn save_snapshot(cache: &ScheduleCache, path: &Path) -> Result<usize, PersistError> {
    let snapshot = Snapshot::capture(cache);
    let n = snapshot.entries.len();
    let text = serde_json::to_string(&snapshot).map_err(|e| PersistError::Format(e.to_string()))?;
    mopt_db::ioutil::atomic_write(path, &text).map_err(|e| PersistError::Io(annotate(e, path)))?;
    Ok(n)
}

/// Attach the offending path to an I/O error so error responses name the
/// file that failed, not just the OS cause.
fn annotate(e: std::io::Error, path: &Path) -> std::io::Error {
    std::io::Error::new(e.kind(), format!("{}: {e}", path.display()))
}

/// Remove temp files (`{stem}.tmp.{pid}.{seq}`) left next to `path` by saves
/// that never completed — a crashed or killed process cannot run its own
/// error-path cleanup, and the unique names mean no later save ever reuses
/// (or removes) them. Returns the number of files removed.
///
/// Call this at startup, before the first save: the snapshot path has a
/// single owning daemon, so anything matching the temp pattern at that point
/// is garbage from a dead process, never an in-flight save. (Delegates to
/// [`mopt_db::ioutil::remove_stale_temps`], which the database's page
/// writer shares.)
pub fn remove_stale_temps(path: &Path) -> std::io::Result<usize> {
    mopt_db::ioutil::remove_stale_temps(path)
}

/// Load a snapshot from `path` into `cache`. Returns the number of entries
/// restored.
pub fn load_snapshot(cache: &ScheduleCache, path: &Path) -> Result<usize, PersistError> {
    let text = std::fs::read_to_string(path)?;
    let snapshot: Snapshot =
        serde_json::from_str(&text).map_err(|e| PersistError::Format(e.to_string()))?;
    if snapshot.version != SNAPSHOT_VERSION {
        return Err(PersistError::VersionMismatch {
            found: snapshot.version,
            expected: SNAPSHOT_VERSION,
        });
    }
    Ok(snapshot.restore(cache))
}

// ---------------------------------------------------------------------------
// Sharded incremental snapshots
// ---------------------------------------------------------------------------

/// Manifest file name of a sharded snapshot directory.
pub const SHARDED_MANIFEST: &str = "MANIFEST.json";

/// The manifest of a sharded snapshot directory: one `shard-NN.json` per
/// cache shard, each a [`Snapshot`] document holding only that shard's
/// entries. A flush rewrites only the shards dirtied since the last flush,
/// so persistence cost is proportional to *churn*, not to cache size —
/// the property the whole-file format lacks.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardedManifest {
    /// Format version; load refuses mismatches.
    pub version: u32,
    /// Number of shard files the directory is laid out for.
    pub shards: usize,
}

/// What one incremental flush did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FlushReport {
    /// Shard files rewritten (they were dirty).
    pub shards_written: usize,
    /// Shards skipped because nothing in them changed.
    pub shards_skipped: usize,
    /// Entries serialized across the written shards.
    pub entries_written: usize,
}

fn shard_file(dir: &Path, shard: usize) -> std::path::PathBuf {
    dir.join(format!("shard-{shard:02}.json"))
}

/// Incrementally flush `cache` into the sharded snapshot directory `dir`
/// (created, with its manifest, on first use). Only shards dirtied since
/// the previous flush are rewritten — each atomically, so a crash mid-flush
/// leaves every shard file either old or new, never torn. On a write error
/// the failing shard (and all not-yet-written dirty shards) are re-flagged
/// dirty so the next flush retries them.
pub fn save_sharded(cache: &ScheduleCache, dir: &Path) -> Result<FlushReport, PersistError> {
    std::fs::create_dir_all(dir).map_err(|e| PersistError::Io(annotate(e, dir)))?;
    let manifest_path = dir.join(SHARDED_MANIFEST);
    if !manifest_path.exists() {
        let manifest = ShardedManifest { version: SNAPSHOT_VERSION, shards: ScheduleCache::SHARDS };
        let text =
            serde_json::to_string(&manifest).map_err(|e| PersistError::Format(e.to_string()))?;
        mopt_db::ioutil::atomic_write(&manifest_path, &text)
            .map_err(|e| PersistError::Io(annotate(e, &manifest_path)))?;
    }
    let dirty = cache.take_dirty_shards();
    let mut report = FlushReport {
        shards_skipped: ScheduleCache::SHARDS - dirty.len(),
        ..FlushReport::default()
    };
    for (position, &shard) in dirty.iter().enumerate() {
        let entries: Vec<SnapshotEntry> = cache
            .shard_entries(shard)
            .into_iter()
            .map(|(key, result)| SnapshotEntry { key, result })
            .collect();
        let doc = Snapshot { version: SNAPSHOT_VERSION, entries };
        let written = serde_json::to_string(&doc)
            .map_err(|e| PersistError::Format(e.to_string()))
            .and_then(|text| {
                let path = shard_file(dir, shard);
                mopt_db::ioutil::atomic_write(&path, &text)
                    .map_err(|e| PersistError::Io(annotate(e, &path)))
            });
        match written {
            Ok(()) => {
                report.shards_written += 1;
                report.entries_written += doc.entries.len();
            }
            Err(e) => {
                // Hand every unflushed dirty shard back for the next attempt.
                for &pending in &dirty[position..] {
                    cache.mark_shard_dirty(pending);
                }
                return Err(e);
            }
        }
    }
    Ok(report)
}

/// Load a sharded snapshot directory into `cache` (reaping stale temp files
/// first) and mark the cache clean, so an immediate flush writes nothing. A
/// missing directory or manifest is a fresh start (`Ok(0)`), matching the
/// whole-file loader's missing-file behavior; a present-but-unreadable
/// manifest or shard is an error.
pub fn load_sharded(cache: &ScheduleCache, dir: &Path) -> Result<usize, PersistError> {
    let manifest_path = dir.join(SHARDED_MANIFEST);
    let manifest_text = match std::fs::read_to_string(&manifest_path) {
        Ok(text) => text,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(0),
        Err(e) => return Err(PersistError::Io(annotate(e, &manifest_path))),
    };
    let manifest: ShardedManifest =
        serde_json::from_str(&manifest_text).map_err(|e| PersistError::Format(e.to_string()))?;
    if manifest.version != SNAPSHOT_VERSION {
        return Err(PersistError::VersionMismatch {
            found: manifest.version,
            expected: SNAPSHOT_VERSION,
        });
    }
    mopt_db::ioutil::remove_stale_temps(&manifest_path).ok();
    let mut restored = 0;
    for shard in 0..manifest.shards {
        let path = shard_file(dir, shard);
        mopt_db::ioutil::remove_stale_temps(&path).ok();
        let text = match std::fs::read_to_string(&path) {
            Ok(text) => text,
            // A shard that was never dirty was never written; that's a
            // complete (empty) shard, not corruption.
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => continue,
            Err(e) => return Err(PersistError::Io(annotate(e, &path))),
        };
        let doc: Snapshot =
            serde_json::from_str(&text).map_err(|e| PersistError::Format(e.to_string()))?;
        if doc.version != SNAPSHOT_VERSION {
            return Err(PersistError::VersionMismatch {
                found: doc.version,
                expected: SNAPSHOT_VERSION,
            });
        }
        restored += doc.restore(cache);
    }
    cache.mark_all_clean();
    Ok(restored)
}

#[cfg(test)]
mod tests {
    use super::*;
    use conv_spec::{ConvShape, MachineModel};
    use mopt_core::OptimizerOptions;

    fn temp_path(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("mopt-service-{name}-{}.json", std::process::id()));
        p
    }

    fn populated_cache(n: usize) -> ScheduleCache {
        let cache = ScheduleCache::new(64);
        for k in 1..=n {
            let shape = ConvShape::new(1, k, 3, 3, 3, 8, 8, 1).unwrap();
            let key =
                CacheKey::new(shape, &MachineModel::tiny_test_machine(), &OptimizerOptions::fast());
            cache.insert(key.clone(), crate::cache::tests::dummy_result(&shape, k as f64));
        }
        cache
    }

    #[test]
    fn save_then_load_round_trips_exactly() {
        let path = temp_path("roundtrip");
        let cache = populated_cache(6);
        let saved = save_snapshot(&cache, &path).unwrap();
        assert_eq!(saved, 6);

        let reloaded = ScheduleCache::new(64);
        let loaded = load_snapshot(&reloaded, &path).unwrap();
        assert_eq!(loaded, 6);
        // Every original entry is a warm hit with an identical result.
        for (key, result) in cache.entries() {
            assert_eq!(reloaded.get(&key), Some(result));
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn version_mismatch_is_rejected() {
        let path = temp_path("version");
        let cache = populated_cache(2);
        save_snapshot(&cache, &path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let bumped = text.replacen(
            &format!("\"version\":{SNAPSHOT_VERSION}"),
            &format!("\"version\":{}", SNAPSHOT_VERSION + 1),
            1,
        );
        assert_ne!(text, bumped, "version field must appear in the snapshot text");
        std::fs::write(&path, bumped).unwrap();
        let target = ScheduleCache::new(64);
        match load_snapshot(&target, &path) {
            Err(PersistError::VersionMismatch { found, expected }) => {
                assert_eq!(found, SNAPSHOT_VERSION + 1);
                assert_eq!(expected, SNAPSHOT_VERSION);
            }
            other => panic!("expected version mismatch, got {other:?}"),
        }
        assert!(target.is_empty());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn garbage_is_a_format_error_and_missing_file_is_io() {
        let path = temp_path("garbage");
        std::fs::write(&path, "not json at all {").unwrap();
        let cache = ScheduleCache::new(8);
        assert!(matches!(load_snapshot(&cache, &path), Err(PersistError::Format(_))));
        std::fs::remove_file(&path).ok();
        assert!(matches!(load_snapshot(&cache, &path), Err(PersistError::Io(_))));
    }

    fn stale_temps_next_to(path: &std::path::Path) -> Vec<std::path::PathBuf> {
        let stem = path.file_stem().unwrap().to_str().unwrap();
        let prefix = format!("{stem}.tmp.");
        std::fs::read_dir(path.parent().unwrap())
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| {
                p.file_name().and_then(|n| n.to_str()).is_some_and(|n| n.starts_with(&prefix))
            })
            .collect()
    }

    #[test]
    fn failed_rename_leaves_no_temp_file_behind() {
        // Make the final rename fail by pointing the snapshot path at an
        // existing non-empty directory.
        let dir = temp_path("rename-fails");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(dir.join("occupied")).unwrap();
        let cache = populated_cache(3);
        match save_snapshot(&cache, &dir) {
            Err(PersistError::Io(_)) => {}
            other => panic!("expected an I/O error from the rename, got {other:?}"),
        }
        // The uniquely named temp must have been removed on the error path.
        assert_eq!(
            stale_temps_next_to(&dir),
            Vec::<std::path::PathBuf>::new(),
            "failed saves must not leak *.tmp.pid.seq files"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn startup_sweep_reaps_temps_of_dead_processes() {
        let path = temp_path("stale-sweep");
        std::fs::write(&path, "{}").ok();
        let stem = path.file_stem().unwrap().to_str().unwrap();
        let parent = path.parent().unwrap();
        // Plant temps a killed daemon would have left (foreign pid).
        for name in [format!("{stem}.tmp.1.0"), format!("{stem}.tmp.999999.3")] {
            std::fs::write(parent.join(name), "partial").unwrap();
        }
        // An unrelated sibling must survive the sweep.
        let unrelated = parent.join(format!("{stem}-other.json"));
        std::fs::write(&unrelated, "keep").unwrap();
        assert_eq!(stale_temps_next_to(&path).len(), 2);
        assert_eq!(remove_stale_temps(&path).unwrap(), 2);
        assert_eq!(stale_temps_next_to(&path), Vec::<std::path::PathBuf>::new());
        assert!(unrelated.exists());
        assert_eq!(remove_stale_temps(&path).unwrap(), 0);
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(&unrelated).ok();
    }

    #[test]
    fn concurrent_saves_never_corrupt_the_snapshot() {
        let path = temp_path("concurrent");
        let cache = populated_cache(8);
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| save_snapshot(&cache, &path).unwrap());
            }
        });
        // Whichever save won the final rename, the file is a complete,
        // loadable snapshot.
        let reloaded = ScheduleCache::new(64);
        assert_eq!(load_snapshot(&reloaded, &path).unwrap(), 8);
        std::fs::remove_file(&path).ok();
    }

    fn temp_dir_path(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir()
            .join(format!("mopt-service-sharded-{name}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    #[test]
    fn sharded_save_then_load_round_trips_exactly() {
        let dir = temp_dir_path("roundtrip");
        let cache = populated_cache(8);
        let report = save_sharded(&cache, &dir).unwrap();
        assert_eq!(report.entries_written, 8);
        assert!(report.shards_written >= 1 && report.shards_written <= 8);
        assert_eq!(
            report.shards_written + report.shards_skipped,
            ScheduleCache::SHARDS,
            "every shard is either written or skipped"
        );
        let reloaded = ScheduleCache::new(64);
        assert_eq!(load_sharded(&reloaded, &dir).unwrap(), 8);
        for (key, result) in cache.entries() {
            assert_eq!(reloaded.get(&key), Some(result));
        }
        // Loading marked the cache clean: an immediate flush writes nothing.
        let idle = save_sharded(&reloaded, &dir).unwrap();
        assert_eq!((idle.shards_written, idle.entries_written), (0, 0));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn incremental_flush_cost_tracks_churn_not_cache_size() {
        let dir = temp_dir_path("churn");
        let cache = populated_cache(16);
        let full = save_sharded(&cache, &dir).unwrap();
        assert_eq!(full.entries_written, 16);

        // Touch exactly one key: the next flush rewrites exactly one shard,
        // no matter how many entries are resident overall.
        let (key, _) = cache.entries().pop().unwrap();
        cache.insert(key.clone(), crate::cache::tests::dummy_result(&key.embedded_shape(), 99.0));
        let incremental = save_sharded(&cache, &dir).unwrap();
        assert_eq!(incremental.shards_written, 1, "one dirty key = one shard file rewritten");
        assert_eq!(incremental.shards_skipped, ScheduleCache::SHARDS - 1);

        // Nothing changed since: the flush is free.
        let idle = save_sharded(&cache, &dir).unwrap();
        assert_eq!(idle.shards_written, 0);

        // And the directory still reloads to the full, updated cache.
        let reloaded = ScheduleCache::new(64);
        assert_eq!(load_sharded(&reloaded, &dir).unwrap(), 16);
        assert_eq!(reloaded.get(&key).map(|r| r.best().predicted_cost), Some(99.0));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sharded_load_of_missing_directory_is_a_fresh_start() {
        let dir = temp_dir_path("missing");
        let cache = ScheduleCache::new(16);
        assert_eq!(load_sharded(&cache, &dir).unwrap(), 0);
        assert!(cache.is_empty());
    }

    #[test]
    fn sharded_manifest_version_mismatch_is_rejected() {
        let dir = temp_dir_path("version");
        let cache = populated_cache(2);
        save_sharded(&cache, &dir).unwrap();
        let manifest_path = dir.join(SHARDED_MANIFEST);
        let text = std::fs::read_to_string(&manifest_path).unwrap();
        std::fs::write(
            &manifest_path,
            text.replacen(
                &format!("\"version\":{SNAPSHOT_VERSION}"),
                &format!("\"version\":{}", SNAPSHOT_VERSION + 7),
                1,
            ),
        )
        .unwrap();
        match load_sharded(&ScheduleCache::new(16), &dir) {
            Err(PersistError::VersionMismatch { found, expected }) => {
                assert_eq!(found, SNAPSHOT_VERSION + 7);
                assert_eq!(expected, SNAPSHOT_VERSION);
            }
            other => panic!("expected version mismatch, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn failed_sharded_flush_hands_dirty_shards_back() {
        let dir = temp_dir_path("failfl");
        let cache = populated_cache(4);
        save_sharded(&cache, &dir).unwrap();
        // Dirty one shard, then make its shard file unwritable by replacing
        // it with a non-empty directory (rename onto it fails).
        let (key, _) = cache.entries().pop().unwrap();
        cache.insert(key.clone(), crate::cache::tests::dummy_result(&key.embedded_shape(), 5.0));
        let dirty_shard = {
            let claimed = cache.take_dirty_shards();
            assert_eq!(claimed.len(), 1);
            cache.mark_shard_dirty(claimed[0]);
            claimed[0]
        };
        let path = dir.join(format!("shard-{dirty_shard:02}.json"));
        std::fs::remove_file(&path).unwrap();
        std::fs::create_dir_all(path.join("occupied")).unwrap();
        match save_sharded(&cache, &dir) {
            Err(PersistError::Io(e)) => {
                assert!(e.to_string().contains(&format!("shard-{dirty_shard:02}.json")))
            }
            other => panic!("expected an I/O error, got {other:?}"),
        }
        // The shard is dirty again: clearing the obstruction lets the next
        // flush succeed and write it.
        std::fs::remove_dir_all(&path).unwrap();
        let retry = save_sharded(&cache, &dir).unwrap();
        assert_eq!(retry.shards_written, 1);
        let reloaded = ScheduleCache::new(64);
        assert_eq!(load_sharded(&reloaded, &dir).unwrap(), 4);
        assert_eq!(reloaded.get(&key).map(|r| r.best().predicted_cost), Some(5.0));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn snapshot_preserves_recency_order() {
        let cache = populated_cache(5);
        let order_before: Vec<_> = cache.entries().into_iter().map(|(k, _)| k).collect();
        let snapshot = Snapshot::capture(&cache);
        let reloaded = ScheduleCache::new(64);
        snapshot.restore(&reloaded);
        let order_after: Vec<_> = reloaded.entries().into_iter().map(|(k, _)| k).collect();
        assert_eq!(order_before, order_after);
    }
}
