//! The warm database tier underneath the in-process caches.
//!
//! Request flow with a database attached: shard cache → db page (+ re-rank)
//! → optimizer. The [`DbTier`] wraps a [`mopt_db::SpecDb`] with the
//! canonicalize-lookup-rerank glue and serving counters:
//!
//! * **lookup** canonicalizes the raw [`Spec`] (conv, matmul, pooling, or
//!   elementwise — all embed into conv coordinates), fetches the stored
//!   top-k entries for `(canonical spec, machine)`, and re-prices them for
//!   the request's `threads`/options via [`mopt_db::rerank_spec()`] — a db
//!   *hit* serves a full [`OptimizeResult`] without running the optimizer.
//! * **record** writes fresh optimizer results through to the database
//!   (canonicalized, sequentialized), so every solve any process pays for
//!   warms the whole fleet.
//!
//! Database I/O problems are deliberately non-fatal on the serving path: a
//! corrupt page or failed write degrades to a miss (counted in
//! [`DbTierStats::errors`]) and the optimizer still answers.

use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};

use conv_spec::{canonicalize_spec, MachineModel, Spec};
use mopt_core::{OptimizeResult, OptimizerOptions};
use mopt_db::{DbError, DbStats, SpecDb};
use serde::{Deserialize, Serialize};

/// Serving counters for the database tier, plus the store's own counters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DbTierStats {
    /// Requests served from stored entries (re-rank succeeded).
    pub hits: u64,
    /// Requests the database could not serve (no record, no surviving
    /// candidate, or an I/O error) — each one fell back to the optimizer.
    pub misses: u64,
    /// Solve results written through to the database.
    pub inserts: u64,
    /// Lookups or write-throughs that hit a database error (corrupt page,
    /// filesystem failure) and degraded to a miss / no-op.
    pub errors: u64,
    /// The underlying paged store's counters (page LRU, checksummed loads).
    pub store: DbStats,
}

impl DbTierStats {
    /// Hit fraction of all tier lookups (0 when no lookups happened).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A shared handle on the persistent schedule database, counted and wired
/// for serving. All methods take `&self` (share via `Arc`).
pub struct DbTier {
    db: SpecDb,
    hits: AtomicU64,
    misses: AtomicU64,
    inserts: AtomicU64,
    errors: AtomicU64,
}

impl DbTier {
    /// Open (or create) the database directory.
    pub fn open(path: &Path) -> Result<Self, DbError> {
        Ok(DbTier {
            db: SpecDb::open(path)?,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            inserts: AtomicU64::new(0),
            errors: AtomicU64::new(0),
        })
    }

    /// The wrapped store (for populators and tests).
    pub fn db(&self) -> &SpecDb {
        &self.db
    }

    /// Try to answer an optimization query from stored entries. `None`
    /// falls back to the optimizer; database errors degrade to `None`.
    pub fn lookup(
        &self,
        spec: &Spec,
        machine: &MachineModel,
        options: &OptimizerOptions,
    ) -> Option<OptimizeResult> {
        let (canonical, transform) = canonicalize_spec(spec);
        let entries = match self.db.lookup(canonical.fingerprint(), machine.fingerprint()) {
            Ok(entries) => entries,
            Err(_) => {
                self.errors.fetch_add(1, Ordering::Relaxed);
                None
            }
        };
        let served = entries
            .and_then(|entries| mopt_db::rerank_spec(spec, &transform, &entries, machine, options));
        match &served {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        served
    }

    /// Write a fresh solve result through to the database (best effort:
    /// errors are counted, never surfaced to the request).
    pub fn record(
        &self,
        spec: &Spec,
        machine: &MachineModel,
        solved_threads: usize,
        result: &OptimizeResult,
    ) {
        let (canonical, _transform, entries) =
            mopt_db::entries_for_spec(spec, machine, solved_threads, result);
        match self.db.merge(&canonical.shape, machine.fingerprint(), entries) {
            Ok(_) => {
                self.inserts.fetch_add(1, Ordering::Relaxed);
            }
            Err(_) => {
                self.errors.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Flush dirty pages to disk. Returns the number of pages written.
    pub fn flush(&self) -> Result<usize, DbError> {
        self.db.flush()
    }

    /// Snapshot of the tier and store counters.
    pub fn stats(&self) -> DbTierStats {
        DbTierStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            inserts: self.inserts.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            store: self.db.stats(),
        }
    }
}

impl std::fmt::Debug for DbTier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DbTier").field("stats", &self.stats()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mopt_core::MOptOptimizer;

    fn temp_db(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("mopt-dbtier-{name}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    fn fast_options(threads: usize) -> OptimizerOptions {
        OptimizerOptions { threads, max_classes: 1, ..OptimizerOptions::fast() }
    }

    #[test]
    fn record_then_lookup_serves_without_solving() {
        let dir = temp_db("roundtrip");
        let shape = conv_spec::ConvShape::new(1, 16, 8, 3, 3, 12, 12, 1).unwrap();
        let spec = Spec::Conv(shape);
        let machine = MachineModel::tiny_test_machine();
        {
            let tier = DbTier::open(&dir).unwrap();
            let result = MOptOptimizer::new(shape, machine.clone(), fast_options(1)).optimize();
            tier.record(&spec, &machine, 1, &result);
            tier.flush().unwrap();
        }
        // A cold process (fresh handle) answers from disk, at a different
        // thread count than the one solved.
        let tier = DbTier::open(&dir).unwrap();
        let served = tier.lookup(&spec, &machine, &fast_options(2)).expect("db-warm hit");
        assert_eq!(served.ranked[0].config.total_parallelism(), 2);
        let stats = tier.stats();
        assert_eq!((stats.hits, stats.misses, stats.errors), (1, 0, 0));
        assert!(stats.hit_rate() > 0.99);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn unknown_shape_is_a_clean_miss() {
        let dir = temp_db("miss");
        let tier = DbTier::open(&dir).unwrap();
        let spec = Spec::Conv(conv_spec::ConvShape::new(1, 8, 4, 3, 3, 8, 8, 1).unwrap());
        let machine = MachineModel::tiny_test_machine();
        assert!(tier.lookup(&spec, &machine, &fast_options(1)).is_none());
        let stats = tier.stats();
        assert_eq!((stats.hits, stats.misses), (0, 1));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn matmul_record_serves_its_transpose_twin() {
        let dir = temp_db("matmul-twin");
        let tall = Spec::matmul(48, 16, 24);
        let wide = Spec::matmul(16, 48, 24);
        let machine = MachineModel::tiny_test_machine();
        let tier = DbTier::open(&dir).unwrap();
        let solved = MOptOptimizer::optimize_spec(&tall, machine.clone(), fast_options(1));
        tier.record(&tall, &machine, 1, &solved);
        // The m<->n transpose canonicalizes to the same stored record, so
        // the twin is a db hit without ever having been solved.
        let served = tier.lookup(&wide, &machine, &fast_options(1)).expect("twin served");
        served.best().config.validate(&wide.embedded_conv_shape()).expect("valid on twin");
        let stats = tier.stats();
        assert_eq!((stats.hits, stats.misses, stats.inserts), (1, 0, 1));
        std::fs::remove_dir_all(&dir).ok();
    }
}
