//! The JSON-lines request/response protocol and its dispatch loop.
//!
//! One request per line, one response per line — a dependency-light wire
//! protocol that works identically over TCP and stdin/stdout (the `moptd`
//! binary drives both). Requests are externally tagged enums, e.g.:
//!
//! ```text
//! {"Optimize": {"op": "Y0", "machine": {"Preset": "i7-9700k"}}}
//! {"Optimize": {"spec": {"Matmul": {"m": 1000, "n": 1, "k": 2048}}, "machine": {"Preset": "i7-9700k"}}}
//! {"PlanNetwork": {"suite": "resnet18", "machine": {"Preset": "tiny"}}}
//! {"PlanGraph": {"block": "mbv2-block5", "machine": {"Preset": "i7-9700k"}}}
//! {"Explain": {"op": "Y0", "machine": {"Preset": "i7-9700k"}}}
//! "Suites"
//! "Stats"
//! ```
//!
//! Since the spec-IR generalization, `Optimize` and `Explain` take a tagged
//! `"spec"` payload (conv, matmul, pooling, or elementwise) as the primary
//! problem form; the legacy flat `"shape"` field and Table-1 `"op"` names
//! keep parsing and resolve to the *same* cache and database fingerprints,
//! so pre-spec clients see bit-identical answers.
//!
//! Malformed input never kills the connection: it produces an
//! `{"Error": ...}` response and the loop continues.
//!
//! Any `Optimize`/`PlanNetwork`/`PlanGraph` request may set `"trace": true`
//! to receive the request's span tree inline in the response; `Explain`
//! re-answers a shape and adds the optimizer's search trace plus the
//! winner's per-memory-level cost breakdown; `Trace` returns the slow-request
//! log (armed with `moptd --slow-ms`).

use std::io::{BufRead, Read, Write};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use conv_spec::{benchmarks, BenchmarkSuite, ConvShape, MachineModel, Spec};
use mopt_core::{LayoutPolicy, MOptOptimizer, OptimizeResult, OptimizerOptions, SearchTrace};
use mopt_graph::{builders, Graph, GraphPlan, GraphPlanner};
use mopt_model::{CostBreakdown, CostOptions, MultiLevelModel, ParallelSpec};
use mopt_trace::{SpanNode, TraceContext, TraceRing};
use serde::{Deserialize, Serialize};

use crate::batch::{NamedLayer, NetworkPlan, NetworkPlanner};
use crate::cache::{CacheKey, CacheStats, ScheduleCache};
use crate::dbtier::{DbTier, DbTierStats};
use crate::graphs::{GraphCacheKey, GraphPlanCache, GraphServiceStats};
use crate::metrics::{ErrorCounts, MetricsReport, ServiceMetrics, Verb};
use crate::singleflight::{FlightBreakdown, Role, SingleFlight};

/// How a request names the target machine.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum MachineSpec {
    /// A named preset: `"i7-9700k"`, `"i9-10980xe"`, or `"tiny"`.
    Preset(String),
    /// A full inline machine description.
    Custom(MachineModel),
}

impl MachineSpec {
    /// Resolve to a machine model.
    pub fn resolve(&self) -> Result<MachineModel, String> {
        match self {
            MachineSpec::Custom(m) => Ok(m.clone()),
            MachineSpec::Preset(name) => {
                match name.to_ascii_lowercase().replace(['-', '_', ' '], "").as_str() {
                    "i79700k" | "i7" | "coffeelake" => Ok(MachineModel::i7_9700k()),
                    "i910980xe" | "i9" | "cascadelake" => Ok(MachineModel::i9_10980xe()),
                    "tiny" | "tinytest" | "test" => Ok(MachineModel::tiny_test_machine()),
                    _ => Err(format!(
                        "unknown machine preset `{name}` (try \"i7-9700k\", \"i9-10980xe\", \"tiny\")"
                    )),
                }
            }
        }
    }
}

impl Default for MachineSpec {
    fn default() -> Self {
        MachineSpec::Preset("i7-9700k".to_string())
    }
}

/// A request line.
///
/// `Deserialize` is written by hand (rather than derived) so that the
/// verbs with all-optional bodies — `Metrics` and `Trace` — parse both as
/// bare strings (`"Metrics"`) and as tagged objects
/// (`{"Metrics": {"format": "prometheus"}}`).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub enum Request {
    /// Optimize one operator: a tagged problem spec, a Table-1 name
    /// (`"Y0"`), or a legacy flat conv shape. `options` defaults to
    /// [`OptimizerOptions::default`].
    Optimize {
        /// The problem as a tagged [`Spec`] — `{"Conv": ...}`,
        /// `{"Matmul": ...}`, `{"Pool": ...}`, or `{"Elementwise": ...}`.
        /// Takes precedence over `op` and `shape`.
        spec: Option<Spec>,
        /// Table-1 operator name (e.g. `"Y0"`, `"R4*"`).
        op: Option<String>,
        /// Explicit conv shape (legacy form, used when `spec` and `op` are
        /// absent). Resolves to the same cache/db keys as
        /// `{"spec": {"Conv": ...}}`.
        shape: Option<ConvShape>,
        /// Target machine.
        machine: MachineSpec,
        /// Optimizer options.
        options: Option<OptimizerOptions>,
        /// Thread count the schedule targets (overrides `options.threads`).
        /// Joins the schedule-cache key: plans solved for different thread
        /// counts are distinct entries.
        threads: Option<usize>,
        /// When `true`, the response carries the request's span tree.
        trace: Option<bool>,
    },
    /// Plan a whole network: one of the benchmark suites by name, or an
    /// explicit layer list.
    PlanNetwork {
        /// Suite name: `"yolo9000"`, `"resnet18"`, `"mobilenet"` (true
        /// depthwise), `"mobilenetv2"` (MobileNetV2 depthwise stages),
        /// `"dilated"` (DeepLab/ESPNet-style dilated ops), `"table1"` for
        /// all 32 Table-1 operators, or `"extended"` for every suite.
        suite: Option<String>,
        /// Explicit layers (used when `suite` is absent).
        layers: Option<Vec<NamedLayer>>,
        /// Target machine.
        machine: MachineSpec,
        /// Optimizer options.
        options: Option<OptimizerOptions>,
        /// Thread count the schedules target (overrides `options.threads`;
        /// joins the schedule-cache key).
        threads: Option<usize>,
        /// Worker threads for the fresh solves (default: host parallelism).
        workers: Option<usize>,
        /// When `true`, the response carries the request's span tree.
        trace: Option<bool>,
    },
    /// Plan a whole network *graph* with the fusion-aware cross-layer
    /// planner: fusion cut-points are chosen by a dynamic program, fused
    /// segments keep their intermediate tensors in cache, and the result is
    /// memoized by the graph's stable fingerprint.
    PlanGraph {
        /// Named block: `"mbv2-block1"` ... `"mbv2-block9"` (MobileNetV2
        /// inverted-residual stages) or `"resnet-r2"` etc. (residual blocks
        /// around the stride-1 ResNet layers).
        block: Option<String>,
        /// Explicit inline graph (used when `block` is absent).
        graph: Option<Graph>,
        /// Target machine.
        machine: MachineSpec,
        /// Optimizer options for the per-operator solves.
        options: Option<OptimizerOptions>,
        /// Thread count the plan targets (overrides `options.threads`).
        /// Joins both the per-operator schedule-cache key and the graph-plan
        /// cache key, and tightens fusion admissibility to the per-thread L3
        /// envelope.
        threads: Option<usize>,
        /// Worker threads for the fresh per-operator solves (default: host
        /// parallelism).
        workers: Option<usize>,
        /// When `true`, the response carries the request's span tree.
        trace: Option<bool>,
    },
    /// Re-answer one operator like `Optimize`, and additionally return the
    /// optimizer's search trace (candidates enumerated and pruned per
    /// permutation class, the runner-up and margin) plus the winner's
    /// per-memory-level cost breakdown.
    Explain {
        /// The problem as a tagged [`Spec`] (takes precedence over `op` and
        /// `shape`).
        spec: Option<Spec>,
        /// Table-1 operator name (e.g. `"Y0"`, `"R4*"`).
        op: Option<String>,
        /// Explicit conv shape (legacy form).
        shape: Option<ConvShape>,
        /// Target machine.
        machine: MachineSpec,
        /// Optimizer options.
        options: Option<OptimizerOptions>,
        /// Thread count the schedule targets (overrides `options.threads`).
        threads: Option<usize>,
    },
    /// Report cache and service statistics.
    Stats,
    /// Report per-verb latency histograms, error counters, in-flight
    /// gauges, and single-flight coalescing counters. With
    /// `{"format": "prometheus"}`, reply with text-exposition format
    /// instead of JSON.
    Metrics {
        /// `"json"` (the default) or `"prometheus"`.
        format: Option<String>,
    },
    /// Return the slow-request log: the last N requests that exceeded the
    /// `--slow-ms` threshold, each with its full span tree.
    Trace {
        /// Return at most this many traces, newest last (default: all
        /// retained).
        limit: Option<usize>,
    },
    /// List the benchmark catalog: the suite names `PlanNetwork` accepts
    /// and every named operator, with deprecation flags (the `M1pw`–`M9pw`
    /// dense stand-ins are still served but deprecated).
    Suites,
    /// Persist the cache to the server's snapshot path now.
    Save,
    /// Liveness check.
    Ping,
}

impl Deserialize for Request {
    fn from_value(value: &serde::Value) -> Result<Self, serde::DeError> {
        if let Some(verb) = value.as_str() {
            return match verb {
                "Stats" => Ok(Request::Stats),
                "Metrics" => Ok(Request::Metrics { format: None }),
                "Trace" => Ok(Request::Trace { limit: None }),
                "Suites" => Ok(Request::Suites),
                "Save" => Ok(Request::Save),
                "Ping" => Ok(Request::Ping),
                other => Err(serde::DeError::custom(format!("unknown request verb `{other}`"))),
            };
        }
        let pairs = value.as_object().ok_or_else(|| {
            serde::DeError::expected("a verb string or a single-key object", "Request")
        })?;
        let [(verb, body)] = pairs else {
            return Err(serde::DeError::expected("exactly one verb key", "Request"));
        };
        let fields = |context: &str| {
            body.as_object().ok_or_else(|| serde::DeError::expected("an object body", context))
        };
        match verb.as_str() {
            "Optimize" => {
                let b = fields("Optimize")?;
                Ok(Request::Optimize {
                    spec: serde::de_field(b, "spec", "Optimize")?,
                    op: serde::de_field(b, "op", "Optimize")?,
                    shape: serde::de_field(b, "shape", "Optimize")?,
                    machine: serde::de_field(b, "machine", "Optimize")?,
                    options: serde::de_field(b, "options", "Optimize")?,
                    threads: serde::de_field(b, "threads", "Optimize")?,
                    trace: serde::de_field(b, "trace", "Optimize")?,
                })
            }
            "PlanNetwork" => {
                let b = fields("PlanNetwork")?;
                Ok(Request::PlanNetwork {
                    suite: serde::de_field(b, "suite", "PlanNetwork")?,
                    layers: serde::de_field(b, "layers", "PlanNetwork")?,
                    machine: serde::de_field(b, "machine", "PlanNetwork")?,
                    options: serde::de_field(b, "options", "PlanNetwork")?,
                    threads: serde::de_field(b, "threads", "PlanNetwork")?,
                    workers: serde::de_field(b, "workers", "PlanNetwork")?,
                    trace: serde::de_field(b, "trace", "PlanNetwork")?,
                })
            }
            "PlanGraph" => {
                let b = fields("PlanGraph")?;
                Ok(Request::PlanGraph {
                    block: serde::de_field(b, "block", "PlanGraph")?,
                    graph: serde::de_field(b, "graph", "PlanGraph")?,
                    machine: serde::de_field(b, "machine", "PlanGraph")?,
                    options: serde::de_field(b, "options", "PlanGraph")?,
                    threads: serde::de_field(b, "threads", "PlanGraph")?,
                    workers: serde::de_field(b, "workers", "PlanGraph")?,
                    trace: serde::de_field(b, "trace", "PlanGraph")?,
                })
            }
            "Explain" => {
                let b = fields("Explain")?;
                Ok(Request::Explain {
                    spec: serde::de_field(b, "spec", "Explain")?,
                    op: serde::de_field(b, "op", "Explain")?,
                    shape: serde::de_field(b, "shape", "Explain")?,
                    machine: serde::de_field(b, "machine", "Explain")?,
                    options: serde::de_field(b, "options", "Explain")?,
                    threads: serde::de_field(b, "threads", "Explain")?,
                })
            }
            "Metrics" => {
                let b = fields("Metrics")?;
                Ok(Request::Metrics { format: serde::de_field(b, "format", "Metrics")? })
            }
            "Trace" => {
                let b = fields("Trace")?;
                Ok(Request::Trace { limit: serde::de_field(b, "limit", "Trace")? })
            }
            other => Err(serde::DeError::custom(format!("unknown request verb `{other}`"))),
        }
    }
}

/// Service-level statistics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServiceStats {
    /// Schedule-cache counters (including per-shard eviction counts).
    pub cache: CacheStats,
    /// Database-tier counters, when a schedule database is attached
    /// (`moptd --db`); `None` otherwise. Absent in pre-database stats
    /// documents, which still parse.
    pub db: Option<DbTierStats>,
    /// Graph-planning counters (plan cache plus cumulative segment and
    /// fusion counts).
    pub graph: GraphServiceStats,
    /// Requests served (any type).
    pub requests: u64,
    /// Seconds since the service started.
    pub uptime_seconds: f64,
    /// Single-flight coalescing counters for the schedule and graph-plan
    /// tiers. `led` counts solves actually run, `coalesced` counts requests
    /// that shared a concurrent leader's solve instead of running their own
    /// — the number a bare hit/miss ratio cannot express, because a
    /// coalesced request is neither a warm hit nor an extra solve. Absent
    /// in pre-coalescing stats documents, which still parse.
    pub flight: Option<FlightBreakdown>,
    /// The serving crate's version (`CARGO_PKG_VERSION`). Absent in
    /// documents written by builds that predate the field.
    pub version: Option<String>,
    /// Worker threads the event loop was configured with (1 for a stdio
    /// server). Absent until the transport configures it, and in older
    /// documents.
    pub workers: Option<u64>,
    /// Shard count of the schedule cache. Absent in older documents.
    pub cache_shards: Option<u64>,
    /// Per-verb `Error`-response counters plus parse failures. Absent in
    /// older documents.
    pub errors: Option<ErrorCounts>,
}

/// Which tier of the serving stack answered an `Optimize` request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Tier {
    /// The in-process schedule cache.
    Cache,
    /// The persistent schedule database (stored top-k re-ranked for the
    /// request's thread count — no optimizer run).
    Db,
    /// A fresh optimizer solve.
    Solver,
}

impl Tier {
    /// Lowercase label for metric dimensions and trace tags.
    pub fn label(self) -> &'static str {
        match self {
            Tier::Cache => "cache",
            Tier::Db => "db",
            Tier::Solver => "solver",
        }
    }
}

/// One retained slow-request trace (see `moptd --slow-ms`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SlowTrace {
    /// The request's verb.
    pub verb: String,
    /// Total wall time of the request, in microseconds.
    pub micros: u64,
    /// The request's full span tree.
    pub root: SpanNode,
}

/// A response line.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Response {
    /// Result of an `Optimize` request.
    Optimized {
        /// The operator name, when the request used one.
        op: Option<String>,
        /// The tagged problem spec that was optimized. Absent in pre-spec
        /// responses, which still parse.
        spec: Option<Spec>,
        /// The problem embedded as a conv shape (the identity for conv
        /// problems) — kept for pre-spec clients.
        shape: ConvShape,
        /// Whether the result came from the schedule cache.
        cached: bool,
        /// Which tier answered: the cache, the schedule database, or a
        /// fresh solve. Absent in pre-database responses, which still
        /// parse.
        tier: Option<Tier>,
        /// `Some(true)` when the request named a deprecated alias
        /// (`M1pw`–`M9pw`): still served, but slated for removal.
        deprecated: Option<bool>,
        /// The ranked configurations.
        result: OptimizeResult,
        /// The request's span tree, when the request set `trace: true`.
        trace: Option<SpanNode>,
    },
    /// Result of a `PlanNetwork` request.
    Planned {
        /// The network plan.
        plan: NetworkPlan,
        /// The request's span tree, when the request set `trace: true`.
        trace: Option<SpanNode>,
    },
    /// Result of a `PlanGraph` request.
    GraphPlanned {
        /// Whether the plan came from the graph-plan cache.
        cached: bool,
        /// The fusion-aware graph plan.
        plan: GraphPlan,
        /// The request's span tree, when the request set `trace: true`.
        trace: Option<SpanNode>,
    },
    /// Result of an `Explain` request: the served schedule plus the
    /// optimizer's search trace and the winner's cost breakdown.
    Explained {
        /// The operator name, when the request used one.
        op: Option<String>,
        /// The tagged problem spec. Absent in pre-spec responses.
        spec: Option<Spec>,
        /// The problem embedded as a conv shape (kept for pre-spec clients).
        shape: ConvShape,
        /// Whether the schedule came from the schedule cache.
        cached: bool,
        /// Which tier actually served the schedule.
        tier: Option<Tier>,
        /// `Some(true)` when the request named a deprecated alias.
        deprecated: Option<bool>,
        /// The ranked configurations — bit-identical to what a plain
        /// `Optimize` of the same request returns.
        result: OptimizeResult,
        /// The optimizer's search trace: candidates enumerated and pruned
        /// per permutation class, per-round hypotheses, winner, runner-up
        /// and margin. Recorded by a deterministic re-run of the search.
        search: SearchTrace,
        /// The winner's per-memory-level cost breakdown (footprints,
        /// traffic, slack); the attributed costs sum to the certified
        /// total price exactly.
        breakdown: CostBreakdown,
        /// The request's span tree, when tracing is armed server-side.
        trace: Option<SpanNode>,
    },
    /// Result of a `Stats` request.
    Stats {
        /// The statistics.
        stats: ServiceStats,
    },
    /// Result of a `Metrics` request.
    Metrics {
        /// Latency histograms, gauges, and coalescing counters.
        report: MetricsReport,
    },
    /// Result of a `Metrics` request with `format: "prometheus"`.
    MetricsText {
        /// Prometheus text-exposition body (`# HELP`/`# TYPE` plus
        /// `name{labels} value` lines).
        body: String,
    },
    /// Result of a `Trace` request: the retained slow-request traces.
    Traced {
        /// The configured threshold in milliseconds (0 when the slow log
        /// is disarmed).
        slow_ms: u64,
        /// Retained traces, oldest first.
        traces: Vec<SlowTrace>,
    },
    /// Result of a `Suites` request: the benchmark catalog.
    Suites {
        /// Suite names accepted by `PlanNetwork`'s `suite` field.
        suites: Vec<String>,
        /// Every named operator (Table 1 plus the extended suites and the
        /// deprecated aliases), with its suite and deprecation flag.
        ops: Vec<SuiteOp>,
    },
    /// Result of a `Save` request: entries persisted.
    Saved {
        /// Number of entries written.
        entries: usize,
    },
    /// Reply to `Ping`.
    Pong {
        /// The serving crate's version (`CARGO_PKG_VERSION`), so deployments
        /// can be audited over the wire.
        version: String,
        /// Seconds since the service started. Absent in replies from builds
        /// that predate the field.
        uptime_seconds: Option<f64>,
    },
    /// Any failure (parse error, unknown name, I/O error, ...).
    Error {
        /// Human-readable description.
        message: String,
    },
}

/// One catalog entry in a `Suites` response.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SuiteOp {
    /// The operator's wire name (e.g. `"Y0"`, `"M9pw"`).
    pub name: String,
    /// The suite it belongs to.
    pub suite: String,
    /// Whether the name is a deprecated dense stand-in alias: still
    /// served, but responses tag it and it is slated for removal.
    pub deprecated: bool,
}

/// How many slow-request traces the `Trace` verb retains (newest win).
pub const SLOW_LOG_CAPACITY: usize = 64;

/// A schedule answer with the request context it resolved to — what
/// `Optimize` and `Explain` share.
struct ServedSchedule {
    spec: Spec,
    machine: MachineModel,
    options: OptimizerOptions,
    cached: bool,
    tier: Tier,
    result: OptimizeResult,
}

/// Shared server state: the schedule cache plus counters and the snapshot
/// location. Designed to sit in an `Arc` shared by connection threads.
pub struct ServiceState {
    /// The schedule cache.
    pub cache: ScheduleCache,
    /// The graph-plan cache (fingerprint-keyed) plus its counters.
    pub graph_cache: GraphPlanCache,
    db: Option<Arc<DbTier>>,
    snapshot_path: Option<std::path::PathBuf>,
    snapshot_dir: Option<std::path::PathBuf>,
    /// Coalesces concurrent cold `Optimize` misses on one cache key into a
    /// single solve. The value is the `(tier, result)` pair the leader
    /// produced, so every waiter's response is bit-identical to the
    /// leader's.
    flight: SingleFlight<CacheKey, (Tier, OptimizeResult)>,
    /// Coalesces concurrent cold `PlanGraph` misses on one plan key. The
    /// value carries planning failures as `Err(message)` so waiters see the
    /// same error the leader did.
    graph_flight: SingleFlight<GraphCacheKey, Result<GraphPlan, String>>,
    metrics: ServiceMetrics,
    solve_delay_micros: AtomicU64,
    requests: AtomicU64,
    started: Instant,
    /// Responses served per tier (indexed by `Tier as usize`): coalesced
    /// requests count under the tier that served their leader.
    tier_hits: [AtomicU64; 3],
    /// Slow-request threshold in microseconds; 0 disarms the slow log
    /// (and with it, server-side tracing of untraced requests).
    slow_micros: AtomicU64,
    /// Last-N ring of slow-request traces, served by the `Trace` verb.
    slow_log: TraceRing<SlowTrace>,
    /// Worker threads the transport configured (0 until a transport binds).
    configured_workers: AtomicU64,
    /// Layout policy applied to requests that leave `options.layout_policy`
    /// unset (`moptd --layout-policy search`). `None` — the default — leaves
    /// requests untouched, so cache keys and serving are bit-identical to the
    /// pre-layout server.
    default_layout_policy: Option<LayoutPolicy>,
}

impl ServiceState {
    /// Fresh state with a schedule cache of `capacity` entries. The
    /// graph-plan cache is bounded at a quarter of that (at least 16):
    /// plans are per-graph rather than per-shape, so far fewer are live,
    /// but each carries every member schedule and must not accumulate
    /// unboundedly under arbitrary inline-graph traffic.
    pub fn new(capacity: usize) -> Self {
        ServiceState {
            cache: ScheduleCache::new(capacity),
            graph_cache: GraphPlanCache::new((capacity / 4).max(16)),
            db: None,
            snapshot_path: None,
            snapshot_dir: None,
            flight: SingleFlight::new(),
            graph_flight: SingleFlight::new(),
            metrics: ServiceMetrics::default(),
            solve_delay_micros: AtomicU64::new(0),
            requests: AtomicU64::new(0),
            started: Instant::now(),
            tier_hits: std::array::from_fn(|_| AtomicU64::new(0)),
            slow_micros: AtomicU64::new(0),
            slow_log: TraceRing::new(SLOW_LOG_CAPACITY),
            configured_workers: AtomicU64::new(0),
            default_layout_policy: None,
        }
    }

    /// Set the layout policy applied to requests whose options leave
    /// `layout_policy` unset. `Some(Search)` makes the optimizer price data
    /// layouts jointly with tile sizes by default; `None` (and
    /// `Some(Fixed)`, which requests can always pass explicitly) keeps the
    /// pre-layout behavior. The effective policy participates in cache keys,
    /// so fixed- and search-policy schedules never collide.
    pub fn with_layout_policy(mut self, policy: Option<LayoutPolicy>) -> Self {
        self.default_layout_policy = policy;
        self
    }

    /// Arm the slow-request log: every request is traced server-side, and
    /// requests taking at least `ms` milliseconds keep their span tree in a
    /// last-[`SLOW_LOG_CAPACITY`] ring behind the `Trace` verb. `0` (the
    /// default) disarms it, making tracing strictly opt-in per request.
    pub fn with_slow_ms(self, ms: u64) -> Self {
        self.slow_micros.store(ms.saturating_mul(1000), Ordering::Relaxed);
        self
    }

    /// Record how many worker threads the transport serves with (the event
    /// loop's pool size; 1 for stdio), for `Stats` and metrics exposition.
    pub fn set_configured_workers(&self, workers: usize) {
        self.configured_workers.store(workers as u64, Ordering::Relaxed);
    }

    /// Worker threads the transport configured (0 until a transport binds).
    pub fn configured_workers(&self) -> u64 {
        self.configured_workers.load(Ordering::Relaxed)
    }

    /// Seconds since this state was created.
    pub fn uptime_seconds(&self) -> f64 {
        self.started.elapsed().as_secs_f64()
    }

    /// Responses served per tier, indexed like [`Tier`]:
    /// `[cache, db, solver]`.
    pub fn tier_hits(&self) -> [u64; 3] {
        std::array::from_fn(|i| self.tier_hits[i].load(Ordering::Relaxed))
    }

    /// The armed slow-request threshold in microseconds (0 = disarmed).
    pub fn slow_threshold_micros(&self) -> u64 {
        self.slow_micros.load(Ordering::Relaxed)
    }

    /// Slow-request traces retained so far (monotonic; the ring keeps the
    /// newest [`SLOW_LOG_CAPACITY`]).
    pub fn slow_traces_recorded(&self) -> u64 {
        self.slow_log.pushed()
    }

    /// Attach the persistent schedule database at `path` (created if
    /// absent). With a database attached, `Optimize` requests that miss the
    /// in-process cache are answered from stored canonicalized top-k
    /// entries (re-ranked for the request's thread count) before the
    /// optimizer is ever invoked, and fresh solves are written through.
    pub fn with_db(mut self, path: std::path::PathBuf) -> Result<Self, mopt_db::DbError> {
        self.db = Some(Arc::new(DbTier::open(&path)?));
        Ok(self)
    }

    /// The attached database tier, if any.
    pub fn db(&self) -> Option<&DbTier> {
        self.db.as_deref()
    }

    /// Attach a snapshot path: reaps temp files a killed predecessor left
    /// next to it, loads any existing snapshot (ignoring a missing file),
    /// and enables the `Save` request.
    pub fn with_snapshot(
        mut self,
        path: std::path::PathBuf,
    ) -> Result<Self, crate::persist::PersistError> {
        crate::persist::remove_stale_temps(&path).ok();
        match crate::persist::load_snapshot(&self.cache, &path) {
            Ok(_) => {}
            Err(crate::persist::PersistError::Io(e))
                if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return Err(e),
        }
        self.snapshot_path = Some(path);
        Ok(self)
    }

    /// Attach a *sharded* snapshot directory (created on first save): loads
    /// any existing shards, then enables incremental persistence — `Save`
    /// and the autosaver rewrite only the cache shards dirtied since the
    /// previous flush, so steady-state persistence cost tracks churn, not
    /// cache size. Takes precedence over [`with_snapshot`](Self::with_snapshot)
    /// when both are configured.
    pub fn with_snapshot_dir(
        mut self,
        dir: std::path::PathBuf,
    ) -> Result<Self, crate::persist::PersistError> {
        crate::persist::load_sharded(&self.cache, &dir)?;
        self.snapshot_dir = Some(dir);
        Ok(self)
    }

    /// Requests served so far.
    pub fn requests(&self) -> u64 {
        self.requests.load(Ordering::Relaxed)
    }

    /// The live metrics (latency histograms and in-flight gauges). The TCP
    /// event loop and the stdio server both record into this.
    pub fn metrics(&self) -> &ServiceMetrics {
        &self.metrics
    }

    /// Flight counters of both single-flight groups.
    pub fn flight_stats(&self) -> FlightBreakdown {
        FlightBreakdown { optimize: self.flight.stats(), graph: self.graph_flight.stats() }
    }

    /// Test/benchmark hook: stall every led solve by `delay` before it runs,
    /// widening the coalescing window so concurrent-client tests can prove
    /// single-flight behavior deterministically instead of racing the
    /// optimizer. Zero (the default) disables the stall.
    #[doc(hidden)]
    pub fn set_test_solve_delay(&self, delay: std::time::Duration) {
        self.solve_delay_micros
            .store(delay.as_micros().min(u64::MAX as u128) as u64, Ordering::Relaxed);
    }

    fn test_solve_delay(&self) {
        let micros = self.solve_delay_micros.load(Ordering::Relaxed);
        if micros > 0 {
            std::thread::sleep(std::time::Duration::from_micros(micros));
        }
    }

    /// Persist the cache if a snapshot path or directory is configured.
    /// Returns the number of entries written (for a sharded directory: the
    /// entries in the rewritten shards — zero when nothing was dirty), or
    /// `None` when unconfigured.
    pub fn save(&self) -> Result<Option<usize>, crate::persist::PersistError> {
        if let Some(dir) = &self.snapshot_dir {
            return crate::persist::save_sharded(&self.cache, dir)
                .map(|report| Some(report.entries_written));
        }
        match &self.snapshot_path {
            Some(path) => crate::persist::save_snapshot(&self.cache, path).map(Some),
            None => Ok(None),
        }
    }

    /// The verb a request dispatches under.
    fn verb_of(request: &Request) -> Verb {
        match request {
            Request::Optimize { .. } => Verb::Optimize,
            Request::PlanNetwork { .. } => Verb::PlanNetwork,
            Request::PlanGraph { .. } => Verb::PlanGraph,
            Request::Explain { .. } => Verb::Explain,
            Request::Suites => Verb::Suites,
            Request::Stats => Verb::Stats,
            Request::Metrics { .. } => Verb::Metrics,
            Request::Trace { .. } => Verb::Trace,
            Request::Save => Verb::Save,
            Request::Ping => Verb::Ping,
        }
    }

    /// Whether the request opted into an inline trace.
    fn trace_requested(request: &Request) -> bool {
        matches!(
            request,
            Request::Optimize { trace: Some(true), .. }
                | Request::PlanNetwork { trace: Some(true), .. }
                | Request::PlanGraph { trace: Some(true), .. }
        )
    }

    /// Attach a finished span tree to the response variants that carry one.
    fn attach_trace(response: &mut Response, root: SpanNode) {
        match response {
            Response::Optimized { trace, .. }
            | Response::Planned { trace, .. }
            | Response::GraphPlanned { trace, .. }
            | Response::Explained { trace, .. } => *trace = Some(root),
            _ => {}
        }
    }

    /// Keep the finished trace in the slow log when it crossed the armed
    /// threshold.
    fn maybe_log_slow(&self, verb: Verb, root: &SpanNode) {
        let threshold = self.slow_micros.load(Ordering::Relaxed);
        if threshold > 0 && root.duration_micros >= threshold {
            self.slow_log.push(SlowTrace {
                verb: verb.name().to_string(),
                micros: root.duration_micros,
                root: root.clone(),
            });
        }
    }

    /// Dispatch one request under a trace context: record latency under the
    /// request's verb, hold the in-flight gauge, count `Error` responses.
    /// Returns the un-finished context so the caller can add serialize time
    /// before closing the tree. The context is enabled only when the
    /// request asked for a trace or the slow log is armed — otherwise every
    /// span call is a no-op branch with no allocation.
    fn handle_prepared(
        &self,
        request: &Request,
        parse_time: Duration,
        queue_wait: Duration,
    ) -> (Response, TraceContext, Verb) {
        let verb = Self::verb_of(request);
        let ctx = if Self::trace_requested(request) || self.slow_micros.load(Ordering::Relaxed) > 0
        {
            TraceContext::enabled(verb.name())
        } else {
            TraceContext::disabled()
        };
        if queue_wait > Duration::ZERO {
            ctx.record("queue_wait", queue_wait);
        }
        if parse_time > Duration::ZERO {
            ctx.record("parse", parse_time);
        }
        let _in_flight = self.metrics.request_started();
        let start = Instant::now();
        let response = self.dispatch(request, &ctx);
        self.metrics.record(verb, start.elapsed());
        if matches!(response, Response::Error { .. }) {
            self.metrics.record_error(verb);
        }
        (response, ctx, verb)
    }

    /// Dispatch one request, recording its latency under its verb and
    /// holding the in-flight request gauge for the duration. When tracing
    /// is active the finished span tree is attached to the response (and
    /// slow requests land in the slow log).
    pub fn handle(&self, request: &Request) -> Response {
        let (mut response, ctx, verb) =
            self.handle_prepared(request, Duration::ZERO, Duration::ZERO);
        if let Some(root) = ctx.finish() {
            self.maybe_log_slow(verb, &root);
            if Self::trace_requested(request) {
                Self::attach_trace(&mut response, root);
            }
        }
        response
    }

    fn dispatch(&self, request: &Request, ctx: &TraceContext) -> Response {
        self.requests.fetch_add(1, Ordering::Relaxed);
        match request {
            Request::Ping => Response::Pong {
                version: env!("CARGO_PKG_VERSION").to_string(),
                uptime_seconds: Some(self.uptime_seconds()),
            },
            Request::Stats => Response::Stats {
                stats: ServiceStats {
                    cache: self.cache.stats(),
                    db: self.db.as_ref().map(|db| db.stats()),
                    graph: self.graph_cache.stats(),
                    requests: self.requests(),
                    uptime_seconds: self.started.elapsed().as_secs_f64(),
                    flight: Some(self.flight_stats()),
                    version: Some(env!("CARGO_PKG_VERSION").to_string()),
                    workers: Some(self.configured_workers()),
                    cache_shards: Some(ScheduleCache::SHARDS as u64),
                    errors: Some(self.metrics.error_counts()),
                },
            },
            Request::Metrics { format } => match format.as_deref() {
                None | Some("json") => {
                    Response::Metrics { report: self.metrics.report(self.flight_stats()) }
                }
                Some("prometheus") => {
                    Response::MetricsText { body: crate::prometheus::render(self) }
                }
                Some(other) => Response::Error {
                    message: format!(
                        "unknown metrics format `{other}` (try \"json\" or \"prometheus\")"
                    ),
                },
            },
            Request::Trace { limit } => {
                let mut traces = self.slow_log.snapshot();
                if let Some(limit) = limit {
                    let excess = traces.len().saturating_sub(*limit);
                    traces.drain(..excess);
                }
                Response::Traced {
                    slow_ms: self.slow_micros.load(Ordering::Relaxed) / 1000,
                    traces,
                }
            }
            Request::Save => {
                // Flush dirty database pages first; a failure is a real
                // durability loss and must surface as an Error, not a log
                // line.
                if let Some(db) = &self.db {
                    if let Err(e) = db.flush() {
                        return Response::Error { message: format!("database flush failed: {e}") };
                    }
                }
                match self.save() {
                    Ok(Some(entries)) => Response::Saved { entries },
                    Ok(None) if self.db.is_some() => Response::Saved { entries: 0 },
                    Ok(None) => Response::Error {
                        message:
                            "no snapshot path configured (start moptd with --snapshot or --db)"
                                .into(),
                    },
                    Err(e) => Response::Error { message: e.to_string() },
                }
            }
            Request::Suites => Response::Suites {
                suites: vec![
                    "yolo9000".into(),
                    "resnet18".into(),
                    "mobilenet".into(),
                    "mobilenetv2".into(),
                    "dilated".into(),
                    "table1".into(),
                    "extended".into(),
                ],
                ops: benchmarks::extended_operators()
                    .iter()
                    .map(|op| SuiteOp {
                        name: op.name.clone(),
                        suite: op.suite.name().to_string(),
                        deprecated: benchmarks::is_deprecated_alias(&op.name),
                    })
                    .collect(),
            },
            Request::Optimize { spec, op, shape, machine, options, threads, trace: _ } => self
                .handle_optimize(
                    spec.as_ref(),
                    op.as_deref(),
                    *shape,
                    machine,
                    self.effective_options(options, *threads),
                    ctx,
                ),
            Request::Explain { spec, op, shape, machine, options, threads } => self.handle_explain(
                spec.as_ref(),
                op.as_deref(),
                *shape,
                machine,
                self.effective_options(options, *threads),
                ctx,
            ),
            Request::PlanNetwork {
                suite,
                layers,
                machine,
                options,
                threads,
                workers,
                trace: _,
            } => self.handle_plan(
                suite.as_deref(),
                layers.as_deref(),
                machine,
                self.effective_options(options, *threads),
                *workers,
                ctx,
            ),
            Request::PlanGraph { block, graph, machine, options, threads, workers, trace: _ } => {
                self.handle_plan_graph(
                    block.as_deref(),
                    graph.as_ref(),
                    machine,
                    self.effective_options(options, *threads),
                    *workers,
                    ctx,
                )
            }
        }
    }

    /// The effective optimizer options of a request: the request's `options`
    /// (or the defaults), with an explicit top-level `threads` field taking
    /// precedence over `options.threads`, and the server's default layout
    /// policy filled in when the request leaves it unset. The result
    /// participates verbatim in both cache keys, so thread counts and layout
    /// policies always distinguish entries.
    fn effective_options(
        &self,
        options: &Option<OptimizerOptions>,
        threads: Option<usize>,
    ) -> OptimizerOptions {
        let mut options = options.clone().unwrap_or_default();
        if let Some(threads) = threads {
            options.threads = threads.max(1);
        }
        if options.layout_policy.is_none() {
            options.layout_policy = self.default_layout_policy;
        }
        options
    }

    /// Serve one [`Spec`] through the full tier stack — cache probe,
    /// single-flight (db lookup, then a fresh solve, written through) —
    /// recording each stage as a span of `ctx` and counting the serving
    /// tier. This is *the* serving path: `Optimize` and `Explain` (via
    /// [`serve_spec_request`](Self::serve_spec_request)) and `PlanGraph`'s
    /// per-operator provider all come through here, so every verb returns
    /// bit-identical schedules for identical problems.
    fn resolve_spec(
        &self,
        spec: &Spec,
        machine: &MachineModel,
        options: &OptimizerOptions,
        ctx: &TraceContext,
    ) -> Result<(Tier, OptimizeResult), String> {
        let key = CacheKey::new(*spec, machine, options);
        // Tier 1: the in-process cache.
        let cache_hit = {
            let _probe = ctx.span("cache_probe");
            self.cache.get(&key)
        };
        if let Some(result) = cache_hit {
            self.tier_hits[Tier::Cache as usize].fetch_add(1, Ordering::Relaxed);
            ctx.tag("tier", Tier::Cache.label());
            return Ok((Tier::Cache, result));
        }
        // Cold path, under single-flight: concurrent misses on this key
        // share one leader. The leader consults tier 2 (the schedule
        // database — stored canonical top-k entries re-priced for this
        // request's thread count, no optimizer run) and falls back to
        // tier 3 (a fresh solve, written through to both warmer tiers);
        // waiters park and receive a clone of the leader's `(tier, result)`,
        // so all coalesced responses are bit-identical. A panicking solve is
        // propagated to every waiter as an `Error` response and the key
        // stays clean for the next request.
        //
        // The closure runs on the leader's thread, so its child spans
        // (db_lookup / solve / writebacks) land inside the *leader's*
        // `flight` span; a waiter's `flight` span has no solve child — its
        // duration is pure coalesced wait.
        let outcome = {
            let _flight = ctx.span("flight");
            let (role, outcome) = self.flight.run(key.clone(), || {
                self.test_solve_delay();
                if let Some(db) = &self.db {
                    let hit = {
                        let _lookup = ctx.span("db_lookup");
                        db.lookup(spec, machine, options)
                    };
                    if let Some(result) = hit {
                        let _insert = ctx.span("cache_insert");
                        self.cache.insert(key.clone(), result.clone());
                        return (Tier::Db, result);
                    }
                }
                let result = {
                    let _solve = ctx.span("solve");
                    MOptOptimizer::optimize_spec(spec, machine.clone(), options.clone())
                };
                {
                    let _insert = ctx.span("cache_insert");
                    self.cache.insert(key.clone(), result.clone());
                }
                if let Some(db) = &self.db {
                    let _record = ctx.span("db_record");
                    db.record(spec, machine, options.threads, &result);
                }
                (Tier::Solver, result)
            });
            ctx.tag(
                "role",
                match role {
                    Role::Led => "led",
                    Role::Coalesced => "waited",
                },
            );
            outcome
        };
        match outcome {
            Ok((tier, result)) => {
                self.tier_hits[tier as usize].fetch_add(1, Ordering::Relaxed);
                ctx.tag("tier", tier.label());
                Ok((tier, result))
            }
            Err(e) => Err(format!("optimize failed: {e}")),
        }
    }

    /// Resolve a request's problem naming — tagged `spec`, Table-1 `op`
    /// name, or legacy flat `shape`, in that precedence order — and serve
    /// it through [`resolve_spec`](Self::resolve_spec). Shared by
    /// `Optimize` and `Explain`, so both verbs return bit-identical
    /// schedules for identical requests.
    #[allow(clippy::too_many_arguments)]
    fn serve_spec_request(
        &self,
        verb: &str,
        spec: Option<&Spec>,
        op: Option<&str>,
        shape: Option<ConvShape>,
        machine: &MachineSpec,
        options: OptimizerOptions,
        ctx: &TraceContext,
    ) -> Result<ServedSchedule, String> {
        let machine = machine.resolve()?;
        let spec = match (spec, op, shape) {
            (Some(spec), _, _) => {
                spec.validate().map_err(|e| format!("invalid spec: {e}"))?;
                *spec
            }
            (None, Some(name), _) => match benchmarks::by_name(name) {
                Some(bench) => Spec::Conv(bench.shape),
                None => return Err(format!("unknown Table-1 operator `{name}`")),
            },
            (None, None, Some(shape)) => Spec::Conv(shape),
            (None, None, None) => {
                return Err(format!("{verb} needs a `spec`, an `op`, or a `shape`"))
            }
        };
        let (tier, result) = self.resolve_spec(&spec, &machine, &options, ctx)?;
        Ok(ServedSchedule { spec, machine, options, cached: tier == Tier::Cache, tier, result })
    }

    /// `Some(true)` when the request named a deprecated alias (the field is
    /// omitted — `null` — for everything else).
    fn deprecation_of(op: Option<&str>) -> Option<bool> {
        op.filter(|name| benchmarks::is_deprecated_alias(name)).map(|_| true)
    }

    fn handle_optimize(
        &self,
        spec: Option<&Spec>,
        op: Option<&str>,
        shape: Option<ConvShape>,
        machine: &MachineSpec,
        options: OptimizerOptions,
        ctx: &TraceContext,
    ) -> Response {
        match self.serve_spec_request("Optimize", spec, op, shape, machine, options, ctx) {
            Ok(served) => Response::Optimized {
                op: op.map(str::to_string),
                spec: Some(served.spec),
                shape: served.spec.embedded_conv_shape(),
                cached: served.cached,
                tier: Some(served.tier),
                deprecated: Self::deprecation_of(op),
                result: served.result,
                trace: None,
            },
            Err(message) => Response::Error { message },
        }
    }

    fn handle_explain(
        &self,
        spec: Option<&Spec>,
        op: Option<&str>,
        shape: Option<ConvShape>,
        machine: &MachineSpec,
        options: OptimizerOptions,
        ctx: &TraceContext,
    ) -> Response {
        let served =
            match self.serve_spec_request("Explain", spec, op, shape, machine, options, ctx) {
                Ok(served) => served,
                Err(message) => return Response::Error { message },
            };
        // The search trace is a deterministic re-run of the solver with
        // recording on (the solver is seeded, so the re-run finds the same
        // winner a fresh solve would), on the spec's embedded conv shape —
        // exactly what the optimizer solves. The *served* schedule above can
        // come from a warmer tier; `tier` says which one actually answered.
        let shape = served.spec.embedded_conv_shape();
        let search = {
            let _span = ctx.span("search_trace");
            MOptOptimizer::new(shape, served.machine.clone(), served.options.clone())
                .optimize_traced()
                .1
        };
        // Break the served winner's certified price down per memory level,
        // under the exact parallel split the winning config carries.
        let best = served.result.best();
        let breakdown = {
            let _span = ctx.span("cost_breakdown");
            let spec = ParallelSpec {
                threads: served.options.threads,
                factors: best.config.parallel.as_array(),
            };
            MultiLevelModel::new(shape, served.machine.clone(), best.config.permutation.clone())
                .with_options(CostOptions { line_elems: served.options.line_elems })
                .with_parallel(spec)
                .cost_breakdown(&best.config)
        };
        Response::Explained {
            op: op.map(str::to_string),
            spec: Some(served.spec),
            shape,
            cached: served.cached,
            tier: Some(served.tier),
            deprecated: Self::deprecation_of(op),
            result: served.result.clone(),
            search,
            breakdown,
            trace: None,
        }
    }

    fn handle_plan(
        &self,
        suite: Option<&str>,
        layers: Option<&[NamedLayer]>,
        machine: &MachineSpec,
        options: OptimizerOptions,
        workers: Option<usize>,
        ctx: &TraceContext,
    ) -> Response {
        let machine = match machine.resolve() {
            Ok(m) => m,
            Err(message) => return Response::Error { message },
        };
        let layer_list: Vec<NamedLayer> = match (suite, layers) {
            (Some(name), _) => {
                match name.to_ascii_lowercase().replace(['-', '_', ' '], "").as_str() {
                    "yolo9000" | "yolo" => suite_layers(BenchmarkSuite::Yolo9000),
                    "resnet18" | "resnet" => suite_layers(BenchmarkSuite::ResNet18),
                    "mobilenet" => suite_layers(BenchmarkSuite::MobileNet),
                    "mobilenetv2" | "mobilenetv2dw" => suite_layers(BenchmarkSuite::MobileNetV2),
                    "dilated" | "deeplab" | "deeplabdilated" => {
                        suite_layers(BenchmarkSuite::DilatedDeepLab)
                    }
                    "table1" | "all" => {
                        benchmarks::all_operators().iter().map(NamedLayer::from).collect()
                    }
                    "extended" => {
                        benchmarks::extended_operators().iter().map(NamedLayer::from).collect()
                    }
                    _ => {
                        return Response::Error {
                            message: format!(
                                "unknown suite `{name}` (try \"yolo9000\", \"resnet18\", \"mobilenet\", \"mobilenetv2\", \"dilated\", \"table1\", \"extended\")"
                            ),
                        }
                    }
                }
            }
            (None, Some(layers)) if !layers.is_empty() => layers.to_vec(),
            _ => {
                return Response::Error {
                    message: "PlanNetwork needs either `suite` or a non-empty `layers`".into(),
                }
            }
        };
        let mut planner =
            NetworkPlanner::new(&self.cache, machine, options).with_db(self.db.as_deref());
        if let Some(workers) = workers {
            planner = planner.with_workers(workers);
        }
        let plan = {
            let _span = ctx.span("plan_layers");
            planner.plan(&layer_list)
        };
        Response::Planned { plan, trace: None }
    }

    fn handle_plan_graph(
        &self,
        block: Option<&str>,
        graph: Option<&Graph>,
        machine: &MachineSpec,
        options: OptimizerOptions,
        workers: Option<usize>,
        ctx: &TraceContext,
    ) -> Response {
        let machine = match machine.resolve() {
            Ok(m) => m,
            Err(message) => return Response::Error { message },
        };
        let graph: Graph = match (block, graph) {
            (Some(name), _) => match builders::by_name(name) {
                Ok(graph) => graph,
                Err(e) => return Response::Error { message: e.to_string() },
            },
            (None, Some(graph)) => graph.clone(),
            (None, None) => {
                return Response::Error {
                    message: "PlanGraph needs either `block` or `graph`".into(),
                }
            }
        };
        // Gate before the worker-pool warm-up below: an invalid graph must
        // not cost a single optimizer solve. (GraphPlanner::plan validates
        // again as its own public contract; the graphs are tiny, so the
        // repeat is nanoseconds.)
        if let Err(e) = graph.validate() {
            return Response::Error { message: format!("invalid graph: {e}") };
        }
        let key = GraphCacheKey {
            graph_fingerprint: graph.fingerprint(),
            machine_fingerprint: machine.fingerprint(),
            options: options.clone(),
        };
        let cache_hit = {
            let _probe = ctx.span("graph_cache_probe");
            self.graph_cache.get(&key)
        };
        if let Some(plan) = cache_hit {
            return Response::GraphPlanned { cached: true, plan, trace: None };
        }
        // Cold path, under single-flight: concurrent misses on this plan key
        // share one leader; waiters receive a clone of the leader's plan (or
        // its planning error), bit-identical on the wire.
        let _flight = ctx.span("flight");
        let (role, outcome) = self.graph_flight.run(key.clone(), || {
            self.test_solve_delay();
            // Warm the per-operator schedules through the existing batch
            // planner (dedupe + worker pool + shared schedule cache) — every
            // schedulable node (conv, matmul, pool), not just convs — then
            // run the fusion dynamic program with cache-backed lookups.
            let dims = graph.node_output_dims().map_err(|e| format!("invalid graph: {e}"))?;
            let layers: Vec<NamedLayer> = graph
                .schedulable_nodes()
                .into_iter()
                .filter_map(|id| {
                    graph
                        .node_spec(id, &dims)
                        .map(|spec| NamedLayer { name: graph.nodes[id].name.clone(), spec })
                })
                .collect();
            let mut planner = NetworkPlanner::new(&self.cache, machine.clone(), options.clone())
                .with_db(self.db.as_deref());
            if let Some(workers) = workers {
                planner = planner.with_workers(workers);
            }
            {
                let _warmup = ctx.span("warm_layers");
                let _ = planner.plan(&layers);
            }
            let _fusion = ctx.span("fusion_plan");
            let result = GraphPlanner::new(machine.clone()).with_threads(options.threads).plan(
                &graph,
                |spec| {
                    // The warm-up above resolved every schedulable node, so
                    // this is normally a pure cache read; resolve_spec's
                    // db-then-solver fallback keeps the contract correct
                    // regardless. A tier failure (a panicked flight leader)
                    // propagates as this flight's planning error.
                    match self.resolve_spec(spec, &machine, &options, ctx) {
                        Ok((_tier, result)) => result,
                        Err(message) => panic!("{message}"),
                    }
                },
            );
            match result {
                Ok(plan) => {
                    self.graph_cache.insert(key.clone(), &plan);
                    Ok(plan)
                }
                Err(e) => Err(format!("graph planning failed: {e}")),
            }
        });
        ctx.tag(
            "role",
            match role {
                Role::Led => "led",
                Role::Coalesced => "waited",
            },
        );
        match outcome {
            Ok(Ok(plan)) => Response::GraphPlanned { cached: false, plan, trace: None },
            Ok(Err(message)) => Response::Error { message },
            Err(e) => Response::Error { message: format!("graph planning failed: {e}") },
        }
    }

    /// Parse one request line, dispatch it, and serialize the response.
    pub fn handle_line(&self, line: &str) -> String {
        self.serve_line(line, Duration::ZERO)
    }

    /// Like [`handle_line`](Self::handle_line), attributing `queue_wait` —
    /// time the raw line spent queued in the transport before any byte of
    /// it was parsed — to the request's trace. When tracing is active, the
    /// parse and serialize stages are recorded as spans too, so the span
    /// tree covers the whole answer path: accept → parse → dispatch tiers →
    /// serialize.
    pub fn serve_line(&self, line: &str, queue_wait: Duration) -> String {
        let parse_start = Instant::now();
        let parsed = serde_json::from_str::<Request>(line);
        let parse_time = parse_start.elapsed();
        let request = match parsed {
            Ok(request) => request,
            Err(e) => {
                self.metrics.record_parse_error();
                return serialize_response(&Response::Error {
                    message: format!("bad request: {e}"),
                });
            }
        };
        let (mut response, ctx, verb) = self.handle_prepared(&request, parse_time, queue_wait);
        if !ctx.is_enabled() {
            return serialize_response(&response);
        }
        // Serialize once *before* finishing the tree so the serialize span
        // measures real work; a trace-carrying response is then serialized
        // again with the tree attached.
        let serialize_start = Instant::now();
        let text = serialize_response(&response);
        ctx.record("serialize", serialize_start.elapsed());
        let root = ctx.finish().expect("context is enabled");
        self.maybe_log_slow(verb, &root);
        if Self::trace_requested(&request) {
            Self::attach_trace(&mut response, root);
            return serialize_response(&response);
        }
        text
    }

    /// Serve one connection: read JSON-lines requests until EOF, writing one
    /// response line each. Blank lines are ignored. Malformed input — bad
    /// JSON or even invalid UTF-8 — produces an `Error` response, never a
    /// dropped connection. A client disconnecting mid-conversation (broken
    /// pipe, connection reset/aborted) is a *clean* end of the connection,
    /// not an error, so callers persist state and exit gracefully; only
    /// unexpected I/O failures surface as `Err`.
    ///
    /// Request lines are capped at [`MAX_REQUEST_BYTES`]: the line buffer is
    /// client-controlled, so without a cap one endless line lets any client
    /// drive the daemon out of memory. An oversized line is drained (in
    /// constant memory) up to its newline and answered with an `Error`
    /// response; the connection keeps serving.
    pub fn serve_connection<R: BufRead, W: Write>(
        &self,
        mut reader: R,
        mut writer: W,
    ) -> std::io::Result<()> {
        let disconnected = |e: &std::io::Error| {
            matches!(
                e.kind(),
                std::io::ErrorKind::BrokenPipe
                    | std::io::ErrorKind::ConnectionReset
                    | std::io::ErrorKind::ConnectionAborted
                    | std::io::ErrorKind::UnexpectedEof
            )
        };
        let mut buf = Vec::new();
        loop {
            buf.clear();
            // Read at most one byte past the cap so "exactly at the cap" and
            // "over the cap" are distinguishable without buffering the rest.
            match (&mut reader).take(MAX_REQUEST_BYTES as u64 + 1).read_until(b'\n', &mut buf) {
                Ok(0) => return Ok(()),
                Ok(_) => {}
                Err(e) if disconnected(&e) => return Ok(()),
                Err(e) => return Err(e),
            }
            let oversized = buf.len() > MAX_REQUEST_BYTES && buf.last() != Some(&b'\n');
            if oversized {
                buf.clear();
                match drain_to_newline(&mut reader) {
                    Ok(()) => {}
                    Err(e) if disconnected(&e) => return Ok(()),
                    Err(e) => return Err(e),
                }
                let reply = serde_json::to_string(&Response::Error {
                    message: format!(
                        "request line exceeds the {} MiB limit",
                        MAX_REQUEST_BYTES / (1024 * 1024)
                    ),
                })
                .expect("error response serializes");
                match write_line(&mut writer, &reply) {
                    Ok(()) => continue,
                    Err(e) if disconnected(&e) => return Ok(()),
                    Err(e) => return Err(e),
                }
            }
            let line = String::from_utf8_lossy(&buf);
            if line.trim().is_empty() {
                continue;
            }
            let reply = self.handle_line(line.trim_end_matches(['\r', '\n']));
            match write_line(&mut writer, &reply) {
                Ok(()) => {}
                Err(e) if disconnected(&e) => return Ok(()),
                Err(e) => return Err(e),
            }
        }
    }
}

/// Maximum accepted request-line length in bytes (16 MiB). Inline graphs and
/// explicit layer lists fit comfortably; a line this long that still has no
/// newline is runaway or malicious input.
pub const MAX_REQUEST_BYTES: usize = 16 * 1024 * 1024;

/// Discard input up to and including the next newline (or EOF) without
/// buffering it — constant-memory resynchronization after an oversized line.
fn drain_to_newline<R: BufRead>(reader: &mut R) -> std::io::Result<()> {
    loop {
        let available = reader.fill_buf()?;
        if available.is_empty() {
            return Ok(());
        }
        match available.iter().position(|&b| b == b'\n') {
            Some(pos) => {
                reader.consume(pos + 1);
                return Ok(());
            }
            None => {
                let len = available.len();
                reader.consume(len);
            }
        }
    }
}

fn serialize_response(response: &Response) -> String {
    serde_json::to_string(response)
        .unwrap_or_else(|e| format!("{{\"Error\":{{\"message\":\"serialize: {e}\"}}}}"))
}

fn write_line<W: Write>(writer: &mut W, reply: &str) -> std::io::Result<()> {
    writer.write_all(reply.as_bytes())?;
    writer.write_all(b"\n")?;
    writer.flush()
}

fn suite_layers(suite: BenchmarkSuite) -> Vec<NamedLayer> {
    benchmarks::suite(suite).iter().map(NamedLayer::from).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_state() -> ServiceState {
        ServiceState::new(64)
    }

    fn fast_options_json() -> String {
        let options = OptimizerOptions { max_classes: 1, ..OptimizerOptions::fast() };
        serde_json::to_string(&options).unwrap()
    }

    #[test]
    fn ping_reports_the_crate_version() {
        let state = tiny_state();
        let pong: Response = serde_json::from_str(&state.handle_line("\"Ping\"")).unwrap();
        match pong {
            Response::Pong { version, uptime_seconds } => {
                assert_eq!(version, env!("CARGO_PKG_VERSION"));
                assert!(uptime_seconds.expect("uptime present") >= 0.0);
            }
            other => panic!("expected Pong, got {other:?}"),
        }
        let stats: Response = serde_json::from_str(&state.handle_line("\"Stats\"")).unwrap();
        match stats {
            Response::Stats { stats } => {
                assert_eq!(stats.requests, 2);
                assert_eq!(stats.cache.entries, 0);
                assert_eq!(stats.cache.shard_evictions.len(), ScheduleCache::SHARDS);
                assert_eq!(stats.graph.entries, 0);
            }
            other => panic!("expected Stats, got {other:?}"),
        }
    }

    #[test]
    fn optimize_by_shape_then_cached() {
        let state = tiny_state();
        let line = format!(
            "{{\"Optimize\": {{\"shape\": {}, \"machine\": {{\"Preset\": \"tiny\"}}, \"options\": {}}}}}",
            serde_json::to_string(&ConvShape::new(1, 8, 4, 3, 3, 10, 10, 1).unwrap()).unwrap(),
            fast_options_json(),
        );
        let first: Response = serde_json::from_str(&state.handle_line(&line)).unwrap();
        let second: Response = serde_json::from_str(&state.handle_line(&line)).unwrap();
        match (first, second) {
            (
                Response::Optimized { cached: false, result: a, .. },
                Response::Optimized { cached: true, result: b, .. },
            ) => assert_eq!(a.ranked, b.ranked),
            other => panic!("expected cold then warm Optimized, got {other:?}"),
        }
    }

    #[test]
    fn optimize_by_table1_name() {
        let state = tiny_state();
        let line = format!(
            "{{\"Optimize\": {{\"op\": \"M9\", \"machine\": {{\"Preset\": \"tiny\"}}, \"options\": {}}}}}",
            fast_options_json(),
        );
        let response: Response = serde_json::from_str(&state.handle_line(&line)).unwrap();
        match response {
            Response::Optimized { op, shape, result, .. } => {
                assert_eq!(op.as_deref(), Some("M9"));
                assert_eq!(shape, benchmarks::by_name("M9").unwrap().shape);
                assert!(!result.ranked.is_empty());
            }
            other => panic!("expected Optimized, got {other:?}"),
        }
    }

    #[test]
    fn bad_requests_produce_errors_not_panics() {
        let state = tiny_state();
        for line in [
            "not json",
            "{\"Optimize\": {\"machine\": {\"Preset\": \"tiny\"}}}",
            "{\"Optimize\": {\"op\": \"NOPE\", \"machine\": {\"Preset\": \"tiny\"}}}",
            "{\"Optimize\": {\"op\": \"Y0\", \"machine\": {\"Preset\": \"vax\"}}}",
            "{\"PlanNetwork\": {\"machine\": {\"Preset\": \"tiny\"}}}",
            "{\"PlanNetwork\": {\"suite\": \"alexnet\", \"machine\": {\"Preset\": \"tiny\"}}}",
            "{\"PlanGraph\": {\"machine\": {\"Preset\": \"tiny\"}}}",
            "{\"PlanGraph\": {\"block\": \"alexnet\", \"machine\": {\"Preset\": \"tiny\"}}}",
            "\"Save\"",
        ] {
            let response: Response = serde_json::from_str(&state.handle_line(line)).unwrap();
            assert!(
                matches!(response, Response::Error { .. }),
                "line {line:?} should produce an Error response, got {response:?}"
            );
        }
    }

    #[test]
    fn oversized_request_lines_get_an_error_and_the_connection_survives() {
        let state = tiny_state();
        // One line just over the cap (no newline until the very end), then a
        // valid Ping: the server must answer both, in order, without dying.
        let mut request = vec![b'x'; MAX_REQUEST_BYTES + 1024];
        request.push(b'\n');
        request.extend_from_slice(b"\"Ping\"\n");
        let mut output = Vec::new();
        state.serve_connection(std::io::BufReader::new(request.as_slice()), &mut output).unwrap();
        let text = String::from_utf8(output).unwrap();
        let mut lines = text.lines();
        let first: Response = serde_json::from_str(lines.next().unwrap()).unwrap();
        match first {
            Response::Error { message } => {
                assert!(message.contains("16 MiB"), "unexpected message: {message}")
            }
            other => panic!("expected Error for the oversized line, got {other:?}"),
        }
        let second: Response = serde_json::from_str(lines.next().unwrap()).unwrap();
        assert!(matches!(second, Response::Pong { .. }), "the connection must keep serving");
        assert!(lines.next().is_none());
        // A line exactly at the cap is *not* rejected as oversized (it is
        // only malformed JSON).
        let mut exact = vec![b'y'; MAX_REQUEST_BYTES];
        exact.push(b'\n');
        let mut output = Vec::new();
        state.serve_connection(std::io::BufReader::new(exact.as_slice()), &mut output).unwrap();
        let reply: Response =
            serde_json::from_str(String::from_utf8(output).unwrap().lines().next().unwrap())
                .unwrap();
        match reply {
            Response::Error { message } => {
                assert!(message.contains("bad request"), "got: {message}")
            }
            other => panic!("expected a parse Error, got {other:?}"),
        }
    }

    #[test]
    fn thread_counts_are_distinct_cache_entries() {
        let state = tiny_state();
        let shape =
            serde_json::to_string(&ConvShape::new(1, 8, 4, 3, 3, 10, 10, 1).unwrap()).unwrap();
        let request = |threads: usize| {
            format!(
                "{{\"Optimize\": {{\"shape\": {shape}, \"machine\": {{\"Preset\": \"tiny\"}}, \"options\": {}, \"threads\": {threads}}}}}",
                fast_options_json(),
            )
        };
        // The same shape planned for 1 and for 8 threads: two fresh solves,
        // two resident entries.
        let one: Response = serde_json::from_str(&state.handle_line(&request(1))).unwrap();
        let eight: Response = serde_json::from_str(&state.handle_line(&request(8))).unwrap();
        match (&one, &eight) {
            (
                Response::Optimized { cached: false, .. },
                Response::Optimized { cached: false, .. },
            ) => {}
            other => panic!("both thread counts must be fresh solves, got {other:?}"),
        }
        assert_eq!(state.cache.len(), 2, "1-thread and 8-thread plans must not share an entry");
        // Re-asking at 8 threads is a warm hit with the parallel schedule.
        let warm: Response = serde_json::from_str(&state.handle_line(&request(8))).unwrap();
        match warm {
            Response::Optimized { cached: true, result, .. } => {
                assert_eq!(result.best().config.total_parallelism(), 8);
            }
            other => panic!("expected a warm parallel plan, got {other:?}"),
        }
    }

    #[test]
    fn plan_network_over_connection() {
        let state = tiny_state();
        let request = format!(
            "{{\"PlanNetwork\": {{\"layers\": [{{\"name\": \"a\", \"shape\": {}}}, {{\"name\": \"b\", \"shape\": {}}}], \"machine\": {{\"Preset\": \"tiny\"}}, \"options\": {}, \"workers\": 2}}}}\n\"Stats\"\n",
            serde_json::to_string(&ConvShape::new(1, 8, 4, 3, 3, 10, 10, 1).unwrap()).unwrap(),
            serde_json::to_string(&ConvShape::new(1, 8, 4, 3, 3, 10, 10, 1).unwrap()).unwrap(),
            fast_options_json(),
        );
        let mut output = Vec::new();
        state.serve_connection(std::io::BufReader::new(request.as_bytes()), &mut output).unwrap();
        let text = String::from_utf8(output).unwrap();
        let mut lines = text.lines();
        let plan: Response = serde_json::from_str(lines.next().unwrap()).unwrap();
        match plan {
            Response::Planned { plan, .. } => {
                assert_eq!(plan.stats.layers, 2);
                assert_eq!(plan.stats.unique_shapes, 1);
                assert_eq!(plan.layers[0].best, plan.layers[1].best);
            }
            other => panic!("expected Planned, got {other:?}"),
        }
        let stats: Response = serde_json::from_str(lines.next().unwrap()).unwrap();
        match stats {
            Response::Stats { stats } => assert_eq!(stats.cache.entries, 1),
            other => panic!("expected Stats, got {other:?}"),
        }
    }

    #[test]
    fn plan_graph_by_inline_graph_fuses_and_caches() {
        let state = tiny_state();
        // A scaled-down MobileNetV2 block whose dw → project working set
        // fits even the tiny machine's L3, so the fusion is taken.
        let graph = mopt_graph::builders::mobilenet_v2_block_from(
            &ConvShape::depthwise(12, 14, 3, 1),
            "tiny-block",
        );
        let line = format!(
            "{{\"PlanGraph\": {{\"graph\": {}, \"machine\": {{\"Preset\": \"tiny\"}}, \"options\": {}, \"workers\": 2}}}}",
            serde_json::to_string(&graph).unwrap(),
            fast_options_json(),
        );
        let first: Response = serde_json::from_str(&state.handle_line(&line)).unwrap();
        let plan = match first {
            Response::GraphPlanned { cached: false, plan, .. } => plan,
            other => panic!("expected fresh GraphPlanned, got {other:?}"),
        };
        assert_eq!(plan.fingerprint, graph.fingerprint());
        assert_eq!(plan.fusions_taken, 1);
        assert!(plan.fused_volume < plan.unfused_volume);
        // Second request: served from the graph-plan cache, identical plan.
        let second: Response = serde_json::from_str(&state.handle_line(&line)).unwrap();
        match second {
            Response::GraphPlanned { cached: true, plan: warm, .. } => assert_eq!(warm, plan),
            other => panic!("expected cached GraphPlanned, got {other:?}"),
        }
        // The per-operator solves landed in the shared schedule cache.
        assert_eq!(state.cache.len(), 3);
        // Stats report the graph section.
        let stats: Response = serde_json::from_str(&state.handle_line("\"Stats\"")).unwrap();
        match stats {
            Response::Stats { stats } => {
                assert_eq!(stats.graph.entries, 1);
                assert_eq!((stats.graph.hits, stats.graph.misses), (1, 1));
                assert_eq!(stats.graph.segments_planned, plan.segments.len() as u64);
                assert_eq!(stats.graph.fusions_taken, 1);
            }
            other => panic!("expected Stats, got {other:?}"),
        }
    }

    #[test]
    fn plan_graph_by_block_name() {
        let state = tiny_state();
        let line = format!(
            "{{\"PlanGraph\": {{\"block\": \"resnet-r12\", \"machine\": {{\"Preset\": \"tiny\"}}, \"options\": {}, \"workers\": 2}}}}",
            fast_options_json(),
        );
        let response: Response = serde_json::from_str(&state.handle_line(&line)).unwrap();
        match response {
            Response::GraphPlanned { cached: false, plan, .. } => {
                assert_eq!(plan.graph, "resnet-block-r12");
                // conv1 → conv2 chain + the skip projection.
                assert_eq!(plan.chains, 2);
                let total_ops: usize = plan.segments.iter().map(|s| s.ops.len()).sum();
                assert_eq!(total_ops, 3);
                // 3x3 consumers are never fusion candidates.
                assert_eq!(plan.fusion_candidates, 0);
                for seg in &plan.segments {
                    for op in &seg.ops {
                        assert!(op.best.config.validate(&op.shape).is_ok());
                    }
                }
            }
            other => panic!("expected GraphPlanned, got {other:?}"),
        }
    }

    #[test]
    fn plan_graph_rejects_invalid_inline_graphs() {
        let state = tiny_state();
        let mut graph = mopt_graph::builders::mobilenet_v2_block_from(
            &ConvShape::depthwise(8, 10, 3, 1),
            "broken",
        );
        graph.edges[0].tensor = mopt_graph::TensorInfo::nchw((9, 9, 9, 9));
        let line = format!(
            "{{\"PlanGraph\": {{\"graph\": {}, \"machine\": {{\"Preset\": \"tiny\"}}}}}}",
            serde_json::to_string(&graph).unwrap(),
        );
        let response: Response = serde_json::from_str(&state.handle_line(&line)).unwrap();
        match response {
            Response::Error { message } => assert!(message.contains("invalid graph")),
            other => panic!("expected Error, got {other:?}"),
        }
    }

    #[test]
    fn optimize_tiers_cache_db_solver() {
        let dir = std::env::temp_dir().join(format!("moptd-dbtier-srv-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let state = ServiceState::new(64).with_db(dir.clone()).unwrap();
        let line = format!(
            "{{\"Optimize\": {{\"shape\": {}, \"machine\": {{\"Preset\": \"tiny\"}}, \"options\": {}}}}}",
            serde_json::to_string(&ConvShape::new(1, 8, 4, 3, 3, 10, 10, 1).unwrap()).unwrap(),
            fast_options_json(),
        );
        let first: Response = serde_json::from_str(&state.handle_line(&line)).unwrap();
        assert!(
            matches!(first, Response::Optimized { tier: Some(Tier::Solver), cached: false, .. }),
            "cold request must be a solver answer, got {first:?}"
        );
        let warm: Response = serde_json::from_str(&state.handle_line(&line)).unwrap();
        assert!(
            matches!(warm, Response::Optimized { tier: Some(Tier::Cache), cached: true, .. }),
            "repeat must be a cache hit, got {warm:?}"
        );
        // Save flushes the dirty db pages (no snapshot configured: 0
        // snapshot entries, but Saved rather than Error).
        let saved: Response = serde_json::from_str(&state.handle_line("\"Save\"")).unwrap();
        assert_eq!(saved, Response::Saved { entries: 0 });
        // A cold process: empty cache, but the database answers without a
        // single optimizer run — and Stats shows the db-tier hit.
        let cold = ServiceState::new(64).with_db(dir.clone()).unwrap();
        let served: Response = serde_json::from_str(&cold.handle_line(&line)).unwrap();
        match served {
            Response::Optimized { tier: Some(Tier::Db), cached: false, result, .. } => {
                assert!(!result.ranked.is_empty());
            }
            other => panic!("expected a db-tier answer, got {other:?}"),
        }
        let stats: Response = serde_json::from_str(&cold.handle_line("\"Stats\"")).unwrap();
        match stats {
            Response::Stats { stats } => {
                let db = stats.db.expect("db stats present when a database is attached");
                assert_eq!((db.hits, db.misses, db.errors), (1, 0, 0));
            }
            other => panic!("expected Stats, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn save_failure_reports_the_path_and_cause() {
        // Snapshot path inside a directory that does not exist: startup is
        // a clean NotFound, but the save itself fails — and the failure
        // must come back as a JSON Error naming the path, not vanish into
        // a server-side log line.
        let missing = std::env::temp_dir()
            .join(format!("moptd-no-such-dir-{}", std::process::id()))
            .join("snap.json");
        let state = ServiceState::new(16).with_snapshot(missing.clone()).unwrap();
        let response: Response = serde_json::from_str(&state.handle_line("\"Save\"")).unwrap();
        match response {
            Response::Error { message } => {
                assert!(
                    message.contains("snap.json"),
                    "the Error must name the failing path, got: {message}"
                );
                assert!(message.contains("snapshot I/O error"), "got: {message}");
            }
            other => panic!("expected Error, got {other:?}"),
        }
    }

    #[test]
    fn warm_hits_do_not_count_as_coalesced() {
        // Regression: before the flight section existed, Stats could not
        // distinguish "cache hit that arrived while a solve was in flight"
        // (coalesced) from a plain warm hit. A strictly sequential
        // cold-then-warm-then-warm sequence must report one led solve and
        // zero coalesced requests.
        let state = tiny_state();
        let line = format!(
            "{{\"Optimize\": {{\"shape\": {}, \"machine\": {{\"Preset\": \"tiny\"}}, \"options\": {}}}}}",
            serde_json::to_string(&ConvShape::new(1, 8, 4, 3, 3, 10, 10, 1).unwrap()).unwrap(),
            fast_options_json(),
        );
        for _ in 0..3 {
            state.handle_line(&line);
        }
        let stats: Response = serde_json::from_str(&state.handle_line("\"Stats\"")).unwrap();
        match stats {
            Response::Stats { stats } => {
                let flight = stats.flight.expect("flight section present");
                assert_eq!(flight.optimize.led, 1, "one cold solve");
                assert_eq!(flight.optimize.coalesced, 0, "warm hits are NOT coalesced");
                assert_eq!(flight.optimize.errors, 0);
                assert_eq!(flight.optimize.in_flight, 0);
                assert_eq!((stats.cache.hits, stats.cache.misses), (2, 1));
            }
            other => panic!("expected Stats, got {other:?}"),
        }
    }

    #[test]
    fn concurrent_cold_misses_coalesce_onto_one_solve() {
        let state = std::sync::Arc::new(tiny_state());
        state.set_test_solve_delay(std::time::Duration::from_millis(150));
        let line = format!(
            "{{\"Optimize\": {{\"shape\": {}, \"machine\": {{\"Preset\": \"tiny\"}}, \"options\": {}}}}}",
            serde_json::to_string(&ConvShape::new(1, 8, 4, 3, 3, 10, 10, 1).unwrap()).unwrap(),
            fast_options_json(),
        );
        let gate = std::sync::Arc::new(std::sync::Barrier::new(8));
        let replies: Vec<String> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    let (state, line, gate) = (state.clone(), line.clone(), gate.clone());
                    scope.spawn(move || {
                        gate.wait();
                        state.handle_line(&line)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        // All eight responses are bit-identical (same tier, same result).
        assert!(replies.iter().all(|r| r == &replies[0]), "coalesced responses must be identical");
        let first: Response = serde_json::from_str(&replies[0]).unwrap();
        assert!(matches!(first, Response::Optimized { tier: Some(Tier::Solver), .. }));
        let flight = state.flight_stats();
        assert_eq!(flight.optimize.led, 1, "exactly one solver invocation for 8 clients");
        assert_eq!(flight.optimize.coalesced, 7);
        // The solve ran once, so the cache saw exactly one insertion.
        assert_eq!(state.cache.stats().insertions, 1);
    }

    #[test]
    fn metrics_verb_reports_verbs_gauges_and_flight() {
        let state = tiny_state();
        state.handle_line("\"Ping\"");
        state.handle_line("\"Ping\"");
        let response: Response = serde_json::from_str(&state.handle_line("\"Metrics\"")).unwrap();
        match response {
            Response::Metrics { report } => {
                // Ping was served twice before this Metrics request.
                let ping =
                    report.verbs.iter().find(|v| v.verb == "Ping").expect("Ping histogram present");
                assert_eq!(ping.latency.count, 2);
                assert!(!ping.latency.buckets.is_empty());
                assert!(
                    report.verbs.iter().all(|v| v.verb != "Optimize"),
                    "unserved verbs omitted"
                );
                // handle() holds the in-flight gauge only while dispatching.
                assert_eq!(report.in_flight_requests, 1, "the Metrics request itself");
                assert_eq!(report.flight.optimize.led, 0);
            }
            other => panic!("expected Metrics, got {other:?}"),
        }
    }

    #[test]
    fn sharded_snapshot_dir_round_trips_through_service_state() {
        let dir = std::env::temp_dir().join(format!("moptd-snapdir-state-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let state = ServiceState::new(16).with_snapshot_dir(dir.clone()).unwrap();
        let line = format!(
            "{{\"Optimize\": {{\"shape\": {}, \"machine\": {{\"Preset\": \"tiny\"}}, \"options\": {}}}}}",
            serde_json::to_string(&ConvShape::new(1, 4, 4, 3, 3, 8, 8, 1).unwrap()).unwrap(),
            fast_options_json(),
        );
        state.handle_line(&line);
        let saved: Response = serde_json::from_str(&state.handle_line("\"Save\"")).unwrap();
        assert_eq!(saved, Response::Saved { entries: 1 });
        // A second Save with no intervening churn flushes nothing.
        let idle: Response = serde_json::from_str(&state.handle_line("\"Save\"")).unwrap();
        assert_eq!(idle, Response::Saved { entries: 0 });
        // A fresh state on the same directory starts warm.
        let rewarmed = ServiceState::new(16).with_snapshot_dir(dir.clone()).unwrap();
        assert_eq!(rewarmed.cache.len(), 1);
        let warm: Response = serde_json::from_str(&rewarmed.handle_line(&line)).unwrap();
        assert!(matches!(warm, Response::Optimized { cached: true, .. }));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn snapshot_save_via_request() {
        let mut path = std::env::temp_dir();
        path.push(format!("moptd-save-req-{}.json", std::process::id()));
        std::fs::remove_file(&path).ok();
        let state = ServiceState::new(16).with_snapshot(path.clone()).unwrap();
        let line = format!(
            "{{\"Optimize\": {{\"shape\": {}, \"machine\": {{\"Preset\": \"tiny\"}}, \"options\": {}}}}}",
            serde_json::to_string(&ConvShape::new(1, 4, 4, 3, 3, 8, 8, 1).unwrap()).unwrap(),
            fast_options_json(),
        );
        state.handle_line(&line);
        let response: Response = serde_json::from_str(&state.handle_line("\"Save\"")).unwrap();
        assert_eq!(response, Response::Saved { entries: 1 });
        // A fresh state with the same path starts warm.
        let rewarmed = ServiceState::new(16).with_snapshot(path.clone()).unwrap();
        assert_eq!(rewarmed.cache.len(), 1);
        let warm: Response = serde_json::from_str(&rewarmed.handle_line(&line)).unwrap();
        assert!(matches!(warm, Response::Optimized { cached: true, .. }));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn explain_returns_search_trace_and_consistent_breakdown() {
        let state = tiny_state();
        let explain = format!(
            "{{\"Explain\": {{\"op\": \"M9\", \"machine\": {{\"Preset\": \"tiny\"}}, \"options\": {}}}}}",
            fast_options_json(),
        );
        let optimize = format!(
            "{{\"Optimize\": {{\"op\": \"M9\", \"machine\": {{\"Preset\": \"tiny\"}}, \"options\": {}}}}}",
            fast_options_json(),
        );
        let explained: Response = serde_json::from_str(&state.handle_line(&explain)).unwrap();
        let (result, search, breakdown) = match explained {
            Response::Explained { op, cached, result, search, breakdown, .. } => {
                assert_eq!(op.as_deref(), Some("M9"));
                assert!(!cached, "first Explain solves cold");
                (result, search, breakdown)
            }
            other => panic!("expected Explained, got {other:?}"),
        };
        // The search trace accounts for the whole permutation space.
        assert_eq!(search.permutations_total, 5040);
        assert!(search.classes_searched >= 1);
        assert!(search.permutations_pruned > 0, "symmetry pruning always discards permutations");
        assert!(search.enumerated > 0);
        assert_eq!(search.candidates.len(), search.classes_searched as usize);
        assert_eq!(search.winner_class, result.best().class_id);
        assert_eq!(search.winner_cost, result.best().predicted_cost);
        // The per-level cost breakdown re-certifies the winner: attributed
        // costs sum bit-for-bit to the certified bottleneck price.
        assert_eq!(breakdown.attributed_total(), breakdown.total_cost);
        assert_eq!(breakdown.total_cost, result.best().predicted_cost);
        // A plain Optimize serves the identical schedule (now warm).
        let optimized: Response = serde_json::from_str(&state.handle_line(&optimize)).unwrap();
        match optimized {
            Response::Optimized { cached, result: plain, .. } => {
                assert!(cached, "Explain warmed the cache for Optimize");
                assert_eq!(plain, result, "Explain and Optimize must serve the same schedule");
            }
            other => panic!("expected Optimized, got {other:?}"),
        }
    }

    #[test]
    fn trace_flag_returns_the_span_tree() {
        let state = tiny_state();
        let line = format!(
            "{{\"Optimize\": {{\"op\": \"M9\", \"machine\": {{\"Preset\": \"tiny\"}}, \"options\": {}, \"trace\": true}}}}",
            fast_options_json(),
        );
        let cold: Response = serde_json::from_str(&state.handle_line(&line)).unwrap();
        let root = match cold {
            Response::Optimized { trace: Some(root), .. } => root,
            other => panic!("expected a traced Optimized, got {other:?}"),
        };
        assert_eq!(root.name, "Optimize");
        assert!(root.find("cache_probe").is_some(), "cold path probes the cache: {root:?}");
        let flight = root.find("flight").expect("cold path runs a flight");
        assert!(flight.find("solve").is_some(), "the flight leader solves: {flight:?}");
        assert_eq!(flight.tag_value("role"), Some("led"));
        assert_eq!(root.tag_value("tier"), Some("solver"));
        assert!(root.find("serialize").is_some(), "the serialize span covers the first encode");
        // Warm repeat: a cache probe, no flight, tier tag flips to cache.
        let warm: Response = serde_json::from_str(&state.handle_line(&line)).unwrap();
        let root = match warm {
            Response::Optimized { cached: true, trace: Some(root), .. } => root,
            other => panic!("expected a traced warm Optimized, got {other:?}"),
        };
        assert!(root.find("cache_probe").is_some());
        assert!(root.find("flight").is_none(), "a warm hit never enters a flight");
        assert_eq!(root.tag_value("tier"), Some("cache"));
        // Untraced requests carry no tree.
        let plain = format!(
            "{{\"Optimize\": {{\"op\": \"M9\", \"machine\": {{\"Preset\": \"tiny\"}}, \"options\": {}}}}}",
            fast_options_json(),
        );
        let bare: Response = serde_json::from_str(&state.handle_line(&plain)).unwrap();
        assert!(matches!(bare, Response::Optimized { trace: None, .. }));
    }

    #[test]
    fn slow_requests_land_in_the_trace_ring() {
        let state = ServiceState::new(64).with_slow_ms(1);
        state.set_test_solve_delay(std::time::Duration::from_millis(20));
        // Before anything slow happened the ring is empty but armed.
        let empty: Response = serde_json::from_str(&state.handle_line("\"Trace\"")).unwrap();
        assert_eq!(empty, Response::Traced { slow_ms: 1, traces: Vec::new() });
        let line = format!(
            "{{\"Optimize\": {{\"op\": \"M9\", \"machine\": {{\"Preset\": \"tiny\"}}, \"options\": {}}}}}",
            fast_options_json(),
        );
        state.handle_line(&line);
        let traced: Response = serde_json::from_str(&state.handle_line("\"Trace\"")).unwrap();
        match traced {
            Response::Traced { slow_ms, traces } => {
                assert_eq!(slow_ms, 1);
                let slow = traces
                    .iter()
                    .find(|t| t.verb == "Optimize")
                    .expect("the delayed solve crossed the threshold");
                assert!(slow.micros >= 20_000, "got {}", slow.micros);
                assert_eq!(slow.root.name, "Optimize");
                assert!(slow.root.find("solve").is_some(), "slow traces keep the full tree");
            }
            other => panic!("expected Traced, got {other:?}"),
        }
        // `limit` keeps only the newest entries.
        state.handle_line(&line); // warm hit: fast, not recorded
        let limited: Response =
            serde_json::from_str(&state.handle_line("{\"Trace\": {\"limit\": 0}}")).unwrap();
        assert_eq!(limited, Response::Traced { slow_ms: 1, traces: Vec::new() });
    }

    #[test]
    fn stats_surfaces_errors_version_and_worker_counts() {
        let state = tiny_state();
        state.set_configured_workers(4);
        // Two failing Optimizes and one failing PlanGraph.
        state.handle_line("{\"Optimize\": {\"op\": \"Y0\", \"machine\": {\"Preset\": \"vax\"}}}");
        state
            .handle_line("{\"Optimize\": {\"op\": \"NOPE\", \"machine\": {\"Preset\": \"tiny\"}}}");
        state.handle_line("{\"PlanGraph\": {\"machine\": {\"Preset\": \"tiny\"}}}");
        let stats: Response = serde_json::from_str(&state.handle_line("\"Stats\"")).unwrap();
        match stats {
            Response::Stats { stats } => {
                assert_eq!(stats.version.as_deref(), Some(env!("CARGO_PKG_VERSION")));
                assert_eq!(stats.workers, Some(4));
                assert_eq!(stats.cache_shards, Some(ScheduleCache::SHARDS as u64));
                let errors = stats.errors.expect("error section present");
                assert_eq!(errors.total, 3);
                assert_eq!(errors.parse_errors, 0);
                let by_verb: Vec<(&str, u64)> =
                    errors.verbs.iter().map(|v| (v.verb.as_str(), v.count)).collect();
                assert_eq!(by_verb, vec![("Optimize", 2), ("PlanGraph", 1)]);
            }
            other => panic!("expected Stats, got {other:?}"),
        }
    }

    #[test]
    fn optimize_by_spec_payload_echoes_spec_and_embedded_shape() {
        let state = tiny_state();
        let spec = Spec::matmul(24, 16, 12);
        let line = format!(
            "{{\"Optimize\": {{\"spec\": {}, \"machine\": {{\"Preset\": \"tiny\"}}, \"options\": {}}}}}",
            serde_json::to_string(&spec).unwrap(),
            fast_options_json(),
        );
        let response: Response = serde_json::from_str(&state.handle_line(&line)).unwrap();
        match response {
            Response::Optimized { spec: echoed, shape, cached, result, .. } => {
                assert_eq!(echoed, Some(spec));
                assert_eq!(shape, spec.embedded_conv_shape());
                assert!(!cached);
                result.best().config.validate(&shape).expect("certified on the embedded nest");
            }
            other => panic!("expected Optimized, got {other:?}"),
        }
        // An invalid spec is an Error, not a panic.
        let broken = "{\"Optimize\": {\"spec\": {\"Matmul\": {\"m\": 0, \"n\": 4, \"k\": 4}}, \
                      \"machine\": {\"Preset\": \"tiny\"}}}";
        let response: Response = serde_json::from_str(&state.handle_line(broken)).unwrap();
        match response {
            Response::Error { message } => {
                assert!(message.to_ascii_lowercase().contains("invalid spec"), "{message}")
            }
            other => panic!("expected Error, got {other:?}"),
        }
    }

    #[test]
    fn legacy_shape_and_tagged_spec_forms_share_one_cache_entry() {
        let state = tiny_state();
        let shape = ConvShape::new(1, 8, 4, 3, 3, 10, 10, 1).unwrap();
        let legacy = format!(
            "{{\"Optimize\": {{\"shape\": {}, \"machine\": {{\"Preset\": \"tiny\"}}, \"options\": {}}}}}",
            serde_json::to_string(&shape).unwrap(),
            fast_options_json(),
        );
        let tagged = format!(
            "{{\"Optimize\": {{\"spec\": {}, \"machine\": {{\"Preset\": \"tiny\"}}, \"options\": {}}}}}",
            serde_json::to_string(&Spec::Conv(shape)).unwrap(),
            fast_options_json(),
        );
        let cold: Response = serde_json::from_str(&state.handle_line(&legacy)).unwrap();
        let warm: Response = serde_json::from_str(&state.handle_line(&tagged)).unwrap();
        match (cold, warm) {
            (
                Response::Optimized { cached: false, result: a, .. },
                Response::Optimized { cached: true, result: b, .. },
            ) => assert_eq!(a, b, "both wire forms must serve one entry"),
            other => panic!("expected cold legacy then warm tagged, got {other:?}"),
        }
        assert_eq!(state.cache.len(), 1, "legacy and tagged forms share a cache key");
    }

    #[test]
    fn deprecated_alias_ops_are_flagged_but_still_served() {
        let state = tiny_state();
        let request = |op: &str| {
            format!(
                "{{\"Optimize\": {{\"op\": \"{op}\", \"machine\": {{\"Preset\": \"tiny\"}}, \"options\": {}}}}}",
                fast_options_json(),
            )
        };
        let alias: Response = serde_json::from_str(&state.handle_line(&request("M1pw"))).unwrap();
        match alias {
            Response::Optimized { deprecated, result, .. } => {
                assert_eq!(deprecated, Some(true), "M1pw is a deprecated alias");
                assert!(!result.ranked.is_empty(), "deprecated aliases still serve");
            }
            other => panic!("expected Optimized, got {other:?}"),
        }
        let current: Response = serde_json::from_str(&state.handle_line(&request("M9"))).unwrap();
        match current {
            Response::Optimized { deprecated, .. } => assert_eq!(deprecated, None),
            other => panic!("expected Optimized, got {other:?}"),
        }
    }

    #[test]
    fn suites_verb_lists_ops_and_flags_deprecated_aliases() {
        let state = tiny_state();
        let response: Response = serde_json::from_str(&state.handle_line("\"Suites\"")).unwrap();
        let ops = match response {
            Response::Suites { suites, ops } => {
                assert!(suites.iter().any(|s| s == "extended"));
                assert!(suites.iter().any(|s| s == "table1"));
                ops
            }
            other => panic!("expected Suites, got {other:?}"),
        };
        assert!(!ops.is_empty());
        let deprecated: Vec<&str> =
            ops.iter().filter(|o| o.deprecated).map(|o| o.name.as_str()).collect();
        assert!(deprecated.contains(&"M1pw") && deprecated.contains(&"M9pw"));
        let m9 = ops.iter().find(|o| o.name == "M9").expect("M9 listed");
        assert!(!m9.deprecated);
        assert!(!m9.suite.is_empty());
    }
}
