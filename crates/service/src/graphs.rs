//! Serving support for graph plans: a fingerprint-keyed plan cache plus the
//! aggregate counters reported in the `Stats` reply's `graph` section.
//!
//! Graph plans are cheap to store and expensive to make (one optimizer solve
//! per distinct convolution plus the fusion dynamic program), so the service
//! memoizes whole [`GraphPlan`]s keyed by everything that determines them:
//! the graph's stable [`mopt_graph::Graph::fingerprint`], the machine
//! fingerprint, and the optimizer options. The underlying per-operator
//! schedules additionally land in the shared [`crate::ScheduleCache`], so
//! even a *miss* here is mostly warm when the same layers were planned
//! before (by `Optimize`, `PlanNetwork`, or another graph).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use mopt_core::OptimizerOptions;
use mopt_graph::GraphPlan;
use serde::{Deserialize, Serialize};

use crate::cache::{lock_recover, LruMap};

/// Everything a cached graph plan depends on.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct GraphCacheKey {
    /// [`mopt_graph::Graph::fingerprint`] of the request graph.
    pub graph_fingerprint: u64,
    /// `MachineModel::fingerprint` of the target machine.
    pub machine_fingerprint: u64,
    /// The optimizer options used for the per-operator solves.
    pub options: OptimizerOptions,
}

/// The `graph` section of the `Stats` reply.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GraphServiceStats {
    /// Graph plans currently cached.
    pub entries: usize,
    /// Maximum resident graph plans.
    pub capacity: usize,
    /// Plans evicted to stay within capacity.
    pub evictions: u64,
    /// `PlanGraph` requests served from the plan cache.
    pub hits: u64,
    /// `PlanGraph` requests that ran the planner.
    pub misses: u64,
    /// Segments emitted by fresh plans (cumulative).
    pub segments_planned: u64,
    /// Fusions taken by fresh plans (cumulative).
    pub fusions_taken: u64,
    /// Structurally fusable pairs fresh plans did not fuse (cumulative).
    pub fusions_rejected: u64,
}

/// A thread-safe, capacity-bounded (LRU) cache of graph plans with the
/// service-level counters. Inline `PlanGraph` requests can carry arbitrary
/// graphs, so — like the schedule cache next to it — residency must be
/// bounded or a client looping over distinct graphs would grow server
/// memory without limit. The eviction machinery is the same `LruMap` the
/// schedule cache's shards use.
pub struct GraphPlanCache {
    entries: Mutex<LruMap<GraphCacheKey, GraphPlan>>,
    capacity: usize,
    clock: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    segments_planned: AtomicU64,
    fusions_taken: AtomicU64,
    fusions_rejected: AtomicU64,
}

impl GraphPlanCache {
    /// A cache holding at most `capacity` plans (at least 1).
    pub fn new(capacity: usize) -> Self {
        GraphPlanCache {
            entries: Mutex::new(LruMap::default()),
            capacity: capacity.max(1),
            clock: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            segments_planned: AtomicU64::new(0),
            fusions_taken: AtomicU64::new(0),
            fusions_rejected: AtomicU64::new(0),
        }
    }

    /// Look up a cached plan, refreshing its recency on a hit.
    pub fn get(&self, key: &GraphCacheKey) -> Option<GraphPlan> {
        let tick = self.clock.fetch_add(1, Ordering::Relaxed);
        let mut entries = lock_recover(&self.entries);
        match entries.get(key, tick) {
            Some(plan) => {
                let plan = plan.clone();
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(plan)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Insert a freshly computed plan, folding its segment and fusion counts
    /// into the cumulative service counters and evicting the least recently
    /// used plan when full.
    pub fn insert(&self, key: GraphCacheKey, plan: &GraphPlan) {
        self.segments_planned.fetch_add(plan.segments.len() as u64, Ordering::Relaxed);
        self.fusions_taken.fetch_add(plan.fusions_taken as u64, Ordering::Relaxed);
        self.fusions_rejected.fetch_add(plan.fusions_rejected as u64, Ordering::Relaxed);
        let tick = self.clock.fetch_add(1, Ordering::Relaxed);
        let mut entries = lock_recover(&self.entries);
        entries.insert(key, plan.clone(), tick, self.capacity);
    }

    /// Number of cached plans.
    pub fn len(&self) -> usize {
        lock_recover(&self.entries).len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Maximum resident plans.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Snapshot of the counters for the `Stats` reply.
    pub fn stats(&self) -> GraphServiceStats {
        let entries = lock_recover(&self.entries);
        GraphServiceStats {
            entries: entries.len(),
            capacity: self.capacity,
            evictions: entries.evictions(),
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            segments_planned: self.segments_planned.load(Ordering::Relaxed),
            fusions_taken: self.fusions_taken.load(Ordering::Relaxed),
            fusions_rejected: self.fusions_rejected.load(Ordering::Relaxed),
        }
    }
}

impl std::fmt::Debug for GraphPlanCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GraphPlanCache").field("stats", &self.stats()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use conv_spec::{ConvShape, MachineModel};
    use mopt_core::{MOptOptimizer, OptimizerOptions};
    use mopt_graph::{builders, GraphPlanner};

    fn fast_options() -> OptimizerOptions {
        OptimizerOptions { max_classes: 1, ..OptimizerOptions::fast() }
    }

    fn small_plan(machine: &MachineModel) -> GraphPlan {
        let g = builders::mobilenet_v2_block_from(&ConvShape::depthwise(8, 10, 3, 1), "g");
        GraphPlanner::new(machine.clone())
            .plan(&g, |spec| MOptOptimizer::optimize_spec(spec, machine.clone(), fast_options()))
            .unwrap()
    }

    #[test]
    fn hit_miss_and_counter_accumulation() {
        let machine = MachineModel::tiny_test_machine();
        let plan = small_plan(&machine);
        let cache = GraphPlanCache::new(8);
        let key = GraphCacheKey {
            graph_fingerprint: plan.fingerprint,
            machine_fingerprint: plan.machine_fingerprint,
            options: fast_options(),
        };
        assert!(cache.get(&key).is_none());
        cache.insert(key.clone(), &plan);
        assert_eq!(cache.get(&key).as_ref(), Some(&plan));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
        assert_eq!(stats.capacity, 8);
        assert_eq!(stats.segments_planned, plan.segments.len() as u64);
        assert_eq!(stats.fusions_taken, plan.fusions_taken as u64);
        assert_eq!(stats.fusions_rejected, plan.fusions_rejected as u64);
        // Different options are a different key.
        let other = GraphCacheKey { options: OptimizerOptions::default(), ..key };
        assert!(cache.get(&other).is_none());
        assert!(!cache.is_empty());
    }

    #[test]
    fn capacity_bounds_residency_with_lru_eviction() {
        let machine = MachineModel::tiny_test_machine();
        let plan = small_plan(&machine);
        let cache = GraphPlanCache::new(2);
        let key = |fp: u64| GraphCacheKey {
            graph_fingerprint: fp,
            machine_fingerprint: plan.machine_fingerprint,
            options: fast_options(),
        };
        cache.insert(key(1), &plan);
        cache.insert(key(2), &plan);
        // Touch key 1 so key 2 becomes the LRU victim.
        assert!(cache.get(&key(1)).is_some());
        cache.insert(key(3), &plan);
        assert_eq!(cache.len(), 2);
        assert!(cache.get(&key(2)).is_none(), "LRU plan must be evicted");
        assert!(cache.get(&key(1)).is_some());
        assert!(cache.get(&key(3)).is_some());
        let stats = cache.stats();
        assert_eq!(stats.evictions, 1);
        // Re-inserting an existing key never evicts.
        cache.insert(key(1), &plan);
        assert_eq!(cache.stats().evictions, 1);
        assert_eq!(cache.len(), 2);
    }
}
