//! Service metrics: per-verb latency histograms, per-verb error counters and
//! in-flight gauges, served by the `Metrics` verb.
//!
//! The histogram itself lives in [`mopt_trace`] (it is shared with the
//! single-flight waiter-wait instrumentation); this module re-exports it so
//! existing `crate::metrics::LatencyHistogram` paths keep working. Latency is
//! recorded into log2-bucketed histograms — bucket `i` covers
//! `[2^i, 2^(i+1))` microseconds — so one fixed-size array of atomics spans
//! sub-microsecond cache hits and multi-second cold solves with zero
//! allocation on the request path. The wire snapshot lists only non-empty
//! buckets, keyed by their upper bound, so responses stay small no matter
//! how wide the recorded range is.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use serde::{Deserialize, Serialize};

pub use mopt_trace::{HistogramBucket, LatencyHistogram, LatencySnapshot};

/// Number of protocol verbs (histogram / error-counter array size).
const VERBS: usize = 10;

/// The protocol verbs, as histogram indices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verb {
    /// `Optimize`.
    Optimize,
    /// `PlanNetwork`.
    PlanNetwork,
    /// `PlanGraph`.
    PlanGraph,
    /// `Stats`.
    Stats,
    /// `Save`.
    Save,
    /// `Ping`.
    Ping,
    /// `Metrics`.
    Metrics,
    /// `Explain`.
    Explain,
    /// `Trace`.
    Trace,
    /// `Suites`.
    Suites,
}

impl Verb {
    /// Every verb, in wire-documentation order.
    pub const ALL: [Verb; VERBS] = [
        Verb::Optimize,
        Verb::PlanNetwork,
        Verb::PlanGraph,
        Verb::Stats,
        Verb::Save,
        Verb::Ping,
        Verb::Metrics,
        Verb::Explain,
        Verb::Trace,
        Verb::Suites,
    ];

    /// The verb's wire name (`"Optimize"`, ...).
    pub fn name(self) -> &'static str {
        match self {
            Verb::Optimize => "Optimize",
            Verb::PlanNetwork => "PlanNetwork",
            Verb::PlanGraph => "PlanGraph",
            Verb::Stats => "Stats",
            Verb::Save => "Save",
            Verb::Ping => "Ping",
            Verb::Metrics => "Metrics",
            Verb::Explain => "Explain",
            Verb::Trace => "Trace",
            Verb::Suites => "Suites",
        }
    }
}

/// Live metric state shared by every connection of a service. All methods
/// take `&self` and are lock-free.
#[derive(Debug, Default)]
pub struct ServiceMetrics {
    verbs: [LatencyHistogram; VERBS],
    errors: [AtomicU64; VERBS],
    parse_errors: AtomicU64,
    in_flight_requests: AtomicU64,
    open_connections: AtomicU64,
    connections_accepted: AtomicU64,
}

impl ServiceMetrics {
    /// Record a served request of `verb` that took `elapsed`.
    pub fn record(&self, verb: Verb, elapsed: Duration) {
        self.verbs[verb as usize].record(elapsed);
    }

    /// Record a request of `verb` that was answered with an `Error` response.
    /// (The latency is recorded separately by [`ServiceMetrics::record`].)
    pub fn record_error(&self, verb: Verb) {
        self.errors[verb as usize].fetch_add(1, Ordering::Relaxed);
    }

    /// Record a request line that failed to parse (no verb to charge).
    pub fn record_parse_error(&self) {
        self.parse_errors.fetch_add(1, Ordering::Relaxed);
    }

    /// Mark a request as entering dispatch. The guard decrements on drop, so
    /// the gauge stays correct even on panicking handlers.
    pub fn request_started(&self) -> InFlightGuard<'_> {
        self.in_flight_requests.fetch_add(1, Ordering::Relaxed);
        InFlightGuard { gauge: &self.in_flight_requests }
    }

    /// Mark a connection opened. The guard decrements on drop.
    pub fn connection_opened(&self) -> InFlightGuard<'_> {
        self.connections_accepted.fetch_add(1, Ordering::Relaxed);
        self.open_connections.fetch_add(1, Ordering::Relaxed);
        InFlightGuard { gauge: &self.open_connections }
    }

    /// Requests currently inside a handler.
    pub fn in_flight_requests(&self) -> u64 {
        self.in_flight_requests.load(Ordering::Relaxed)
    }

    /// Connections currently open.
    pub fn open_connections(&self) -> u64 {
        self.open_connections.load(Ordering::Relaxed)
    }

    /// Connections accepted since startup.
    pub fn connections_accepted(&self) -> u64 {
        self.connections_accepted.load(Ordering::Relaxed)
    }

    /// One verb's full latency distribution (all-zero if never served).
    pub fn verb_latency(&self, verb: Verb) -> LatencySnapshot {
        self.verbs[verb as usize].snapshot()
    }

    /// `Error` responses charged to one verb.
    pub fn verb_errors(&self, verb: Verb) -> u64 {
        self.errors[verb as usize].load(Ordering::Relaxed)
    }

    /// Request lines that failed to parse.
    pub fn parse_errors(&self) -> u64 {
        self.parse_errors.load(Ordering::Relaxed)
    }

    /// Serializable error-counter snapshot (verbs with zero errors omitted).
    pub fn error_counts(&self) -> ErrorCounts {
        let verbs: Vec<VerbErrors> = Verb::ALL
            .iter()
            .map(|&verb| VerbErrors {
                verb: verb.name().to_string(),
                count: self.verb_errors(verb),
            })
            .filter(|v| v.count > 0)
            .collect();
        ErrorCounts {
            total: verbs.iter().map(|v| v.count).sum(),
            parse_errors: self.parse_errors(),
            verbs,
        }
    }

    /// Serializable snapshot for the `Metrics` reply. Flight counters are
    /// supplied by the caller (they live next to the caches, not here).
    pub fn report(&self, flight: crate::singleflight::FlightBreakdown) -> MetricsReport {
        MetricsReport {
            verbs: Verb::ALL
                .iter()
                .map(|&verb| VerbLatency {
                    verb: verb.name().to_string(),
                    latency: self.verbs[verb as usize].snapshot(),
                })
                .filter(|v| v.latency.count > 0)
                .collect(),
            errors: self.error_counts(),
            in_flight_requests: self.in_flight_requests(),
            open_connections: self.open_connections(),
            connections_accepted: self.connections_accepted.load(Ordering::Relaxed),
            flight,
        }
    }
}

/// RAII decrement for the in-flight gauges.
#[derive(Debug)]
pub struct InFlightGuard<'a> {
    gauge: &'a AtomicU64,
}

impl Drop for InFlightGuard<'_> {
    fn drop(&mut self) {
        self.gauge.fetch_sub(1, Ordering::Relaxed);
    }
}

/// One verb's latency distribution, labeled for the wire.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VerbLatency {
    /// The verb name (`"Optimize"`, ...).
    pub verb: String,
    /// Its latency snapshot.
    pub latency: LatencySnapshot,
}

/// Per-verb `Error`-response counts, labeled for the wire.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct VerbErrors {
    /// The verb name (`"Optimize"`, ...).
    pub verb: String,
    /// `Error` responses served for the verb.
    pub count: u64,
}

/// Error-counter snapshot, served under `Stats.errors` and in the
/// `Metrics` report.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ErrorCounts {
    /// Total `Error` responses across all verbs (excludes parse errors).
    pub total: u64,
    /// Request lines that failed to parse into any verb.
    pub parse_errors: u64,
    /// Per-verb breakdown (verbs with zero errors omitted).
    pub verbs: Vec<VerbErrors>,
}

/// The `Metrics` reply body.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricsReport {
    /// Latency per verb (verbs never served are omitted).
    pub verbs: Vec<VerbLatency>,
    /// `Error` responses per verb, plus parse failures.
    pub errors: ErrorCounts,
    /// Requests currently inside a handler.
    pub in_flight_requests: u64,
    /// Connections currently open (TCP event loop or stdio).
    pub open_connections: u64,
    /// Connections accepted since startup.
    pub connections_accepted: u64,
    /// Single-flight solve-coalescing counters (also under `Stats.flight`).
    pub flight: crate::singleflight::FlightBreakdown,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_log2_and_totals_accumulate() {
        let hist = LatencyHistogram::default();
        hist.record(Duration::from_micros(1)); // bucket [1,2)  → le 1
        hist.record(Duration::from_micros(3)); // bucket [2,4)  → le 3
        hist.record(Duration::from_micros(3));
        hist.record(Duration::from_millis(5)); // 5000 µs → [4096,8192) → le 8191
        let snap = hist.snapshot();
        assert_eq!(snap.count, 4);
        assert_eq!(snap.max_micros, 5000);
        assert_eq!(snap.sum_micros, 1 + 3 + 3 + 5000);
        assert!((snap.mean_micros - (1.0 + 3.0 + 3.0 + 5000.0) / 4.0).abs() < 1e-9);
        assert_eq!(
            snap.buckets,
            vec![
                HistogramBucket { le_micros: 1, count: 1 },
                HistogramBucket { le_micros: 3, count: 2 },
                HistogramBucket { le_micros: 8191, count: 1 },
            ]
        );
    }

    #[test]
    fn zero_duration_lands_in_the_first_bucket() {
        let hist = LatencyHistogram::default();
        hist.record(Duration::ZERO);
        let snap = hist.snapshot();
        assert_eq!(snap.buckets, vec![HistogramBucket { le_micros: 1, count: 1 }]);
    }

    #[test]
    fn gauges_track_and_guards_release() {
        let metrics = ServiceMetrics::default();
        {
            let _c = metrics.connection_opened();
            let _r1 = metrics.request_started();
            let _r2 = metrics.request_started();
            assert_eq!(metrics.open_connections(), 1);
            assert_eq!(metrics.in_flight_requests(), 2);
        }
        assert_eq!(metrics.open_connections(), 0);
        assert_eq!(metrics.in_flight_requests(), 0);
        metrics.record(Verb::Ping, Duration::from_micros(7));
        let report = metrics.report(crate::singleflight::FlightBreakdown::default());
        assert_eq!(report.connections_accepted, 1);
        assert_eq!(report.verbs.len(), 1, "unserved verbs are omitted");
        assert_eq!(report.verbs[0].verb, "Ping");
        // The report serializes and round-trips.
        let text = serde_json::to_string(&report).unwrap();
        let back: MetricsReport = serde_json::from_str(&text).unwrap();
        assert_eq!(back, report);
    }

    #[test]
    fn error_counters_are_per_verb_and_skip_zeroes() {
        let metrics = ServiceMetrics::default();
        metrics.record_error(Verb::Optimize);
        metrics.record_error(Verb::Optimize);
        metrics.record_error(Verb::PlanGraph);
        metrics.record_parse_error();
        let errors = metrics.error_counts();
        assert_eq!(errors.total, 3);
        assert_eq!(errors.parse_errors, 1);
        assert_eq!(
            errors.verbs,
            vec![
                VerbErrors { verb: "Optimize".to_string(), count: 2 },
                VerbErrors { verb: "PlanGraph".to_string(), count: 1 },
            ]
        );
        // The snapshot round-trips through JSON.
        let text = serde_json::to_string(&errors).unwrap();
        let back: ErrorCounts = serde_json::from_str(&text).unwrap();
        assert_eq!(back, errors);
    }
}
