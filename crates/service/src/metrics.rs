//! Service metrics: per-verb latency histograms and in-flight gauges,
//! served by the `Metrics` verb.
//!
//! Latency is recorded into log2-bucketed histograms — bucket `i` covers
//! `[2^i, 2^(i+1))` microseconds — so one fixed-size array of atomics spans
//! sub-microsecond cache hits and multi-second cold solves with zero
//! allocation on the request path. The wire snapshot lists only non-empty
//! buckets, keyed by their upper bound, so responses stay small no matter
//! how wide the recorded range is.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use serde::{Deserialize, Serialize};

/// Number of log2 buckets: bucket 63 absorbs everything ≥ 2^63 µs.
const BUCKETS: usize = 64;

/// A lock-free latency histogram with log2 microsecond buckets.
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum_micros: AtomicU64,
    max_micros: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_micros: AtomicU64::new(0),
            max_micros: AtomicU64::new(0),
        }
    }
}

impl LatencyHistogram {
    /// Record one observation.
    pub fn record(&self, elapsed: Duration) {
        let micros = elapsed.as_micros().min(u64::MAX as u128) as u64;
        let bucket = (64 - micros.max(1).leading_zeros() as usize - 1).min(BUCKETS - 1);
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_micros.fetch_add(micros, Ordering::Relaxed);
        self.max_micros.fetch_max(micros, Ordering::Relaxed);
    }

    /// Serializable snapshot (non-empty buckets only).
    pub fn snapshot(&self) -> LatencySnapshot {
        let count = self.count.load(Ordering::Relaxed);
        let sum = self.sum_micros.load(Ordering::Relaxed);
        LatencySnapshot {
            count,
            mean_micros: if count == 0 { 0.0 } else { sum as f64 / count as f64 },
            max_micros: self.max_micros.load(Ordering::Relaxed),
            buckets: self
                .buckets
                .iter()
                .enumerate()
                .filter_map(|(i, c)| {
                    let c = c.load(Ordering::Relaxed);
                    (c > 0).then(|| HistogramBucket {
                        le_micros: if i + 1 >= 64 { u64::MAX } else { (1u64 << (i + 1)) - 1 },
                        count: c,
                    })
                })
                .collect(),
        }
    }
}

/// One non-empty histogram bucket on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistogramBucket {
    /// Upper bound of the bucket, inclusive, in microseconds.
    pub le_micros: u64,
    /// Observations in the bucket.
    pub count: u64,
}

/// Wire form of one verb's latency distribution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LatencySnapshot {
    /// Observations recorded.
    pub count: u64,
    /// Mean latency in microseconds.
    pub mean_micros: f64,
    /// Worst observed latency in microseconds.
    pub max_micros: u64,
    /// Non-empty log2 buckets, ascending.
    pub buckets: Vec<HistogramBucket>,
}

/// The protocol verbs, as histogram indices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verb {
    /// `Optimize`.
    Optimize,
    /// `PlanNetwork`.
    PlanNetwork,
    /// `PlanGraph`.
    PlanGraph,
    /// `Stats`.
    Stats,
    /// `Save`.
    Save,
    /// `Ping`.
    Ping,
    /// `Metrics`.
    Metrics,
}

impl Verb {
    const ALL: [Verb; 7] = [
        Verb::Optimize,
        Verb::PlanNetwork,
        Verb::PlanGraph,
        Verb::Stats,
        Verb::Save,
        Verb::Ping,
        Verb::Metrics,
    ];

    fn name(self) -> &'static str {
        match self {
            Verb::Optimize => "Optimize",
            Verb::PlanNetwork => "PlanNetwork",
            Verb::PlanGraph => "PlanGraph",
            Verb::Stats => "Stats",
            Verb::Save => "Save",
            Verb::Ping => "Ping",
            Verb::Metrics => "Metrics",
        }
    }
}

/// Live metric state shared by every connection of a service. All methods
/// take `&self` and are lock-free.
#[derive(Debug, Default)]
pub struct ServiceMetrics {
    verbs: [LatencyHistogram; 7],
    in_flight_requests: AtomicU64,
    open_connections: AtomicU64,
    connections_accepted: AtomicU64,
}

impl ServiceMetrics {
    /// Record a served request of `verb` that took `elapsed`.
    pub fn record(&self, verb: Verb, elapsed: Duration) {
        self.verbs[verb as usize].record(elapsed);
    }

    /// Mark a request as entering dispatch. The guard decrements on drop, so
    /// the gauge stays correct even on panicking handlers.
    pub fn request_started(&self) -> InFlightGuard<'_> {
        self.in_flight_requests.fetch_add(1, Ordering::Relaxed);
        InFlightGuard { gauge: &self.in_flight_requests }
    }

    /// Mark a connection opened. The guard decrements on drop.
    pub fn connection_opened(&self) -> InFlightGuard<'_> {
        self.connections_accepted.fetch_add(1, Ordering::Relaxed);
        self.open_connections.fetch_add(1, Ordering::Relaxed);
        InFlightGuard { gauge: &self.open_connections }
    }

    /// Requests currently inside a handler.
    pub fn in_flight_requests(&self) -> u64 {
        self.in_flight_requests.load(Ordering::Relaxed)
    }

    /// Connections currently open.
    pub fn open_connections(&self) -> u64 {
        self.open_connections.load(Ordering::Relaxed)
    }

    /// Serializable snapshot for the `Metrics` reply. Flight counters are
    /// supplied by the caller (they live next to the caches, not here).
    pub fn report(&self, flight: crate::singleflight::FlightBreakdown) -> MetricsReport {
        MetricsReport {
            verbs: Verb::ALL
                .iter()
                .map(|&verb| VerbLatency {
                    verb: verb.name().to_string(),
                    latency: self.verbs[verb as usize].snapshot(),
                })
                .filter(|v| v.latency.count > 0)
                .collect(),
            in_flight_requests: self.in_flight_requests(),
            open_connections: self.open_connections(),
            connections_accepted: self.connections_accepted.load(Ordering::Relaxed),
            flight,
        }
    }
}

/// RAII decrement for the in-flight gauges.
#[derive(Debug)]
pub struct InFlightGuard<'a> {
    gauge: &'a AtomicU64,
}

impl Drop for InFlightGuard<'_> {
    fn drop(&mut self) {
        self.gauge.fetch_sub(1, Ordering::Relaxed);
    }
}

/// One verb's latency distribution, labeled for the wire.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VerbLatency {
    /// The verb name (`"Optimize"`, ...).
    pub verb: String,
    /// Its latency snapshot.
    pub latency: LatencySnapshot,
}

/// The `Metrics` reply body.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricsReport {
    /// Latency per verb (verbs never served are omitted).
    pub verbs: Vec<VerbLatency>,
    /// Requests currently inside a handler.
    pub in_flight_requests: u64,
    /// Connections currently open (TCP event loop or stdio).
    pub open_connections: u64,
    /// Connections accepted since startup.
    pub connections_accepted: u64,
    /// Single-flight solve-coalescing counters (also under `Stats.flight`).
    pub flight: crate::singleflight::FlightBreakdown,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_log2_and_totals_accumulate() {
        let hist = LatencyHistogram::default();
        hist.record(Duration::from_micros(1)); // bucket [1,2)  → le 1
        hist.record(Duration::from_micros(3)); // bucket [2,4)  → le 3
        hist.record(Duration::from_micros(3));
        hist.record(Duration::from_millis(5)); // 5000 µs → [4096,8192) → le 8191
        let snap = hist.snapshot();
        assert_eq!(snap.count, 4);
        assert_eq!(snap.max_micros, 5000);
        assert!((snap.mean_micros - (1.0 + 3.0 + 3.0 + 5000.0) / 4.0).abs() < 1e-9);
        assert_eq!(
            snap.buckets,
            vec![
                HistogramBucket { le_micros: 1, count: 1 },
                HistogramBucket { le_micros: 3, count: 2 },
                HistogramBucket { le_micros: 8191, count: 1 },
            ]
        );
    }

    #[test]
    fn zero_duration_lands_in_the_first_bucket() {
        let hist = LatencyHistogram::default();
        hist.record(Duration::ZERO);
        let snap = hist.snapshot();
        assert_eq!(snap.buckets, vec![HistogramBucket { le_micros: 1, count: 1 }]);
    }

    #[test]
    fn gauges_track_and_guards_release() {
        let metrics = ServiceMetrics::default();
        {
            let _c = metrics.connection_opened();
            let _r1 = metrics.request_started();
            let _r2 = metrics.request_started();
            assert_eq!(metrics.open_connections(), 1);
            assert_eq!(metrics.in_flight_requests(), 2);
        }
        assert_eq!(metrics.open_connections(), 0);
        assert_eq!(metrics.in_flight_requests(), 0);
        metrics.record(Verb::Ping, Duration::from_micros(7));
        let report = metrics.report(crate::singleflight::FlightBreakdown::default());
        assert_eq!(report.connections_accepted, 1);
        assert_eq!(report.verbs.len(), 1, "unserved verbs are omitted");
        assert_eq!(report.verbs[0].verb, "Ping");
        // The report serializes and round-trips.
        let text = serde_json::to_string(&report).unwrap();
        let back: MetricsReport = serde_json::from_str(&text).unwrap();
        assert_eq!(back, report);
    }
}
