//! `moptd` — the MOpt schedule server.
//!
//! Serves the JSON-lines protocol of [`mopt_service::server`] over TCP
//! (`--listen ADDR`) or stdin/stdout (`--stdio`). TCP mode runs a
//! non-blocking readiness event loop ([`mopt_service::eventloop`]): one
//! thread multiplexes every connection, supports pipelined requests with
//! bounded backpressure, and hands request execution to a small worker
//! pool (`--workers N`, default: available parallelism capped at 8). On
//! `SIGINT`/`SIGTERM` the loop stops accepting, drains in-flight and
//! pipelined work, flushes every response, persists state, and exits.
//!
//! Persistence comes in two flavors:
//!
//! * `--snapshot PATH` — a whole-file JSON snapshot, rewritten in full on
//!   every save,
//! * `--snapshot-dir DIR` — a sharded snapshot directory where saves are
//!   incremental: only cache shards dirtied since the last flush are
//!   rewritten.
//!
//! Either is loaded at startup (if present) and saved on every `"Save"`
//! request, at shutdown, at stdin EOF in `--stdio` mode, and by a
//! background autosaver every 30 seconds while the cache is dirty.
//!
//! With `--db DIR` the persistent schedule database is attached as the warm
//! tier between the cache and the optimizer: cache misses are answered from
//! stored canonicalized top-k entries (re-ranked for the request's thread
//! count) before the optimizer is ever invoked, fresh solves are written
//! through, and dirty pages are flushed wherever the snapshot is saved.
//! Pre-populate the database offline with `mopt-plan-world`.
//!
//! `--layout-policy search` makes the optimizer search data layouts (NCHWc
//! blocking, packed kernels) alongside tile sizes for requests that leave
//! `layout_policy` unset; the default `fixed` keeps the pre-layout behavior
//! and wire format bit-for-bit.
//!
//! ```text
//! moptd --stdio [--snapshot cache.json | --snapshot-dir DIR] [--db specs.db]
//! moptd --listen 127.0.0.1:7077 [--workers N] [--snapshot-dir DIR] [--db specs.db]
//!
//! echo '{"Optimize": {"op": "Y0", "machine": {"Preset": "i7-9700k"}}}' | moptd --stdio
//! ```
//!
//! Verbs: `Optimize`, `Explain` (schedule plus the optimizer's search trace
//! and cost breakdown), `PlanNetwork`, `PlanGraph` (fusion-aware graph
//! planning), `Stats`, `Save`, `Metrics` (per-verb latency histograms,
//! error counters and in-flight gauges; `{"format": "prometheus"}` for
//! text exposition), `Trace` (the slow-request log armed by `--slow-ms`),
//! `Ping` (replies with the crate version). Any
//! `Optimize`/`PlanNetwork`/`PlanGraph` request may set `"trace": true` to
//! get its span tree inline in the response. Client disconnects — stdin
//! EOF, broken pipes, connection resets — end a connection gracefully:
//! state is persisted and nothing is logged as an error.

use std::sync::Arc;

use mopt_core::LayoutPolicy;
use mopt_service::{EventLoopServer, ServerConfig, ServiceState};

struct Args {
    stdio: bool,
    listen: Option<String>,
    snapshot: Option<std::path::PathBuf>,
    snapshot_dir: Option<std::path::PathBuf>,
    db: Option<std::path::PathBuf>,
    capacity: usize,
    workers: usize,
    slow_ms: u64,
    layout_policy: Option<LayoutPolicy>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        stdio: false,
        listen: None,
        snapshot: None,
        snapshot_dir: None,
        db: None,
        capacity: 4096,
        workers: 0,
        slow_ms: 0,
        layout_policy: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--stdio" => args.stdio = true,
            "--listen" => {
                args.listen = Some(it.next().ok_or("--listen needs an address")?);
            }
            "--snapshot" => {
                args.snapshot = Some(it.next().ok_or("--snapshot needs a path")?.into());
            }
            "--snapshot-dir" => {
                args.snapshot_dir =
                    Some(it.next().ok_or("--snapshot-dir needs a directory path")?.into());
            }
            "--db" => {
                args.db = Some(it.next().ok_or("--db needs a directory path")?.into());
            }
            "--capacity" => {
                args.capacity = it
                    .next()
                    .ok_or("--capacity needs a number")?
                    .parse()
                    .map_err(|e| format!("bad --capacity: {e}"))?;
            }
            "--workers" => {
                args.workers = it
                    .next()
                    .ok_or("--workers needs a number")?
                    .parse()
                    .map_err(|e| format!("bad --workers: {e}"))?;
            }
            "--slow-ms" => {
                args.slow_ms = it
                    .next()
                    .ok_or("--slow-ms needs a number")?
                    .parse()
                    .map_err(|e| format!("bad --slow-ms: {e}"))?;
            }
            "--layout-policy" => {
                let value = it.next().ok_or("--layout-policy needs `fixed` or `search`")?;
                args.layout_policy = match value.as_str() {
                    // `fixed` is the wire default: leave requests untouched so
                    // every pre-layout fingerprint and cache key is preserved.
                    "fixed" => None,
                    "search" => Some(LayoutPolicy::Search),
                    other => {
                        return Err(format!(
                            "bad --layout-policy `{other}` (expected `fixed` or `search`)"
                        ))
                    }
                };
            }
            "--help" | "-h" => {
                println!(
                    "moptd — MOpt schedule server\n\n\
                     USAGE:\n  moptd --stdio [OPTIONS]\n  \
                     moptd --listen ADDR [--workers N] [OPTIONS]\n\n\
                     OPTIONS:\n  \
                     --snapshot PATH      whole-file cache snapshot\n  \
                     --snapshot-dir DIR   sharded snapshot dir (incremental saves)\n  \
                     --db DIR             persistent schedule database (see mopt-plan-world)\n  \
                     --capacity N         schedule cache capacity (default 4096)\n  \
                     --workers N          TCP request workers (default: CPU count, max 8)\n  \
                     --slow-ms MS         keep traces of requests slower than MS ms (Trace verb)\n  \
                     --layout-policy P    default layout policy for requests that leave it\n  \
                     \x20                    unset: `fixed` (default, pre-layout behavior) or\n  \
                     \x20                    `search` (optimizer also searches data layouts)\n\n\
                     One JSON request per input line, one JSON response per output line;\n\
                     TCP connections may pipeline requests. SIGINT/SIGTERM drain gracefully.\n\
                     Requests: Optimize, Explain, PlanNetwork, PlanGraph, Stats, Save,\n\
                     Metrics, Trace, Ping.\n\
                     See README.md and docs/PROTOCOL.md."
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}` (try --help)")),
        }
    }
    if args.stdio == args.listen.is_some() {
        return Err("pass exactly one of --stdio or --listen ADDR".into());
    }
    if args.snapshot.is_some() && args.snapshot_dir.is_some() {
        return Err("pass at most one of --snapshot and --snapshot-dir".into());
    }
    Ok(args)
}

fn main() {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("moptd: {message}");
            std::process::exit(2);
        }
    };

    let mut state = ServiceState::new(args.capacity);
    if let Some(path) = &args.snapshot {
        state = match state.with_snapshot(path.clone()) {
            Ok(state) => {
                eprintln!(
                    "moptd: snapshot {} loaded ({} entries)",
                    path.display(),
                    state.cache.len()
                );
                state
            }
            Err(e) => {
                eprintln!("moptd: cannot load snapshot {}: {e}", path.display());
                std::process::exit(1);
            }
        };
    }
    if let Some(dir) = &args.snapshot_dir {
        state = match state.with_snapshot_dir(dir.clone()) {
            Ok(state) => {
                eprintln!(
                    "moptd: snapshot dir {} loaded ({} entries)",
                    dir.display(),
                    state.cache.len()
                );
                state
            }
            Err(e) => {
                eprintln!("moptd: cannot load snapshot dir {}: {e}", dir.display());
                std::process::exit(1);
            }
        };
    }
    if let Some(path) = &args.db {
        state = match state.with_db(path.clone()) {
            Ok(state) => {
                eprintln!("moptd: schedule database {} attached", path.display());
                state
            }
            Err(e) => {
                eprintln!("moptd: cannot open schedule database {}: {e}", path.display());
                std::process::exit(1);
            }
        };
    }
    if args.slow_ms > 0 {
        state = state.with_slow_ms(args.slow_ms);
    }
    if args.layout_policy.is_some() {
        state = state.with_layout_policy(args.layout_policy);
        eprintln!("moptd: layout policy defaulting to `search`");
    }
    let state = Arc::new(state);

    if args.stdio {
        state.set_configured_workers(1);
        let stdin = std::io::stdin();
        let stdout = std::io::stdout();
        // Count the stdio session in the same gauge TCP connections use, so
        // `Metrics` reports consistently in both modes.
        let conn_guard = state.metrics().connection_opened();
        // Client disconnects (stdin EOF, broken pipe on stdout) come back as
        // Ok(()) from serve_connection; either way the shutdown is graceful:
        // persist the cache and exit 0.
        match state.serve_connection(stdin.lock(), stdout.lock()) {
            Ok(()) => eprintln!("moptd: stdin closed, shutting down"),
            Err(e) => eprintln!("moptd: stdio loop failed: {e}"),
        }
        drop(conn_guard);
        // A failed final persist is real data loss in one-shot stdio mode
        // (there is no autosaver to retry): exit nonzero so pipelines see
        // the failure.
        if !persist_cache(&state) {
            std::process::exit(1);
        }
        return;
    }

    let addr = args.listen.expect("checked by parse_args");
    let config = ServerConfig { workers: args.workers, ..ServerConfig::default() };
    let server = match EventLoopServer::bind(Arc::clone(&state), &addr, config) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("moptd: cannot listen on {addr}: {e}");
            std::process::exit(1);
        }
    };
    eprintln!("moptd: listening on {addr}");
    #[cfg(unix)]
    sig::install(server.shutdown_handle());

    if args.snapshot.is_some() || args.snapshot_dir.is_some() {
        // The autosaver bounds data loss from an abrupt (`SIGKILL`) death;
        // SIGINT/SIGTERM persist via the post-drain save below. With
        // --snapshot-dir each pass only rewrites shards dirtied since the
        // last flush.
        let state = Arc::clone(&state);
        std::thread::spawn(move || {
            let mut saved_insertions = state.cache.stats().insertions;
            loop {
                std::thread::sleep(std::time::Duration::from_secs(30));
                let insertions = state.cache.stats().insertions;
                if insertions != saved_insertions {
                    saved_insertions = insertions;
                    persist_cache(&state);
                }
            }
        });
    }

    match server.run() {
        Ok(()) => eprintln!("moptd: drained, shutting down"),
        Err(e) => eprintln!("moptd: event loop failed: {e}"),
    }
    // The loop has drained: every accepted request got its response flushed.
    // A failed persist here is data loss, so surface it in the exit code.
    if !persist_cache(&state) {
        std::process::exit(1);
    }
}

/// Graceful-drain signal plumbing: `SIGINT`/`SIGTERM` flip the event loop's
/// shutdown flag. Everything the handler touches is async-signal-safe — an
/// atomic store and one `write(2)` to the loop's waker pipe.
#[cfg(unix)]
mod sig {
    use std::sync::OnceLock;

    use mopt_service::ShutdownHandle;

    static HANDLE: OnceLock<ShutdownHandle> = OnceLock::new();

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    extern "C" fn on_signal(_signum: i32) {
        if let Some(handle) = HANDLE.get() {
            handle.shutdown();
        }
    }

    pub fn install(handle: ShutdownHandle) {
        let _ = HANDLE.set(handle);
        unsafe {
            signal(SIGINT, on_signal as *const () as usize);
            signal(SIGTERM, on_signal as *const () as usize);
        }
    }
}

fn persist_cache(state: &ServiceState) -> bool {
    let mut ok = true;
    match state.save() {
        Ok(Some(entries)) => eprintln!("moptd: snapshot saved ({entries} entries)"),
        Ok(None) => {}
        Err(e) => {
            eprintln!("moptd: snapshot save failed: {e}");
            ok = false;
        }
    }
    if let Some(db) = state.db() {
        match db.flush() {
            Ok(0) => {}
            Ok(pages) => eprintln!("moptd: schedule database flushed ({pages} pages)"),
            Err(e) => {
                eprintln!("moptd: schedule database flush failed: {e}");
                ok = false;
            }
        }
    }
    ok
}
