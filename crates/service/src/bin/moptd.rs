//! `moptd` — the MOpt schedule server.
//!
//! Serves the JSON-lines protocol of [`mopt_service::server`] over TCP
//! (`--listen ADDR`, one thread per connection) or stdin/stdout
//! (`--stdio`). With `--snapshot PATH` the schedule cache is loaded from
//! `PATH` at startup (if present) and saved back on every `"Save"` request,
//! whenever a connection drains, at stdin EOF in `--stdio` mode, and — in
//! TCP mode, where an abrupt kill would otherwise lose solves made over
//! long-lived connections — by a background autosaver every 30 seconds
//! while the cache is dirty.
//!
//! With `--db DIR` the persistent schedule database is attached as the warm
//! tier between the cache and the optimizer: cache misses are answered from
//! stored canonicalized top-k entries (re-ranked for the request's thread
//! count) before the optimizer is ever invoked, fresh solves are written
//! through, and dirty pages are flushed wherever the snapshot is saved.
//! Pre-populate the database offline with `mopt-plan-world`.
//!
//! ```text
//! moptd --stdio [--snapshot cache.json] [--db specs.db] [--capacity N]
//! moptd --listen 127.0.0.1:7077 [--snapshot cache.json] [--db specs.db] [--capacity N]
//!
//! echo '{"Optimize": {"op": "Y0", "machine": {"Preset": "i7-9700k"}}}' | moptd --stdio
//! ```
//!
//! Verbs: `Optimize`, `PlanNetwork`, `PlanGraph` (fusion-aware graph
//! planning), `Stats`, `Save`, `Ping` (replies with the crate version).
//! Client disconnects — stdin EOF, broken pipes, connection resets — end a
//! connection gracefully: state is persisted and nothing is logged as an
//! error.

use std::io::{BufReader, BufWriter};
use std::net::TcpListener;
use std::sync::Arc;

use mopt_service::ServiceState;

struct Args {
    stdio: bool,
    listen: Option<String>,
    snapshot: Option<std::path::PathBuf>,
    db: Option<std::path::PathBuf>,
    capacity: usize,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args { stdio: false, listen: None, snapshot: None, db: None, capacity: 4096 };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--stdio" => args.stdio = true,
            "--listen" => {
                args.listen = Some(it.next().ok_or("--listen needs an address")?);
            }
            "--snapshot" => {
                args.snapshot = Some(it.next().ok_or("--snapshot needs a path")?.into());
            }
            "--db" => {
                args.db = Some(it.next().ok_or("--db needs a directory path")?.into());
            }
            "--capacity" => {
                args.capacity = it
                    .next()
                    .ok_or("--capacity needs a number")?
                    .parse()
                    .map_err(|e| format!("bad --capacity: {e}"))?;
            }
            "--help" | "-h" => {
                println!(
                    "moptd — MOpt schedule server\n\n\
                     USAGE:\n  moptd --stdio [--snapshot PATH] [--db DIR] [--capacity N]\n  \
                     moptd --listen ADDR [--snapshot PATH] [--db DIR] [--capacity N]\n\n\
                     One JSON request per input line, one JSON response per output line.\n\
                     Requests: Optimize, PlanNetwork, PlanGraph, Stats, Save, Ping.\n\
                     --db attaches the persistent schedule database (see mopt-plan-world).\n\
                     See README.md and docs/PROTOCOL.md."
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}` (try --help)")),
        }
    }
    if args.stdio == args.listen.is_some() {
        return Err("pass exactly one of --stdio or --listen ADDR".into());
    }
    Ok(args)
}

fn main() {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("moptd: {message}");
            std::process::exit(2);
        }
    };

    let mut state = ServiceState::new(args.capacity);
    if let Some(path) = &args.snapshot {
        state = match state.with_snapshot(path.clone()) {
            Ok(state) => {
                eprintln!(
                    "moptd: snapshot {} loaded ({} entries)",
                    path.display(),
                    state.cache.len()
                );
                state
            }
            Err(e) => {
                eprintln!("moptd: cannot load snapshot {}: {e}", path.display());
                std::process::exit(1);
            }
        };
    }
    if let Some(path) = &args.db {
        state = match state.with_db(path.clone()) {
            Ok(state) => {
                eprintln!("moptd: schedule database {} attached", path.display());
                state
            }
            Err(e) => {
                eprintln!("moptd: cannot open schedule database {}: {e}", path.display());
                std::process::exit(1);
            }
        };
    }
    let state = Arc::new(state);

    if args.stdio {
        let stdin = std::io::stdin();
        let stdout = std::io::stdout();
        // Client disconnects (stdin EOF, broken pipe on stdout) come back as
        // Ok(()) from serve_connection; either way the shutdown is graceful:
        // persist the cache and exit 0.
        match state.serve_connection(stdin.lock(), stdout.lock()) {
            Ok(()) => eprintln!("moptd: stdin closed, shutting down"),
            Err(e) => eprintln!("moptd: stdio loop failed: {e}"),
        }
        // A failed final persist is real data loss in one-shot stdio mode
        // (there is no autosaver to retry): exit nonzero so pipelines see
        // the failure.
        if !persist_cache(&state) {
            std::process::exit(1);
        }
        return;
    }

    let addr = args.listen.expect("checked by parse_args");
    let listener = match TcpListener::bind(&addr) {
        Ok(listener) => listener,
        Err(e) => {
            eprintln!("moptd: cannot listen on {addr}: {e}");
            std::process::exit(1);
        }
    };
    eprintln!("moptd: listening on {addr}");
    if args.snapshot.is_some() {
        // There is no portable signal handling without external crates, so
        // long-lived TCP service persists via a dirty-checking autosaver
        // rather than an atexit hook.
        let state = Arc::clone(&state);
        std::thread::spawn(move || {
            let mut saved_insertions = state.cache.stats().insertions;
            loop {
                std::thread::sleep(std::time::Duration::from_secs(30));
                let insertions = state.cache.stats().insertions;
                if insertions != saved_insertions {
                    saved_insertions = insertions;
                    persist_cache(&state);
                }
            }
        });
    }
    for conn in listener.incoming() {
        match conn {
            Ok(stream) => {
                let state = Arc::clone(&state);
                let peer = stream
                    .peer_addr()
                    .map(|a| a.to_string())
                    .unwrap_or_else(|_| "<unknown>".to_string());
                std::thread::spawn(move || {
                    let reader = BufReader::new(match stream.try_clone() {
                        Ok(s) => s,
                        Err(e) => {
                            eprintln!("moptd: cannot clone stream for {peer}: {e}");
                            return;
                        }
                    });
                    let writer = BufWriter::new(stream);
                    // A client hanging up mid-conversation is a normal
                    // drain (Ok), not a failure; only unexpected I/O errors
                    // are logged. Both paths keep the snapshot fresh.
                    if let Err(e) = state.serve_connection(reader, writer) {
                        eprintln!("moptd: connection {peer} failed: {e}");
                    }
                    persist_cache(&state);
                });
            }
            Err(e) => eprintln!("moptd: accept failed: {e}"),
        }
    }
}

fn persist_cache(state: &ServiceState) -> bool {
    let mut ok = true;
    match state.save() {
        Ok(Some(entries)) => eprintln!("moptd: snapshot saved ({entries} entries)"),
        Ok(None) => {}
        Err(e) => {
            eprintln!("moptd: snapshot save failed: {e}");
            ok = false;
        }
    }
    if let Some(db) = state.db() {
        match db.flush() {
            Ok(0) => {}
            Ok(pages) => eprintln!("moptd: schedule database flushed ({pages} pages)"),
            Err(e) => {
                eprintln!("moptd: schedule database flush failed: {e}");
                ok = false;
            }
        }
    }
    ok
}
