//! `mopt-plan-world` — offline populator for the persistent schedule
//! database.
//!
//! Solves every operator of the selected benchmark suites for every
//! selected machine preset and thread count, and writes the canonicalized
//! top-k entries into a [`mopt_db::SpecDb`] directory. A `moptd --db` pointed
//! at the result answers those shapes *cold* — first request, empty cache —
//! from stored entries, without invoking the optimizer.
//!
//! Shapes that canonicalize to a spec already present in the database are
//! skipped (the run is incremental and restartable), and distinct raw
//! shapes sharing one canonical spec are solved only once per run.
//!
//! ```text
//! mopt-plan-world --db specs.db [--suite table1]... [--preset i7]... \
//!                 [--threads 1,4,8] [--classes N] [--multistart N] [--keep-top N]
//! ```
//!
//! Defaults: every suite (`extended`), presets `i7` and `i9`, threads
//! `1,4,8`, full optimizer settings. The paper's point is that analytical
//! solves are cheap; planning the whole benchmark world is minutes, and
//! serving it afterwards is microseconds.

use std::collections::HashSet;
use std::time::Instant;

use conv_spec::{benchmarks, canonicalize_spec, BenchmarkSuite, MachineModel, Spec};
use mopt_core::{MOptOptimizer, OptimizerOptions};
use mopt_graph::builders;
use mopt_service::DbTier;

/// Every schedulable node of a builder network graph (convolutions,
/// poolings, and the fully-connected matmul head), as specs to solve.
fn graph_ops(graph: &mopt_graph::Graph) -> Vec<Spec> {
    let dims = graph.node_output_dims().expect("builder graphs are valid");
    graph.schedulable_nodes().into_iter().filter_map(|id| graph.node_spec(id, &dims)).collect()
}

fn bench_ops(ops: Vec<conv_spec::BenchmarkOp>) -> Vec<Spec> {
    ops.into_iter().map(|op| Spec::Conv(op.shape)).collect()
}

struct Args {
    db: std::path::PathBuf,
    suites: Vec<String>,
    presets: Vec<String>,
    threads: Vec<usize>,
    classes: Option<usize>,
    multistart: Option<usize>,
    keep_top: Option<usize>,
}

fn parse_args() -> Result<Args, String> {
    let mut db = None;
    let mut args = Args {
        db: std::path::PathBuf::new(),
        suites: Vec::new(),
        presets: Vec::new(),
        threads: Vec::new(),
        classes: None,
        multistart: None,
        keep_top: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--db" => db = Some(it.next().ok_or("--db needs a directory path")?.into()),
            "--suite" => args.suites.push(it.next().ok_or("--suite needs a name")?),
            "--preset" => args.presets.push(it.next().ok_or("--preset needs a name")?),
            "--threads" => {
                for part in it.next().ok_or("--threads needs a comma-separated list")?.split(',') {
                    let n: usize =
                        part.trim().parse().map_err(|e| format!("bad --threads `{part}`: {e}"))?;
                    args.threads.push(n.max(1));
                }
            }
            "--classes" => {
                args.classes = Some(
                    it.next()
                        .ok_or("--classes needs a number")?
                        .parse()
                        .map_err(|e| format!("bad --classes: {e}"))?,
                );
            }
            "--multistart" => {
                args.multistart = Some(
                    it.next()
                        .ok_or("--multistart needs a number")?
                        .parse()
                        .map_err(|e| format!("bad --multistart: {e}"))?,
                );
            }
            "--keep-top" => {
                args.keep_top = Some(
                    it.next()
                        .ok_or("--keep-top needs a number")?
                        .parse()
                        .map_err(|e| format!("bad --keep-top: {e}"))?,
                );
            }
            "--help" | "-h" => {
                println!(
                    "mopt-plan-world — pre-populate the MOpt schedule database\n\n\
                     USAGE:\n  mopt-plan-world --db DIR [--suite NAME]... [--preset NAME]...\n  \
                     \x20                [--threads N,N,...] [--classes N] [--multistart N] [--keep-top N]\n\n\
                     Suites: yolo9000, resnet18, mobilenet, mobilenetv2, dilated, table1,\n\
                     resnet50, mbv2full, networks, extended (extended includes the networks).\n\
                     Presets: i7, i9, tiny. Defaults: --suite extended --preset i7 --preset i9 \
                     --threads 1,4,8.\n\
                     Serve the result with: moptd --stdio --db DIR"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}` (try --help)")),
        }
    }
    args.db = db.ok_or("--db DIR is required")?;
    if args.suites.is_empty() {
        args.suites.push("extended".into());
    }
    if args.presets.is_empty() {
        args.presets = vec!["i7".into(), "i9".into()];
    }
    if args.threads.is_empty() {
        args.threads = vec![1, 4, 8];
    }
    Ok(args)
}

fn suite_ops(name: &str) -> Result<Vec<Spec>, String> {
    match name.to_ascii_lowercase().replace(['-', '_', ' '], "").as_str() {
        "yolo9000" | "yolo" => Ok(bench_ops(benchmarks::suite(BenchmarkSuite::Yolo9000))),
        "resnet18" | "resnet" => Ok(bench_ops(benchmarks::suite(BenchmarkSuite::ResNet18))),
        "mobilenet" => Ok(bench_ops(benchmarks::suite(BenchmarkSuite::MobileNet))),
        "mobilenetv2" | "mobilenetv2dw" => {
            Ok(bench_ops(benchmarks::suite(BenchmarkSuite::MobileNetV2)))
        }
        "dilated" | "deeplab" | "deeplabdilated" => {
            Ok(bench_ops(benchmarks::suite(BenchmarkSuite::DilatedDeepLab)))
        }
        "table1" | "all" => Ok(bench_ops(benchmarks::all_operators())),
        // The whole-network graphs: every conv, pooling, and matmul-head
        // spec, so `PlanGraph` over the full network serves from the db
        // tier without a single cold solve.
        "resnet50" => Ok(graph_ops(&builders::resnet50("resnet50"))),
        "mobilenetv2full" | "mbv2full" => {
            Ok(graph_ops(&builders::mobilenet_v2_full("mobilenet-v2")))
        }
        "networks" => {
            let mut ops = graph_ops(&builders::resnet50("resnet50"));
            ops.extend(graph_ops(&builders::mobilenet_v2_full("mobilenet-v2")));
            Ok(ops)
        }
        "extended" => {
            let mut ops = bench_ops(benchmarks::extended_operators());
            ops.extend(graph_ops(&builders::resnet50("resnet50")));
            ops.extend(graph_ops(&builders::mobilenet_v2_full("mobilenet-v2")));
            Ok(ops)
        }
        _ => Err(format!(
            "unknown suite `{name}` (try \"yolo9000\", \"resnet18\", \"mobilenet\", \
             \"mobilenetv2\", \"dilated\", \"table1\", \"resnet50\", \"mbv2full\", \
             \"networks\", \"extended\")"
        )),
    }
}

fn preset(name: &str) -> Result<MachineModel, String> {
    match name.to_ascii_lowercase().replace(['-', '_', ' '], "").as_str() {
        "i79700k" | "i7" | "coffeelake" => Ok(MachineModel::i7_9700k()),
        "i910980xe" | "i9" | "cascadelake" => Ok(MachineModel::i9_10980xe()),
        "tiny" | "tinytest" | "test" => Ok(MachineModel::tiny_test_machine()),
        _ => Err(format!("unknown machine preset `{name}` (try \"i7\", \"i9\", \"tiny\")")),
    }
}

fn main() {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("mopt-plan-world: {message}");
            std::process::exit(2);
        }
    };
    let mut ops: Vec<Spec> = Vec::new();
    for name in &args.suites {
        match suite_ops(name) {
            Ok(mut suite) => ops.append(&mut suite),
            Err(message) => {
                eprintln!("mopt-plan-world: {message}");
                std::process::exit(2);
            }
        }
    }
    let presets: Vec<MachineModel> = match args.presets.iter().map(|p| preset(p)).collect() {
        Ok(presets) => presets,
        Err(message) => {
            eprintln!("mopt-plan-world: {message}");
            std::process::exit(2);
        }
    };
    let tier = match DbTier::open(&args.db) {
        Ok(tier) => tier,
        Err(e) => {
            eprintln!("mopt-plan-world: cannot open database {}: {e}", args.db.display());
            std::process::exit(1);
        }
    };

    let started = Instant::now();
    let mut solved = 0usize;
    let mut skipped = 0usize;
    // One solve per (canonical spec, machine, threads): raw shapes sharing a
    // canonical spec are solved once per thread count; specs stored by an
    // *earlier run* are skipped outright, but a spec first solved in this
    // run still gets its remaining thread counts (each merge can add
    // parallel-fitted candidates to the top-k).
    let mut planned: HashSet<(u64, u64, usize)> = HashSet::new();
    let mut fresh: HashSet<(u64, u64)> = HashSet::new();
    for machine in &presets {
        for &threads in &args.threads {
            let mut options = OptimizerOptions { threads, ..OptimizerOptions::default() };
            if let Some(classes) = args.classes {
                options.max_classes = classes.max(1);
            }
            if let Some(multistart) = args.multistart {
                options.multistart = multistart;
            }
            if let Some(keep_top) = args.keep_top {
                options.keep_top = keep_top.max(1);
            }
            for spec in &ops {
                let (canonical, _) = canonicalize_spec(spec);
                let spec_key = (canonical.fingerprint(), machine.fingerprint());
                if !planned.insert((spec_key.0, spec_key.1, threads)) {
                    skipped += 1;
                    continue;
                }
                if !fresh.contains(&spec_key) {
                    let already = tier
                        .db()
                        .lookup(spec_key.0, spec_key.1)
                        .ok()
                        .flatten()
                        .is_some_and(|entries| !entries.is_empty());
                    if already {
                        skipped += 1;
                        continue;
                    }
                    fresh.insert(spec_key);
                }
                let result = MOptOptimizer::optimize_spec(spec, machine.clone(), options.clone());
                tier.record(spec, machine, threads, &result);
                solved += 1;
            }
        }
    }
    let pages = match tier.flush() {
        Ok(pages) => pages,
        Err(e) => {
            eprintln!("mopt-plan-world: database flush failed: {e}");
            std::process::exit(1);
        }
    };
    let stats = tier.stats();
    println!(
        "mopt-plan-world: {} ops x {} presets x {:?} threads -> {} solves, {} skipped, \
         {} inserts, {} pages flushed in {:.1}s ({})",
        ops.len(),
        presets.len(),
        args.threads,
        solved,
        skipped,
        stats.inserts,
        pages,
        started.elapsed().as_secs_f64(),
        args.db.display(),
    );
    if stats.errors > 0 {
        eprintln!("mopt-plan-world: {} database errors during population", stats.errors);
        std::process::exit(1);
    }
}
