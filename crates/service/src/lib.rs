//! `mopt_service`: the serving layer of the MOpt reproduction.
//!
//! The paper makes tile-size optimization cheap enough to run on demand;
//! this crate makes it cheap enough to *serve*:
//!
//! * [`cache`] — a sharded, thread-safe LRU cache of [`mopt_core::OptimizeResult`]s
//!   keyed by `(shape, machine fingerprint, optimizer options)`, with
//!   hit/miss/eviction counters,
//! * [`persist`] — versioned JSON snapshots so a warm cache survives
//!   process restarts,
//! * [`dbtier`] — the warm tier between the cache and the optimizer: a
//!   persistent, canonicalized top-k schedule database ([`mopt_db`]) whose
//!   stored entries are re-ranked for the request's thread count instead of
//!   re-solved,
//! * [`batch`] — a whole-network planner that dedupes identical layer
//!   shapes and fans the unique solves across a `std::thread` worker pool,
//! * [`graphs`] — a fingerprint-keyed cache of fusion-aware
//!   [`mopt_graph::GraphPlan`]s plus the `graph` section of the `Stats`
//!   reply,
//! * [`singleflight`] — per-key coalescing of duplicate in-flight solves:
//!   N concurrent misses on one fingerprint key share exactly one
//!   computation, and a leader panic releases (without poisoning) every
//!   waiter,
//! * [`metrics`] — per-verb latency histograms, per-verb error counters and
//!   in-flight gauges behind the `Metrics` verb,
//! * [`prometheus`] — text-exposition rendering of those metrics for
//!   `{"Metrics": {"format": "prometheus"}}`,
//! * [`server`] — a JSON-lines request/response protocol (`Optimize`,
//!   `Explain`, `PlanNetwork`, `PlanGraph`, `Stats`, `Save`, `Metrics`,
//!   `Trace`, `Ping`) served over stdin/stdout by the `moptd` binary, with
//!   opt-in end-to-end request tracing ([`mopt_trace`]) threaded through
//!   every tier and a `--slow-ms` slow-request log,
//! * [`eventloop`] — the TCP front end: a non-blocking readiness event
//!   loop (epoll via the vendored [`miniepoll`] shim) that multiplexes
//!   every connection on one thread, supports pipelined requests with
//!   bounded write-buffer backpressure, hands request execution to a small
//!   worker pool, and drains gracefully on shutdown.
//!
//! Shapes on the wire carry optional `dilation` and `groups` fields
//! (defaulting to 1), so the protocol serves depthwise and dilated
//! convolutions while requests and snapshots written before the
//! generalization keep parsing — and keep hitting the same cache entries.
//! See `docs/PROTOCOL.md` at the repository root for the full JSON-lines
//! protocol.
//!
//! # Example
//!
//! ```
//! use conv_spec::{ConvShape, MachineModel};
//! use mopt_core::OptimizerOptions;
//! use mopt_service::{NetworkPlanner, ScheduleCache};
//! use mopt_service::batch::NamedLayer;
//!
//! let cache = ScheduleCache::new(128);
//! let options = OptimizerOptions { max_classes: 1, ..OptimizerOptions::fast() };
//! let planner = NetworkPlanner::new(&cache, MachineModel::tiny_test_machine(), options);
//! let layers = vec![
//!     NamedLayer::conv("conv1", ConvShape::new(1, 8, 4, 3, 3, 10, 10, 1)?),
//!     // A depthwise layer plans through the same cache-keyed pipeline.
//!     NamedLayer::conv("dw1", ConvShape::depthwise(8, 10, 3, 1)),
//! ];
//! let cold = planner.plan(&layers);
//! let warm = planner.plan(&layers);
//! assert_eq!(cold.layers[0].best, warm.layers[0].best);
//! assert!(warm.layers.iter().all(|l| l.from_cache));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod batch;
pub mod cache;
pub mod dbtier;
pub mod eventloop;
pub mod graphs;
pub mod metrics;
pub mod persist;
pub mod prometheus;
pub mod server;
pub mod singleflight;

pub use batch::{NetworkPlan, NetworkPlanner, PlanStats, PlannedLayer};
pub use cache::{CacheKey, CacheStats, ScheduleCache};
pub use dbtier::{DbTier, DbTierStats};
pub use eventloop::{EventLoopServer, ServerConfig, ShutdownHandle};
pub use graphs::{GraphCacheKey, GraphPlanCache, GraphServiceStats};
pub use metrics::{MetricsReport, ServiceMetrics};
pub use persist::{
    load_sharded, load_snapshot, remove_stale_temps, save_sharded, save_snapshot, FlushReport,
    PersistError, Snapshot,
};
pub use server::{
    MachineSpec, Request, Response, ServiceState, ServiceStats, SlowTrace, Tier, MAX_REQUEST_BYTES,
    SLOW_LOG_CAPACITY,
};
pub use singleflight::{FlightBreakdown, FlightStats, SingleFlight};
