//! Whole-network batch planning.
//!
//! Networks repeat shapes (ResNet-18's 12 conv layers contain only 12
//! distinct shapes across many more layer instances, and serving traffic
//! repeats whole networks), so the planner first dedupes layers to unique
//! cache keys, serves what it can from the [`ScheduleCache`], and fans the
//! remaining independent solves across a `std::thread` worker pool — the
//! per-layer problems share nothing, so this is embarrassingly parallel.
//! The result is a [`NetworkPlan`] with one best configuration per layer
//! plus aggregate cost and timing statistics.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use conv_spec::{benchmarks, BenchmarkOp, BenchmarkSuite, ConvShape, MachineModel, Spec};
use mopt_core::{MOptOptimizer, OptimizeResult, OptimizedConfig, OptimizerOptions};
use serde::{Deserialize, Serialize};

use crate::cache::{CacheKey, ScheduleCache};
use crate::dbtier::DbTier;

/// One layer to plan: a display name plus its problem spec.
#[derive(Debug, Clone, PartialEq)]
pub struct NamedLayer {
    /// Display name (e.g. the paper's `"Y0"`, or `"conv3_2"`).
    pub name: String,
    /// The optimization problem (conv, matmul, pooling, or elementwise).
    pub spec: Spec,
}

impl NamedLayer {
    /// A conv layer (the pre-spec constructor shape).
    pub fn conv(name: impl Into<String>, shape: ConvShape) -> Self {
        NamedLayer { name: name.into(), spec: Spec::Conv(shape) }
    }
}

impl From<&BenchmarkOp> for NamedLayer {
    fn from(op: &BenchmarkOp) -> Self {
        NamedLayer { name: op.name.clone(), spec: Spec::Conv(op.shape) }
    }
}

// The wire form mirrors `CacheKey`'s: conv layers keep the legacy flat
// `"shape"` field (pre-spec clients and fixtures parse and serialize
// unchanged), non-conv layers use a tagged `"spec"` field, and parsing
// accepts either spelling.
impl Serialize for NamedLayer {
    fn to_value(&self) -> serde::Value {
        let problem = match &self.spec {
            Spec::Conv(shape) => ("shape".to_string(), shape.to_value()),
            other => ("spec".to_string(), other.to_value()),
        };
        serde::Value::Object(vec![("name".to_string(), self.name.to_value()), problem])
    }
}

impl Deserialize for NamedLayer {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        let pairs =
            v.as_object().ok_or_else(|| serde::DeError::expected("an object", "NamedLayer"))?;
        let spec: Option<Spec> = serde::de_field(pairs, "spec", "NamedLayer")?;
        let spec = match spec {
            Some(spec) => spec,
            None => {
                let shape: Option<ConvShape> = serde::de_field(pairs, "shape", "NamedLayer")?;
                Spec::Conv(shape.ok_or_else(|| {
                    serde::DeError::custom("NamedLayer needs a `spec` or legacy `shape` field")
                })?)
            }
        };
        Ok(NamedLayer { name: serde::de_field(pairs, "name", "NamedLayer")?, spec })
    }
}

/// The plan for one layer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlannedLayer {
    /// The layer's display name.
    pub name: String,
    /// The layer's shape.
    pub shape: ConvShape,
    /// The best configuration found (MOpt-1).
    pub best: OptimizedConfig,
    /// Whether the result came from the cache (vs. a fresh solve).
    pub from_cache: bool,
}

/// Aggregate statistics for one planning run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlanStats {
    /// Layers planned.
    pub layers: usize,
    /// Unique cache keys among them.
    pub unique_shapes: usize,
    /// Unique keys served from the cache.
    pub cache_hits: usize,
    /// Unique keys served from the schedule database (stored top-k
    /// re-ranked — no optimizer run). Always 0 without an attached db.
    pub db_hits: usize,
    /// Unique keys solved fresh.
    pub solves: usize,
    /// Sum of the layers' predicted bottleneck costs (cycles).
    pub total_predicted_cost: f64,
    /// Sum of per-solve optimizer seconds (CPU cost of the fresh solves).
    pub solve_seconds: f64,
    /// Wall-clock seconds for the whole planning call.
    pub wall_seconds: f64,
    /// Worker threads used for the fresh solves.
    pub workers: usize,
}

/// The plan for a whole network.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetworkPlan {
    /// Per-layer plans, in request order.
    pub layers: Vec<PlannedLayer>,
    /// Aggregate statistics.
    pub stats: PlanStats,
}

impl NetworkPlan {
    /// The planned layer with the largest predicted cost (the network's
    /// projected bottleneck), if any layers were planned.
    pub fn bottleneck(&self) -> Option<&PlannedLayer> {
        self.layers.iter().max_by(|a, b| {
            a.best
                .predicted_cost
                .partial_cmp(&b.best.predicted_cost)
                .unwrap_or(std::cmp::Ordering::Equal)
        })
    }
}

/// Plans whole networks against one machine model, memoizing through a
/// shared [`ScheduleCache`].
pub struct NetworkPlanner<'a> {
    cache: &'a ScheduleCache,
    db: Option<&'a DbTier>,
    machine: MachineModel,
    options: OptimizerOptions,
    workers: usize,
}

impl<'a> NetworkPlanner<'a> {
    /// A planner for `machine` with `options`, using as many worker threads
    /// as the host exposes (capped at 8).
    pub fn new(cache: &'a ScheduleCache, machine: MachineModel, options: OptimizerOptions) -> Self {
        let workers = std::thread::available_parallelism().map_or(4, |n| n.get()).min(8);
        NetworkPlanner { cache, db: None, machine, options, workers }
    }

    /// Attach (or detach) the persistent schedule database: cold layers
    /// are answered from stored re-ranked entries before the optimizer,
    /// and fresh solves are written through.
    pub fn with_db(mut self, db: Option<&'a DbTier>) -> Self {
        self.db = db;
        self
    }

    /// Override the worker-pool size (values are clamped to at least 1).
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Plan one of the paper's Table-1 suites.
    pub fn plan_suite(&self, suite: BenchmarkSuite) -> NetworkPlan {
        self.plan_ops(&benchmarks::suite(suite))
    }

    /// Plan all 32 Table-1 operators.
    pub fn plan_table1(&self) -> NetworkPlan {
        self.plan_ops(&benchmarks::all_operators())
    }

    /// Plan a list of benchmark operators.
    pub fn plan_ops(&self, ops: &[BenchmarkOp]) -> NetworkPlan {
        let layers: Vec<NamedLayer> = ops.iter().map(NamedLayer::from).collect();
        self.plan(&layers)
    }

    /// Plan an explicit layer list.
    ///
    /// Identical shapes are solved once; every layer gets its plan in
    /// request order. The result is deterministic: it equals what
    /// sequential per-layer [`MOptOptimizer::optimize`] calls would produce
    /// (the solver is seeded, and solves are independent).
    pub fn plan(&self, layers: &[NamedLayer]) -> NetworkPlan {
        let started = Instant::now();

        // Dedupe request order into unique keys; `layer_slots[i]` is the
        // unique-key index for layer `i`.
        let mut unique: Vec<CacheKey> = Vec::new();
        let mut slot_of: std::collections::HashMap<CacheKey, usize> =
            std::collections::HashMap::new();
        let layer_slots: Vec<usize> = layers
            .iter()
            .map(|l| {
                let key = CacheKey::new(l.spec, &self.machine, &self.options);
                *slot_of.entry(key.clone()).or_insert_with(|| {
                    unique.push(key);
                    unique.len() - 1
                })
            })
            .collect();

        // Split into warm hits and cold solves.
        let mut results: Vec<Option<(OptimizeResult, bool)>> = Vec::new();
        let mut to_solve: Vec<(usize, CacheKey)> = Vec::new();
        for (i, key) in unique.iter().enumerate() {
            match self.cache.get(key) {
                Some(result) => results.push(Some((result, true))),
                None => {
                    results.push(None);
                    to_solve.push((i, key.clone()));
                }
            }
        }
        let cache_hits = unique.len() - to_solve.len();

        // Fan the cold solves across the worker pool. Each cold key first
        // tries the schedule database (a stored top-k re-ranked for this
        // request's thread count — no optimizer run); only a db miss pays
        // for a fresh solve, which is then written through.
        let solved: Mutex<Vec<(usize, OptimizeResult)>> = Mutex::new(Vec::new());
        let next_job = AtomicUsize::new(0);
        let db_hit_count = AtomicUsize::new(0);
        let workers = self.workers.min(to_solve.len()).max(1);
        if !to_solve.is_empty() {
            std::thread::scope(|scope| {
                for _ in 0..workers {
                    scope.spawn(|| loop {
                        let j = next_job.fetch_add(1, Ordering::Relaxed);
                        let Some((slot, key)) = to_solve.get(j) else { break };
                        let served = self
                            .db
                            .and_then(|db| db.lookup(&key.spec, &self.machine, &self.options));
                        let result = match served {
                            Some(result) => {
                                db_hit_count.fetch_add(1, Ordering::Relaxed);
                                result
                            }
                            None => {
                                let result = MOptOptimizer::optimize_spec(
                                    &key.spec,
                                    self.machine.clone(),
                                    self.options.clone(),
                                );
                                if let Some(db) = self.db {
                                    db.record(
                                        &key.spec,
                                        &self.machine,
                                        self.options.threads,
                                        &result,
                                    );
                                }
                                result
                            }
                        };
                        self.cache.insert(key.clone(), result.clone());
                        crate::cache::lock_recover(&solved).push((*slot, result));
                    });
                }
            });
        }
        let db_hits = db_hit_count.load(Ordering::Relaxed);
        for (slot, result) in solved.into_inner().unwrap_or_else(|e| e.into_inner()) {
            results[slot] = Some((result, false));
        }

        // Assemble per-layer plans in request order.
        let mut solve_seconds = 0.0;
        let mut total_predicted_cost = 0.0;
        let planned: Vec<PlannedLayer> = layers
            .iter()
            .zip(&layer_slots)
            .map(|(layer, &slot)| {
                let (result, from_cache) =
                    results[slot].as_ref().expect("every unique key resolved");
                let best = result.best().clone();
                total_predicted_cost += best.predicted_cost;
                PlannedLayer {
                    name: layer.name.clone(),
                    shape: layer.spec.embedded_conv_shape(),
                    best,
                    from_cache: *from_cache,
                }
            })
            .collect();
        // Count each fresh solve's optimizer time once (not per duplicate).
        for (slot, _) in &to_solve {
            if let Some((result, _)) = &results[*slot] {
                solve_seconds += result.optimize_seconds;
            }
        }

        NetworkPlan {
            layers: planned,
            stats: PlanStats {
                layers: layers.len(),
                unique_shapes: unique.len(),
                cache_hits,
                db_hits,
                solves: to_solve.len() - db_hits,
                total_predicted_cost,
                solve_seconds,
                wall_seconds: started.elapsed().as_secs_f64(),
                workers,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_options() -> OptimizerOptions {
        OptimizerOptions { max_classes: 2, ..OptimizerOptions::fast() }
    }

    fn tiny_layers() -> Vec<NamedLayer> {
        let shapes = [
            ConvShape::new(1, 8, 4, 3, 3, 10, 10, 1).unwrap(),
            ConvShape::new(1, 16, 8, 1, 1, 8, 8, 1).unwrap(),
            ConvShape::new(1, 8, 4, 3, 3, 10, 10, 1).unwrap(), // duplicate of #0
            ConvShape::new(1, 4, 4, 3, 3, 12, 12, 2).unwrap(),
        ];
        shapes
            .iter()
            .enumerate()
            .map(|(i, &shape)| NamedLayer::conv(format!("L{i}"), shape))
            .collect()
    }

    #[test]
    fn dedupes_identical_shapes() {
        let cache = ScheduleCache::new(64);
        let planner =
            NetworkPlanner::new(&cache, MachineModel::tiny_test_machine(), fast_options())
                .with_workers(2);
        let plan = planner.plan(&tiny_layers());
        assert_eq!(plan.stats.layers, 4);
        assert_eq!(plan.stats.unique_shapes, 3);
        assert_eq!(plan.stats.solves, 3);
        assert_eq!(plan.stats.cache_hits, 0);
        // Duplicate layers get identical plans.
        assert_eq!(plan.layers[0].best, plan.layers[2].best);
        assert!(plan.bottleneck().is_some());
    }

    #[test]
    fn second_run_is_all_cache_hits() {
        let cache = ScheduleCache::new(64);
        let planner =
            NetworkPlanner::new(&cache, MachineModel::tiny_test_machine(), fast_options())
                .with_workers(2);
        let cold = planner.plan(&tiny_layers());
        let warm = planner.plan(&tiny_layers());
        assert_eq!(warm.stats.cache_hits, 3);
        assert_eq!(warm.stats.solves, 0);
        assert!(warm.layers.iter().all(|l| l.from_cache));
        assert!(cold.layers.iter().all(|l| !l.from_cache));
        for (a, b) in cold.layers.iter().zip(&warm.layers) {
            assert_eq!(a.best, b.best);
        }
    }

    #[test]
    fn parallel_plan_matches_sequential_optimization() {
        let cache = ScheduleCache::new(64);
        let machine = MachineModel::tiny_test_machine();
        let options = fast_options();
        let layers = tiny_layers();
        let plan = NetworkPlanner::new(&cache, machine.clone(), options.clone())
            .with_workers(4)
            .plan(&layers);
        for layer in &plan.layers {
            let sequential =
                MOptOptimizer::new(layer.shape, machine.clone(), options.clone()).optimize();
            assert_eq!(
                layer.best,
                *sequential.best(),
                "parallel plan for {} diverged from a sequential solve",
                layer.name
            );
        }
    }

    #[test]
    fn worker_count_does_not_change_results() {
        let machine = MachineModel::tiny_test_machine();
        let options = fast_options();
        let layers = tiny_layers();
        let cache1 = ScheduleCache::new(64);
        let plan1 = NetworkPlanner::new(&cache1, machine.clone(), options.clone())
            .with_workers(1)
            .plan(&layers);
        let cache4 = ScheduleCache::new(64);
        let plan4 = NetworkPlanner::new(&cache4, machine, options).with_workers(4).plan(&layers);
        for (a, b) in plan1.layers.iter().zip(&plan4.layers) {
            assert_eq!(a.best, b.best);
        }
    }

    #[test]
    fn db_backed_planner_skips_the_optimizer_on_a_cold_cache() {
        let dir = std::env::temp_dir().join(format!("mopt-batch-db-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let machine = MachineModel::tiny_test_machine();
        let options = fast_options();
        let layers = tiny_layers();
        let db = crate::dbtier::DbTier::open(&dir).unwrap();
        let cache = ScheduleCache::new(64);
        let cold = NetworkPlanner::new(&cache, machine.clone(), options.clone())
            .with_db(Some(&db))
            .with_workers(2)
            .plan(&layers);
        assert_eq!(cold.stats.solves, 3);
        assert_eq!(cold.stats.db_hits, 0);
        db.flush().unwrap();
        // A cold cache over the same db: every unique layer is served from
        // stored entries — zero optimizer runs, identical best schedules.
        let db = crate::dbtier::DbTier::open(&dir).unwrap();
        let fresh = ScheduleCache::new(64);
        let warm = NetworkPlanner::new(&fresh, machine, options)
            .with_db(Some(&db))
            .with_workers(2)
            .plan(&layers);
        assert_eq!(warm.stats.db_hits, 3);
        assert_eq!(warm.stats.solves, 0);
        for (a, b) in cold.layers.iter().zip(&warm.layers) {
            assert_eq!(a.best, b.best);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn named_layer_wire_form_is_legacy_for_conv_and_tagged_for_specs() {
        let conv = NamedLayer::conv("Y0", ConvShape::new(1, 8, 4, 3, 3, 10, 10, 1).unwrap());
        let conv_json = serde_json::to_string(&conv).unwrap();
        assert!(conv_json.contains("\"shape\""), "conv layers keep the flat legacy field");
        assert!(!conv_json.contains("\"spec\""));
        assert_eq!(serde_json::from_str::<NamedLayer>(&conv_json).unwrap(), conv);

        let fc = NamedLayer { name: "fc".to_string(), spec: Spec::matmul(1000, 1, 2048) };
        let fc_json = serde_json::to_string(&fc).unwrap();
        assert!(fc_json.contains("\"spec\""));
        assert_eq!(serde_json::from_str::<NamedLayer>(&fc_json).unwrap(), fc);
    }

    #[test]
    fn plans_mixed_conv_and_matmul_layers() {
        let cache = ScheduleCache::new(64);
        let machine = MachineModel::tiny_test_machine();
        let planner = NetworkPlanner::new(&cache, machine.clone(), fast_options()).with_workers(2);
        let layers = vec![
            NamedLayer::conv("conv", ConvShape::new(1, 8, 4, 3, 3, 10, 10, 1).unwrap()),
            NamedLayer { name: "fc".to_string(), spec: Spec::matmul(40, 10, 16) },
        ];
        let plan = planner.plan(&layers);
        assert_eq!(plan.stats.solves, 2);
        // The matmul plan equals a direct spec solve, on its embedded shape.
        let direct = MOptOptimizer::optimize_spec(&layers[1].spec, machine, fast_options());
        assert_eq!(plan.layers[1].best, *direct.best());
        assert_eq!(plan.layers[1].shape, layers[1].spec.embedded_conv_shape());
    }

    #[test]
    fn plan_suite_covers_every_layer() {
        let cache = ScheduleCache::new(64);
        // Scaled-down machine + fast options keep this a functional test.
        let mut options = fast_options();
        options.max_classes = 1;
        let planner = NetworkPlanner::new(&cache, MachineModel::tiny_test_machine(), options);
        let ops = benchmarks::scaled_operators(6, 8);
        let resnet: Vec<BenchmarkOp> =
            ops.into_iter().filter(|op| op.suite == BenchmarkSuite::ResNet18).collect();
        let plan = planner.plan_ops(&resnet);
        assert_eq!(plan.stats.layers, 12);
        assert!(plan.stats.unique_shapes <= 12);
        for (op, layer) in resnet.iter().zip(&plan.layers) {
            assert_eq!(op.name, layer.name);
            assert!(layer.best.config.validate(&op.shape).is_ok());
        }
    }
}
