//! Single-flight solve coalescing: N concurrent misses on one key share
//! exactly one computation.
//!
//! The optimizer is the expensive tier of the serving stack — a cold solve
//! takes orders of magnitude longer than a cache read — so the worst traffic
//! pattern a fleet can produce is a *thundering herd*: many clients asking
//! for the same cold shape at once, each paying the full solve. This module
//! puts a per-key slot in front of any fallible computation: the first
//! caller (the **leader**) runs it, every concurrent duplicate (a
//! **waiter**) parks on the slot and receives a clone of the leader's
//! result.
//!
//! Failure semantics are the delicate part and are pinned by property tests:
//!
//! * a panic in the leader's closure is caught and propagated to **every**
//!   waiter as [`FlightError`] — nobody hangs, and the panic does not
//!   escape into the server loop;
//! * the slot is removed *before* the result is published, so a failed
//!   flight never poisons the key — the next caller after completion starts
//!   a fresh generation and retries;
//! * each generation runs its closure exactly once, no matter how many
//!   callers pile onto the slot.

use std::collections::HashMap;
use std::hash::Hash;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

use mopt_trace::{LatencyHistogram, LatencySnapshot};
use serde::{Deserialize, Serialize};

use crate::cache::lock_recover;

/// How a call was served.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// This caller ran the computation.
    Led,
    /// This caller parked on an in-flight computation and shared its result.
    Coalesced,
}

/// Why a flight failed: the leader's closure panicked.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlightError {
    /// The panic payload, when it was a string.
    pub message: String,
}

impl std::fmt::Display for FlightError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "in-flight computation panicked: {}", self.message)
    }
}

impl std::error::Error for FlightError {}

/// Cumulative single-flight counters, reported under `Stats.flight`.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FlightStats {
    /// Calls that ran the computation (one per generation).
    pub led: u64,
    /// Calls that shared an in-flight leader's result instead of computing.
    pub coalesced: u64,
    /// Generations that ended in a propagated panic (each counted once, no
    /// matter how many waiters received the error).
    pub errors: u64,
    /// Keys with a computation currently in flight.
    pub in_flight: u64,
    /// How long coalesced callers parked on a leader's slot before its
    /// result was published. Leaders record nothing here — their time is in
    /// the per-verb latency histograms. `None` only in documents written by
    /// builds that predate the field.
    pub waiter_wait: Option<LatencySnapshot>,
}

/// Flight counters of both coalescing layers, reported under `Stats.flight`
/// and inside `Metrics`.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FlightBreakdown {
    /// The single-flight group in front of the schedule cache (`Optimize`
    /// cold misses).
    pub optimize: FlightStats,
    /// The single-flight group in front of the graph-plan cache
    /// (`PlanGraph` cold misses).
    pub graph: FlightStats,
}

enum SlotState<V> {
    Pending,
    Done(Result<V, FlightError>),
}

struct Slot<V> {
    state: Mutex<SlotState<V>>,
    cond: Condvar,
}

impl<V: Clone> Slot<V> {
    fn new() -> Self {
        Slot { state: Mutex::new(SlotState::Pending), cond: Condvar::new() }
    }

    fn publish(&self, result: Result<V, FlightError>) {
        *lock_recover(&self.state) = SlotState::Done(result);
        self.cond.notify_all();
    }

    fn wait(&self) -> Result<V, FlightError> {
        let mut state = lock_recover(&self.state);
        loop {
            match &*state {
                SlotState::Done(result) => return result.clone(),
                SlotState::Pending => {
                    state = self.cond.wait(state).unwrap_or_else(|poisoned| poisoned.into_inner());
                }
            }
        }
    }
}

/// A keyed single-flight group. All methods take `&self`; share via `Arc`
/// or embed in shared server state.
pub struct SingleFlight<K, V> {
    slots: Mutex<HashMap<K, Arc<Slot<V>>>>,
    led: AtomicU64,
    coalesced: AtomicU64,
    errors: AtomicU64,
    waiter_wait: LatencyHistogram,
}

impl<K: Eq + Hash + Clone, V: Clone> Default for SingleFlight<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Eq + Hash + Clone, V: Clone> SingleFlight<K, V> {
    /// An empty group.
    pub fn new() -> Self {
        SingleFlight {
            slots: Mutex::new(HashMap::new()),
            led: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            waiter_wait: LatencyHistogram::default(),
        }
    }

    /// Run `compute` under single-flight semantics for `key`.
    ///
    /// If no computation for `key` is in flight, this caller leads: it runs
    /// `compute` (with the slot registered so duplicates coalesce), then
    /// releases every waiter with a clone of the result. If one *is* in
    /// flight, this caller blocks until the leader finishes and shares its
    /// result. A panicking `compute` is caught: leader and waiters all
    /// receive `Err(FlightError)`, and the key is clean for the next caller.
    pub fn run<F: FnOnce() -> V>(&self, key: K, compute: F) -> (Role, Result<V, FlightError>) {
        let slot = {
            let mut slots = lock_recover(&self.slots);
            if let Some(existing) = slots.get(&key) {
                let existing = Arc::clone(existing);
                drop(slots);
                self.coalesced.fetch_add(1, Ordering::Relaxed);
                let parked = Instant::now();
                let result = existing.wait();
                self.waiter_wait.record(parked.elapsed());
                return (Role::Coalesced, result);
            }
            let slot = Arc::new(Slot::new());
            slots.insert(key.clone(), Arc::clone(&slot));
            slot
        };
        self.led.fetch_add(1, Ordering::Relaxed);
        let result = catch_unwind(AssertUnwindSafe(compute)).map_err(|payload| {
            self.errors.fetch_add(1, Ordering::Relaxed);
            FlightError { message: panic_message(payload.as_ref()) }
        });
        // Remove the slot BEFORE publishing: a caller that arrives after the
        // result exists must start a fresh generation (retry on error, fresh
        // compute on success — the cache in front of this layer is what makes
        // repeat successes cheap), never observe a stale slot.
        lock_recover(&self.slots).remove(&key);
        slot.publish(result.clone());
        (Role::Led, result)
    }

    /// Snapshot of the counters.
    pub fn stats(&self) -> FlightStats {
        FlightStats {
            led: self.led.load(Ordering::Relaxed),
            coalesced: self.coalesced.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            in_flight: lock_recover(&self.slots).len() as u64,
            waiter_wait: Some(self.waiter_wait.snapshot()),
        }
    }

    /// Snapshot of the waiter-wait histogram alone (for exposition formats
    /// that render histograms separately from counters).
    pub fn waiter_wait(&self) -> LatencySnapshot {
        self.waiter_wait.snapshot()
    }

    /// Keys with a computation currently in flight.
    pub fn in_flight(&self) -> usize {
        lock_recover(&self.slots).len()
    }
}

impl<K, V> std::fmt::Debug for SingleFlight<K, V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SingleFlight")
            .field("led", &self.led.load(Ordering::Relaxed))
            .field("coalesced", &self.coalesced.load(Ordering::Relaxed))
            .field("errors", &self.errors.load(Ordering::Relaxed))
            .finish()
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Barrier;
    use std::time::Duration;

    #[test]
    fn duplicate_concurrent_calls_share_one_computation() {
        let flight: Arc<SingleFlight<u32, u64>> = Arc::new(SingleFlight::new());
        let runs = Arc::new(AtomicUsize::new(0));
        let gate = Arc::new(Barrier::new(8));
        let results: Vec<(Role, u64)> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    let (flight, runs, gate) = (flight.clone(), runs.clone(), gate.clone());
                    scope.spawn(move || {
                        gate.wait();
                        let (role, result) = flight.run(5, || {
                            runs.fetch_add(1, Ordering::SeqCst);
                            // Hold the flight open long enough for every
                            // sibling to pile on.
                            std::thread::sleep(Duration::from_millis(100));
                            777
                        });
                        (role, result.unwrap())
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert_eq!(runs.load(Ordering::SeqCst), 1, "exactly one closure run");
        assert!(results.iter().all(|(_, v)| *v == 777));
        let leaders = results.iter().filter(|(role, _)| *role == Role::Led).count();
        assert_eq!(leaders, 1);
        let stats = flight.stats();
        assert_eq!((stats.led, stats.coalesced, stats.errors, stats.in_flight), (1, 7, 0, 0));
        // Every waiter's park time is in the histogram; the leader's is not.
        let waits = stats.waiter_wait.expect("stats() always snapshots the histogram");
        assert_eq!(waits.count, 7);
        assert!(
            waits.max_micros >= 50_000,
            "waiters parked across most of the 100 ms flight, got {} µs",
            waits.max_micros
        );
    }

    #[test]
    fn distinct_keys_run_independently() {
        let flight: SingleFlight<u32, u32> = SingleFlight::new();
        let (role_a, a) = flight.run(1, || 10);
        let (role_b, b) = flight.run(2, || 20);
        assert_eq!((role_a, role_b), (Role::Led, Role::Led));
        assert_eq!((a.unwrap(), b.unwrap()), (10, 20));
    }

    #[test]
    fn sequential_calls_each_lead_a_fresh_generation() {
        // No cache in front here: single-flight only dedupes *concurrent*
        // work. Two sequential calls are two generations.
        let flight: SingleFlight<u32, u32> = SingleFlight::new();
        let mut runs = 0;
        let (_, first) = flight.run(9, || {
            runs += 1;
            runs
        });
        let (_, second) = flight.run(9, || {
            runs += 1;
            runs
        });
        assert_eq!((first.unwrap(), second.unwrap()), (1, 2));
        assert_eq!(flight.stats().led, 2);
    }

    #[test]
    fn panic_propagates_to_every_waiter_and_does_not_poison_the_key() {
        let flight: Arc<SingleFlight<u32, u32>> = Arc::new(SingleFlight::new());
        let gate = Arc::new(Barrier::new(4));
        let outcomes: Vec<(Role, Result<u32, FlightError>)> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let (flight, gate) = (flight.clone(), gate.clone());
                    scope.spawn(move || {
                        gate.wait();
                        flight.run(3, || {
                            std::thread::sleep(Duration::from_millis(100));
                            panic!("solver exploded");
                        })
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        // Every caller — leader included — got the error, nobody hung, and
        // the panic did not cross the API boundary.
        for (_, result) in &outcomes {
            let err = result.as_ref().expect_err("all callers see the panic");
            assert!(err.message.contains("solver exploded"));
        }
        let stats = flight.stats();
        assert_eq!(stats.led, 1);
        assert_eq!(stats.coalesced, 3);
        assert_eq!(stats.errors, 1, "one generation failed, counted once");
        assert_eq!(stats.in_flight, 0, "the slot is gone");
        // The key is clean: the next call leads and succeeds.
        let (role, value) = flight.run(3, || 99);
        assert_eq!(role, Role::Led);
        assert_eq!(value.unwrap(), 99);
    }

    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// Random interleavings of concurrent callers over a small key space,
        /// some generations panicking: the group never deadlocks (the whole
        /// schedule completes), each caller observes either a success or a
        /// propagated error (never a hang, never an escaped panic), closure
        /// runs match led-count exactly (once per generation), and error
        /// generations release all of their waiters.
        #[test]
        fn random_interleavings_never_deadlock_or_double_run(
            seed in 0u64..1_000_000,
            threads in 2usize..9,
            keys in 1u32..4,
        ) {
            let flight: Arc<SingleFlight<u32, u64>> = Arc::new(SingleFlight::new());
            let runs = Arc::new(AtomicUsize::new(0));
            let completions = Arc::new(AtomicUsize::new(0));
            let calls_per_thread = 6usize;
            std::thread::scope(|scope| {
                for t in 0..threads {
                    let (flight, runs, completions) = (flight.clone(), runs.clone(), completions.clone());
                    scope.spawn(move || {
                        // Deterministic per-thread schedule from the seed.
                        let mut x = seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(t as u64 + 1);
                        for _ in 0..calls_per_thread {
                            x ^= x << 13; x ^= x >> 7; x ^= x << 17;
                            let key = (x % keys as u64) as u32;
                            let delay_us = x % 300;
                            let should_panic = x % 5 == 0;
                            let (_, result) = flight.run(key, || {
                                runs.fetch_add(1, Ordering::SeqCst);
                                std::thread::sleep(Duration::from_micros(delay_us));
                                if should_panic {
                                    panic!("injected fault");
                                }
                                u64::from(key)
                            });
                            match result {
                                Ok(v) => assert_eq!(v, u64::from(key)),
                                Err(e) => assert!(e.message.contains("injected fault")),
                            }
                            completions.fetch_add(1, Ordering::SeqCst);
                        }
                    });
                }
            });
            let stats = flight.stats();
            // Every call completed (no deadlock) and is accounted for.
            prop_assert_eq!(completions.load(Ordering::SeqCst), threads * calls_per_thread);
            prop_assert_eq!(stats.led + stats.coalesced, (threads * calls_per_thread) as u64);
            // The closure ran exactly once per generation.
            prop_assert_eq!(runs.load(Ordering::SeqCst) as u64, stats.led);
            // Nothing is left in flight: error results released all waiters.
            prop_assert_eq!(stats.in_flight, 0);
        }
    }
}
