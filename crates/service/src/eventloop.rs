//! The non-blocking TCP front end: a readiness event loop over the vendored
//! [`miniepoll`] shim.
//!
//! The previous `moptd` spent one OS thread per connection, blocked in
//! `read(2)` — N idle clients pinned N stacks, and a slow reader could park
//! a thread mid-`write(2)` forever. This module replaces that with the
//! classic readiness design:
//!
//! * **one loop thread** owns every socket. All reads, writes, accepts, and
//!   connection state live here; nothing else touches an fd.
//! * **a small worker pool** executes requests. The loop never runs a solve:
//!   parsed request lines are handed to workers over a channel, completed
//!   responses come back over a completion queue, and a [`miniepoll::Waker`]
//!   interrupts the blocked `wait` so replies flush promptly.
//! * **pipelining with per-connection order.** A client may write many
//!   request lines back-to-back; the loop parses them all, executes them
//!   one at a time per connection (concurrency comes from *other*
//!   connections — which is exactly what the single-flight layer coalesces),
//!   and responses always come back in request order.
//! * **backpressure, both ways.** A request line larger than
//!   [`MAX_REQUEST_BYTES`] switches the connection into a constant-memory
//!   drain mode that discards bytes up to the next newline and answers with
//!   an `Error` (the same contract as the stdio server). A client that
//!   stops *reading* accumulates its responses in a bounded write buffer;
//!   at the high-water mark the loop simply stops reading further requests
//!   from that connection until the buffer drains — slow consumers throttle
//!   themselves, never the daemon.
//! * **graceful drain.** [`ShutdownHandle::shutdown`] stops the accept loop
//!   and all request reading, lets every in-flight and already-pipelined
//!   request finish, flushes each connection's responses, then returns from
//!   [`EventLoopServer::run`] so the caller can persist a final snapshot. A
//!   connection that refuses to drain (a peer that never reads) is
//!   force-closed after [`ServerConfig::drain_grace`].

use std::collections::{HashMap, VecDeque};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::os::unix::io::AsRawFd;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

use miniepoll::{Interest, Poller, Waker};

use crate::cache::lock_recover;
use crate::server::{Response, ServiceState, MAX_REQUEST_BYTES};

/// Event-loop tunables.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads executing requests (0 = available parallelism, capped
    /// at 8).
    pub workers: usize,
    /// How long a graceful drain waits for unflushed connections before
    /// force-closing them.
    pub drain_grace: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig { workers: 0, drain_grace: Duration::from_secs(5) }
    }
}

impl ServerConfig {
    fn effective_workers(&self) -> usize {
        if self.workers > 0 {
            return self.workers;
        }
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(2).min(8)
    }
}

/// Requests the event loop stop accepting, drain, and exit. Obtain via
/// [`EventLoopServer::shutdown_handle`]; clone freely.
#[derive(Debug, Clone)]
pub struct ShutdownHandle {
    flag: Arc<AtomicBool>,
    waker: Arc<Waker>,
}

impl ShutdownHandle {
    /// Begin a graceful drain: stop accepting and reading, finish in-flight
    /// work, flush responses, then let [`EventLoopServer::run`] return.
    /// Idempotent and callable from any thread.
    pub fn shutdown(&self) {
        self.flag.store(true, Ordering::Release);
        self.waker.wake();
    }

    /// Whether shutdown has been requested.
    pub fn is_shutdown(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }
}

/// One request dispatched to the worker pool.
struct Job {
    token: u64,
    line: String,
    /// When the line left the connection's pipeline for the worker queue —
    /// the queue wait up to the worker's dequeue is attributed to the
    /// request's trace.
    enqueued: Instant,
}

/// A parsed item waiting in a connection's pipeline.
enum Pending {
    /// A complete request line, to be executed by a worker.
    Line(String),
    /// Marks where an oversized line sat in the request sequence; yields the
    /// cap-exceeded `Error` response at its ordered position.
    Oversized,
}

/// A write buffer with a flush cursor (compacts when fully flushed).
#[derive(Default)]
struct WriteBuf {
    buf: Vec<u8>,
    pos: usize,
}

impl WriteBuf {
    fn pending(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn push_line(&mut self, line: &str) {
        self.buf.extend_from_slice(line.as_bytes());
        self.buf.push(b'\n');
    }

    fn unflushed(&self) -> &[u8] {
        &self.buf[self.pos..]
    }

    fn advance(&mut self, n: usize) {
        self.pos += n;
        if self.pos == self.buf.len() {
            self.buf.clear();
            self.pos = 0;
        }
    }
}

struct Connection<'m> {
    stream: TcpStream,
    read_buf: Vec<u8>,
    write_buf: WriteBuf,
    pipeline: VecDeque<Pending>,
    /// How far into `read_buf` the newline search has already looked, so a
    /// line arriving in many chunks is scanned once, not once per chunk.
    scan_from: usize,
    /// A request from this connection is currently on a worker.
    busy: bool,
    /// Discarding bytes up to the next newline after an oversized line.
    draining_oversized: bool,
    peer_eof: bool,
    dead: bool,
    interest: Interest,
    /// Whether the fd is currently registered with the poller. An fd with
    /// nothing to wait for (peer gone or backpressured, nothing to write) is
    /// deregistered entirely — `EPOLLHUP` is delivered regardless of the
    /// requested mask, so leaving a hung-up fd registered while its request
    /// is still on a worker would spin the loop at 100% CPU.
    registered: bool,
    _guard: crate::metrics::InFlightGuard<'m>,
}

/// Stop reading new requests when a connection's unflushed responses exceed
/// this (the existing request cap doubles as the response high-water mark).
const WRITE_HIGH_WATER: usize = MAX_REQUEST_BYTES;
/// Cap on parsed-but-unexecuted pipelined requests per connection.
const MAX_PIPELINED: usize = 1024;

const LISTENER_TOKEN: u64 = 0;
const WAKER_TOKEN: u64 = 1;
const FIRST_CONN_TOKEN: u64 = 2;

impl Connection<'_> {
    fn paused(&self) -> bool {
        self.write_buf.pending() >= WRITE_HIGH_WATER || self.pipeline.len() >= MAX_PIPELINED
    }

    /// Whether every accepted request has been answered and flushed.
    fn drained(&self) -> bool {
        !self.busy && self.pipeline.is_empty() && self.write_buf.pending() == 0
    }

    fn desired_interest(&self, shutting_down: bool) -> Interest {
        Interest {
            readable: !self.peer_eof && !shutting_down && !self.paused(),
            writable: self.write_buf.pending() > 0,
        }
    }
}

fn is_disconnect(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::BrokenPipe
            | std::io::ErrorKind::ConnectionReset
            | std::io::ErrorKind::ConnectionAborted
            | std::io::ErrorKind::NotConnected
            | std::io::ErrorKind::UnexpectedEof
    )
}

fn oversized_reply() -> String {
    serde_json::to_string(&Response::Error {
        message: format!(
            "request line exceeds the {} MiB limit",
            MAX_REQUEST_BYTES / (1024 * 1024)
        ),
    })
    .expect("error response serializes")
}

/// The event-loop TCP server. Bind, optionally grab a [`ShutdownHandle`],
/// then [`run`](Self::run) (which blocks until shutdown + drain).
pub struct EventLoopServer {
    state: Arc<ServiceState>,
    listener: TcpListener,
    poller: Poller,
    waker: Arc<Waker>,
    shutdown: Arc<AtomicBool>,
    config: ServerConfig,
}

impl EventLoopServer {
    /// Bind `addr` and prepare the loop (listener and waker registered, no
    /// thread started yet).
    pub fn bind<A: ToSocketAddrs>(
        state: Arc<ServiceState>,
        addr: A,
        config: ServerConfig,
    ) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        state.set_configured_workers(config.effective_workers());
        let poller = Poller::new()?;
        let waker = Arc::new(Waker::new()?);
        poller.register(listener.as_raw_fd(), LISTENER_TOKEN, Interest::READABLE)?;
        poller.register(waker.fd(), WAKER_TOKEN, Interest::READABLE)?;
        Ok(EventLoopServer {
            state,
            listener,
            poller,
            waker,
            shutdown: Arc::new(AtomicBool::new(false)),
            config,
        })
    }

    /// The bound address (use after binding port 0).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// A handle that can stop the loop from another thread.
    pub fn shutdown_handle(&self) -> ShutdownHandle {
        ShutdownHandle { flag: Arc::clone(&self.shutdown), waker: Arc::clone(&self.waker) }
    }

    /// Run the loop on the calling thread until a graceful drain completes.
    /// Worker threads are spawned here and joined before returning.
    pub fn run(self) -> std::io::Result<()> {
        let EventLoopServer { state, listener, poller, waker, shutdown, config } = self;
        let (job_tx, job_rx) = mpsc::channel::<Job>();
        let job_rx = Arc::new(Mutex::new(job_rx));
        let completions: Arc<Mutex<Vec<(u64, String)>>> = Arc::new(Mutex::new(Vec::new()));
        let workers: Vec<_> = (0..config.effective_workers())
            .map(|i| {
                let state = Arc::clone(&state);
                let job_rx = Arc::clone(&job_rx);
                let completions = Arc::clone(&completions);
                let waker = Arc::clone(&waker);
                std::thread::Builder::new()
                    .name(format!("moptd-worker-{i}"))
                    .spawn(move || loop {
                        // Hold the receiver lock only for the dequeue, never
                        // during execution.
                        let job = match lock_recover(&job_rx).recv() {
                            Ok(job) => job,
                            Err(_) => break,
                        };
                        // handle_line never panics on bad input, and solver
                        // panics are contained by the single-flight layer;
                        // this catch is the last line of defense so a worker
                        // bug degrades to an Error response, not a hung
                        // connection.
                        let reply = catch_unwind(AssertUnwindSafe(|| {
                            state.serve_line(&job.line, job.enqueued.elapsed())
                        }))
                        .unwrap_or_else(|_| {
                            "{\"Error\":{\"message\":\"internal: request handler panicked\"}}"
                                .to_string()
                        });
                        lock_recover(&completions).push((job.token, reply));
                        waker.wake();
                    })
                    .expect("spawn worker")
            })
            .collect();

        let metrics = state.metrics();
        let mut conns: HashMap<u64, Connection<'_>> = HashMap::new();
        let mut next_token = FIRST_CONN_TOKEN;
        let mut events = Vec::new();
        let mut accepting = true;
        let mut drain_started: Option<Instant> = None;

        loop {
            let shutting_down = shutdown.load(Ordering::Acquire);
            if shutting_down {
                if accepting {
                    poller.deregister(listener.as_raw_fd()).ok();
                    accepting = false;
                    drain_started = Some(Instant::now());
                }
                if conns.is_empty() {
                    break;
                }
                if drain_started.is_some_and(|t| t.elapsed() >= config.drain_grace) {
                    // Peers that refuse to drain (never read their responses)
                    // are cut loose; everyone else already closed cleanly.
                    for (_, conn) in conns.drain() {
                        poller.deregister(conn.stream.as_raw_fd()).ok();
                    }
                    break;
                }
            }
            let timeout = if shutting_down { Some(Duration::from_millis(25)) } else { None };
            poller.wait(&mut events, timeout)?;

            for event in &events {
                match event.token {
                    LISTENER_TOKEN => {
                        if !accepting {
                            continue;
                        }
                        loop {
                            match listener.accept() {
                                Ok((stream, _peer)) => {
                                    if stream.set_nonblocking(true).is_err() {
                                        continue;
                                    }
                                    stream.set_nodelay(true).ok();
                                    let token = next_token;
                                    next_token += 1;
                                    if poller
                                        .register(stream.as_raw_fd(), token, Interest::READABLE)
                                        .is_err()
                                    {
                                        continue;
                                    }
                                    conns.insert(
                                        token,
                                        Connection {
                                            stream,
                                            read_buf: Vec::new(),
                                            write_buf: WriteBuf::default(),
                                            pipeline: VecDeque::new(),
                                            scan_from: 0,
                                            busy: false,
                                            draining_oversized: false,
                                            peer_eof: false,
                                            dead: false,
                                            interest: Interest::READABLE,
                                            registered: true,
                                            _guard: metrics.connection_opened(),
                                        },
                                    );
                                }
                                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                                Err(_) => break,
                            }
                        }
                    }
                    WAKER_TOKEN => waker.drain(),
                    token => {
                        if let Some(conn) = conns.get_mut(&token) {
                            if event.readable {
                                read_from(conn);
                            }
                            if event.writable {
                                flush_to(conn);
                            }
                            if event.error {
                                conn.dead = true;
                            }
                        }
                    }
                }
            }

            // Route completed responses back to their connections. A token
            // that has disappeared means the client vanished mid-request;
            // the response is simply dropped.
            for (token, reply) in lock_recover(&completions).drain(..) {
                if let Some(conn) = conns.get_mut(&token) {
                    conn.busy = false;
                    conn.write_buf.push_line(&reply);
                }
            }

            // Per-connection bookkeeping: dispatch the next pipelined
            // request, flush buffered responses, refresh poll interest, and
            // reap finished connections.
            let mut closed = Vec::new();
            for (&token, conn) in conns.iter_mut() {
                while !conn.dead && !conn.busy {
                    match conn.pipeline.pop_front() {
                        Some(Pending::Line(line)) => {
                            conn.busy = true;
                            if job_tx.send(Job { token, line, enqueued: Instant::now() }).is_err() {
                                conn.dead = true;
                            }
                        }
                        Some(Pending::Oversized) => {
                            conn.write_buf.push_line(&oversized_reply());
                        }
                        None => break,
                    }
                }
                if !conn.dead && conn.write_buf.pending() > 0 {
                    flush_to(conn);
                }
                let finished = (conn.peer_eof || shutting_down) && conn.drained();
                if conn.dead || finished {
                    closed.push(token);
                    continue;
                }
                let desired = conn.desired_interest(shutting_down);
                if desired.readable || desired.writable {
                    let ok = if conn.registered {
                        desired == conn.interest
                            || poller.modify(conn.stream.as_raw_fd(), token, desired).is_ok()
                    } else {
                        poller.register(conn.stream.as_raw_fd(), token, desired).is_ok()
                    };
                    if ok {
                        conn.interest = desired;
                        conn.registered = true;
                    }
                } else if conn.registered {
                    poller.deregister(conn.stream.as_raw_fd()).ok();
                    conn.registered = false;
                }
            }
            for token in closed {
                if let Some(conn) = conns.remove(&token) {
                    if conn.registered {
                        poller.deregister(conn.stream.as_raw_fd()).ok();
                    }
                }
            }
        }

        drop(job_tx);
        for worker in workers {
            worker.join().ok();
        }
        Ok(())
    }
}

/// Drain the socket's readable bytes into the connection's parse state.
fn read_from(conn: &mut Connection<'_>) {
    let mut chunk = [0u8; 16 * 1024];
    loop {
        match conn.stream.read(&mut chunk) {
            Ok(0) => {
                conn.peer_eof = true;
                break;
            }
            Ok(n) => {
                conn.read_buf.extend_from_slice(&chunk[..n]);
                parse_lines(conn);
                // Respect backpressure promptly: leave the rest in the
                // kernel buffer (level-triggered polling re-delivers it).
                if conn.paused() {
                    break;
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => {
                // A reset/abort is a client fault, any other error is just
                // as fatal for this one connection; either way the daemon
                // keeps serving everyone else.
                let _ = is_disconnect(&e);
                conn.dead = true;
                break;
            }
        }
    }
}

/// Split the read buffer into pipeline items, handling oversized-line drain
/// mode in constant memory.
fn parse_lines(conn: &mut Connection<'_>) {
    loop {
        if conn.draining_oversized {
            match conn.read_buf.iter().position(|&b| b == b'\n') {
                Some(pos) => {
                    conn.read_buf.drain(..=pos);
                    conn.draining_oversized = false;
                }
                None => {
                    conn.read_buf.clear();
                    return;
                }
            }
            continue;
        }
        let found = conn.read_buf[conn.scan_from..]
            .iter()
            .position(|&b| b == b'\n')
            .map(|p| conn.scan_from + p);
        match found {
            // A line that arrived complete but longer than the cap (TCP
            // coalescing can deliver the newline together with the excess)
            // is rejected just like a still-growing one; `pos` is the line
            // length, so exactly-at-cap lines pass.
            Some(pos) if pos > MAX_REQUEST_BYTES => {
                conn.read_buf.drain(..=pos);
                conn.scan_from = 0;
                conn.pipeline.push_back(Pending::Oversized);
            }
            Some(pos) => {
                let line: Vec<u8> = conn.read_buf.drain(..=pos).collect();
                conn.scan_from = 0;
                let text = String::from_utf8_lossy(&line);
                let text = text.trim_end_matches(['\r', '\n']);
                if !text.trim().is_empty() {
                    conn.pipeline.push_back(Pending::Line(text.to_string()));
                }
            }
            None => {
                conn.scan_from = conn.read_buf.len();
                if conn.read_buf.len() > MAX_REQUEST_BYTES {
                    conn.read_buf.clear();
                    conn.scan_from = 0;
                    conn.draining_oversized = true;
                    conn.pipeline.push_back(Pending::Oversized);
                    continue;
                }
                return;
            }
        }
    }
}

/// Write as much of the buffered responses as the socket accepts.
fn flush_to(conn: &mut Connection<'_>) {
    while conn.write_buf.pending() > 0 {
        match conn.stream.write(conn.write_buf.unflushed()) {
            Ok(0) => {
                conn.dead = true;
                break;
            }
            Ok(n) => conn.write_buf.advance(n),
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => {
                conn.dead = true;
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufRead, BufReader};

    fn start(
        state: Arc<ServiceState>,
    ) -> (SocketAddr, ShutdownHandle, std::thread::JoinHandle<()>) {
        let server = EventLoopServer::bind(
            state,
            "127.0.0.1:0",
            ServerConfig { workers: 2, ..ServerConfig::default() },
        )
        .unwrap();
        let addr = server.local_addr().unwrap();
        let handle = server.shutdown_handle();
        let join = std::thread::spawn(move || server.run().unwrap());
        (addr, handle, join)
    }

    fn recv_line(reader: &mut BufReader<TcpStream>) -> String {
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        line
    }

    #[test]
    fn serves_pipelined_requests_in_order() {
        let (addr, handle, join) = start(Arc::new(ServiceState::new(16)));
        let mut stream = TcpStream::connect(addr).unwrap();
        // Three requests in one TCP segment: responses must come back in
        // request order.
        stream.write_all(b"\"Ping\"\n\"Stats\"\n\"Ping\"\n").unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let first: Response = serde_json::from_str(recv_line(&mut reader).trim()).unwrap();
        let second: Response = serde_json::from_str(recv_line(&mut reader).trim()).unwrap();
        let third: Response = serde_json::from_str(recv_line(&mut reader).trim()).unwrap();
        assert!(matches!(first, Response::Pong { .. }));
        assert!(matches!(second, Response::Stats { .. }));
        assert!(matches!(third, Response::Pong { .. }));
        drop(reader);
        drop(stream);
        handle.shutdown();
        join.join().unwrap();
    }

    #[test]
    fn oversized_line_gets_an_ordered_error_and_the_connection_survives() {
        let (addr, handle, join) = start(Arc::new(ServiceState::new(16)));
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(b"\"Ping\"\n").unwrap();
        let huge = vec![b'x'; MAX_REQUEST_BYTES + 4096];
        stream.write_all(&huge).unwrap();
        stream.write_all(b"\n\"Ping\"\n").unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let first: Response = serde_json::from_str(recv_line(&mut reader).trim()).unwrap();
        assert!(matches!(first, Response::Pong { .. }));
        let second: Response = serde_json::from_str(recv_line(&mut reader).trim()).unwrap();
        match second {
            Response::Error { message } => assert!(message.contains("16 MiB"), "got: {message}"),
            other => panic!("expected the cap Error in order, got {other:?}"),
        }
        let third: Response = serde_json::from_str(recv_line(&mut reader).trim()).unwrap();
        assert!(matches!(third, Response::Pong { .. }), "the connection must keep serving");
        drop(reader);
        drop(stream);
        handle.shutdown();
        join.join().unwrap();
    }

    #[test]
    fn shutdown_drains_connections_and_stops_the_listener() {
        let state = Arc::new(ServiceState::new(16));
        let (addr, handle, join) = start(Arc::clone(&state));
        let a = TcpStream::connect(addr).unwrap();
        let b = TcpStream::connect(addr).unwrap();
        let deadline = Instant::now() + Duration::from_secs(5);
        while state.metrics().open_connections() < 2 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(state.metrics().open_connections(), 2);
        assert!(!handle.is_shutdown());
        handle.shutdown();
        join.join().unwrap();
        assert!(handle.is_shutdown());
        assert_eq!(state.metrics().open_connections(), 0, "drain must close every connection");
        drop(a);
        drop(b);
    }
}
