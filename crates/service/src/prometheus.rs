//! Prometheus text-exposition rendering for the `Metrics` verb.
//!
//! `{"Metrics": {"format": "prometheus"}}` answers with a plain-text body
//! in the Prometheus exposition format: every non-comment line is
//! `name{labels} value`, histograms are emitted as cumulative
//! `_bucket{le="..."}` series closed by `le="+Inf"` plus `_sum`/`_count`.
//! The internal histograms store *per-bucket* counts keyed by each bucket's
//! inclusive upper bound (`u64::MAX` for the overflow bucket), so this
//! module converts to cumulative counts and folds the overflow bucket into
//! `+Inf` at render time.
//!
//! Counts are taken from one snapshot per histogram; within a snapshot the
//! bucket sum can exceed the recorded count under concurrent writers (the
//! snapshot reads `count` first), so `_count` and `+Inf` are both derived
//! from the bucket sum, keeping the series internally consistent — the
//! invariant Prometheus clients actually rely on.

use std::fmt::Write as _;

use mopt_trace::LatencySnapshot;

use crate::metrics::Verb;
use crate::server::{ServiceState, Tier};

/// Render the full metric family set for `state`.
pub fn render(state: &ServiceState) -> String {
    let mut out = String::with_capacity(4096);
    let metrics = state.metrics();

    family(
        &mut out,
        "moptd_build_info",
        "gauge",
        "Constant 1, labeled with the serving crate's version.",
    );
    let _ = writeln!(out, "moptd_build_info{{version=\"{}\"}} 1", env!("CARGO_PKG_VERSION"));

    family(&mut out, "moptd_uptime_seconds", "gauge", "Seconds since the service started.");
    let _ = writeln!(out, "moptd_uptime_seconds {}", fmt_f64(state.uptime_seconds()));

    family(
        &mut out,
        "moptd_configured_workers",
        "gauge",
        "Worker threads the transport serves with (1 for stdio).",
    );
    let _ = writeln!(out, "moptd_configured_workers {}", state.configured_workers());

    family(&mut out, "moptd_cache_shards", "gauge", "Shard count of the schedule cache.");
    let _ = writeln!(out, "moptd_cache_shards {}", crate::cache::ScheduleCache::SHARDS);

    family(&mut out, "moptd_requests_total", "counter", "Requests served, by verb.");
    for verb in Verb::ALL {
        let count = metrics.verb_latency(verb).count;
        if count > 0 {
            let _ = writeln!(out, "moptd_requests_total{{verb=\"{}\"}} {count}", verb.name());
        }
    }

    family(
        &mut out,
        "moptd_request_errors_total",
        "counter",
        "Requests answered with an Error response, by verb.",
    );
    for verb in Verb::ALL {
        let count = metrics.verb_errors(verb);
        if count > 0 {
            let _ = writeln!(out, "moptd_request_errors_total{{verb=\"{}\"}} {count}", verb.name());
        }
    }

    family(
        &mut out,
        "moptd_parse_errors_total",
        "counter",
        "Request lines that failed to parse into any verb.",
    );
    let _ = writeln!(out, "moptd_parse_errors_total {}", metrics.parse_errors());

    family(
        &mut out,
        "moptd_request_duration_micros",
        "histogram",
        "Request latency in microseconds, by verb.",
    );
    for verb in Verb::ALL {
        let snap = metrics.verb_latency(verb);
        if snap.count > 0 {
            histogram(&mut out, "moptd_request_duration_micros", &[("verb", verb.name())], &snap);
        }
    }

    family(
        &mut out,
        "moptd_tier_hits_total",
        "counter",
        "Schedule answers served, by tier (coalesced requests count under their leader's tier).",
    );
    let hits = state.tier_hits();
    for tier in [Tier::Cache, Tier::Db, Tier::Solver] {
        let _ = writeln!(
            out,
            "moptd_tier_hits_total{{tier=\"{}\"}} {}",
            tier.label(),
            hits[tier as usize]
        );
    }

    let flight = state.flight_stats();
    family(
        &mut out,
        "moptd_flight_total",
        "counter",
        "Single-flight outcomes, by coalescing group and role.",
    );
    for (group, stats) in [("optimize", &flight.optimize), ("graph", &flight.graph)] {
        let _ =
            writeln!(out, "moptd_flight_total{{group=\"{group}\",outcome=\"led\"}} {}", stats.led);
        let _ = writeln!(
            out,
            "moptd_flight_total{{group=\"{group}\",outcome=\"coalesced\"}} {}",
            stats.coalesced
        );
        let _ = writeln!(
            out,
            "moptd_flight_total{{group=\"{group}\",outcome=\"error\"}} {}",
            stats.errors
        );
    }

    family(
        &mut out,
        "moptd_flight_in_flight",
        "gauge",
        "Keys with a computation currently in flight, by coalescing group.",
    );
    for (group, stats) in [("optimize", &flight.optimize), ("graph", &flight.graph)] {
        let _ = writeln!(out, "moptd_flight_in_flight{{group=\"{group}\"}} {}", stats.in_flight);
    }

    family(
        &mut out,
        "moptd_flight_wait_micros",
        "histogram",
        "How long coalesced callers waited on a leader's result, by group.",
    );
    for (group, stats) in [("optimize", &flight.optimize), ("graph", &flight.graph)] {
        if let Some(waits) = &stats.waiter_wait {
            if waits.count > 0 {
                histogram(&mut out, "moptd_flight_wait_micros", &[("group", group)], waits);
            }
        }
    }

    family(&mut out, "moptd_in_flight_requests", "gauge", "Requests currently inside a handler.");
    let _ = writeln!(out, "moptd_in_flight_requests {}", metrics.in_flight_requests());

    family(&mut out, "moptd_open_connections", "gauge", "Connections currently open.");
    let _ = writeln!(out, "moptd_open_connections {}", metrics.open_connections());

    family(
        &mut out,
        "moptd_connections_accepted_total",
        "counter",
        "Connections accepted since startup.",
    );
    let _ = writeln!(out, "moptd_connections_accepted_total {}", metrics.connections_accepted());

    let cache = state.cache.stats();
    family(&mut out, "moptd_schedule_cache_entries", "gauge", "Schedule-cache entries resident.");
    let _ = writeln!(out, "moptd_schedule_cache_entries {}", cache.entries);
    family(
        &mut out,
        "moptd_schedule_cache_ops_total",
        "counter",
        "Schedule-cache operations, by kind.",
    );
    for (kind, value) in [
        ("hit", cache.hits),
        ("miss", cache.misses),
        ("insert", cache.insertions),
        ("evict", cache.evictions),
    ] {
        let _ = writeln!(out, "moptd_schedule_cache_ops_total{{op=\"{kind}\"}} {value}");
    }

    if let Some(db) = state.db() {
        let db = db.stats();
        family(&mut out, "moptd_db_tier_total", "counter", "Database-tier outcomes, by kind.");
        for (kind, value) in
            [("hit", db.hits), ("miss", db.misses), ("insert", db.inserts), ("error", db.errors)]
        {
            let _ = writeln!(out, "moptd_db_tier_total{{op=\"{kind}\"}} {value}");
        }
    }

    family(
        &mut out,
        "moptd_slow_traces_total",
        "counter",
        "Requests whose trace crossed the --slow-ms threshold.",
    );
    let _ = writeln!(out, "moptd_slow_traces_total {}", state.slow_traces_recorded());

    out
}

/// Emit the `# HELP` / `# TYPE` header of one metric family.
fn family(out: &mut String, name: &str, kind: &str, help: &str) {
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} {kind}");
}

/// Emit one histogram series: cumulative `_bucket` lines closed by
/// `le="+Inf"`, then `_sum` and `_count`.
fn histogram(out: &mut String, name: &str, labels: &[(&str, &str)], snap: &LatencySnapshot) {
    let prefix: String =
        labels.iter().map(|(k, v)| format!("{k}=\"{v}\",")).collect::<Vec<_>>().join("");
    let mut cumulative = 0u64;
    for bucket in &snap.buckets {
        cumulative += bucket.count;
        if bucket.le_micros == u64::MAX {
            // The overflow bucket IS +Inf; fold it in rather than emitting
            // an impossible finite bound.
            continue;
        }
        let _ = writeln!(out, "{name}_bucket{{{prefix}le=\"{}\"}} {cumulative}", bucket.le_micros);
    }
    let total: u64 = snap.buckets.iter().map(|b| b.count).sum();
    let _ = writeln!(out, "{name}_bucket{{{prefix}le=\"+Inf\"}} {total}");
    let _ = writeln!(out, "{name}_sum{{{}}} {}", prefix.trim_end_matches(','), snap.sum_micros);
    let _ = writeln!(out, "{name}_count{{{}}} {total}", prefix.trim_end_matches(','));
}

/// Format a float the exposition parser accepts (no exotic formatting —
/// Rust's default `Display` for `f64` is valid).
fn fmt_f64(value: f64) -> String {
    format!("{value}")
}

#[cfg(test)]
mod tests {
    use crate::server::{Response, ServiceState};

    /// Structural check mirroring the CI exposition-syntax gate: every line
    /// is a comment or `name{labels} value`.
    fn assert_exposition_syntax(body: &str) {
        for line in body.lines() {
            if line.starts_with("# HELP ") || line.starts_with("# TYPE ") {
                continue;
            }
            let (series, value) =
                line.rsplit_once(' ').unwrap_or_else(|| panic!("bad line: {line}"));
            assert!(
                value.parse::<f64>().is_ok(),
                "value `{value}` of line `{line}` is not a number"
            );
            let name = series.split('{').next().unwrap();
            assert!(
                !name.is_empty()
                    && name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
                "bad metric name in line `{line}`"
            );
            if let Some(rest) = series.strip_prefix(name) {
                if !rest.is_empty() {
                    assert!(
                        rest.starts_with('{') && rest.ends_with('}'),
                        "bad label block in line `{line}`"
                    );
                }
            }
        }
    }

    #[test]
    fn exposition_is_syntactically_valid_and_cumulative() {
        let state = ServiceState::new(16);
        state.set_configured_workers(3);
        state.handle_line("\"Ping\"");
        state.handle_line("\"Ping\"");
        state.handle_line("{\"Optimize\": {\"machine\": {\"Preset\": \"vax\"}}}");
        let response: Response =
            serde_json::from_str(&state.handle_line("{\"Metrics\": {\"format\": \"prometheus\"}}"))
                .unwrap();
        let body = match response {
            Response::MetricsText { body } => body,
            other => panic!("expected MetricsText, got {other:?}"),
        };
        assert_exposition_syntax(&body);
        assert!(body.contains("moptd_requests_total{verb=\"Ping\"} 2"));
        assert!(body.contains("moptd_request_errors_total{verb=\"Optimize\"} 1"));
        assert!(body.contains("moptd_configured_workers 3"));
        assert!(
            body.contains(&format!("moptd_cache_shards {}", crate::cache::ScheduleCache::SHARDS))
        );
        // Histogram series close with +Inf and agree with _count.
        let ping_inf = body
            .lines()
            .find(|l| {
                l.starts_with("moptd_request_duration_micros_bucket{verb=\"Ping\",le=\"+Inf\"}")
            })
            .expect("+Inf bucket present");
        let ping_count = body
            .lines()
            .find(|l| l.starts_with("moptd_request_duration_micros_count{verb=\"Ping\"}"))
            .expect("_count present");
        assert_eq!(ping_inf.rsplit(' ').next().unwrap(), ping_count.rsplit(' ').next().unwrap());
        assert_eq!(ping_count.rsplit(' ').next().unwrap(), "2");
        // Cumulative bucket counts never decrease.
        let mut last = 0u64;
        for line in body
            .lines()
            .filter(|l| l.starts_with("moptd_request_duration_micros_bucket{verb=\"Ping\""))
        {
            let value: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(value >= last, "bucket counts must be cumulative: {line}");
            last = value;
        }
    }

    #[test]
    fn unknown_formats_are_rejected() {
        let state = ServiceState::new(16);
        let response: Response =
            serde_json::from_str(&state.handle_line("{\"Metrics\": {\"format\": \"xml\"}}"))
                .unwrap();
        match response {
            Response::Error { message } => assert!(message.contains("unknown metrics format")),
            other => panic!("expected Error, got {other:?}"),
        }
    }
}
