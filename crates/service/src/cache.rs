//! A sharded, thread-safe LRU cache of optimization results.
//!
//! The paper's premise is that the analytical model makes tile-size
//! optimization cheap enough to run on demand; this cache makes repeat
//! demand nearly free. Results are keyed by everything that determines the
//! optimizer's output — the problem shape, a stable fingerprint of the
//! machine model, and the optimizer options — so a hit is guaranteed to be
//! the configuration a fresh solve would produce.
//!
//! The key space is split across [`ScheduleCache::SHARDS`] independently
//! locked shards so concurrent server threads rarely contend. Within a
//! shard, recency is tracked with a monotonic clock per entry; eviction
//! scans the (small, `capacity / SHARDS`-bounded) shard for the least
//! recently used entry.

use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};

use conv_spec::{ConvShape, MachineModel, Spec};
use mopt_core::{OptimizeResult, OptimizerOptions};
use serde::{Deserialize, Serialize};

/// Lock a mutex, recovering from poisoning.
///
/// A panic on one request thread must not brick the daemon: the data under
/// these locks (LRU maps whose operations are individually panic-free —
/// lookups, inserts, counter bumps) stays structurally valid even if the
/// panic unwound mid-method, so the right response to a poisoned lock is to
/// take the guard and keep serving, not to propagate the panic to every
/// future request that touches the shard.
pub(crate) fn lock_recover<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// The canonical cache key: everything the optimizer's output depends on.
///
/// Since the spec-IR generalization the problem slot holds a [`Spec`] (conv,
/// matmul, pooling, or elementwise), not just a [`ConvShape`]. The wire/disk
/// form stays backward compatible in both directions: convolution keys
/// serialize as the legacy flat `"shape"` field (bit-identical to pre-spec
/// snapshots), non-conv specs as a tagged `"spec"` field, and deserialization
/// accepts either — so old snapshots load, and snapshots holding only conv
/// entries are byte-identical to what the pre-spec format wrote.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// The optimization problem.
    pub spec: Spec,
    /// [`MachineModel::fingerprint`] of the target machine.
    pub machine_fingerprint: u64,
    /// The optimizer options used for the solve.
    pub options: OptimizerOptions,
}

impl CacheKey {
    /// The key for optimizing `spec` on `machine` with `options`. Accepts a
    /// plain [`ConvShape`] too (via `From<ConvShape> for Spec`).
    pub fn new(spec: impl Into<Spec>, machine: &MachineModel, options: &OptimizerOptions) -> Self {
        CacheKey {
            spec: spec.into(),
            machine_fingerprint: machine.fingerprint(),
            options: options.clone(),
        }
    }

    /// The key's problem embedded as a conv shape (the identity for conv
    /// keys) — what the optimizer actually solves.
    pub fn embedded_shape(&self) -> ConvShape {
        self.spec.embedded_conv_shape()
    }

    fn shard_index(&self, shards: usize) -> usize {
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        self.hash(&mut hasher);
        (hasher.finish() as usize) % shards
    }
}

impl Serialize for CacheKey {
    fn to_value(&self) -> serde::Value {
        let problem = match &self.spec {
            // Legacy byte-compatible form: conv problems keep the flat
            // `"shape"` field pre-spec snapshots used.
            Spec::Conv(shape) => ("shape".to_string(), shape.to_value()),
            other => ("spec".to_string(), other.to_value()),
        };
        serde::Value::Object(vec![
            problem,
            ("machine_fingerprint".to_string(), self.machine_fingerprint.to_value()),
            ("options".to_string(), self.options.to_value()),
        ])
    }
}

impl Deserialize for CacheKey {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        let pairs =
            v.as_object().ok_or_else(|| serde::DeError::expected("an object", "CacheKey"))?;
        let spec: Option<Spec> = serde::de_field(pairs, "spec", "CacheKey")?;
        let spec = match spec {
            Some(spec) => spec,
            None => {
                let shape: Option<ConvShape> = serde::de_field(pairs, "shape", "CacheKey")?;
                Spec::Conv(shape.ok_or_else(|| {
                    serde::DeError::custom("CacheKey needs a `spec` or legacy `shape` field")
                })?)
            }
        };
        Ok(CacheKey {
            spec,
            machine_fingerprint: serde::de_field(pairs, "machine_fingerprint", "CacheKey")?,
            options: serde::de_field(pairs, "options", "CacheKey")?,
        })
    }
}

/// A point-in-time summary of cache effectiveness.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Lookups that found an entry.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries inserted.
    pub insertions: u64,
    /// Entries evicted to stay within capacity (sum over all shards).
    pub evictions: u64,
    /// Evictions per shard, indexed by shard number — a skewed vector flags
    /// keys hashing unevenly (e.g. one hot suite thrashing a single shard
    /// while the rest of the cache sits idle).
    pub shard_evictions: Vec<u64>,
    /// Entries currently resident.
    pub entries: usize,
    /// Maximum resident entries the cache can actually hold (the *effective*
    /// capacity: the requested capacity rounded up to a whole number of
    /// entries per shard).
    pub capacity: usize,
    /// The capacity the operator asked for when the cache was built. Shard
    /// rounding can only inflate, so `capacity >= requested_capacity`;
    /// reporting both keeps sizing decisions honest (a `--cache-capacity 1`
    /// daemon really holds [`ScheduleCache::SHARDS`] entries).
    pub requested_capacity: usize,
}

impl CacheStats {
    /// Hit fraction of all lookups (0 when no lookups happened).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A bounded map with least-recently-used eviction, driven by an *external*
/// monotonic tick so callers can share one clock across several maps (the
/// sharded schedule cache) or own a clock outright (the graph-plan cache).
/// This is the single LRU implementation both caches in this crate build on.
pub(crate) struct LruMap<K, V> {
    entries: HashMap<K, (V, u64)>,
    evictions: u64,
}

impl<K: std::cmp::Eq + Hash + Clone, V> Default for LruMap<K, V> {
    fn default() -> Self {
        LruMap { entries: HashMap::new(), evictions: 0 }
    }
}

impl<K: std::cmp::Eq + Hash + Clone, V> LruMap<K, V> {
    /// Look up `key`, refreshing its recency to `tick` on a hit.
    pub fn get(&mut self, key: &K, tick: u64) -> Option<&V> {
        self.entries.get_mut(key).map(|(value, last_used)| {
            *last_used = tick;
            &*value
        })
    }

    /// Insert (or refresh) an entry at recency `tick`, evicting the least
    /// recently used entry first when the map is at `capacity` and the key
    /// is new. Returns whether an eviction happened.
    pub fn insert(&mut self, key: K, value: V, tick: u64, capacity: usize) -> bool {
        let mut evicted = false;
        if self.entries.len() >= capacity && !self.entries.contains_key(&key) {
            if let Some(victim) =
                self.entries.iter().min_by_key(|(_, (_, used))| *used).map(|(k, _)| k.clone())
            {
                self.entries.remove(&victim);
                self.evictions += 1;
                evicted = true;
            }
        }
        self.entries.insert(key, (value, tick));
        evicted
    }

    /// Number of resident entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Evictions this map has performed.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Drop every entry (the eviction counter is preserved).
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Every resident `(key, value, last_used)` triple, unordered.
    pub fn iter(&self) -> impl Iterator<Item = (&K, &V, u64)> {
        self.entries.iter().map(|(k, (v, used))| (k, v, *used))
    }
}

type Shard = LruMap<CacheKey, OptimizeResult>;

/// The sharded schedule cache. All methods take `&self`; the cache is meant
/// to be shared across server threads (e.g. in an `Arc`).
pub struct ScheduleCache {
    shards: Vec<Mutex<Shard>>,
    /// Per-shard dirty-since-last-flush flags, set by [`insert`](Self::insert)
    /// and consumed by [`take_dirty_shards`](Self::take_dirty_shards) — the
    /// contract that lets incremental persistence rewrite only the shards
    /// that changed instead of the whole cache.
    dirty: Vec<AtomicBool>,
    shard_capacity: usize,
    capacity: usize,
    requested_capacity: usize,
    clock: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    insertions: AtomicU64,
    evictions: AtomicU64,
}

impl ScheduleCache {
    /// Number of independently locked shards.
    pub const SHARDS: usize = 16;

    /// A cache holding at most `capacity` results (at least one per shard).
    ///
    /// The effective capacity is `capacity` rounded up to a whole number of
    /// entries per shard — [`capacity`](Self::capacity) reports it, and
    /// [`stats`](Self::stats) reports it alongside the requested value so
    /// the rounding is visible to operators.
    pub fn new(capacity: usize) -> Self {
        let shard_capacity = capacity.div_ceil(Self::SHARDS).max(1);
        ScheduleCache {
            shards: (0..Self::SHARDS).map(|_| Mutex::new(Shard::default())).collect(),
            dirty: (0..Self::SHARDS).map(|_| AtomicBool::new(false)).collect(),
            shard_capacity,
            capacity: shard_capacity * Self::SHARDS,
            requested_capacity: capacity,
            clock: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            insertions: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Look up a cached result, refreshing its recency on a hit.
    pub fn get(&self, key: &CacheKey) -> Option<OptimizeResult> {
        let tick = self.tick();
        let mut shard = self.lock_shard(key);
        match shard.get(key, tick) {
            Some(result) => {
                let result = result.clone();
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(result)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Insert (or refresh) a result, evicting the least recently used entry
    /// of the target shard if it is full.
    pub fn insert(&self, key: CacheKey, result: OptimizeResult) {
        let tick = self.tick();
        let index = key.shard_index(Self::SHARDS);
        let mut shard = lock_recover(&self.shards[index]);
        if shard.insert(key, result, tick, self.shard_capacity) {
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
        self.insertions.fetch_add(1, Ordering::Relaxed);
        self.dirty[index].store(true, Ordering::Release);
    }

    /// Look up `key`, computing and inserting the result on a miss.
    ///
    /// The shard lock is *not* held during `compute` (solves take seconds),
    /// so two threads racing on the same key may both compute; the second
    /// insert simply refreshes the entry. That trade favors throughput over
    /// strict single-flight semantics.
    pub fn get_or_compute<F: FnOnce() -> OptimizeResult>(
        &self,
        key: CacheKey,
        compute: F,
    ) -> OptimizeResult {
        if let Some(result) = self.get(&key) {
            return result;
        }
        let result = compute();
        self.insert(key, result.clone());
        result
    }

    /// Number of resident entries.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| lock_recover(s).len()).sum()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Maximum number of resident entries (the effective capacity).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The capacity requested at construction, before shard rounding.
    pub fn requested_capacity(&self) -> usize {
        self.requested_capacity
    }

    /// Drop every entry (counters are preserved). Every shard is marked
    /// dirty: an incremental flush after a clear must rewrite them all.
    pub fn clear(&self) {
        for (shard, dirty) in self.shards.iter().zip(&self.dirty) {
            lock_recover(shard).clear();
            dirty.store(true, Ordering::Release);
        }
    }

    /// Evictions per shard, indexed by shard number.
    pub fn shard_evictions(&self) -> Vec<u64> {
        self.shards.iter().map(|s| lock_recover(s).evictions()).collect()
    }

    /// Snapshot of the hit/miss/eviction counters and occupancy.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            insertions: self.insertions.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            shard_evictions: self.shard_evictions(),
            entries: self.len(),
            capacity: self.capacity,
            requested_capacity: self.requested_capacity,
        }
    }

    /// Every resident `(key, result)` pair, in recency order (least recently
    /// used first) so that re-inserting in order preserves eviction order.
    pub fn entries(&self) -> Vec<(CacheKey, OptimizeResult)> {
        let mut all: Vec<(CacheKey, OptimizeResult, u64)> = Vec::new();
        for shard in &self.shards {
            let shard = lock_recover(shard);
            all.extend(shard.iter().map(|(k, v, used)| (k.clone(), v.clone(), used)));
        }
        all.sort_by_key(|(_, _, used)| *used);
        all.into_iter().map(|(k, r, _)| (k, r)).collect()
    }

    /// Resident `(key, result)` pairs of one shard, in recency order (least
    /// recently used first), for per-shard snapshot files.
    pub fn shard_entries(&self, shard: usize) -> Vec<(CacheKey, OptimizeResult)> {
        let guard = lock_recover(&self.shards[shard]);
        let mut entries: Vec<(CacheKey, OptimizeResult, u64)> =
            guard.iter().map(|(k, v, used)| (k.clone(), v.clone(), used)).collect();
        entries.sort_by_key(|(_, _, used)| *used);
        entries.into_iter().map(|(k, r, _)| (k, r)).collect()
    }

    /// Atomically claim the set of shards modified since the last claim,
    /// clearing their dirty flags. A flush that subsequently fails must hand
    /// the claimed shards back via [`mark_shard_dirty`](Self::mark_shard_dirty)
    /// or their changes would be silently dropped from the next flush.
    pub fn take_dirty_shards(&self) -> Vec<usize> {
        (0..Self::SHARDS).filter(|&i| self.dirty[i].swap(false, Ordering::AcqRel)).collect()
    }

    /// Re-flag a shard as dirty (failed-flush give-back; also used by loads
    /// that want a full rewrite on the next save).
    pub fn mark_shard_dirty(&self, shard: usize) {
        self.dirty[shard].store(true, Ordering::Release);
    }

    /// Clear every dirty flag — call after a load from disk, when memory and
    /// disk agree and an immediate incremental flush should write nothing.
    pub fn mark_all_clean(&self) {
        for dirty in &self.dirty {
            dirty.store(false, Ordering::Release);
        }
    }

    fn lock_shard(&self, key: &CacheKey) -> std::sync::MutexGuard<'_, Shard> {
        lock_recover(&self.shards[key.shard_index(Self::SHARDS)])
    }

    fn tick(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::Relaxed)
    }
}

impl std::fmt::Debug for ScheduleCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScheduleCache")
            .field("capacity", &self.capacity)
            .field("stats", &self.stats())
            .finish()
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use conv_spec::TileConfig;
    use mopt_core::OptimizedConfig;

    pub(crate) fn dummy_result(shape: &ConvShape, cost: f64) -> OptimizeResult {
        use mopt_core::optimizer::heuristic_config;
        let machine = MachineModel::tiny_test_machine();
        let config: TileConfig = heuristic_config(shape, &machine);
        let optimizer = mopt_core::MOptOptimizer::new(
            *shape,
            machine,
            OptimizerOptions { max_classes: 1, ..OptimizerOptions::fast() },
        );
        let prediction = optimizer.model_for(config.permutation.clone()).predict_config(&config);
        OptimizeResult {
            ranked: vec![OptimizedConfig { config, class_id: 1, predicted_cost: cost, prediction }],
            optimize_seconds: 0.0,
        }
    }

    fn key_for(k: usize) -> CacheKey {
        let shape = ConvShape::new(1, k, 3, 3, 3, 8, 8, 1).unwrap();
        CacheKey::new(shape, &MachineModel::tiny_test_machine(), &OptimizerOptions::fast())
    }

    #[test]
    fn miss_then_hit() {
        let cache = ScheduleCache::new(64);
        let key = key_for(4);
        assert!(cache.get(&key).is_none());
        let result = dummy_result(&key.embedded_shape(), 10.0);
        cache.insert(key.clone(), result.clone());
        assert_eq!(cache.get(&key), Some(result));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.insertions), (1, 1, 1));
        assert!(stats.hit_rate() > 0.49 && stats.hit_rate() < 0.51);
    }

    #[test]
    fn distinct_options_are_distinct_keys() {
        let shape = ConvShape::new(1, 4, 3, 3, 3, 8, 8, 1).unwrap();
        let machine = MachineModel::tiny_test_machine();
        let fast = CacheKey::new(shape, &machine, &OptimizerOptions::fast());
        let thorough = CacheKey::new(
            shape,
            &machine,
            &OptimizerOptions { thorough: true, ..OptimizerOptions::fast() },
        );
        assert_ne!(fast, thorough);
        let cache = ScheduleCache::new(8);
        cache.insert(fast.clone(), dummy_result(&shape, 1.0));
        assert!(cache.get(&thorough).is_none());
        assert!(cache.get(&fast).is_some());
    }

    #[test]
    fn distinct_machines_are_distinct_keys() {
        let shape = ConvShape::new(1, 4, 3, 3, 3, 8, 8, 1).unwrap();
        let opts = OptimizerOptions::fast();
        let tiny = CacheKey::new(shape, &MachineModel::tiny_test_machine(), &opts);
        let i7 = CacheKey::new(shape, &MachineModel::i7_9700k(), &opts);
        assert_ne!(tiny, i7);
    }

    #[test]
    fn eviction_is_least_recently_used() {
        // Single-shard-sized cache so eviction order is fully observable.
        let cache = ScheduleCache::new(1);
        assert_eq!(cache.capacity(), ScheduleCache::SHARDS);
        // Insert one more than capacity worth of keys that all map to
        // different shards is hard to arrange; instead drive one shard by
        // inserting many keys and checking global occupancy never exceeds
        // capacity and evictions hit the least recently used key.
        let keys: Vec<CacheKey> = (1..=64).map(key_for).collect();
        for key in &keys {
            cache.insert(key.clone(), dummy_result(&key.embedded_shape(), 1.0));
        }
        assert!(cache.len() <= cache.capacity());
        assert!(cache.stats().evictions >= (64 - cache.capacity()) as u64);
    }

    #[test]
    fn recently_used_entry_survives_eviction() {
        let cache = ScheduleCache::new(1); // shard capacity 1
                                           // Two keys in the same shard: insert A, insert B (evicts A), then
                                           // touch B and insert C — B must have been the most recent, so any
                                           // same-shard eviction removes the older entry, never breaks lookup.
        let keys: Vec<CacheKey> = (1..=400).map(key_for).collect();
        let a = &keys[0];
        cache.insert(a.clone(), dummy_result(&a.embedded_shape(), 1.0));
        // Find a key sharing a's shard.
        let same_shard = keys[1..]
            .iter()
            .find(|k| k.shard_index(ScheduleCache::SHARDS) == a.shard_index(ScheduleCache::SHARDS))
            .expect("some key shares the shard");
        cache.insert(same_shard.clone(), dummy_result(&same_shard.embedded_shape(), 2.0));
        // Shard capacity is 1, so `a` was evicted.
        assert!(cache.get(a).is_none());
        assert_eq!(cache.get(same_shard).map(|r| r.best().predicted_cost), Some(2.0));
        assert_eq!(cache.stats().evictions, 1);
        // The per-shard breakdown pins the eviction to a's shard.
        let per_shard = cache.shard_evictions();
        assert_eq!(per_shard.len(), ScheduleCache::SHARDS);
        assert_eq!(per_shard.iter().sum::<u64>(), 1);
        assert_eq!(per_shard[a.shard_index(ScheduleCache::SHARDS)], 1);
    }

    #[test]
    fn shard_eviction_counts_sum_to_the_global_counter() {
        let cache = ScheduleCache::new(1);
        for key in (1..=64).map(key_for) {
            cache.insert(key.clone(), dummy_result(&key.embedded_shape(), 1.0));
        }
        let stats = cache.stats();
        assert_eq!(stats.shard_evictions.iter().sum::<u64>(), stats.evictions);
        assert!(stats.evictions > 0);
    }

    #[test]
    fn get_or_compute_computes_once_per_key() {
        let cache = ScheduleCache::new(16);
        let key = key_for(5);
        let mut computed = 0;
        let r1 = cache.get_or_compute(key.clone(), || {
            computed += 1;
            dummy_result(&key.embedded_shape(), 3.0)
        });
        let r2 = cache.get_or_compute(key.clone(), || {
            computed += 1;
            dummy_result(&key.embedded_shape(), 4.0)
        });
        assert_eq!(computed, 1);
        assert_eq!(r1, r2);
    }

    #[test]
    fn concurrent_access_is_safe_and_counted() {
        let cache = std::sync::Arc::new(ScheduleCache::new(256));
        let keys: Vec<CacheKey> = (1..=32).map(key_for).collect();
        std::thread::scope(|scope| {
            for t in 0..4 {
                let cache = cache.clone();
                let keys = keys.clone();
                scope.spawn(move || {
                    for (i, key) in keys.iter().enumerate() {
                        if (i + t) % 2 == 0 {
                            cache
                                .insert(key.clone(), dummy_result(&key.embedded_shape(), i as f64));
                        } else {
                            let _ = cache.get(key);
                        }
                    }
                });
            }
        });
        let stats = cache.stats();
        assert_eq!(stats.insertions, 64);
        assert_eq!(stats.hits + stats.misses, 64);
        assert!(cache.len() <= 32);
    }

    #[test]
    fn poisoned_shard_keeps_serving_after_a_caught_panic() {
        let cache = std::sync::Arc::new(ScheduleCache::new(64));
        let key = key_for(4);
        cache.insert(key.clone(), dummy_result(&key.embedded_shape(), 1.0));

        // Panic on another thread while holding the key's shard lock —
        // exactly what a panic mid-insert leaves behind. The panic is caught
        // (joined), poisoning the mutex.
        let shard = key.shard_index(ScheduleCache::SHARDS);
        let poisoner = {
            let cache = cache.clone();
            std::thread::spawn(move || {
                let _guard = cache.shards[shard].lock().unwrap();
                panic!("simulated panic mid-insert");
            })
        };
        assert!(poisoner.join().is_err(), "the panic must have fired");
        assert!(cache.shards[shard].is_poisoned());

        // Every operation touching the poisoned shard still works.
        assert_eq!(cache.get(&key).map(|r| r.best().predicted_cost), Some(1.0));
        cache.insert(key.clone(), dummy_result(&key.embedded_shape(), 2.0));
        assert_eq!(cache.get(&key).map(|r| r.best().predicted_cost), Some(2.0));
        assert_eq!(cache.len(), 1);
        let stats = cache.stats();
        assert_eq!(stats.entries, 1);
        assert_eq!(stats.shard_evictions.len(), ScheduleCache::SHARDS);
        assert_eq!(cache.entries().len(), 1);
        cache.clear();
        assert!(cache.is_empty());
    }

    #[test]
    fn stats_report_requested_and_effective_capacity() {
        // A request of 1 is inflated to one entry per shard; stats must show
        // both numbers so the operator sees the rounding.
        let small = ScheduleCache::new(1);
        assert_eq!(small.requested_capacity(), 1);
        assert_eq!(small.capacity(), ScheduleCache::SHARDS);
        let stats = small.stats();
        assert_eq!(stats.requested_capacity, 1);
        assert_eq!(stats.capacity, ScheduleCache::SHARDS);
        // A shard-aligned request is reported unchanged.
        let aligned = ScheduleCache::new(4 * ScheduleCache::SHARDS);
        assert_eq!(aligned.stats().requested_capacity, aligned.stats().capacity);
        // A misaligned request rounds up, never down.
        let odd = ScheduleCache::new(ScheduleCache::SHARDS + 1);
        assert_eq!(odd.stats().requested_capacity, ScheduleCache::SHARDS + 1);
        assert_eq!(odd.stats().capacity, 2 * ScheduleCache::SHARDS);
    }

    #[test]
    fn dirty_flags_track_exactly_the_shards_that_changed() {
        let cache = ScheduleCache::new(64);
        assert_eq!(cache.take_dirty_shards(), Vec::<usize>::new(), "a fresh cache is clean");
        let key = key_for(3);
        let shard = key.shard_index(ScheduleCache::SHARDS);
        cache.insert(key.clone(), dummy_result(&key.embedded_shape(), 1.0));
        assert_eq!(cache.take_dirty_shards(), vec![shard], "only the touched shard is dirty");
        // Claiming cleared the flags; lookups never dirty anything.
        let _ = cache.get(&key);
        assert_eq!(cache.take_dirty_shards(), Vec::<usize>::new());
        // A failed flush hands the shard back.
        cache.mark_shard_dirty(shard);
        assert_eq!(cache.take_dirty_shards(), vec![shard]);
        // Clearing dirties every shard; mark_all_clean resets.
        cache.clear();
        assert_eq!(cache.take_dirty_shards().len(), ScheduleCache::SHARDS);
        cache.insert(key.clone(), dummy_result(&key.embedded_shape(), 2.0));
        cache.mark_all_clean();
        assert_eq!(cache.take_dirty_shards(), Vec::<usize>::new());
    }

    #[test]
    fn shard_entries_partition_the_cache_in_recency_order() {
        let cache = ScheduleCache::new(64);
        let keys: Vec<CacheKey> = (1..=12).map(key_for).collect();
        for (i, key) in keys.iter().enumerate() {
            cache.insert(key.clone(), dummy_result(&key.embedded_shape(), i as f64));
        }
        let mut collected: Vec<(CacheKey, OptimizeResult)> = Vec::new();
        for shard in 0..ScheduleCache::SHARDS {
            let entries = cache.shard_entries(shard);
            for (key, _) in &entries {
                assert_eq!(key.shard_index(ScheduleCache::SHARDS), shard);
            }
            collected.extend(entries);
        }
        assert_eq!(collected.len(), 12, "shards partition the entries exactly");
    }

    #[test]
    fn entries_round_trip_in_recency_order() {
        let cache = ScheduleCache::new(64);
        let keys: Vec<CacheKey> = (1..=8).map(key_for).collect();
        for (i, key) in keys.iter().enumerate() {
            cache.insert(key.clone(), dummy_result(&key.embedded_shape(), i as f64));
        }
        // Touch the first key so it becomes most recent.
        let _ = cache.get(&keys[0]);
        let entries = cache.entries();
        assert_eq!(entries.len(), 8);
        assert_eq!(entries.last().unwrap().0, keys[0]);
        cache.clear();
        assert!(cache.is_empty());
    }
}
