//! Wire back-compat gate: requests, snapshots, and database pages written
//! before the spec generalization must keep working, bit-identically.
//!
//! `tests/fixtures/` at the repository root holds artifacts captured from a
//! pre-spec `moptd`:
//!
//! * `legacy_requests.jsonl` / `legacy_responses.jsonl` — a request script
//!   and its pinned responses. Replayed here through a real `moptd --stdio`
//!   child; every field the old server emitted (tier, cached, shapes,
//!   schedule configs, certified costs) must come back unchanged. New
//!   response fields (`spec`, `deprecated`) may appear; pinned ones may not
//!   drift.
//! * `legacy_snapshot.json` — a flat cache snapshot. Must load and serve
//!   warm hits under the same cache keys.
//! * `legacy_db/` — database pages keyed by pre-spec conv fingerprints.
//!   Must serve a cold process from the db tier without a single solve.

use std::io::{BufRead, BufReader, Write};
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};

use conv_spec::{LayoutConfig, MachineModel};
use mopt_service::{Response, ServiceState, Tier};
use serde::Value;

/// The machine fingerprint every fixture was captured against. If
/// `MachineModel::fingerprint()` drifts, old snapshots and db pages silently
/// stop matching — pin it.
const TINY_MACHINE_FINGERPRINT: u64 = 8713081057233441346;

fn fixture_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/fixtures")
}

fn fixture_lines(name: &str) -> Vec<String> {
    let path = fixture_dir().join(name);
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("fixture {} unreadable: {e}", path.display()));
    text.lines().filter(|l| !l.trim().is_empty()).map(|l| l.to_string()).collect()
}

/// Timing fields vary run to run; everything else is pinned.
fn is_volatile(key: &str) -> bool {
    matches!(
        key,
        "optimize_seconds" | "solve_seconds" | "wall_seconds" | "plan_seconds" | "uptime_seconds"
    )
}

/// Assert every non-volatile field of `pinned` is present in `live` with an
/// identical value. `live` may carry *extra* fields (the spec redesign added
/// `spec` and `deprecated` to responses); the pinned ones may not change.
fn assert_pinned_subset(pinned: &Value, live: &Value, path: &str) {
    match (pinned, live) {
        (Value::Object(pinned_fields), Value::Object(_)) => {
            for (key, pinned_value) in pinned_fields {
                if is_volatile(key) {
                    continue;
                }
                let live_value = live
                    .get(key)
                    .unwrap_or_else(|| panic!("{path}.{key}: pinned field missing from reply"));
                assert_pinned_subset(pinned_value, live_value, &format!("{path}.{key}"));
            }
        }
        (Value::Array(pinned_items), Value::Array(live_items)) => {
            assert_eq!(pinned_items.len(), live_items.len(), "{path}: pinned array length changed");
            for (i, (p, l)) in pinned_items.iter().zip(live_items).enumerate() {
                assert_pinned_subset(p, l, &format!("{path}[{i}]"));
            }
        }
        _ => assert_eq!(pinned, live, "{path}: pinned value changed"),
    }
}

/// Acceptance (PR 9): every pre-redesign request replayed through a real
/// `moptd` returns bit-identical certified costs and schedules to its pinned
/// pre-redesign output.
#[test]
fn legacy_requests_replay_bit_identically_through_moptd() {
    let requests = fixture_lines("legacy_requests.jsonl");
    let pinned = fixture_lines("legacy_responses.jsonl");
    assert_eq!(requests.len(), pinned.len(), "fixture files out of sync");

    // The capture ran with a snapshot path and an (initially empty) db
    // attached — the write-through from request 0 makes request 3 a db-tier
    // hit, and the final `"Save"` reports the cache entry count. Reproduce
    // that stack with throwaway paths.
    let snapshot =
        std::env::temp_dir().join(format!("moptd-backcompat-snap-{}.json", std::process::id()));
    let db = std::env::temp_dir().join(format!("moptd-backcompat-db-{}", std::process::id()));
    std::fs::remove_file(&snapshot).ok();
    std::fs::remove_dir_all(&db).ok();

    let mut child = Command::new(env!("CARGO_BIN_EXE_moptd"))
        .args(["--stdio", "--snapshot"])
        .arg(&snapshot)
        .arg("--db")
        .arg(&db)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("moptd spawns");
    {
        let stdin = child.stdin.as_mut().expect("moptd stdin");
        for line in &requests {
            stdin.write_all(line.as_bytes()).unwrap();
            stdin.write_all(b"\n").unwrap();
        }
    }
    child.stdin.take();
    let stdout = BufReader::new(child.stdout.take().expect("moptd stdout"));
    let replies: Vec<String> = stdout.lines().map(|l| l.unwrap()).collect();
    assert!(child.wait().unwrap().success());
    std::fs::remove_file(&snapshot).ok();
    std::fs::remove_dir_all(&db).ok();
    assert_eq!(replies.len(), pinned.len(), "one reply per request");

    for (i, (pinned_line, live_line)) in pinned.iter().zip(&replies).enumerate() {
        let pinned_value = serde_json::parse_value(pinned_line)
            .unwrap_or_else(|e| panic!("pinned response {i} unparsable: {e}"));
        let live_value = serde_json::parse_value(live_line)
            .unwrap_or_else(|e| panic!("live response {i} unparsable: {e}"));
        assert_pinned_subset(&pinned_value, &live_value, &format!("response[{i}]"));
    }
}

/// A pre-spec flat snapshot still loads, still counts, and still serves the
/// legacy request that produced it as a warm cache hit.
#[test]
fn legacy_snapshot_restores_and_serves_warm() {
    assert_eq!(
        MachineModel::tiny_test_machine().fingerprint(),
        TINY_MACHINE_FINGERPRINT,
        "machine fingerprint drifted: every captured snapshot and db page would go cold"
    );
    let copy = std::env::temp_dir()
        .join(format!("moptd-backcompat-legacy-snap-{}.json", std::process::id()));
    std::fs::copy(fixture_dir().join("legacy_snapshot.json"), &copy).unwrap();
    let state = ServiceState::new(64).with_snapshot(copy.clone()).unwrap();
    assert_eq!(state.cache.len(), 7, "all pinned snapshot entries restored");
    // The first legacy Optimize request is one of the snapshotted keys.
    let request = &fixture_lines("legacy_requests.jsonl")[0];
    let response: Response = serde_json::from_str(&state.handle_line(request)).unwrap();
    match response {
        Response::Optimized { cached, tier, .. } => {
            assert!(cached, "snapshotted entry must serve warm");
            assert_eq!(tier, Some(Tier::Cache));
        }
        other => panic!("expected Optimized, got {other:?}"),
    }
    std::fs::remove_file(&copy).ok();
}

/// Pre-spec database pages (conv-fingerprint keyed) serve a cold process
/// from the db tier: same canonicalization, same fingerprints, no solve.
#[test]
fn legacy_db_pages_serve_a_cold_process() {
    let dir =
        std::env::temp_dir().join(format!("moptd-backcompat-legacy-db-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    for entry in std::fs::read_dir(fixture_dir().join("legacy_db")).unwrap() {
        let entry = entry.unwrap();
        std::fs::copy(entry.path(), dir.join(entry.file_name())).unwrap();
    }
    let state = ServiceState::new(64).with_db(dir.clone()).unwrap();
    // Replay the legacy Optimize requests whose solves were recorded into
    // the fixture db: by shape, by table-1 name, and by deprecated alias.
    for request in &fixture_lines("legacy_requests.jsonl")[0..3] {
        let response: Response = serde_json::from_str(&state.handle_line(request)).unwrap();
        match response {
            Response::Optimized { cached, tier, result, .. } => {
                assert!(!cached);
                assert_eq!(tier, Some(Tier::Db), "request {request} must hit the db tier");
                assert!(!result.ranked.is_empty());
            }
            other => panic!("expected Optimized, got {other:?}"),
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// New with the layout axis: a layout-less legacy request must resolve to the
/// paper's default layout. The parsed schedule reports `is_default()`, the
/// wire form omits the `layout` field entirely for default-layout schedules
/// (database page checksums cover the re-serialized record list, so the
/// pre-layout byte form must be preserved exactly), and every pinned field
/// of the legacy fixture response is still served unchanged.
#[test]
fn legacy_layoutless_requests_resolve_to_the_default_layout() {
    let state = ServiceState::new(64);
    let requests = fixture_lines("legacy_requests.jsonl");
    let pinned = fixture_lines("legacy_responses.jsonl");
    for (request, pinned_line) in requests[0..3].iter().zip(&pinned[0..3]) {
        let line = state.handle_line(request);
        let response: Response = serde_json::from_str(&line).unwrap();
        let result = match response {
            Response::Optimized { result, .. } => result,
            other => panic!("expected Optimized, got {other:?}"),
        };
        for candidate in &result.ranked {
            assert!(
                candidate.config.layout.is_default(),
                "layout-less request {request} served a non-default layout {:?}",
                candidate.config.layout
            );
        }

        // Default layouts are resolved semantically, never spelled on the
        // wire: the schedule object must serialize exactly as it did before
        // the layout axis existed.
        let value = serde_json::parse_value(&line).unwrap();
        let config = value
            .get("Optimized")
            .and_then(|r| r.get("result"))
            .and_then(|r| r.get("ranked"))
            .and_then(|r| r.as_array())
            .and_then(|ranked| ranked.first())
            .and_then(|c| c.get("config"))
            .expect("reply carries a ranked schedule");
        assert!(
            config.get("layout").is_none(),
            "default layout must be omitted from the wire form, got {:?}",
            config.get("layout")
        );
        // A non-default layout does get spelled out.
        let best = result.best().config.clone().with_layout(LayoutConfig::blocked(8));
        let spelled = serde_json::to_string(&best).unwrap();
        assert!(spelled.contains("\"layout\""), "non-default layout missing: {spelled}");

        // And the pinned pre-layout fixture fields still hold around it.
        let pinned_value = serde_json::parse_value(pinned_line).unwrap();
        assert_pinned_subset(&pinned_value, &value, "response");
    }
}
