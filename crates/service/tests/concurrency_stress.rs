//! Concurrent-client stress and fault-injection tests for the event-loop
//! server: the acceptance criteria of the `mopt-loop` work.
//!
//! * a thundering herd of 32 cold clients on one shape costs exactly one
//!   solver invocation, and every client gets a bit-identical response,
//! * clients that disconnect mid-request, send half-written lines, or send
//!   oversized lines hurt nobody but themselves,
//! * shutdown while requests are in flight still answers them, closes
//!   every connection, and — through the `moptd` binary under `SIGTERM` —
//!   exits cleanly with a flushed sharded snapshot and no leaked temp
//!   files.
//!
//! These tests bind real TCP sockets and count wall-clock-sensitive
//! things (coalesced solves inside a widened solve window), so CI runs
//! this suite with `--test-threads=1`.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::process::{Command, Stdio};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use conv_exec::TiledConv;
use conv_spec::ConvShape;
use mopt_core::OptimizerOptions;
use mopt_service::{
    EventLoopServer, MachineSpec, Request, Response, ServerConfig, ServiceState, ShutdownHandle,
    Tier, MAX_REQUEST_BYTES,
};

fn fast_options() -> OptimizerOptions {
    OptimizerOptions { max_classes: 1, ..OptimizerOptions::fast() }
}

fn test_shape() -> ConvShape {
    ConvShape::new(1, 8, 4, 3, 3, 10, 10, 1).unwrap()
}

fn optimize_line(shape: ConvShape) -> String {
    serde_json::to_string(&Request::Optimize {
        spec: None,
        op: None,
        shape: Some(shape),
        machine: MachineSpec::Preset("tiny".into()),
        options: Some(fast_options()),
        threads: None,
        trace: None,
    })
    .unwrap()
}

fn start(
    state: Arc<ServiceState>,
    workers: usize,
) -> (SocketAddr, ShutdownHandle, std::thread::JoinHandle<()>) {
    let server = EventLoopServer::bind(
        state,
        "127.0.0.1:0",
        ServerConfig { workers, ..ServerConfig::default() },
    )
    .unwrap();
    let addr = server.local_addr().unwrap();
    let handle = server.shutdown_handle();
    let join = std::thread::spawn(move || server.run().unwrap());
    (addr, handle, join)
}

fn recv_response(reader: &mut BufReader<TcpStream>) -> Response {
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    assert!(!line.is_empty(), "connection closed instead of responding");
    serde_json::from_str(line.trim()).unwrap()
}

fn wait_for_drained(state: &ServiceState) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while state.metrics().open_connections() > 0 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// Acceptance: 32 concurrent clients requesting the same cold shape cost
/// exactly one solver invocation; all 32 responses are bit-identical; the
/// tier accounting (cache misses/insertions, flight counters, `Stats` over
/// the wire) is consistent with one led solve and 31 coalesced waiters.
#[test]
fn thundering_herd_of_32_cold_clients_coalesces_onto_one_solve() {
    const CLIENTS: usize = 32;
    let state = Arc::new(ServiceState::new(64));
    // Widen the coalescing window so scheduling jitter cannot let a
    // straggler arrive after the solve finished (which would make it a warm
    // hit, not a coalesced waiter).
    state.set_test_solve_delay(Duration::from_millis(750));
    // One worker per client: waiters park on the single-flight slot, and a
    // smaller pool would serialize them behind the leader instead.
    let (addr, handle, join) = start(Arc::clone(&state), CLIENTS);

    let shape = test_shape();
    let line = optimize_line(shape);
    let gate = Arc::new(Barrier::new(CLIENTS));
    let replies: Vec<String> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|_| {
                let (line, gate) = (line.clone(), Arc::clone(&gate));
                let stream = TcpStream::connect(addr).unwrap();
                scope.spawn(move || {
                    let mut reader = BufReader::new(stream.try_clone().unwrap());
                    gate.wait();
                    (&stream).write_all(format!("{line}\n").as_bytes()).unwrap();
                    let mut reply = String::new();
                    reader.read_line(&mut reply).unwrap();
                    reply
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    assert_eq!(replies.len(), CLIENTS);
    assert!(
        replies.iter().all(|r| r == &replies[0]),
        "all {CLIENTS} responses must be bit-identical"
    );
    let first: Response = serde_json::from_str(replies[0].trim()).unwrap();
    let result = match first {
        Response::Optimized { cached, tier, result, .. } => {
            assert!(!cached, "a coalesced response is not a cache hit");
            assert_eq!(tier, Some(Tier::Solver));
            result
        }
        other => panic!("expected Optimized, got {other:?}"),
    };
    // The shared result is a real certified schedule: non-empty ranking
    // whose best configuration is executable for the requested shape.
    assert!(!result.ranked.is_empty());
    TiledConv::new(shape, result.best().config.clone(), 1)
        .expect("the coalesced schedule must be valid for the shape");

    // Tier accounting, read directly…
    let flight = state.flight_stats();
    assert_eq!(flight.optimize.led, 1, "exactly one solver invocation");
    assert_eq!(flight.optimize.coalesced, (CLIENTS - 1) as u64);
    assert_eq!(flight.optimize.errors, 0);
    assert_eq!(flight.optimize.in_flight, 0);
    let cache = state.cache.stats();
    assert_eq!(cache.insertions, 1, "one solve, one insertion");
    assert_eq!(cache.misses, CLIENTS as u64, "every client missed before coalescing");
    assert_eq!(cache.hits, 0);

    // …and over the wire: `Stats` reports the same flight counters, and a
    // warm repeat is a cache hit that does not move them (the regression the
    // `coalesced` counters exist to make visible).
    state.set_test_solve_delay(Duration::ZERO);
    let stream = TcpStream::connect(addr).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    (&stream).write_all(format!("\"Stats\"\n{line}\n\"Stats\"\n").as_bytes()).unwrap();
    match recv_response(&mut reader) {
        Response::Stats { stats } => assert_eq!(stats.flight.as_ref(), Some(&flight)),
        other => panic!("expected Stats, got {other:?}"),
    }
    match recv_response(&mut reader) {
        Response::Optimized { cached, tier, .. } => {
            assert!(cached);
            assert_eq!(tier, Some(Tier::Cache));
        }
        other => panic!("expected warm Optimized, got {other:?}"),
    }
    match recv_response(&mut reader) {
        Response::Stats { stats } => {
            let after = stats.flight.expect("flight counters are in Stats");
            assert_eq!(after.optimize.led, 1, "a warm hit must not lead a flight");
            assert_eq!(after.optimize.coalesced, (CLIENTS - 1) as u64, "…nor coalesce onto one");
            assert_eq!(stats.cache.hits, 1);
        }
        other => panic!("expected Stats, got {other:?}"),
    }
    drop(reader);

    handle.shutdown();
    join.join().unwrap();
    assert_eq!(state.metrics().open_connections(), 0, "no leaked connections");
}

/// Fault injection: a client that sends a full request and vanishes before
/// its response, and a client that hangs up mid-line, cost the server
/// nothing — other connections keep being served and every connection slot
/// is reclaimed.
#[test]
fn client_disconnects_leave_the_server_serving_everyone_else() {
    let state = Arc::new(ServiceState::new(64));
    state.set_test_solve_delay(Duration::from_millis(200));
    let (addr, handle, join) = start(Arc::clone(&state), 4);
    let line = optimize_line(test_shape());

    // Victim 1: full request, disconnect before the (delayed) response.
    {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(format!("{line}\n").as_bytes()).unwrap();
    } // dropped here, mid-solve
      // Victim 2: half a request line, then EOF — never completes a request.
    {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(&format!("{line}\n").as_bytes()[..20]).unwrap();
    }

    // An innocent client gets served throughout.
    let stream = TcpStream::connect(addr).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    (&stream).write_all(format!("\"Ping\"\n{line}\n").as_bytes()).unwrap();
    assert!(matches!(recv_response(&mut reader), Response::Pong { .. }));
    assert!(matches!(recv_response(&mut reader), Response::Optimized { .. }));
    drop(reader);
    drop(stream);

    // The dropped connections' slots are reclaimed even though one of them
    // still had a solve on a worker when it vanished.
    wait_for_drained(&state);
    assert_eq!(state.metrics().open_connections(), 0, "disconnected clients must be reaped");
    assert_eq!(state.flight_stats().optimize.in_flight, 0);

    handle.shutdown();
    join.join().unwrap();
}

/// Fault injection: a half-written (syntactically broken) JSON line gets an
/// ordered `Error` response and the *same connection* keeps serving the
/// valid pipelined request behind it.
#[test]
fn half_written_line_then_valid_pipelined_request_is_served_in_order() {
    let state = Arc::new(ServiceState::new(16));
    let (addr, handle, join) = start(Arc::clone(&state), 2);

    let stream = TcpStream::connect(addr).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    // A request line cut off mid-object, then a newline, then a valid
    // pipelined request in the same segment.
    (&stream).write_all(b"{\"Optimize\": {\"op\": \"Y0\"\n\"Ping\"\n").unwrap();
    match recv_response(&mut reader) {
        Response::Error { message } => {
            assert!(message.contains("bad request"), "got: {message}")
        }
        other => panic!("expected a parse Error first, got {other:?}"),
    }
    assert!(matches!(recv_response(&mut reader), Response::Pong { .. }));
    drop(reader);
    drop(stream);

    handle.shutdown();
    join.join().unwrap();
    assert_eq!(state.metrics().open_connections(), 0);
}

/// Fault injection: one client streams an oversized line mid-pipeline while
/// another keeps pinging. The offender gets the cap `Error` at its ordered
/// position and keeps its connection; the bystander never notices.
#[test]
fn oversized_line_during_pipelining_does_not_disturb_other_clients() {
    let state = Arc::new(ServiceState::new(16));
    let (addr, handle, join) = start(Arc::clone(&state), 2);

    let offender = TcpStream::connect(addr).unwrap();
    let bystander = TcpStream::connect(addr).unwrap();
    let mut off_reader = BufReader::new(offender.try_clone().unwrap());
    let mut by_reader = BufReader::new(bystander.try_clone().unwrap());

    (&offender).write_all(b"\"Ping\"\n").unwrap();
    let offender_writer = std::thread::spawn(move || {
        let huge = vec![b'x'; MAX_REQUEST_BYTES + 4096];
        (&offender).write_all(&huge).unwrap();
        (&offender).write_all(b"\n\"Ping\"\n").unwrap();
        offender
    });
    // While the oversized line streams in, the bystander stays served.
    for _ in 0..3 {
        (&bystander).write_all(b"\"Ping\"\n").unwrap();
        assert!(matches!(recv_response(&mut by_reader), Response::Pong { .. }));
    }
    let offender = offender_writer.join().unwrap();

    assert!(matches!(recv_response(&mut off_reader), Response::Pong { .. }));
    match recv_response(&mut off_reader) {
        Response::Error { message } => assert!(message.contains("16 MiB"), "got: {message}"),
        other => panic!("expected the cap Error in order, got {other:?}"),
    }
    assert!(
        matches!(recv_response(&mut off_reader), Response::Pong { .. }),
        "the offending connection keeps serving after the cap error"
    );
    drop((off_reader, by_reader, offender, bystander));

    handle.shutdown();
    join.join().unwrap();
    assert_eq!(state.metrics().open_connections(), 0);
}

/// Drain: shutdown lands while a solve is on a worker. The in-flight
/// request is still answered and flushed before the loop exits, and every
/// connection (including an idle one) is closed.
#[test]
fn shutdown_while_a_solve_is_in_flight_still_answers_it() {
    let state = Arc::new(ServiceState::new(16));
    state.set_test_solve_delay(Duration::from_millis(400));
    let (addr, handle, join) = start(Arc::clone(&state), 2);

    let idle = TcpStream::connect(addr).unwrap();
    let stream = TcpStream::connect(addr).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    (&stream).write_all(format!("{}\n", optimize_line(test_shape())).as_bytes()).unwrap();
    // Give the loop time to hand the request to a worker, then pull the rug.
    std::thread::sleep(Duration::from_millis(100));
    handle.shutdown();

    match recv_response(&mut reader) {
        Response::Optimized { tier: Some(Tier::Solver), .. } => {}
        other => panic!("the in-flight solve must be answered during drain, got {other:?}"),
    }
    // After the drain both connections read EOF.
    let mut rest = Vec::new();
    reader.read_to_end(&mut rest).unwrap();
    assert!(rest.is_empty());
    let mut idle_reader = BufReader::new(idle);
    let mut end = Vec::new();
    idle_reader.read_to_end(&mut end).unwrap();
    assert!(end.is_empty());

    join.join().unwrap();
    assert_eq!(state.metrics().open_connections(), 0, "drain must close every connection");
}

/// End to end through the `moptd` binary: `SIGTERM` while a request is in
/// flight drains gracefully — the response still arrives, the process exits
/// zero, and the sharded snapshot is flushed with no leaked temp files.
#[test]
fn moptd_sigterm_drains_and_flushes_the_sharded_snapshot() {
    let dir = std::env::temp_dir().join(format!("moptd-drain-test-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // Grab a free port, then hand it to the daemon (bind-then-drop is the
    // only portable way to learn one without parsing moptd's stderr).
    let port = {
        let probe = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        probe.local_addr().unwrap().port()
    };
    let addr = format!("127.0.0.1:{port}");
    let mut child = Command::new(env!("CARGO_BIN_EXE_moptd"))
        .args(["--listen", &addr, "--workers", "2", "--snapshot-dir", dir.to_str().unwrap()])
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("moptd spawns");

    // The listener comes up asynchronously; retry the connect briefly.
    let stream = {
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            match TcpStream::connect(&addr) {
                Ok(stream) => break stream,
                Err(_) if Instant::now() < deadline => {
                    std::thread::sleep(Duration::from_millis(20))
                }
                Err(e) => panic!("moptd never started listening on {addr}: {e}"),
            }
        }
    };
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    (&stream).write_all(format!("{}\n", optimize_line(test_shape())).as_bytes()).unwrap();
    // Let the daemon pick the request up, then SIGTERM it mid-service.
    std::thread::sleep(Duration::from_millis(100));
    let killed =
        Command::new("kill").args(["-TERM", &child.id().to_string()]).status().expect("kill runs");
    assert!(killed.success());

    // The drain still answers the request…
    match recv_response(&mut reader) {
        Response::Optimized { result, .. } => assert!(!result.ranked.is_empty()),
        other => panic!("expected Optimized through the drain, got {other:?}"),
    }
    // …then closes the connection and exits cleanly.
    let mut rest = Vec::new();
    reader.read_to_end(&mut rest).unwrap();
    assert!(rest.is_empty());
    let status = child.wait().unwrap();
    assert!(status.success(), "moptd must exit 0 after a graceful drain, got {status}");

    // The post-drain save flushed the sharded snapshot: a manifest, at
    // least one shard holding the solve, and no leftover temp files.
    assert!(dir.join("MANIFEST.json").is_file(), "snapshot manifest must be flushed");
    let entries: Vec<String> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
        .collect();
    assert!(
        entries.iter().any(|n| n.starts_with("shard-") && n.ends_with(".json")),
        "expected a flushed shard file, found {entries:?}"
    );
    assert!(
        entries.iter().all(|n| !n.contains(".tmp.")),
        "no temp files may leak, found {entries:?}"
    );

    // A fresh daemon-less load proves the flushed snapshot is warm.
    let rewarmed = ServiceState::new(16).with_snapshot_dir(dir.clone()).unwrap();
    assert_eq!(rewarmed.cache.len(), 1, "the drained solve must be in the snapshot");

    std::fs::remove_dir_all(&dir).ok();
}

/// Acceptance (`mopt-trace`): the 32-client herd, traced. Exactly one
/// response's span tree shows a flight that actually solved (the leader);
/// the other 31 show a flight span with the `waited` role, a non-zero wait,
/// and no solve child — and the single-flight waiter-wait histogram
/// recorded exactly those 31 waits.
#[test]
fn traced_herd_shows_one_leader_and_31_waiters() {
    const CLIENTS: usize = 32;
    let state = Arc::new(ServiceState::new(64));
    state.set_test_solve_delay(Duration::from_millis(750));
    let (addr, handle, join) = start(Arc::clone(&state), CLIENTS);

    let line = serde_json::to_string(&Request::Optimize {
        spec: None,
        op: None,
        shape: Some(test_shape()),
        machine: MachineSpec::Preset("tiny".into()),
        options: Some(fast_options()),
        threads: None,
        trace: Some(true),
    })
    .unwrap();
    let gate = Arc::new(Barrier::new(CLIENTS));
    let replies: Vec<String> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|_| {
                let (line, gate) = (line.clone(), Arc::clone(&gate));
                let stream = TcpStream::connect(addr).unwrap();
                scope.spawn(move || {
                    let mut reader = BufReader::new(stream.try_clone().unwrap());
                    gate.wait();
                    (&stream).write_all(format!("{line}\n").as_bytes()).unwrap();
                    let mut reply = String::new();
                    reader.read_line(&mut reply).unwrap();
                    reply
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let (mut leaders, mut waiters) = (0usize, 0usize);
    for reply in &replies {
        let root = match serde_json::from_str::<Response>(reply.trim()).unwrap() {
            Response::Optimized { cached: false, trace: Some(root), .. } => root,
            other => panic!("expected a traced cold Optimized, got {other:?}"),
        };
        let flight = root.find("flight").expect("every herd client enters the flight");
        match flight.tag_value("role") {
            Some("led") => {
                leaders += 1;
                assert!(flight.find("solve").is_some(), "the leader's flight solves: {flight:?}");
            }
            Some("waited") => {
                waiters += 1;
                assert!(flight.find("solve").is_none(), "waiters never solve: {flight:?}");
                assert!(
                    flight.duration_micros > 0,
                    "a coalesced waiter's flight wait must be visible"
                );
            }
            role => panic!("flight span without a role tag ({role:?}): {flight:?}"),
        }
    }
    assert_eq!(leaders, 1, "exactly one span tree may contain the solve");
    assert_eq!(waiters, CLIENTS - 1);

    // The waiter-wait histogram saw exactly the 31 coalesced waits, each of
    // them at least as long as nothing (and the slowest roughly the solve
    // window, but scheduler jitter makes that bound unassertable) — while
    // the leader recorded nothing.
    let waits = state.flight_stats().optimize.waiter_wait.expect("waiter-wait section present");
    assert_eq!(waits.count, (CLIENTS - 1) as u64);
    assert!(waits.max_micros > 0, "parked waiters wait a measurable time");

    handle.shutdown();
    join.join().unwrap();
    assert_eq!(state.metrics().open_connections(), 0);
}
