//! Acceptance: with tracing disabled, the warm-hit path allocates no trace
//! state at all.
//!
//! [`mopt_trace`] counts every span-state allocation in a global counter
//! (`span_allocations`); a disabled [`mopt_trace::TraceContext`] is an
//! `Option::None` and every span/tag/record call on it is a no-op. This
//! test lives in its own integration-test binary (its own process) because
//! the counter is process-global: any concurrently running test that
//! enables tracing — and the service tests do — would race the delta.

use mopt_core::OptimizerOptions;
use mopt_service::{Response, ServiceState};

#[test]
fn warm_hits_without_tracing_allocate_no_spans() {
    let state = ServiceState::new(64);
    let options = OptimizerOptions { max_classes: 1, ..OptimizerOptions::fast() };
    let line = format!(
        "{{\"Optimize\": {{\"op\": \"M9\", \"machine\": {{\"Preset\": \"tiny\"}}, \"options\": {}}}}}",
        serde_json::to_string(&options).unwrap(),
    );
    // Warm the cache (the cold solve also runs with tracing disabled, but
    // only the warm path is the latency-critical one the guarantee is for).
    let cold: Response = serde_json::from_str(&state.handle_line(&line)).unwrap();
    assert!(matches!(cold, Response::Optimized { cached: false, .. }));

    let before = mopt_trace::span_allocations();
    for _ in 0..100 {
        let warm: Response = serde_json::from_str(&state.handle_line(&line)).unwrap();
        assert!(matches!(warm, Response::Optimized { cached: true, trace: None, .. }));
    }
    assert_eq!(
        mopt_trace::span_allocations() - before,
        0,
        "disabled tracing must not allocate span state on the warm-hit path"
    );

    // Sanity check on the counter itself: a traced request moves it.
    let traced_line = line.replace(", \"options\"", ", \"trace\": true, \"options\"");
    let traced: Response = serde_json::from_str(&state.handle_line(&traced_line)).unwrap();
    assert!(matches!(traced, Response::Optimized { trace: Some(_), .. }));
    assert!(
        mopt_trace::span_allocations() > before,
        "an enabled context must be visible to the counter"
    );
}
