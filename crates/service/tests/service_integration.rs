//! Integration tests for the serving layer: the acceptance criteria of the
//! `mopt-service` subsystem.
//!
//! * warm whole-network planning of the 32 Table-1 operators is ≥10x
//!   faster than the cold run,
//! * a `moptd` round trip (`Optimize` request → `OptimizedConfig` response
//!   → execution via `TiledConv`) matches `conv2d_naive`,
//! * serialized results survive text round trips exactly.

use std::io::{BufRead, BufReader, Write};
use std::process::{Command, Stdio};
use std::time::Instant;

use conv_exec::naive::conv2d_naive;
use conv_exec::{NchwcConv, Tensor4, TiledConv};
use conv_spec::{benchmarks, ConvShape, MachineModel, TileConfig};
use mopt_core::{OptimizeResult, OptimizerOptions};
use mopt_service::batch::NamedLayer;
use mopt_service::{NetworkPlanner, Request, Response, ScheduleCache, ServiceState};
use serde::Value;

fn fast_options() -> OptimizerOptions {
    OptimizerOptions { max_classes: 1, ..OptimizerOptions::fast() }
}

/// Acceptance: planning all 32 Table-1 operators a second time (cache
/// populated) must be at least 10x faster than the cold run.
#[test]
fn warm_table1_planning_is_10x_faster_than_cold() {
    let cache = ScheduleCache::new(256);
    let planner = NetworkPlanner::new(&cache, MachineModel::i7_9700k(), fast_options());

    let t_cold = Instant::now();
    let cold = planner.plan_table1();
    let cold_seconds = t_cold.elapsed().as_secs_f64();

    let t_warm = Instant::now();
    let warm = planner.plan_table1();
    let warm_seconds = t_warm.elapsed().as_secs_f64();

    assert_eq!(cold.stats.layers, 32);
    assert_eq!(cold.stats.cache_hits, 0);
    assert_eq!(warm.stats.cache_hits, warm.stats.unique_shapes);
    assert_eq!(warm.stats.solves, 0);
    assert!(warm.layers.iter().all(|l| l.from_cache));
    for (a, b) in cold.layers.iter().zip(&warm.layers) {
        assert_eq!(a.best, b.best, "warm plan diverged for {}", a.name);
    }
    assert!(
        warm_seconds * 10.0 <= cold_seconds,
        "warm planning ({warm_seconds:.4}s) is not ≥10x faster than cold ({cold_seconds:.4}s)"
    );
}

/// Acceptance: an `Optimize` request's returned configuration, executed by
/// `TiledConv`, computes the same convolution as the naive reference.
#[test]
fn optimize_response_executes_correctly() {
    let state = ServiceState::new(16);
    let shape = ConvShape::new(1, 8, 4, 3, 3, 12, 12, 1).unwrap();
    let request = Request::Optimize {
        spec: None,
        op: None,
        shape: Some(shape),
        machine: mopt_service::MachineSpec::Preset("tiny".into()),
        options: Some(fast_options()),
        threads: None,
        trace: None,
    };
    let response = state.handle(&request);
    let result = match response {
        Response::Optimized { result, shape: s, .. } => {
            assert_eq!(s, shape);
            result
        }
        other => panic!("expected Optimized, got {other:?}"),
    };

    let best: TileConfig = result.best().config.clone();
    assert!(best.validate(&shape).is_ok());
    let input = Tensor4::random(shape.n, shape.c, shape.input_h(), shape.input_w(), 11);
    let kernel = Tensor4::random(shape.k, shape.c, shape.r, shape.s, 22);
    let reference = conv2d_naive(&shape, &input, &kernel);
    let tiled = TiledConv::new(shape, best, 1).unwrap().run(&input, &kernel);
    assert!(
        reference.allclose(&tiled, 1e-3),
        "optimized configuration computes a different convolution"
    );
}

/// The same round trip through the real `moptd` binary over stdio: request
/// in, JSON response out, executed configuration matches the reference.
#[test]
fn moptd_stdio_round_trip_matches_naive() {
    let shape = ConvShape::new(1, 8, 4, 3, 3, 12, 12, 1).unwrap();
    let request = serde_json::to_string(&Request::Optimize {
        spec: None,
        op: None,
        shape: Some(shape),
        machine: mopt_service::MachineSpec::Preset("tiny".into()),
        options: Some(fast_options()),
        threads: None,
        trace: None,
    })
    .unwrap();

    let mut child = Command::new(env!("CARGO_BIN_EXE_moptd"))
        .args(["--stdio"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("moptd spawns");
    {
        let stdin = child.stdin.as_mut().expect("moptd stdin");
        stdin.write_all(request.as_bytes()).unwrap();
        stdin.write_all(b"\n\"Ping\"\n").unwrap();
    }
    child.stdin.take(); // close stdin so moptd exits
    let stdout = BufReader::new(child.stdout.take().expect("moptd stdout"));
    let lines: Vec<String> = stdout.lines().map(|l| l.unwrap()).collect();
    let status = child.wait().unwrap();
    assert!(status.success(), "moptd exited with {status}");
    assert_eq!(lines.len(), 2, "expected two response lines, got {lines:?}");
    match serde_json::from_str::<Response>(&lines[1]).unwrap() {
        Response::Pong { version, uptime_seconds } => {
            assert_eq!(version, env!("CARGO_PKG_VERSION"));
            assert!(uptime_seconds.expect("uptime reported") >= 0.0);
        }
        other => panic!("expected Pong, got {other:?}"),
    }

    let response: Response = serde_json::from_str(&lines[0]).unwrap();
    let result = match response {
        Response::Optimized { result, .. } => result,
        other => panic!("expected Optimized, got {other:?}"),
    };
    let best = result.best().config.clone();
    let input = Tensor4::random(shape.n, shape.c, shape.input_h(), shape.input_w(), 5);
    let kernel = Tensor4::random(shape.k, shape.c, shape.r, shape.s, 6);
    let reference = conv2d_naive(&shape, &input, &kernel);
    let tiled = TiledConv::new(shape, best, 1).unwrap().run(&input, &kernel);
    assert!(reference.allclose(&tiled, 1e-3));
}

/// Acceptance: `moptd` serves an `Optimize` request for a depthwise
/// MobileNetV2 stage (by suite name) and for a dilation-2 convolution (by
/// explicit shape, including the new `dilation` field on the wire), and the
/// returned schedules executed via `TiledConv` match the naive reference.
#[test]
fn moptd_serves_depthwise_and_dilated_shapes() {
    let v5 = benchmarks::by_name("V5").unwrap().shape;
    assert!(v5.is_depthwise());
    let dilated = ConvShape::new(1, 8, 4, 3, 3, 10, 10, 1).unwrap().with_dilation(2).unwrap();

    let by_name_request = serde_json::to_string(&Request::Optimize {
        spec: None,
        op: Some("V5".into()),
        shape: None,
        machine: mopt_service::MachineSpec::Preset("tiny".into()),
        options: Some(fast_options()),
        threads: None,
        trace: None,
    })
    .unwrap();
    let by_shape_request = serde_json::to_string(&Request::Optimize {
        spec: None,
        op: None,
        shape: Some(dilated),
        machine: mopt_service::MachineSpec::Preset("tiny".into()),
        options: Some(fast_options()),
        threads: None,
        trace: None,
    })
    .unwrap();
    // The dilated request really carries the new field on the wire.
    assert!(by_shape_request.contains("\"dilation\":2"));

    let mut child = Command::new(env!("CARGO_BIN_EXE_moptd"))
        .args(["--stdio"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("moptd spawns");
    {
        let stdin = child.stdin.as_mut().expect("moptd stdin");
        stdin.write_all(format!("{by_name_request}\n{by_shape_request}\n").as_bytes()).unwrap();
    }
    child.stdin.take();
    let stdout = BufReader::new(child.stdout.take().expect("moptd stdout"));
    let lines: Vec<String> = stdout.lines().map(|l| l.unwrap()).collect();
    assert!(child.wait().unwrap().success());
    assert_eq!(lines.len(), 2, "expected two response lines, got {lines:?}");

    for (line, shape, seed) in [(&lines[0], v5, 71u64), (&lines[1], dilated, 72u64)] {
        let response: Response = serde_json::from_str(line).unwrap();
        let result = match response {
            Response::Optimized { result, shape: served, .. } => {
                assert_eq!(served, shape);
                result
            }
            other => panic!("expected Optimized for {shape}, got {other:?}"),
        };
        let best = result.best().config.clone();
        assert!(best.validate(&shape).is_ok());
        let (ni, ci, hi, wi) = shape.input_dims();
        let (kk, kc, kr, ks) = shape.kernel_dims();
        let input = Tensor4::random(ni, ci, hi, wi, seed);
        let kernel = Tensor4::random(kk, kc, kr, ks, seed + 1);
        let reference = conv2d_naive(&shape, &input, &kernel);
        let tiled = TiledConv::new(shape, best, 2).unwrap().run(&input, &kernel);
        assert!(
            reference.allclose(&tiled, 1e-3),
            "served schedule for {shape} diverges from the naive reference"
        );
    }
}

/// Backward compatibility: a legacy request whose shape JSON has no
/// `dilation`/`groups` fields still parses and hits the same cache entry as
/// the explicit dense form.
#[test]
fn legacy_wire_shapes_parse_and_share_cache_entries() {
    let state = ServiceState::new(16);
    let legacy = format!(
        "{{\"Optimize\": {{\"shape\": {{\"n\":1,\"k\":8,\"c\":4,\"r\":3,\"s\":3,\"h\":10,\"w\":10,\"stride\":1}}, \"machine\": {{\"Preset\": \"tiny\"}}, \"options\": {}}}}}",
        serde_json::to_string(&fast_options()).unwrap()
    );
    let explicit = format!(
        "{{\"Optimize\": {{\"shape\": {}, \"machine\": {{\"Preset\": \"tiny\"}}, \"options\": {}}}}}",
        serde_json::to_string(&ConvShape::new(1, 8, 4, 3, 3, 10, 10, 1).unwrap()).unwrap(),
        serde_json::to_string(&fast_options()).unwrap()
    );
    let first: Response = serde_json::from_str(&state.handle_line(&legacy)).unwrap();
    let second: Response = serde_json::from_str(&state.handle_line(&explicit)).unwrap();
    match (first, second) {
        (
            Response::Optimized { cached: false, result: a, .. },
            Response::Optimized { cached: true, result: b, .. },
        ) => assert_eq!(a.ranked, b.ranked),
        other => panic!("expected cold legacy then warm explicit, got {other:?}"),
    }
}

/// The new suites are servable through `PlanNetwork`.
#[test]
fn plan_network_serves_generalized_suites() {
    let state = ServiceState::new(64);
    for (suite, expected_layers) in [("mobilenetv2", 9), ("dilated", 5)] {
        let line = format!(
            "{{\"PlanNetwork\": {{\"suite\": \"{suite}\", \"machine\": {{\"Preset\": \"tiny\"}}, \"options\": {}, \"workers\": 4}}}}",
            serde_json::to_string(&fast_options()).unwrap()
        );
        let response: Response = serde_json::from_str(&state.handle_line(&line)).unwrap();
        match response {
            Response::Planned { plan, .. } => {
                assert_eq!(plan.stats.layers, expected_layers, "suite {suite}");
                for layer in &plan.layers {
                    assert!(layer.best.config.validate(&layer.shape).is_ok());
                }
            }
            other => panic!("expected Planned for {suite}, got {other:?}"),
        }
    }
}

/// `moptd --snapshot`: a second process starts warm from the first's cache.
#[test]
fn moptd_snapshot_warms_across_processes() {
    let mut path = std::env::temp_dir();
    path.push(format!("moptd-itest-snapshot-{}.json", std::process::id()));
    std::fs::remove_file(&path).ok();

    let shape = ConvShape::new(1, 4, 4, 3, 3, 8, 8, 1).unwrap();
    let request = serde_json::to_string(&Request::Optimize {
        spec: None,
        op: None,
        shape: Some(shape),
        machine: mopt_service::MachineSpec::Preset("tiny".into()),
        options: Some(fast_options()),
        threads: None,
        trace: None,
    })
    .unwrap();

    let run = |expect_cached: bool| {
        let output = Command::new(env!("CARGO_BIN_EXE_moptd"))
            .args(["--stdio", "--snapshot", path.to_str().unwrap()])
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .and_then(|mut child| {
                child
                    .stdin
                    .as_mut()
                    .expect("stdin")
                    .write_all(format!("{request}\n").as_bytes())?;
                child.stdin.take();
                child.wait_with_output()
            })
            .expect("moptd runs");
        let line = String::from_utf8(output.stdout).unwrap();
        let response: Response = serde_json::from_str(line.trim()).unwrap();
        match response {
            Response::Optimized { cached, result, .. } => {
                assert_eq!(
                    cached, expect_cached,
                    "expected cached={expect_cached} from snapshot state"
                );
                result
            }
            other => panic!("expected Optimized, got {other:?}"),
        }
    };

    let cold = run(false);
    let warm = run(true);
    assert_eq!(cold.ranked, warm.ranked, "snapshot must reproduce the exact result");
    std::fs::remove_file(&path).ok();
}

/// Satellite: serde round trips are exact for the protocol's payload types.
#[test]
fn serde_round_trips_are_exact() {
    let machine = MachineModel::tiny_test_machine();
    let shape = ConvShape::new(1, 8, 4, 3, 3, 10, 10, 1).unwrap();
    let result = mopt_core::MOptOptimizer::new(shape, machine, fast_options()).optimize();

    // OptimizeResult round trip (bit-exact floats via shortest formatting).
    let text = serde_json::to_string(&result).unwrap();
    let back: OptimizeResult = serde_json::from_str(&text).unwrap();
    assert_eq!(result, back);

    // TileConfig round trip.
    let config = result.best().config.clone();
    let text = serde_json::to_string(&config).unwrap();
    let back: TileConfig = serde_json::from_str(&text).unwrap();
    assert_eq!(config, back);

    // Request/Response round trips.
    let request = Request::PlanNetwork {
        suite: Some("resnet18".into()),
        layers: None,
        machine: mopt_service::MachineSpec::Custom(MachineModel::i9_10980xe()),
        options: Some(OptimizerOptions::default()),
        threads: None,
        trace: None,
        workers: Some(4),
    };
    let text = serde_json::to_string(&request).unwrap();
    let back: Request = serde_json::from_str(&text).unwrap();
    assert_eq!(request, back);
}

/// Acceptance (tentpole): a `PlanGraph` request for a real MobileNetV2
/// inverted-residual block, served end-to-end through the `moptd` binary
/// over stdio, returns a plan whose depthwise → pointwise tail is fused with
/// strictly less modeled traffic than the per-layer plan — and executing the
/// returned fused segment with the fused executor is bit-for-bit identical
/// to the sequential naive reference.
#[test]
fn moptd_plan_graph_fused_schedule_executes_correctly() {
    use conv_exec::FusedDwPw;
    use mopt_graph::GraphPlan;

    // The i7's L3 easily co-hosts a V5-stage dw + project working set, so
    // the fusion must be taken. Fast options keep the three solves quick.
    let request = format!(
        "{{\"PlanGraph\": {{\"block\": \"mbv2-block5\", \"machine\": {{\"Preset\": \"i7-9700k\"}}, \"options\": {}, \"workers\": 4}}}}",
        serde_json::to_string(&fast_options()).unwrap()
    );

    let mut child = Command::new(env!("CARGO_BIN_EXE_moptd"))
        .args(["--stdio"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("moptd spawns");
    {
        let stdin = child.stdin.as_mut().expect("moptd stdin");
        stdin.write_all(format!("{request}\n{request}\n").as_bytes()).unwrap();
    }
    child.stdin.take();
    let stdout = BufReader::new(child.stdout.take().expect("moptd stdout"));
    let lines: Vec<String> = stdout.lines().map(|l| l.unwrap()).collect();
    assert!(child.wait().unwrap().success());
    assert_eq!(lines.len(), 2, "expected two response lines, got {lines:?}");

    let parse = |line: &str| -> (bool, GraphPlan) {
        match serde_json::from_str::<Response>(line).unwrap() {
            Response::GraphPlanned { cached, plan, .. } => (cached, plan),
            other => panic!("expected GraphPlanned, got {other:?}"),
        }
    };
    let (cold_cached, plan) = parse(&lines[0]);
    let (warm_cached, warm) = parse(&lines[1]);
    assert!(!cold_cached);
    assert!(warm_cached, "second identical request must hit the graph-plan cache");
    assert_eq!(plan, warm);

    // The plan fuses exactly the depthwise → pointwise tail and its modeled
    // traffic is strictly below the unfused per-layer plan.
    assert_eq!(plan.graph, "mbv2-block5");
    assert_eq!(plan.fusions_taken, 1);
    assert!(
        plan.fused_volume < plan.unfused_volume,
        "fused {} must be strictly below unfused {}",
        plan.fused_volume,
        plan.unfused_volume
    );
    let seg = plan.executable_segments().next().expect("an executable fused segment");
    assert_eq!(seg.ops.len(), 2);
    let dw = seg.ops[0].shape;
    let pw = seg.ops[1].shape;
    assert!(dw.is_depthwise() && pw.is_pointwise());
    assert_eq!(seg.relu_between, vec![true], "MobileNetV2 has a ReLU before the projection");

    // Execute the returned fused segment: bit-for-bit against running the
    // two naive convolutions (with the ReLU in between) sequentially.
    let fused = FusedDwPw::new(dw, pw).unwrap().with_relu_intermediate(true);
    let input = Tensor4::random(dw.n, dw.c, dw.input_h(), dw.input_w(), 91);
    let dwk = {
        let (k, c, r, s) = dw.kernel_dims();
        Tensor4::random(k, c, r, s, 92)
    };
    let pwk = {
        let (k, c, r, s) = pw.kernel_dims();
        Tensor4::random(k, c, r, s, 93)
    };
    let got = fused.run(&input, &dwk, &pwk);
    let reference = fused.run_sequential(&input, &dwk, &pwk);
    assert_eq!(got.as_slice(), reference.as_slice(), "fused execution must be bit-for-bit exact");

    // The non-fused expansion layer's schedule still executes correctly.
    let expand = &plan.segments[0].ops[0];
    assert_eq!(expand.name, "expand");
    let e_in = Tensor4::random(
        expand.shape.n,
        expand.shape.c,
        expand.shape.input_h(),
        expand.shape.input_w(),
        94,
    );
    let e_ker = {
        let (k, c, r, s) = expand.shape.kernel_dims();
        Tensor4::random(k, c, r, s, 95)
    };
    let e_ref = conv2d_naive(&expand.shape, &e_in, &e_ker);
    let e_tiled =
        TiledConv::new(expand.shape, expand.best.config.clone(), 2).unwrap().run(&e_in, &e_ker);
    assert!(e_ref.allclose(&e_tiled, 1e-3));
}

/// The fused plan also wins on the *measured* (tile-simulated) traffic axis:
/// for the fused segment of a MobileNetV2 block, the `tilesim` estimate of
/// the fused pair is strictly below the two stand-alone schedules.
#[test]
fn fused_plan_beats_unfused_in_tilesim_traffic() {
    use cache_sim::TileTrafficSimulator;
    use conv_spec::TilingLevel;

    let state = ServiceState::new(64);
    let graph = mopt_graph::builders::mobilenet_v2_block(5).unwrap();
    let request = Request::PlanGraph {
        block: None,
        graph: Some(graph),
        machine: mopt_service::MachineSpec::Preset("i7-9700k".into()),
        options: Some(fast_options()),
        threads: None,
        trace: None,
        workers: Some(4),
    };
    let plan = match state.handle(&request) {
        Response::GraphPlanned { plan, .. } => plan,
        other => panic!("expected GraphPlanned, got {other:?}"),
    };
    let seg = plan.executable_segments().next().expect("a fused dw→pw segment");
    let (dw, pw) = (&seg.ops[0], &seg.ops[1]);
    let sim = TileTrafficSimulator::default();
    let est = sim.fused_pair_traffic(
        &dw.shape,
        &dw.best.config,
        &pw.shape,
        &pw.best.config,
        TilingLevel::L3,
    );
    assert!(
        est.fused_total < est.unfused_total,
        "tilesim: fused {} must be strictly below unfused {}",
        est.fused_total,
        est.unfused_total
    );
    // The deleted traffic is at least the intermediate store + load.
    assert!(est.saving() >= 2.0 * est.intermediate_elems);
}

/// Multicore serving: a multi-threaded plan request through the `moptd`
/// binary returns parallel schedules (factors multiplying to the requested
/// thread count), keyed separately from the sequential plan of the same
/// shape, and the parallel executor runs the returned schedule bit-for-bit
/// identically to the sequential tile walk.
#[test]
fn moptd_serves_multithreaded_plans_with_distinct_cache_keys() {
    use conv_exec::ParTiledConv;

    let shape = ConvShape::new(1, 8, 4, 3, 3, 12, 12, 1).unwrap();
    let layers = format!(
        "[{{\"name\": \"l0\", \"shape\": {0}}}, {{\"name\": \"l1\", \"shape\": {0}}}]",
        serde_json::to_string(&shape).unwrap()
    );
    let options = serde_json::to_string(&fast_options()).unwrap();
    let plan_at = |threads: usize| {
        format!(
            "{{\"PlanNetwork\": {{\"layers\": {layers}, \"machine\": {{\"Preset\": \"tiny\"}}, \"options\": {options}, \"threads\": {threads}, \"workers\": 2}}}}"
        )
    };

    let mut child = Command::new(env!("CARGO_BIN_EXE_moptd"))
        .args(["--stdio"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("moptd spawns");
    {
        let stdin = child.stdin.as_mut().expect("moptd stdin");
        stdin.write_all(format!("{}\n{}\n\"Stats\"\n", plan_at(1), plan_at(4)).as_bytes()).unwrap();
    }
    child.stdin.take();
    let stdout = BufReader::new(child.stdout.take().expect("moptd stdout"));
    let lines: Vec<String> = stdout.lines().map(|l| l.unwrap()).collect();
    assert!(child.wait().unwrap().success());
    assert_eq!(lines.len(), 3, "expected three response lines, got {lines:?}");

    let plan = |line: &str| match serde_json::from_str::<Response>(line).unwrap() {
        Response::Planned { plan, .. } => plan,
        other => panic!("expected Planned, got {other:?}"),
    };
    let sequential = plan(&lines[0]);
    let parallel = plan(&lines[1]);
    assert_eq!(sequential.layers[0].best.config.total_parallelism(), 1);
    assert_eq!(parallel.layers[0].best.config.total_parallelism(), 4);
    // Identical layers dedupe within a request, but the 1-thread and the
    // 4-thread plan are distinct cache entries.
    match serde_json::from_str::<Response>(&lines[2]).unwrap() {
        Response::Stats { stats } => assert_eq!(stats.cache.entries, 2),
        other => panic!("expected Stats, got {other:?}"),
    }

    // Execute the parallel schedule: the returned parallel axis partitions
    // the output across 4 threads bit-for-bit equal to the sequential walk.
    let best = parallel.layers[0].best.config.clone();
    let input = Tensor4::random(shape.n, shape.c, shape.input_h(), shape.input_w(), 81);
    let kernel = Tensor4::random(shape.k, shape.c, shape.r, shape.s, 82);
    let sequential_out = TiledConv::new(shape, best.clone(), 1).unwrap().run(&input, &kernel);
    let parallel_out = ParTiledConv::new(shape, best, 4).unwrap().run(&input, &kernel);
    assert_eq!(parallel_out.as_slice(), sequential_out.as_slice());
    assert!(conv2d_naive(&shape, &input, &kernel).allclose(&parallel_out, 1e-3));
}

/// Acceptance (tentpole): `mopt-plan-world` pre-populates the schedule
/// database offline; a *cold* `moptd --db` process — empty cache, no prior
/// requests — then answers an `Optimize` request for a suite shape from the
/// database tier, with zero optimizer solves. The request asks for 8
/// threads while the populator solved at 1 thread, so the answer is a
/// re-ranked stored entry; its price is certified bit-identical to the
/// direct model's prediction for the served schedule.
#[test]
fn plan_world_db_serves_cold_moptd_without_solving() {
    use conv_spec::TilingLevel;
    use mopt_model::cost::CostOptions;
    use mopt_model::multilevel::{MultiLevelModel, ParallelSpec};
    use mopt_service::Tier;

    let dir = std::env::temp_dir().join(format!("mopt-plan-world-itest-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();

    // Plan the world: one small suite x the tiny preset, fast settings.
    let populate = Command::new(env!("CARGO_BIN_EXE_mopt-plan-world"))
        .args([
            "--db",
            dir.to_str().unwrap(),
            "--suite",
            "mobilenetv2",
            "--preset",
            "tiny",
            "--threads",
            "1",
            "--classes",
            "1",
            "--multistart",
            "0",
        ])
        .output()
        .expect("mopt-plan-world runs");
    assert!(
        populate.status.success(),
        "mopt-plan-world failed: {}",
        String::from_utf8_lossy(&populate.stderr)
    );

    // A cold daemon over the populated database: the very first request —
    // V5 is a MobileNetV2-suite operator — at 8 threads.
    let request = serde_json::to_string(&Request::Optimize {
        spec: None,
        op: Some("V5".into()),
        shape: None,
        machine: mopt_service::MachineSpec::Preset("tiny".into()),
        options: Some(fast_options()),
        threads: Some(8),
        trace: None,
    })
    .unwrap();
    let mut child = Command::new(env!("CARGO_BIN_EXE_moptd"))
        .args(["--stdio", "--db", dir.to_str().unwrap()])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("moptd spawns");
    {
        let stdin = child.stdin.as_mut().expect("moptd stdin");
        stdin.write_all(format!("{request}\n\"Stats\"\n").as_bytes()).unwrap();
    }
    child.stdin.take();
    let stdout = BufReader::new(child.stdout.take().expect("moptd stdout"));
    let lines: Vec<String> = stdout.lines().map(|l| l.unwrap()).collect();
    assert!(child.wait().unwrap().success());
    assert_eq!(lines.len(), 2, "expected two response lines, got {lines:?}");

    let shape = benchmarks::by_name("V5").unwrap().shape;
    let result = match serde_json::from_str::<Response>(&lines[0]).unwrap() {
        Response::Optimized { tier, cached, shape: served, result, .. } => {
            assert_eq!(served, shape);
            assert_eq!(tier, Some(Tier::Db), "first request must be answered by the db tier");
            assert!(!cached);
            result
        }
        other => panic!("expected Optimized, got {other:?}"),
    };
    // Stats confirm: one db hit, no misses, no errors — and no inserts,
    // i.e. the optimizer never ran (a solve would have written through).
    match serde_json::from_str::<Response>(&lines[1]).unwrap() {
        Response::Stats { stats } => {
            let db = stats.db.expect("db stats present under --db");
            assert_eq!(
                (db.hits, db.misses, db.errors, db.inserts),
                (1, 0, 0, 0),
                "cold request must be served without an optimizer solve"
            );
        }
        other => panic!("expected Stats, got {other:?}"),
    }

    // The re-ranked schedule is one the direct optimizer would certify:
    // valid for the raw shape, the requested parallelism, inside the
    // per-thread L3 envelope, and priced bit-identically by the model.
    let machine = MachineModel::tiny_test_machine();
    let best = &result.ranked[0];
    assert!(best.config.validate(&shape).is_ok());
    assert_eq!(best.config.total_parallelism(), 8);
    assert!(
        best.config.level(TilingLevel::L3).footprint(&shape)
            <= machine.capacity_per_thread(TilingLevel::L3, 8)
    );
    let spec = ParallelSpec { threads: 8, factors: best.config.parallel.as_array() };
    let direct = MultiLevelModel::new(shape, machine, best.config.permutation.clone())
        .with_options(CostOptions { line_elems: fast_options().line_elems })
        .with_parallel(spec)
        .predict_config(&best.config);
    assert_eq!(best.predicted_cost, direct.bottleneck_cost);
    assert_eq!(best.prediction, direct);

    std::fs::remove_dir_all(&dir).ok();
}

/// The cache dedupes across suites: Table-1 contains every suite, so
/// planning a suite after Table-1 is fully warm.
#[test]
fn suite_plans_reuse_table1_cache_entries() {
    let cache = ScheduleCache::new(256);
    let machine = MachineModel::tiny_test_machine();
    let planner = NetworkPlanner::new(&cache, machine, fast_options());
    // Scaled-down stand-in for Table 1 keeps this test fast in debug builds.
    let ops = benchmarks::scaled_operators(8, 16);
    let cold = planner.plan_ops(&ops);
    assert_eq!(cold.stats.layers, 32);

    let resnet: Vec<NamedLayer> = ops
        .iter()
        .filter(|op| op.suite == conv_spec::BenchmarkSuite::ResNet18)
        .map(NamedLayer::from)
        .collect();
    let warm = planner.plan(&resnet);
    assert_eq!(warm.stats.solves, 0);
    assert!(warm.layers.iter().all(|l| l.from_cache));
}

/// Acceptance (`mopt-trace`): `Explain` over stdio through the real `moptd`
/// binary returns the optimizer's search trace and a per-level cost
/// breakdown that re-certifies the served schedule bit-for-bit — and the
/// schedule itself is bit-identical to what a plain `Optimize` serves.
#[test]
fn explain_over_stdio_recertifies_bit_identically() {
    use mopt_model::cost::CostOptions;
    use mopt_model::multilevel::{MultiLevelModel, ParallelSpec};

    let explain = serde_json::to_string(&Request::Explain {
        spec: None,
        op: Some("V5".into()),
        shape: None,
        machine: mopt_service::MachineSpec::Preset("tiny".into()),
        options: Some(fast_options()),
        threads: None,
    })
    .unwrap();
    let optimize = serde_json::to_string(&Request::Optimize {
        spec: None,
        op: Some("V5".into()),
        shape: None,
        machine: mopt_service::MachineSpec::Preset("tiny".into()),
        options: Some(fast_options()),
        threads: None,
        trace: None,
    })
    .unwrap();

    let mut child = Command::new(env!("CARGO_BIN_EXE_moptd"))
        .args(["--stdio"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("moptd spawns");
    {
        let stdin = child.stdin.as_mut().expect("moptd stdin");
        stdin.write_all(format!("{explain}\n{optimize}\n").as_bytes()).unwrap();
    }
    child.stdin.take();
    let stdout = BufReader::new(child.stdout.take().expect("moptd stdout"));
    let lines: Vec<String> = stdout.lines().map(|l| l.unwrap()).collect();
    assert!(child.wait().unwrap().success());
    assert_eq!(lines.len(), 2, "expected two response lines, got {lines:?}");

    let shape = benchmarks::by_name("V5").unwrap().shape;
    let (result, search, breakdown) = match serde_json::from_str::<Response>(&lines[0]).unwrap() {
        Response::Explained { op, shape: served, cached, result, search, breakdown, .. } => {
            assert_eq!(op.as_deref(), Some("V5"));
            assert_eq!(served, shape);
            assert!(!cached, "the first request of a cold daemon cannot be cached");
            (result, search, breakdown)
        }
        other => panic!("expected Explained, got {other:?}"),
    };

    // The search trace is a complete account of the exploration: every
    // candidate class is listed, the global tallies are the per-candidate
    // sums, and pruning is visible.
    assert_eq!(search.permutations_total, 5040, "7! loop orders before pruning");
    assert!(search.classes_searched >= 1);
    assert!(search.permutations_pruned > 0);
    assert_eq!(search.candidates.len(), search.classes_searched as usize);
    assert!(search.enumerated > 0);
    assert_eq!(search.enumerated, search.candidates.iter().map(|c| c.enumerated).sum::<u64>());
    assert_eq!(
        search.capacity_pruned,
        search.candidates.iter().map(|c| c.capacity_pruned).sum::<u64>()
    );
    let best = result.best();
    assert_eq!(search.winner_class, best.class_id);
    assert_eq!(search.winner_cost, best.predicted_cost);

    // The per-level breakdown sums (bit-for-bit) to the certified price.
    assert_eq!(breakdown.attributed_total(), breakdown.total_cost);
    assert_eq!(breakdown.total_cost, best.predicted_cost);

    // …and an in-process model re-certifies the same price for the served
    // schedule: Explain's numbers are the model's numbers, not a story.
    let machine = MachineModel::tiny_test_machine();
    let spec =
        ParallelSpec { threads: fast_options().threads, factors: best.config.parallel.as_array() };
    let direct = MultiLevelModel::new(shape, machine, best.config.permutation.clone())
        .with_options(CostOptions { line_elems: fast_options().line_elems })
        .with_parallel(spec)
        .predict_config(&best.config);
    assert_eq!(best.predicted_cost, direct.bottleneck_cost);

    // The plain Optimize (same key, now warm from the Explain) serves the
    // bit-identical schedule.
    match serde_json::from_str::<Response>(&lines[1]).unwrap() {
        Response::Optimized { cached, result: plain, .. } => {
            assert!(cached, "Explain must warm the cache for Optimize");
            assert_eq!(plain, result, "Explain and Optimize must serve the same schedule");
        }
        other => panic!("expected Optimized, got {other:?}"),
    }
}

/// Acceptance: runtime SIMD dispatch must be invisible to planning. The same
/// `Optimize` request served by a real `moptd --stdio --layout-policy search`
/// process with `MOPT_FORCE_SCALAR=1` and by one with SIMD dispatch live must
/// produce identical responses (volatile timing fields aside) — layout search
/// included — and the schedule the forced-scalar server returns still
/// computes the right convolution through the layout-aware executor.
#[test]
fn moptd_forced_scalar_serves_identical_schedules_as_simd() {
    fn scrub(value: &Value) -> Value {
        match value {
            Value::Object(pairs) => Value::Object(
                pairs
                    .iter()
                    .filter(|(key, _)| {
                        !matches!(
                            key.as_str(),
                            "optimize_seconds"
                                | "solve_seconds"
                                | "wall_seconds"
                                | "plan_seconds"
                                | "uptime_seconds"
                        )
                    })
                    .map(|(key, inner)| (key.clone(), scrub(inner)))
                    .collect(),
            ),
            Value::Array(items) => Value::Array(items.iter().map(scrub).collect()),
            other => other.clone(),
        }
    }

    let shape = ConvShape::new(1, 16, 8, 3, 3, 12, 12, 1).unwrap();
    let request = serde_json::to_string(&Request::Optimize {
        spec: None,
        op: None,
        shape: Some(shape),
        machine: mopt_service::MachineSpec::Preset("tiny".into()),
        options: Some(fast_options()),
        threads: None,
        trace: None,
    })
    .unwrap();

    let serve = |force_scalar: bool| -> String {
        let mut cmd = Command::new(env!("CARGO_BIN_EXE_moptd"));
        cmd.args(["--stdio", "--layout-policy", "search"])
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::null());
        if force_scalar {
            cmd.env("MOPT_FORCE_SCALAR", "1");
        } else {
            cmd.env_remove("MOPT_FORCE_SCALAR");
        }
        let mut child = cmd.spawn().expect("moptd spawns");
        {
            let stdin = child.stdin.as_mut().expect("moptd stdin");
            stdin.write_all(request.as_bytes()).unwrap();
            stdin.write_all(b"\n").unwrap();
        }
        child.stdin.take();
        let stdout = BufReader::new(child.stdout.take().expect("moptd stdout"));
        let lines: Vec<String> = stdout.lines().map(|l| l.unwrap()).collect();
        assert!(child.wait().unwrap().success());
        assert_eq!(lines.len(), 1, "one reply per request");
        lines.into_iter().next().unwrap()
    };

    let scalar_line = serve(true);
    let simd_line = serve(false);
    let scalar = serde_json::parse_value(&scalar_line).unwrap();
    let simd = serde_json::parse_value(&simd_line).unwrap();
    assert_eq!(scrub(&scalar), scrub(&simd), "SIMD dispatch changed a served schedule");

    let response: Response = serde_json::from_str(&scalar_line).unwrap();
    let result = match response {
        Response::Optimized { result, .. } => result,
        other => panic!("expected Optimized, got {other:?}"),
    };
    let best = result.best().config.clone();
    let input = Tensor4::random(shape.n, shape.c, shape.input_h(), shape.input_w(), 31);
    let kernel = Tensor4::random(shape.k, shape.c, shape.r, shape.s, 32);
    let reference = conv2d_naive(&shape, &input, &kernel);
    let served = NchwcConv::new(shape, best, 1).unwrap().run(&input, &kernel);
    assert!(
        reference.allclose(&served, 1e-3),
        "forced-scalar served schedule computes a different convolution"
    );
}
