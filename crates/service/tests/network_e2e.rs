//! Whole-network acceptance: plan a full ResNet-50 — stem conv, bottleneck
//! stacks, pooling, and the fully-connected matmul head, >50 schedulable
//! nodes — through ONE `PlanGraph` request against a real `moptd`, with
//! every operator served from the database tier after an offline
//! `mopt-plan-world` population pass.

use std::io::{BufRead, BufReader, Write};
use std::process::{Command, Stdio};

use conv_spec::Spec;
use mopt_core::OptimizerOptions;
use mopt_graph::builders;
use mopt_service::Response;

#[test]
fn resnet50_plans_whole_through_moptd_from_the_db_tier() {
    let db = std::env::temp_dir().join(format!("moptd-resnet50-db-{}", std::process::id()));
    std::fs::remove_dir_all(&db).ok();

    // Offline population: solve every schedulable spec of the network once
    // (cheap settings — the point is serving, not schedule quality here).
    let populate = Command::new(env!("CARGO_BIN_EXE_mopt-plan-world"))
        .arg("--db")
        .arg(&db)
        .args(["--suite", "resnet50", "--preset", "tiny", "--threads", "1"])
        .args(["--classes", "1", "--multistart", "0", "--keep-top", "3"])
        .output()
        .expect("mopt-plan-world runs");
    assert!(
        populate.status.success(),
        "population failed: {}",
        String::from_utf8_lossy(&populate.stderr)
    );

    let graph = builders::resnet50("resnet50");
    assert!(graph.nodes.len() > 50, "ResNet-50 must be a >50-node graph");
    let dims = graph.node_output_dims().expect("builder graph is valid");
    let schedulable = graph.schedulable_nodes();
    assert!(schedulable.len() > 50, "conv + pool + matmul nodes exceed 50");
    assert!(
        schedulable
            .iter()
            .any(|&id| matches!(graph.node_spec(id, &dims), Some(Spec::Matmul { .. }))),
        "the fc head plans as a first-class matmul spec"
    );

    let options = OptimizerOptions { max_classes: 1, ..OptimizerOptions::fast() };
    let request = format!(
        "{{\"PlanGraph\": {{\"graph\": {}, \"machine\": {{\"Preset\": \"tiny\"}}, \"options\": {}, \"workers\": 4}}}}",
        serde_json::to_string(&graph).unwrap(),
        serde_json::to_string(&options).unwrap(),
    );

    let mut child = Command::new(env!("CARGO_BIN_EXE_moptd"))
        .arg("--stdio")
        .arg("--db")
        .arg(&db)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("moptd spawns");
    {
        let stdin = child.stdin.as_mut().expect("moptd stdin");
        stdin.write_all(request.as_bytes()).unwrap();
        stdin.write_all(b"\n\"Stats\"\n").unwrap();
    }
    child.stdin.take();
    let stdout = BufReader::new(child.stdout.take().expect("moptd stdout"));
    let lines: Vec<String> = stdout.lines().map(|l| l.unwrap()).collect();
    assert!(child.wait().unwrap().success());
    assert_eq!(lines.len(), 2);

    let plan = match serde_json::from_str::<Response>(&lines[0]).unwrap() {
        Response::GraphPlanned { cached: false, plan, .. } => plan,
        other => panic!("expected a fresh GraphPlanned, got {other:?}"),
    };
    assert_eq!(plan.graph, "resnet50");
    let ops: Vec<_> = plan.segments.iter().flat_map(|s| &s.ops).collect();
    assert!(ops.len() > 50, "whole network planned in one request, got {} ops", ops.len());
    assert!(ops.iter().any(|op| op.name == "fc"), "the matmul head is part of the plan");
    for op in &ops {
        op.best.config.validate(&op.shape).expect("every served schedule certifies");
    }

    // The population pass covered every spec: the db tier answered all of
    // them, and the optimizer never ran cold inside the daemon.
    match serde_json::from_str::<Response>(&lines[1]).unwrap() {
        Response::Stats { stats } => {
            let db_stats = stats.db.expect("db stats present");
            assert!(db_stats.hits > 0, "operators served from stored entries");
            assert_eq!(db_stats.misses, 0, "no cold solves after population");
        }
        other => panic!("expected Stats, got {other:?}"),
    }
    std::fs::remove_dir_all(&db).ok();
}
