//! Numerical differentiation helpers.
//!
//! The tile-size objectives are smooth in the interior of the box, but their
//! closed forms are assembled programmatically from the cost model, so the
//! solvers use central finite differences rather than hand-coded gradients.

/// Central-difference gradient of `f` at `x`.
///
/// The step is scaled relative to the magnitude of each coordinate so the
/// approximation stays accurate for the wide dynamic range of tile sizes
/// (1 to tens of thousands).
pub fn numerical_gradient(f: &dyn Fn(&[f64]) -> f64, x: &[f64]) -> Vec<f64> {
    let mut grad = vec![0.0; x.len()];
    let mut xp = x.to_vec();
    for j in 0..x.len() {
        let h = step_for(x[j]);
        let orig = xp[j];
        xp[j] = orig + h;
        let fp = f(&xp);
        xp[j] = orig - h;
        let fm = f(&xp);
        xp[j] = orig;
        grad[j] = (fp - fm) / (2.0 * h);
    }
    grad
}

/// Directional derivative of `f` at `x` along (unnormalized) `dir`.
pub fn directional_derivative(f: &dyn Fn(&[f64]) -> f64, x: &[f64], dir: &[f64]) -> f64 {
    let g = numerical_gradient(f, x);
    g.iter().zip(dir.iter()).map(|(a, b)| a * b).sum()
}

/// The relative finite-difference step for a coordinate value.
pub fn step_for(value: f64) -> f64 {
    let scale = value.abs().max(1.0);
    scale * 1e-6
}

/// Euclidean norm of a vector.
pub fn norm(v: &[f64]) -> f64 {
    v.iter().map(|a| a * a).sum::<f64>().sqrt()
}

/// `a - b` element-wise.
pub fn sub(a: &[f64], b: &[f64]) -> Vec<f64> {
    a.iter().zip(b.iter()).map(|(x, y)| x - y).collect()
}

/// `a + s * d` element-wise.
pub fn axpy(a: &[f64], s: f64, d: &[f64]) -> Vec<f64> {
    a.iter().zip(d.iter()).map(|(x, y)| x + s * y).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gradient_of_quadratic() {
        let f = |x: &[f64]| x[0] * x[0] + 3.0 * x[1];
        let g = numerical_gradient(&f, &[2.0, 5.0]);
        assert!((g[0] - 4.0).abs() < 1e-4);
        assert!((g[1] - 3.0).abs() < 1e-4);
    }

    #[test]
    fn gradient_of_reciprocal_large_scale() {
        // d/dT (N/T) = -N/T^2 — typical term of the tile cost expressions.
        let n = 1.0e6;
        let f = move |x: &[f64]| n / x[0];
        let g = numerical_gradient(&f, &[250.0]);
        assert!((g[0] + n / 250.0_f64.powi(2)).abs() / (n / 250.0_f64.powi(2)) < 1e-4);
    }

    #[test]
    fn directional_derivative_matches_gradient_dot() {
        let f = |x: &[f64]| x[0] * x[1];
        let d = directional_derivative(&f, &[2.0, 3.0], &[1.0, -1.0]);
        assert!((d - (3.0 - 2.0)).abs() < 1e-4);
    }

    #[test]
    fn vector_helpers() {
        assert!((norm(&[3.0, 4.0]) - 5.0).abs() < 1e-12);
        assert_eq!(sub(&[3.0, 4.0], &[1.0, 1.0]), vec![2.0, 3.0]);
        assert_eq!(axpy(&[1.0, 2.0], 2.0, &[1.0, -1.0]), vec![3.0, 0.0]);
        assert!(step_for(0.0) > 0.0 && step_for(1e6) > step_for(1.0));
    }
}
