//! Quadratic-penalty solver.
//!
//! A robust (if less precise) fallback to the barrier method: minimize
//! `f(x) + ρ Σ max(0, g_i(x))²` with increasing ρ, using projected gradient
//! descent over the box bounds. Unlike the barrier method it tolerates
//! infeasible starting points and constraint sets with an empty strict
//! interior.

use crate::gradient::{axpy, norm, numerical_gradient};
use crate::problem::{NlpSolver, Problem, SolveResult};

/// Quadratic-penalty solver.
#[derive(Debug, Clone)]
pub struct PenaltySolver {
    /// Initial penalty weight.
    pub rho0: f64,
    /// Multiplicative growth of the penalty weight per outer iteration.
    pub rho_growth: f64,
    /// Outer iterations (penalty updates).
    pub outer_iters: usize,
    /// Inner projected-gradient iterations.
    pub inner_iters: usize,
    /// Gradient tolerance.
    pub tol: f64,
    /// Feasibility tolerance for the reported result.
    pub feas_tol: f64,
}

impl Default for PenaltySolver {
    fn default() -> Self {
        PenaltySolver {
            rho0: 10.0,
            rho_growth: 10.0,
            outer_iters: 8,
            inner_iters: 150,
            tol: 1e-9,
            feas_tol: 1e-4,
        }
    }
}

impl PenaltySolver {
    fn merit(&self, problem: &Problem, rho: f64, x: &[f64]) -> f64 {
        let mut m = problem.objective(x);
        for i in 0..problem.num_constraints() {
            let g = problem.constraint(i, x).max(0.0);
            m += rho * g * g;
        }
        m
    }
}

impl NlpSolver for PenaltySolver {
    fn solve(&self, problem: &Problem, x0: &[f64]) -> SolveResult {
        assert_eq!(x0.len(), problem.dim(), "starting point dimension mismatch");
        let mut x = x0.to_vec();
        problem.project(&mut x);
        // Normalize the penalty scale to the objective magnitude so huge
        // data-volume objectives (1e9+) do not drown the penalty term.
        let scale = 1.0 + problem.objective(&x).abs();
        let mut rho = self.rho0 * scale;
        let mut total_iters = 0;
        for _outer in 0..self.outer_iters {
            let mut step = 1.0;
            for _inner in 0..self.inner_iters {
                total_iters += 1;
                let merit = |y: &[f64]| self.merit(problem, rho, y);
                let f0 = merit(&x);
                let g = numerical_gradient(&merit, &x);
                let gn = norm(&g);
                if !gn.is_finite() || gn < self.tol * (1.0 + f0.abs()) {
                    break;
                }
                let dir: Vec<f64> = g.iter().map(|v| -v / gn).collect();
                let mut s = step;
                let mut accepted = false;
                for _ in 0..40 {
                    let mut cand = axpy(&x, s, &dir);
                    problem.project(&mut cand);
                    if merit(&cand) < f0 - 1e-14 * f0.abs() {
                        x = cand;
                        step = (s * 2.0).min(1e9);
                        accepted = true;
                        break;
                    }
                    s *= 0.5;
                }
                if !accepted {
                    break;
                }
            }
            rho *= self.rho_growth;
        }
        let violation = problem.max_violation(&x);
        SolveResult {
            objective: problem.objective(&x),
            feasible: violation <= self.feas_tol,
            max_violation: violation,
            iterations: total_iters,
            x,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constrained_quadratic_projects_onto_constraint() {
        // minimize (x-3)^2 + (y-4)^2 s.t. x + y <= 5 → optimum (2, 3).
        let p = Problem::new(2)
            .with_bounds(vec![0.0, 0.0], vec![10.0, 10.0])
            .with_objective(|x| (x[0] - 3.0).powi(2) + (x[1] - 4.0).powi(2))
            .with_constraint(|x| x[0] + x[1] - 5.0);
        let r = PenaltySolver::default().solve(&p, &[8.0, 8.0]);
        assert!(r.feasible, "violation {}", r.max_violation);
        assert!((r.x[0] - 2.0).abs() < 0.1 && (r.x[1] - 3.0).abs() < 0.1, "{:?}", r.x);
    }

    #[test]
    fn works_from_infeasible_start() {
        let p = Problem::new(2)
            .with_bounds(vec![0.1, 0.1], vec![100.0, 100.0])
            .with_objective(|x| 1.0 / x[0] + 1.0 / x[1])
            .with_constraint(|x| x[0] + x[1] - 10.0);
        let r = PenaltySolver::default().solve(&p, &[90.0, 90.0]);
        assert!(r.feasible);
        assert!((r.x[0] - 5.0).abs() < 0.3 && (r.x[1] - 5.0).abs() < 0.3, "{:?}", r.x);
    }

    #[test]
    fn unconstrained_matches_barrier() {
        let p = Problem::new(1)
            .with_bounds(vec![-5.0], vec![5.0])
            .with_objective(|x| (x[0] - 1.5).powi(2));
        let r = PenaltySolver::default().solve(&p, &[-4.0]);
        assert!((r.x[0] - 1.5).abs() < 1e-2);
        assert!(r.iterations > 0);
    }

    #[test]
    fn reports_infeasibility_when_constraints_conflict() {
        // x <= -1 and x >= 1 cannot both hold inside [0, 10].
        let p = Problem::new(1)
            .with_bounds(vec![0.0], vec![10.0])
            .with_objective(|x| x[0])
            .with_constraint(|x| x[0] + 1.0) // x <= -1
            .with_constraint(|x| 1.0 - x[0]); // x >= 1
        let r = PenaltySolver::default().solve(&p, &[5.0]);
        assert!(!r.feasible);
        assert!(r.max_violation > 0.5);
    }
}
