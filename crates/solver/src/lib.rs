//! Constrained non-linear optimization substrate.
//!
//! The paper formulates tile-size selection as small constrained non-linear
//! optimization problems (minimize a parametric data-movement expression
//! subject to cache-capacity constraints) and solves them with AMPL + Ipopt.
//! Those tools are proprietary / external; this crate provides a from-scratch
//! replacement sufficient for the problem class that arises here:
//!
//! * at most a few dozen variables (7 tile sizes × up to 4 levels),
//! * smooth objectives and inequality constraints built from products and
//!   ratios of the variables (posynomial-like),
//! * simple box bounds `1 ≤ T_j ≤ N_j`.
//!
//! Provided solvers:
//!
//! * [`barrier::BarrierSolver`] — a log-barrier interior-point method with
//!   projected-gradient inner iterations and backtracking line search,
//! * [`penalty::PenaltySolver`] — a quadratic-penalty method used as a
//!   fallback and for infeasible starts,
//! * [`multistart::MultiStart`] — random-restart wrapper that makes the local
//!   solvers robust on the non-convex instances produced by multi-level
//!   tiling,
//! * [`integer`] — flooring and local discrete refinement that converts the
//!   continuous solution into integer tile sizes (Algorithm 1, line 23).
//!
//! # Example
//!
//! ```
//! use mopt_solver::{Problem, barrier::BarrierSolver, NlpSolver};
//!
//! // minimize x + y  subject to  x*y >= 4  (i.e. 4 - x*y <= 0), 0.1 <= x,y <= 10
//! let problem = Problem::new(2)
//!     .with_bounds(vec![0.1, 0.1], vec![10.0, 10.0])
//!     .with_objective(|x| x[0] + x[1])
//!     .with_constraint(|x| 4.0 - x[0] * x[1]);
//! let result = BarrierSolver::default().solve(&problem, &[5.0, 5.0]);
//! assert!(result.feasible);
//! assert!((result.x[0] - 2.0).abs() < 0.05 && (result.x[1] - 2.0).abs() < 0.05);
//! ```

pub mod barrier;
pub mod gradient;
pub mod integer;
pub mod multistart;
pub mod penalty;
pub mod problem;

pub use barrier::BarrierSolver;
pub use integer::{floor_refine, IntegerRefineOptions};
pub use multistart::MultiStart;
pub use penalty::PenaltySolver;
pub use problem::{NlpSolver, Problem, SolveResult};
