//! Random-restart wrapper around the local solvers.
//!
//! The multi-level tile-size problems are non-convex (products and ratios of
//! variables), so a single local solve can land in a poor local minimum.
//! `MultiStart` runs a base solver from several starting points — the
//! caller-provided start, the box center, a near-lower-bound point, and
//! log-uniform random samples — and keeps the best feasible result.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::barrier::BarrierSolver;
use crate::penalty::PenaltySolver;
use crate::problem::{NlpSolver, Problem, SolveResult};

/// Which local solver the restarts use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BaseSolver {
    /// Log-barrier interior point (default).
    Barrier,
    /// Quadratic penalty.
    Penalty,
    /// Run both and keep the better result of each start.
    Both,
}

/// Random-restart driver.
#[derive(Debug, Clone)]
pub struct MultiStart {
    /// Number of random starting points (in addition to the deterministic
    /// ones).
    pub random_starts: usize,
    /// Which local solver(s) to run.
    pub base: BaseSolver,
    /// RNG seed, for reproducible optimization runs.
    pub seed: u64,
    /// Sample starting points log-uniformly between the bounds (appropriate
    /// for tile sizes, which span orders of magnitude).
    pub log_uniform: bool,
    /// The barrier-solver configuration used for each start.
    pub barrier: BarrierSolver,
    /// The penalty-solver configuration used for each start.
    pub penalty: PenaltySolver,
}

impl Default for MultiStart {
    fn default() -> Self {
        MultiStart {
            random_starts: 6,
            base: BaseSolver::Both,
            seed: 0x5eed,
            log_uniform: true,
            barrier: BarrierSolver::fast(),
            penalty: PenaltySolver::default(),
        }
    }
}

impl MultiStart {
    /// A configuration with a given number of random starts.
    pub fn with_starts(random_starts: usize) -> Self {
        MultiStart { random_starts, ..Self::default() }
    }

    /// A low-effort configuration for use inside larger search loops (the
    /// MOpt optimizer calls the solver dozens of times per operator): penalty
    /// method only, few iterations, few restarts.
    pub fn cheap(random_starts: usize) -> Self {
        MultiStart {
            random_starts,
            base: BaseSolver::Penalty,
            penalty: PenaltySolver { outer_iters: 4, inner_iters: 40, ..PenaltySolver::default() },
            ..Self::default()
        }
    }

    fn starting_points(&self, problem: &Problem, x0: &[f64]) -> Vec<Vec<f64>> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let dim = problem.dim();
        let mut starts = Vec::with_capacity(self.random_starts + 3);
        starts.push(x0.to_vec());
        starts.push(problem.box_center());
        // A point near the lower bounds (always feasible for capacity-style
        // constraints that grow with the variables).
        starts.push(
            (0..dim)
                .map(|j| problem.lower()[j] + 1e-3 * (problem.upper()[j] - problem.lower()[j]))
                .collect(),
        );
        for _ in 0..self.random_starts {
            let p: Vec<f64> = (0..dim)
                .map(|j| {
                    let lo = problem.lower()[j];
                    let hi = problem.upper()[j];
                    if self.log_uniform && lo > 0.0 && hi > lo {
                        let t: f64 = rng.gen();
                        (lo.ln() + t * (hi.ln() - lo.ln())).exp()
                    } else {
                        rng.gen_range(lo..=hi)
                    }
                })
                .collect();
            starts.push(p);
        }
        starts
    }
}

impl NlpSolver for MultiStart {
    fn solve(&self, problem: &Problem, x0: &[f64]) -> SolveResult {
        let barrier = self.barrier.clone();
        let penalty = self.penalty.clone();
        let mut best: Option<SolveResult> = None;
        for start in self.starting_points(problem, x0) {
            let candidates: Vec<SolveResult> = match self.base {
                BaseSolver::Barrier => vec![barrier.solve(problem, &start)],
                BaseSolver::Penalty => vec![penalty.solve(problem, &start)],
                BaseSolver::Both => {
                    vec![barrier.solve(problem, &start), penalty.solve(problem, &start)]
                }
            };
            for cand in candidates {
                best = match best {
                    None => Some(cand),
                    Some(b) => {
                        if cand.better_than(&b) {
                            Some(cand)
                        } else {
                            Some(b)
                        }
                    }
                };
            }
        }
        best.expect("at least one starting point is always evaluated")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A deliberately multi-modal objective: two basins, the deeper one near
    /// the upper bound.
    fn two_basin_problem() -> Problem {
        Problem::new(1).with_bounds(vec![0.0], vec![10.0]).with_objective(|x| {
            let a = (x[0] - 2.0).powi(2); // local basin at 2 (depth 0 + 1)
            let b = (x[0] - 8.0).powi(2) - 5.0; // global basin at 8 (depth -5)
            (a.min(b)) + 1.0
        })
    }

    #[test]
    fn escapes_local_minimum() {
        let p = two_basin_problem();
        // A plain local solve from x=1 stays near 2; multistart should find 8.
        let r = MultiStart::default().solve(&p, &[1.0]);
        assert!(r.feasible);
        assert!((r.x[0] - 8.0).abs() < 0.2, "expected global basin, got {:?}", r.x);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let p = two_basin_problem();
        let a = MultiStart::default().solve(&p, &[1.0]);
        let b = MultiStart::default().solve(&p, &[1.0]);
        assert_eq!(a.x, b.x);
        let other = MultiStart { seed: 1234, ..Default::default() };
        let c = other.solve(&p, &[1.0]);
        // Different seed may or may not change the answer, but must stay valid.
        assert!(c.feasible);
    }

    #[test]
    fn respects_constraints_like_local_solvers() {
        let p = Problem::new(2)
            .with_bounds(vec![1.0, 1.0], vec![1000.0, 1000.0])
            .with_objective(|x| 1e6 / x[0] + 1e6 / x[1])
            .with_constraint(|x| x[0] * x[1] - 4096.0);
        let r = MultiStart::with_starts(4).solve(&p, &[1.0, 1.0]);
        assert!(r.feasible);
        // Optimum is x = y = 64 (symmetric, capacity saturated).
        assert!((r.x[0] - 64.0).abs() < 8.0 && (r.x[1] - 64.0).abs() < 8.0, "{:?}", r.x);
    }

    #[test]
    fn penalty_only_mode_works() {
        let p = Problem::new(1)
            .with_bounds(vec![0.0], vec![4.0])
            .with_objective(|x| (x[0] - 3.0).powi(2));
        let ms = MultiStart { base: BaseSolver::Penalty, ..Default::default() };
        let r = ms.solve(&p, &[0.0]);
        assert!((r.x[0] - 3.0).abs() < 0.05);
    }
}
