//! Problem definition and solver interface.

use std::fmt;
use std::sync::Arc;

/// A scalar function of a point, shared between solver components.
pub type ScalarFn = Arc<dyn Fn(&[f64]) -> f64 + Send + Sync>;

/// A constrained non-linear minimization problem over a box:
///
/// ```text
/// minimize   f(x)
/// subject to g_i(x) <= 0        for every registered constraint
///            lower_j <= x_j <= upper_j
/// ```
///
/// For the tile-size problems built by `mopt-core`, the box upper bounds are
/// the shape's *loop-trip counts* (`conv_spec::ConvShape::extent`), not the
/// raw tensor extents — for grouped convolutions the C-tile variable is
/// therefore bounded by the per-group reduction extent `C/groups`, and the
/// capacity constraints see the dilated input halo and group-span factor
/// through the model's footprint expressions.
#[derive(Clone)]
pub struct Problem {
    dim: usize,
    lower: Vec<f64>,
    upper: Vec<f64>,
    objective: ScalarFn,
    constraints: Vec<ScalarFn>,
}

impl Problem {
    /// A problem of dimension `dim` with default bounds `[1, 1e9]` and a zero
    /// objective. Use the builder methods to fill it in.
    ///
    /// # Panics
    ///
    /// Panics if `dim` is zero.
    pub fn new(dim: usize) -> Self {
        assert!(dim > 0, "problem dimension must be positive");
        Problem {
            dim,
            lower: vec![1.0; dim],
            upper: vec![1e9; dim],
            objective: Arc::new(|_| 0.0),
            constraints: Vec::new(),
        }
    }

    /// Set the box bounds.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ from the dimension or any lower bound
    /// exceeds its upper bound.
    pub fn with_bounds(mut self, lower: Vec<f64>, upper: Vec<f64>) -> Self {
        assert_eq!(lower.len(), self.dim, "lower bound length mismatch");
        assert_eq!(upper.len(), self.dim, "upper bound length mismatch");
        for (l, u) in lower.iter().zip(upper.iter()) {
            assert!(l <= u, "lower bound {l} exceeds upper bound {u}");
        }
        self.lower = lower;
        self.upper = upper;
        self
    }

    /// Set the objective function.
    pub fn with_objective(mut self, f: impl Fn(&[f64]) -> f64 + Send + Sync + 'static) -> Self {
        self.objective = Arc::new(f);
        self
    }

    /// Add an inequality constraint `g(x) <= 0`.
    pub fn with_constraint(mut self, g: impl Fn(&[f64]) -> f64 + Send + Sync + 'static) -> Self {
        self.constraints.push(Arc::new(g));
        self
    }

    /// Problem dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Lower bounds.
    pub fn lower(&self) -> &[f64] {
        &self.lower
    }

    /// Upper bounds.
    pub fn upper(&self) -> &[f64] {
        &self.upper
    }

    /// Number of inequality constraints.
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// Evaluate the objective.
    pub fn objective(&self, x: &[f64]) -> f64 {
        (self.objective)(x)
    }

    /// Evaluate constraint `i`.
    pub fn constraint(&self, i: usize, x: &[f64]) -> f64 {
        (self.constraints[i])(x)
    }

    /// Evaluate all constraints.
    pub fn constraints(&self, x: &[f64]) -> Vec<f64> {
        self.constraints.iter().map(|g| g(x)).collect()
    }

    /// The largest constraint violation at `x` (0 when feasible), also
    /// counting box-bound violations.
    pub fn max_violation(&self, x: &[f64]) -> f64 {
        let mut v: f64 = 0.0;
        for g in &self.constraints {
            v = v.max(g(x));
        }
        for (j, &xj) in x.iter().enumerate().take(self.dim) {
            v = v.max(self.lower[j] - xj);
            v = v.max(xj - self.upper[j]);
        }
        v.max(0.0)
    }

    /// Whether `x` satisfies every constraint and bound up to `tol`.
    pub fn is_feasible(&self, x: &[f64], tol: f64) -> bool {
        self.max_violation(x) <= tol
    }

    /// Clamp a point into the box bounds.
    pub fn project(&self, x: &mut [f64]) {
        for (j, xj) in x.iter_mut().enumerate().take(self.dim) {
            *xj = xj.clamp(self.lower[j], self.upper[j]);
        }
    }

    /// The midpoint of the box (a generic starting point).
    pub fn box_center(&self) -> Vec<f64> {
        (0..self.dim).map(|j| 0.5 * (self.lower[j] + self.upper[j])).collect()
    }
}

impl fmt::Debug for Problem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Problem")
            .field("dim", &self.dim)
            .field("constraints", &self.constraints.len())
            .field("lower", &self.lower)
            .field("upper", &self.upper)
            .finish()
    }
}

/// The result of a solve.
#[derive(Debug, Clone, PartialEq)]
pub struct SolveResult {
    /// The best point found.
    pub x: Vec<f64>,
    /// Objective value at `x`.
    pub objective: f64,
    /// Whether `x` satisfies all constraints within the solver's tolerance.
    pub feasible: bool,
    /// Largest constraint violation at `x`.
    pub max_violation: f64,
    /// Number of (outer) iterations performed.
    pub iterations: usize,
}

impl SolveResult {
    /// Order results: feasible beats infeasible; among feasible, lower
    /// objective wins; among infeasible, lower violation wins.
    pub fn better_than(&self, other: &SolveResult) -> bool {
        match (self.feasible, other.feasible) {
            (true, false) => true,
            (false, true) => false,
            (true, true) => self.objective < other.objective,
            (false, false) => self.max_violation < other.max_violation,
        }
    }
}

/// Common interface of the constrained solvers in this crate.
pub trait NlpSolver {
    /// Minimize `problem` starting from `x0` (clamped to the box if needed).
    fn solve(&self, problem: &Problem, x0: &[f64]) -> SolveResult;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_problem() -> Problem {
        Problem::new(2)
            .with_bounds(vec![0.0, 0.0], vec![10.0, 10.0])
            .with_objective(|x| (x[0] - 3.0).powi(2) + (x[1] - 4.0).powi(2))
            .with_constraint(|x| x[0] + x[1] - 5.0)
    }

    #[test]
    fn builder_and_accessors() {
        let p = sample_problem();
        assert_eq!(p.dim(), 2);
        assert_eq!(p.num_constraints(), 1);
        assert_eq!(p.objective(&[3.0, 4.0]), 0.0);
        assert_eq!(p.constraint(0, &[2.0, 2.0]), -1.0);
        assert_eq!(p.constraints(&[2.0, 2.0]), vec![-1.0]);
        assert_eq!(p.lower(), &[0.0, 0.0]);
        assert_eq!(p.upper(), &[10.0, 10.0]);
    }

    #[test]
    fn feasibility_and_violation() {
        let p = sample_problem();
        assert!(p.is_feasible(&[1.0, 1.0], 1e-9));
        assert!(!p.is_feasible(&[4.0, 4.0], 1e-9));
        assert!((p.max_violation(&[4.0, 4.0]) - 3.0).abs() < 1e-12);
        // Bound violation is caught too.
        assert!(p.max_violation(&[-1.0, 0.0]) >= 1.0);
    }

    #[test]
    fn project_clamps_into_box() {
        let p = sample_problem();
        let mut x = vec![-5.0, 20.0];
        p.project(&mut x);
        assert_eq!(x, vec![0.0, 10.0]);
        assert_eq!(p.box_center(), vec![5.0, 5.0]);
    }

    #[test]
    fn result_ordering_prefers_feasible_then_objective() {
        let feas_low = SolveResult {
            x: vec![],
            objective: 1.0,
            feasible: true,
            max_violation: 0.0,
            iterations: 1,
        };
        let feas_high = SolveResult {
            x: vec![],
            objective: 2.0,
            feasible: true,
            max_violation: 0.0,
            iterations: 1,
        };
        let infeas = SolveResult {
            x: vec![],
            objective: 0.0,
            feasible: false,
            max_violation: 3.0,
            iterations: 1,
        };
        let infeas_less = SolveResult {
            x: vec![],
            objective: 0.0,
            feasible: false,
            max_violation: 1.0,
            iterations: 1,
        };
        assert!(feas_low.better_than(&feas_high));
        assert!(feas_high.better_than(&infeas));
        assert!(!infeas.better_than(&feas_low));
        assert!(infeas_less.better_than(&infeas));
    }

    #[test]
    #[should_panic(expected = "dimension must be positive")]
    fn zero_dim_panics() {
        let _ = Problem::new(0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn wrong_bound_length_panics() {
        let _ = Problem::new(2).with_bounds(vec![0.0], vec![1.0, 2.0]);
    }
}
