//! Conversion of continuous solutions to integer tile sizes.
//!
//! Algorithm 1 of the paper floors the real-valued solver output to integers
//! and then adjusts tile sizes for load balance. This module implements the
//! flooring step together with a feasibility-preserving local refinement:
//! starting from the floored point, greedy ±1 (and ×2 / ÷2) moves are applied
//! while they improve the objective and keep every constraint satisfied.

use crate::problem::Problem;

/// Options controlling [`floor_refine`].
#[derive(Debug, Clone)]
pub struct IntegerRefineOptions {
    /// Maximum number of full improvement sweeps over all coordinates.
    pub max_sweeps: usize,
    /// Also try doubling / halving moves (useful because tile-size objectives
    /// are often flat in ±1 steps but responsive to scale changes).
    pub scale_moves: bool,
    /// Feasibility tolerance for accepting a move.
    pub feas_tol: f64,
}

impl Default for IntegerRefineOptions {
    fn default() -> Self {
        IntegerRefineOptions { max_sweeps: 8, scale_moves: true, feas_tol: 1e-9 }
    }
}

/// Floor a continuous solution to integers (respecting the lower bounds) and
/// greedily refine it without violating constraints.
///
/// Returns the integer point and its objective value. If the floored point is
/// infeasible, coordinates are reduced greedily until feasible (this always
/// terminates at the all-lower-bound point, which the tile problems keep
/// feasible by construction).
pub fn floor_refine(
    problem: &Problem,
    x: &[f64],
    options: &IntegerRefineOptions,
) -> (Vec<f64>, f64) {
    let dim = problem.dim();
    assert_eq!(x.len(), dim, "point dimension mismatch");
    let mut xi: Vec<f64> = (0..dim)
        .map(|j| x[j].floor().max(problem.lower()[j].ceil()).min(problem.upper()[j].floor()))
        .collect();

    // Restore feasibility by shrinking coordinates (capacity-style
    // constraints are monotone increasing in each variable).
    let mut guard = 0;
    while problem.max_violation(&xi) > options.feas_tol && guard < 10_000 {
        guard += 1;
        // Shrink the coordinate with the largest value above its lower bound.
        if let Some((j, _)) = xi
            .iter()
            .enumerate()
            .filter(|(j, v)| **v > problem.lower()[*j].ceil())
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
        {
            xi[j] = (xi[j] / 2.0).floor().max(problem.lower()[j].ceil());
        } else {
            break;
        }
    }

    let mut best_obj = problem.objective(&xi);
    for _sweep in 0..options.max_sweeps {
        let mut improved = false;
        for j in 0..dim {
            let mut moves = vec![1.0, -1.0];
            if options.scale_moves {
                moves.push(xi[j]); // double
                moves.push(-(xi[j] / 2.0).floor()); // halve
            }
            for delta in moves {
                if delta == 0.0 {
                    continue;
                }
                let mut cand = xi.clone();
                cand[j] = (cand[j] + delta)
                    .max(problem.lower()[j].ceil())
                    .min(problem.upper()[j].floor());
                if cand[j] == xi[j] {
                    continue;
                }
                if problem.max_violation(&cand) > options.feas_tol {
                    continue;
                }
                let obj = problem.objective(&cand);
                if obj < best_obj - 1e-12 * best_obj.abs() {
                    xi = cand;
                    best_obj = obj;
                    improved = true;
                }
            }
        }
        if !improved {
            break;
        }
    }
    (xi, best_obj)
}

/// Round `value` to the nearest divisor of `extent` (used to avoid ragged
/// partial tiles when a dimension has many small divisors). Falls back to the
/// clamped value when `extent` has no nearby divisor.
pub fn snap_to_divisor(value: usize, extent: usize) -> usize {
    if value == 0 {
        return 1;
    }
    if extent == 0 {
        return value;
    }
    let value = value.min(extent);
    let mut best = value;
    let mut best_dist = usize::MAX;
    for d in 1..=extent {
        if extent.is_multiple_of(d) {
            let dist = d.abs_diff(value);
            if dist < best_dist {
                best_dist = dist;
                best = d;
            }
        }
        if d > value * 2 && best_dist != usize::MAX {
            break;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn floors_and_respects_bounds() {
        let p = Problem::new(2)
            .with_bounds(vec![1.0, 1.0], vec![16.0, 16.0])
            .with_objective(|x| -(x[0] * x[1]))
            .with_constraint(|x| x[0] * x[1] - 64.0);
        let (xi, obj) = floor_refine(&p, &[7.9, 8.2], &IntegerRefineOptions::default());
        assert!(xi.iter().all(|v| v.fract() == 0.0));
        assert!(p.max_violation(&xi) <= 1e-9);
        assert!(obj <= -(49.0)); // at least as good as the plain floor (7*8)
    }

    #[test]
    fn refinement_improves_on_plain_floor() {
        // Objective rewards larger x under a capacity constraint; flooring
        // 11.9 → 11 wastes capacity that refinement can claim back.
        let p = Problem::new(1)
            .with_bounds(vec![1.0], vec![100.0])
            .with_objective(|x| 1000.0 / x[0])
            .with_constraint(|x| x[0] - 12.0);
        let (xi, _) = floor_refine(&p, &[11.2], &IntegerRefineOptions::default());
        assert_eq!(xi[0], 12.0);
    }

    #[test]
    fn infeasible_floor_is_repaired() {
        let p = Problem::new(2)
            .with_bounds(vec![1.0, 1.0], vec![64.0, 64.0])
            .with_objective(|x| 1.0 / (x[0] * x[1]))
            .with_constraint(|x| x[0] * x[1] - 16.0);
        // Start well outside the feasible set.
        let (xi, _) = floor_refine(&p, &[60.0, 60.0], &IntegerRefineOptions::default());
        assert!(p.max_violation(&xi) <= 1e-9, "still infeasible: {xi:?}");
        assert!(xi[0] * xi[1] <= 16.0 + 1e-9);
    }

    #[test]
    fn snap_to_divisor_picks_nearest() {
        assert_eq!(snap_to_divisor(5, 16), 4);
        assert_eq!(snap_to_divisor(7, 14), 7);
        assert_eq!(snap_to_divisor(3, 7), 1); // divisors of 7: 1, 7 → 1 closer? |3-1|=2, |3-7|=4
        assert_eq!(snap_to_divisor(6, 7), 7);
        assert_eq!(snap_to_divisor(100, 16), 16);
        assert_eq!(snap_to_divisor(0, 16), 1);
    }

    #[test]
    fn zero_extent_is_tolerated() {
        assert_eq!(snap_to_divisor(5, 0), 5);
    }
}
