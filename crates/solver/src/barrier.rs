//! Log-barrier interior-point solver with projected-gradient inner iterations.
//!
//! This is the primary Ipopt substitute. For each barrier parameter μ it
//! minimizes
//!
//! ```text
//! φ_μ(x) = f(x) - μ Σ_i log(-g_i(x))
//! ```
//!
//! over the box bounds by projected gradient descent with backtracking line
//! search, then shrinks μ. If the starting point violates a constraint, a
//! feasibility phase first minimizes the squared violation.

use crate::gradient::{axpy, norm, numerical_gradient};
use crate::problem::{NlpSolver, Problem, SolveResult};

/// Log-barrier interior-point solver.
#[derive(Debug, Clone)]
pub struct BarrierSolver {
    /// Initial barrier weight.
    pub mu0: f64,
    /// Multiplicative shrink factor applied to μ after each outer iteration.
    pub mu_shrink: f64,
    /// Number of outer (barrier) iterations.
    pub outer_iters: usize,
    /// Maximum inner projected-gradient iterations per outer iteration.
    pub inner_iters: usize,
    /// Gradient-norm tolerance for early inner termination.
    pub tol: f64,
    /// Feasibility tolerance used for the final feasibility check.
    pub feas_tol: f64,
}

impl Default for BarrierSolver {
    fn default() -> Self {
        BarrierSolver {
            mu0: 1.0,
            mu_shrink: 0.2,
            outer_iters: 12,
            inner_iters: 200,
            tol: 1e-8,
            feas_tol: 1e-6,
        }
    }
}

impl BarrierSolver {
    /// A cheaper configuration for use inside multi-start loops.
    pub fn fast() -> Self {
        BarrierSolver { outer_iters: 8, inner_iters: 80, ..Self::default() }
    }

    /// Move `x` strictly inside the feasible region if possible, by
    /// minimizing the squared constraint violation with projected gradient.
    fn restore_feasibility(&self, problem: &Problem, x: &mut Vec<f64>) {
        problem.project(x);
        if problem.max_violation(x) <= 0.0 {
            return;
        }
        let viol = |p: &Problem, y: &[f64]| -> f64 {
            (0..p.num_constraints()).map(|i| p.constraint(i, y).max(0.0).powi(2)).sum::<f64>()
        };
        let mut step = 1.0;
        for _ in 0..self.inner_iters {
            if problem.max_violation(x) <= 0.0 {
                break;
            }
            let f = |y: &[f64]| viol(problem, y);
            let g = numerical_gradient(&f, x);
            let gn = norm(&g);
            if gn < self.tol {
                break;
            }
            let dir: Vec<f64> = g.iter().map(|v| -v / gn).collect();
            // Backtracking on the violation measure.
            let f0 = viol(problem, x);
            let mut accepted = false;
            let mut s = step;
            for _ in 0..30 {
                let mut cand = axpy(x, s, &dir);
                problem.project(&mut cand);
                if viol(problem, &cand) < f0 {
                    *x = cand;
                    step = (s * 2.0).min(1e6);
                    accepted = true;
                    break;
                }
                s *= 0.5;
            }
            if !accepted {
                break;
            }
        }
    }

    fn barrier_value(&self, problem: &Problem, mu: f64, x: &[f64]) -> f64 {
        let mut phi = problem.objective(x);
        for i in 0..problem.num_constraints() {
            let g = problem.constraint(i, x);
            if g >= 0.0 {
                return f64::INFINITY;
            }
            phi -= mu * (-g).ln();
        }
        phi
    }
}

impl NlpSolver for BarrierSolver {
    fn solve(&self, problem: &Problem, x0: &[f64]) -> SolveResult {
        assert_eq!(x0.len(), problem.dim(), "starting point dimension mismatch");
        let mut x = x0.to_vec();
        self.restore_feasibility(problem, &mut x);

        // If still infeasible, interior point cannot start; report the
        // best-effort point (callers typically fall back to PenaltySolver or
        // another start via MultiStart).
        if problem.max_violation(&x) > 0.0 {
            let violation = problem.max_violation(&x);
            return SolveResult {
                objective: problem.objective(&x),
                feasible: violation <= self.feas_tol,
                max_violation: violation,
                iterations: 0,
                x,
            };
        }

        // Back off from active constraints slightly so logs are finite.
        nudge_strictly_feasible(problem, &mut x);

        let mut mu = self.mu0 * (1.0 + problem.objective(&x).abs());
        let mut total_iters = 0usize;
        for _outer in 0..self.outer_iters {
            let mut step = 1.0;
            for _inner in 0..self.inner_iters {
                total_iters += 1;
                let phi = |y: &[f64]| self.barrier_value(problem, mu, y);
                let f0 = phi(&x);
                let g = numerical_gradient(&phi, &x);
                let gn = norm(&g);
                if !gn.is_finite() || gn < self.tol * (1.0 + f0.abs()) {
                    break;
                }
                let dir: Vec<f64> = g.iter().map(|v| -v / gn).collect();
                let mut s = step;
                let mut accepted = false;
                for _ in 0..40 {
                    let mut cand = axpy(&x, s, &dir);
                    problem.project(&mut cand);
                    let fc = phi(&cand);
                    if fc.is_finite() && fc < f0 - 1e-12 * f0.abs() {
                        x = cand;
                        step = (s * 2.0).min(1e9);
                        accepted = true;
                        break;
                    }
                    s *= 0.5;
                }
                if !accepted {
                    break;
                }
            }
            mu *= self.mu_shrink;
        }

        let violation = problem.max_violation(&x);
        SolveResult {
            objective: problem.objective(&x),
            feasible: violation <= self.feas_tol,
            max_violation: violation,
            iterations: total_iters,
            x,
        }
    }
}

/// Pull a feasible point slightly off active constraints and bounds so that
/// `-g(x) > 0` and the barrier is finite.
fn nudge_strictly_feasible(problem: &Problem, x: &mut [f64]) {
    for _ in 0..50 {
        let active = (0..problem.num_constraints()).any(|i| problem.constraint(i, x) >= -1e-12);
        if !active {
            return;
        }
        // Move toward the box center, which for the capacity-style
        // constraints used here (monotonically increasing in every variable)
        // reduces the constraint values.
        let center: Vec<f64> =
            (0..problem.dim()).map(|j| 0.5 * (problem.lower()[j] + problem.upper()[j])).collect();
        for (xj, &c) in x.iter_mut().zip(&center) {
            *xj = *xj + 0.05 * (c.min(*xj) - *xj) - 1e-9 * xj.abs();
        }
        problem.project(x);
        // Shrink toward lower bounds as a last resort.
        if (0..problem.num_constraints()).any(|i| problem.constraint(i, x) >= 0.0) {
            for (xj, &lo) in x.iter_mut().zip(problem.lower()) {
                *xj = lo + 0.9 * (*xj - lo);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unconstrained_quadratic() {
        let p = Problem::new(2)
            .with_bounds(vec![-10.0, -10.0], vec![10.0, 10.0])
            .with_objective(|x| (x[0] - 1.0).powi(2) + (x[1] + 2.0).powi(2));
        let r = BarrierSolver::default().solve(&p, &[5.0, 5.0]);
        assert!(r.feasible);
        assert!((r.x[0] - 1.0).abs() < 1e-2, "{:?}", r.x);
        assert!((r.x[1] + 2.0).abs() < 1e-2, "{:?}", r.x);
    }

    #[test]
    fn bound_constrained_minimum_at_box_edge() {
        let p = Problem::new(1).with_bounds(vec![2.0], vec![10.0]).with_objective(|x| x[0] * x[0]);
        let r = BarrierSolver::default().solve(&p, &[7.0]);
        assert!(r.feasible);
        assert!((r.x[0] - 2.0).abs() < 1e-3);
    }

    #[test]
    fn inequality_constrained_symmetric_problem() {
        // minimize x+y s.t. xy >= 4 → x = y = 2.
        let p = Problem::new(2)
            .with_bounds(vec![0.1, 0.1], vec![50.0, 50.0])
            .with_objective(|x| x[0] + x[1])
            .with_constraint(|x| 4.0 - x[0] * x[1]);
        let r = BarrierSolver::default().solve(&p, &[10.0, 1.0]);
        assert!(r.feasible, "violation {}", r.max_violation);
        assert!((r.objective - 4.0).abs() < 0.05, "objective {}", r.objective);
    }

    #[test]
    fn matmul_tile_problem_from_section_2() {
        // minimize Ni*Nj*Nk*(1/Ti + 1/Tj) + 2*Ni*Nj  s.t. Ti*Tk + Tj*Tk + Ti*Tj <= C,
        // with Tk fixed small; symmetric in Ti, Tj so the optimum has Ti ≈ Tj.
        let (ni, nj, nk, cap) = (512.0, 512.0, 512.0, 1024.0);
        let p = Problem::new(3)
            .with_bounds(vec![1.0, 1.0, 1.0], vec![ni, nj, nk])
            .with_objective(move |t| ni * nj * nk * (1.0 / t[0] + 1.0 / t[1]) + 2.0 * ni * nj)
            .with_constraint(move |t| t[0] * t[2] + t[1] * t[2] + t[0] * t[1] - cap);
        let r = BarrierSolver::default().solve(&p, &[8.0, 8.0, 8.0]);
        assert!(r.feasible);
        // Optimal Ti ≈ Tj and Tk driven to its lower bound.
        assert!((r.x[0] - r.x[1]).abs() / r.x[0].max(r.x[1]) < 0.15, "{:?}", r.x);
        assert!(r.x[2] < 3.0, "Tk should shrink toward 1, got {}", r.x[2]);
        // Capacity should be essentially saturated at the optimum.
        let used = r.x[0] * r.x[2] + r.x[1] * r.x[2] + r.x[0] * r.x[1];
        assert!(used > 0.85 * cap, "capacity underused: {used}");
    }

    #[test]
    fn infeasible_start_is_recovered() {
        let p = Problem::new(2)
            .with_bounds(vec![0.5, 0.5], vec![100.0, 100.0])
            .with_objective(|x| x[0] + 2.0 * x[1])
            .with_constraint(|x| x[0] * x[1] - 50.0); // xy <= 50
                                                      // Start far outside the feasible region.
        let r = BarrierSolver::default().solve(&p, &[90.0, 90.0]);
        assert!(r.feasible, "violation {}", r.max_violation);
        assert!(r.x[0] * r.x[1] <= 50.0 + 1e-3);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn wrong_start_dimension_panics() {
        let p = Problem::new(2).with_objective(|x| x[0]);
        let _ = BarrierSolver::default().solve(&p, &[1.0]);
    }
}
