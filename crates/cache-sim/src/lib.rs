//! Multi-level memory-hierarchy simulation for tiled CNN executions.
//!
//! The paper validates its analytical model against hardware counters
//! (register load/stores and L1/L2/L3 misses measured with Likwid) on real
//! CPUs. This crate is the reproduction's substitute for that hardware: it
//! provides
//!
//! * [`lru::FullyAssocLru`] — an exact fully-associative LRU cache (the
//!   idealized cache the paper's model assumes), at element or line
//!   granularity,
//! * [`setassoc::SetAssocCache`] — a set-associative cache used to reproduce
//!   the conflict-miss outliers discussed in Sec. 10 (Yolo9 / Yolo18),
//! * [`hierarchy::MemoryHierarchy`] — a multi-level hierarchy assembled from a
//!   [`conv_spec::MachineModel`], with per-level traffic counters,
//! * [`trace`] — an element-granularity access-trace generator that walks the
//!   multi-level tiled conv2d loop nest exactly as the generated code would
//!   (practical for scaled-down operators),
//! * [`tilesim`] — a fast tile-granularity traffic estimator that computes
//!   per-level data movement for *full-size* operators by walking consecutive
//!   tiles and measuring new data between adjacent tiles (the same adjacency
//!   reasoning the analytical model uses, but evaluated numerically, with
//!   partial tiles handled exactly),
//! * [`counters::DataMovement`] — the per-level traffic report plus
//!   bandwidth-scaled cost and a simple bottleneck performance projection.
//!
//! # Example
//!
//! ```
//! use cache_sim::lru::FullyAssocLru;
//!
//! let mut cache = FullyAssocLru::new(2, 1);
//! assert!(!cache.access(10, false)); // cold miss
//! assert!(!cache.access(20, false));
//! assert!(cache.access(10, false));  // hit
//! assert!(!cache.access(30, false)); // evicts 20
//! assert!(!cache.access(20, false)); // capacity miss
//! ```

pub mod counters;
pub mod hierarchy;
pub mod lru;
pub mod setassoc;
pub mod tilesim;
pub mod trace;

pub use counters::{DataMovement, LevelTraffic};
pub use hierarchy::{CacheKind, MemoryHierarchy};
pub use lru::FullyAssocLru;
pub use setassoc::SetAssocCache;
pub use tilesim::{FusedPairTraffic, TileTrafficSimulator, TileTrafficStats};
pub use trace::TraceSimulator;
