//! Fast tile-granularity traffic estimation for full-size operators.
//!
//! The element-level trace simulator ([`crate::trace`]) is exact but only
//! practical for scaled-down problem sizes. This module walks the multi-level
//! tiled loop nest at *tile* granularity: for each pair of consecutive tiles
//! at a given level it computes the amount of new data that must be fetched,
//! using the same "only the immediately preceding tile's data is still
//! resident" reasoning as the paper's analytical model (Sec. 3), but evaluated
//! numerically so partial tiles, strides and arbitrary permutations are
//! handled exactly. It provides the "measured data movement" axis of the
//! model-validation experiments for operators whose full traces would be too
//! large to simulate element by element.

use conv_spec::{ConvShape, LoopIndex, TileConfig, TileSizes, TilingLevel, ALL_INDICES};
use serde::{Deserialize, Serialize};

use crate::counters::DataMovement;

/// A hyper-rectangular region of the seven-dimensional iteration space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TileRegion {
    /// Start offset per loop index (canonical order).
    pub start: [usize; 7],
    /// Size per loop index (canonical order).
    pub size: [usize; 7],
}

impl TileRegion {
    /// The full iteration space of a problem shape.
    pub fn full(shape: &ConvShape) -> Self {
        TileRegion { start: [0; 7], size: shape.extents() }
    }

    /// Start offset for a loop index.
    pub fn start_of(&self, idx: LoopIndex) -> usize {
        self.start[idx.canonical_position()]
    }

    /// Size for a loop index.
    pub fn size_of(&self, idx: LoopIndex) -> usize {
        self.size[idx.canonical_position()]
    }

    /// Number of iteration points in the region.
    pub fn points(&self) -> usize {
        self.size.iter().product()
    }
}

/// A half-open 1-D interval `[start, start + len)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Interval {
    start: usize,
    len: usize,
}

impl Interval {
    fn overlap(self, other: Interval) -> usize {
        let lo = self.start.max(other.start);
        let hi = (self.start + self.len).min(other.start + other.len);
        hi.saturating_sub(lo)
    }
}

/// The rectangular data slice of one tensor touched by a tile, expressed as
/// up to four independent intervals (one per tensor dimension).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Slice4 {
    dims: [Interval; 4],
}

impl Slice4 {
    fn volume(&self) -> usize {
        self.dims.iter().map(|d| d.len).product()
    }

    /// Volume of `self` not covered by `prev` (exact for axis-aligned boxes
    /// when at most the paper's partial-overlap patterns occur; in general a
    /// conservative inclusion–exclusion using the box intersection).
    fn new_volume(&self, prev: &Slice4) -> usize {
        let inter: usize =
            self.dims.iter().zip(prev.dims.iter()).map(|(a, b)| a.overlap(*b)).product();
        self.volume().saturating_sub(inter)
    }
}

fn output_slice(region: &TileRegion) -> Slice4 {
    Slice4 {
        dims: [
            Interval { start: region.start_of(LoopIndex::N), len: region.size_of(LoopIndex::N) },
            Interval { start: region.start_of(LoopIndex::K), len: region.size_of(LoopIndex::K) },
            Interval { start: region.start_of(LoopIndex::H), len: region.size_of(LoopIndex::H) },
            Interval { start: region.start_of(LoopIndex::W), len: region.size_of(LoopIndex::W) },
        ],
    }
}

fn kernel_slice(region: &TileRegion) -> Slice4 {
    Slice4 {
        dims: [
            Interval { start: region.start_of(LoopIndex::K), len: region.size_of(LoopIndex::K) },
            Interval { start: region.start_of(LoopIndex::C), len: region.size_of(LoopIndex::C) },
            Interval { start: region.start_of(LoopIndex::R), len: region.size_of(LoopIndex::R) },
            Interval { start: region.start_of(LoopIndex::S), len: region.size_of(LoopIndex::S) },
        ],
    }
}

/// The input-tensor bounding box of a tile region: the spatial window is the
/// dilated sliding-window span, and the channel interval covers the per-group
/// channel band(s) reached by the region's K range (a bounding interval when
/// the K range straddles several groups — consistent with the analytical
/// model's group-span over-approximation; exact for dense shapes).
fn input_slice(region: &TileRegion, shape: &ConvShape) -> Slice4 {
    let stride = shape.stride;
    let dil = shape.dilation;
    let h0 = region.start_of(LoopIndex::H);
    let hs = region.size_of(LoopIndex::H);
    let w0 = region.start_of(LoopIndex::W);
    let ws = region.size_of(LoopIndex::W);
    let r0 = region.start_of(LoopIndex::R);
    let rs = region.size_of(LoopIndex::R);
    let s0 = region.start_of(LoopIndex::S);
    let ss = region.size_of(LoopIndex::S);
    let row_start = h0 * stride + r0 * dil;
    let row_len = (hs - 1) * stride + (rs - 1) * dil + 1;
    let col_start = w0 * stride + s0 * dil;
    let col_len = (ws - 1) * stride + (ss - 1) * dil + 1;
    let c0 = region.start_of(LoopIndex::C);
    let cs = region.size_of(LoopIndex::C);
    let (ch_start, ch_len) = if shape.groups <= 1 {
        (c0, cs)
    } else {
        let cpg = shape.reduction_c();
        let k0 = region.start_of(LoopIndex::K);
        let ks = region.size_of(LoopIndex::K);
        let groups = shape.groups_spanned(k0, ks);
        let (g_lo, g_hi) = (*groups.start(), *groups.end());
        (g_lo * cpg + c0, (g_hi - g_lo) * cpg + cs)
    };
    Slice4 {
        dims: [
            Interval { start: region.start_of(LoopIndex::N), len: region.size_of(LoopIndex::N) },
            Interval { start: ch_start, len: ch_len },
            Interval { start: row_start, len: row_len },
            Interval { start: col_start, len: col_len },
        ],
    }
}

/// Walks the sequence of tiles of a target level, in execution order, for a
/// multi-level tiling configuration.
pub struct TileWalker<'a> {
    shape: &'a ConvShape,
    config: &'a TileConfig,
}

impl<'a> TileWalker<'a> {
    /// Create a walker for a shape and a (normalized) tiling configuration.
    pub fn new(shape: &'a ConvShape, config: &'a TileConfig) -> Self {
        TileWalker { shape, config }
    }

    /// The chain of tile-size vectors from the outermost level (L3) down to
    /// and including `target`.
    fn level_chain(&self, target: TilingLevel) -> Vec<TileSizes> {
        let mut chain = Vec::new();
        for lvl in [TilingLevel::L3, TilingLevel::L2, TilingLevel::L1, TilingLevel::Register] {
            chain.push(*self.config.level(lvl));
            if lvl == target {
                break;
            }
        }
        chain
    }

    /// Exact number of tiles of `target` level that the walk visits.
    pub fn tile_count(&self, target: TilingLevel) -> u128 {
        let chain = self.level_chain(target);
        let mut total: u128 = 1;
        for &idx in &ALL_INDICES {
            total *= count_along_dim(self.shape.extent(idx), &chain, 0, idx) as u128;
        }
        total
    }

    /// Visit tiles of `target` level in execution order. The callback returns
    /// `false` to stop early; the method returns the number of tiles visited.
    pub fn walk(&self, target: TilingLevel, mut visit: impl FnMut(&TileRegion) -> bool) -> u64 {
        let chain = self.level_chain(target);
        let full = TileRegion::full(self.shape);
        let mut visited = 0u64;
        self.walk_levels(&chain, &full, &mut visit, &mut visited);
        visited
    }

    fn walk_levels(
        &self,
        chain: &[TileSizes],
        enclosing: &TileRegion,
        visit: &mut impl FnMut(&TileRegion) -> bool,
        visited: &mut u64,
    ) -> bool {
        if chain.is_empty() {
            *visited += 1;
            return visit(enclosing);
        }
        let mut current = *enclosing;
        self.walk_dims(chain, enclosing, 0, &mut current, visit, visited)
    }

    #[allow(clippy::too_many_arguments)]
    fn walk_dims(
        &self,
        chain: &[TileSizes],
        enclosing: &TileRegion,
        dim: usize,
        current: &mut TileRegion,
        visit: &mut impl FnMut(&TileRegion) -> bool,
        visited: &mut u64,
    ) -> bool {
        if dim == 7 {
            let sub = *current;
            return self.walk_levels(&chain[1..], &sub, visit, visited);
        }
        let idx = self.config.permutation.outer_to_inner()[dim];
        let pos = idx.canonical_position();
        let tile = chain[0].get(idx).max(1);
        let extent = enclosing.size[pos];
        let base = enclosing.start[pos];
        let mut off = 0;
        while off < extent {
            let sz = tile.min(extent - off);
            current.start[pos] = base + off;
            current.size[pos] = sz;
            if !self.walk_dims(chain, enclosing, dim + 1, current, visit, visited) {
                return false;
            }
            off += tile;
        }
        // Restore for the caller.
        current.start[pos] = enclosing.start[pos];
        current.size[pos] = enclosing.size[pos];
        true
    }
}

/// Number of tiles along a single dimension produced by a chain of nested
/// tile sizes subdividing an extent (exact with partial tiles).
fn count_along_dim(extent: usize, chain: &[TileSizes], level: usize, idx: LoopIndex) -> u64 {
    if level == chain.len() {
        return 1;
    }
    let tile = chain[level].get(idx).max(1);
    let mut total = 0u64;
    let mut off = 0;
    // All full tiles have the same sub-count; only the trailing partial tile
    // differs, so this loop runs at most twice worth of distinct work.
    let full_tiles = extent / tile;
    if full_tiles > 0 {
        total += full_tiles as u64 * count_along_dim(tile, chain, level + 1, idx);
        off = full_tiles * tile;
    }
    if off < extent {
        total += count_along_dim(extent - off, chain, level + 1, idx);
    }
    total
}

/// Per-level traffic statistics produced by the tile-granularity simulator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TileTrafficStats {
    /// Elements fetched for the input tensor.
    pub input_elems: f64,
    /// Elements fetched for the kernel tensor.
    pub kernel_elems: f64,
    /// Elements fetched for the output tensor (an equal volume is written
    /// back, giving the paper's factor of 2 for `Out`).
    pub output_elems: f64,
    /// Number of tiles actually visited.
    pub tiles_visited: u64,
    /// Total tiles at this level; larger than `tiles_visited` when the walk
    /// was truncated by the sampling budget and the totals were extrapolated.
    pub tiles_total: u128,
}

impl TileTrafficStats {
    /// Total data volume in elements (output counted twice: read + write).
    pub fn total_volume(&self) -> f64 {
        self.input_elems + self.kernel_elems + 2.0 * self.output_elems
    }

    /// Whether the estimate was extrapolated from a truncated walk.
    pub fn sampled(&self) -> bool {
        (self.tiles_visited as u128) < self.tiles_total
    }
}

/// Tile-granularity traffic simulator for all four tiling levels.
#[derive(Debug, Clone)]
pub struct TileTrafficSimulator {
    /// Maximum number of tiles to visit per level before extrapolating.
    pub max_tiles_per_level: u64,
}

impl Default for TileTrafficSimulator {
    fn default() -> Self {
        TileTrafficSimulator { max_tiles_per_level: 2_000_000 }
    }
}

impl TileTrafficSimulator {
    /// Create a simulator with a per-level tile budget.
    pub fn new(max_tiles_per_level: u64) -> Self {
        TileTrafficSimulator { max_tiles_per_level }
    }

    /// Estimate the traffic feeding one tiling level.
    ///
    /// The walk is truncated at `max_tiles_per_level` tiles; when truncated,
    /// the measured traffic is extrapolated by the ratio of total to visited
    /// tiles (the traffic per tile is close to periodic across the sequence).
    pub fn level_traffic(
        &self,
        shape: &ConvShape,
        config: &TileConfig,
        level: TilingLevel,
    ) -> TileTrafficStats {
        let config = config.normalized(shape);
        let walker = TileWalker::new(shape, &config);
        let total = walker.tile_count(level);
        let budget = self.max_tiles_per_level.max(1);
        let mut prev: Option<(Slice4, Slice4, Slice4)> = None;
        let mut input = 0f64;
        let mut kernel = 0f64;
        let mut output = 0f64;
        let mut count = 0u64;
        let visited = walker.walk(level, |region| {
            let in_s = input_slice(region, shape);
            let ker_s = kernel_slice(region);
            let out_s = output_slice(region);
            match &prev {
                None => {
                    input += in_s.volume() as f64;
                    kernel += ker_s.volume() as f64;
                    output += out_s.volume() as f64;
                }
                Some((pin, pker, pout)) => {
                    input += in_s.new_volume(pin) as f64;
                    kernel += ker_s.new_volume(pker) as f64;
                    output += out_s.new_volume(pout) as f64;
                }
            }
            prev = Some((in_s, ker_s, out_s));
            count += 1;
            count < budget
        });
        let scale = if (visited as u128) < total && visited > 0 {
            total as f64 / visited as f64
        } else {
            1.0
        };
        TileTrafficStats {
            input_elems: input * scale,
            kernel_elems: kernel * scale,
            output_elems: output * scale,
            tiles_visited: visited,
            tiles_total: total,
        }
    }

    /// Estimate traffic at every tiling level and assemble a
    /// [`DataMovement`] report comparable to the analytical model's output and
    /// to the trace simulator's counters.
    pub fn simulate(&self, shape: &ConvShape, config: &TileConfig) -> DataMovement {
        let mut dm = DataMovement::zero(shape.flops() as f64);
        for &level in &TilingLevel::ALL {
            let stats = self.level_traffic(shape, config, level);
            let t = dm.level_mut(level);
            t.inbound_elems = stats.input_elems + stats.kernel_elems + stats.output_elems;
            t.outbound_elems = stats.output_elems;
        }
        dm
    }
}

/// Tile-granularity traffic estimate for a fused producer → consumer pair at
/// one boundary level, compared against running the two schedules separately.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FusedPairTraffic {
    /// Producer traffic when run stand-alone.
    pub producer: TileTrafficStats,
    /// Consumer traffic when run stand-alone.
    pub consumer: TileTrafficStats,
    /// Elements of the intermediate tensor (producer output = consumer
    /// input).
    pub intermediate_elems: f64,
    /// Total boundary traffic of the two stand-alone schedules
    /// (`producer.total_volume() + consumer.total_volume()`).
    pub unfused_total: f64,
    /// Total boundary traffic when fused: the producer's output store (and
    /// write-back read) and the consumer's input load never cross the
    /// boundary — the intermediate is consumed in cache.
    pub fused_total: f64,
}

impl FusedPairTraffic {
    /// Elements of traffic the fusion deletes at this boundary.
    pub fn saving(&self) -> f64 {
        self.unfused_total - self.fused_total
    }
}

impl TileTrafficSimulator {
    /// Estimate the traffic of a fused producer → consumer pair at `level`.
    ///
    /// Each schedule is walked stand-alone with [`Self::level_traffic`]; the
    /// fused total then removes the terms fusion deletes: the producer's
    /// output volume (counted twice stand-alone, for write-back + re-read)
    /// and the consumer's input volume (its loads of the intermediate,
    /// including any refetches its tiling would have caused — in the fused
    /// execution those reads hit the cache-resident band). Everything else —
    /// the producer's input and both kernels — keeps its measured volume.
    ///
    /// # Panics
    ///
    /// Panics unless the consumer's input tensor is exactly the producer's
    /// output tensor.
    pub fn fused_pair_traffic(
        &self,
        producer_shape: &ConvShape,
        producer_config: &TileConfig,
        consumer_shape: &ConvShape,
        consumer_config: &TileConfig,
        level: TilingLevel,
    ) -> FusedPairTraffic {
        assert_eq!(
            consumer_shape.input_dims(),
            producer_shape.output_dims(),
            "consumer input is not the producer output"
        );
        let producer = self.level_traffic(producer_shape, producer_config, level);
        let consumer = self.level_traffic(consumer_shape, consumer_config, level);
        let unfused = producer.total_volume() + consumer.total_volume();
        let fused = producer.input_elems
            + producer.kernel_elems
            + consumer.kernel_elems
            + 2.0 * consumer.output_elems;
        FusedPairTraffic {
            producer,
            consumer,
            intermediate_elems: producer_shape.output_elems() as f64,
            unfused_total: unfused,
            fused_total: fused,
        }
    }
}

// Guard against the walker visiting an absurd number of tiles when the
// caller forgot to budget: the simulator above always enforces
// `max_tiles_per_level` by extrapolation when the exact walk would exceed it.

#[cfg(test)]
mod tests {
    use super::*;
    use conv_spec::Permutation;

    fn small_shape() -> ConvShape {
        ConvShape::new(1, 4, 3, 3, 3, 8, 8, 1).unwrap()
    }

    fn single_level_config(shape: &ConvShape, tiles: TileSizes, perm: &str) -> TileConfig {
        // Only the L3 level subdivides; inner levels equal the L3 tile so the
        // walk at L3 is the interesting one.
        TileConfig::new(
            Permutation::parse(perm).unwrap(),
            [tiles, tiles, tiles, tiles],
            TileSizes::ones(),
        )
        .normalized(shape)
    }

    #[test]
    fn tile_count_exact_with_partial_tiles() {
        let shape = small_shape();
        let tiles = TileSizes::from_array([1, 3, 3, 3, 3, 5, 8]);
        let cfg = single_level_config(&shape, tiles, "nkcrshw");
        let walker = TileWalker::new(&shape, &cfg);
        // k: ceil(4/3)=2, c:1, h: ceil(8/5)=2, others 1 → 4 tiles at L3.
        assert_eq!(walker.tile_count(TilingLevel::L3), 4);
        let mut seen = 0;
        walker.walk(TilingLevel::L3, |_| {
            seen += 1;
            true
        });
        assert_eq!(seen, 4);
    }

    #[test]
    fn walk_regions_partition_iteration_space() {
        let shape = small_shape();
        let tiles = TileSizes::from_array([1, 3, 2, 2, 3, 5, 3]);
        let cfg = single_level_config(&shape, tiles, "kcrsnhw");
        let walker = TileWalker::new(&shape, &cfg);
        let mut total_points = 0usize;
        walker.walk(TilingLevel::L3, |r| {
            total_points += r.points();
            true
        });
        assert_eq!(total_points, shape.macs());
    }

    #[test]
    fn untiled_config_moves_each_tensor_once() {
        let shape = small_shape();
        let cfg = TileConfig::untiled(&shape);
        let sim = TileTrafficSimulator::default();
        let stats = sim.level_traffic(&shape, &cfg, TilingLevel::L3);
        assert_eq!(stats.tiles_total, 1);
        assert_eq!(stats.input_elems, shape.input_elems() as f64);
        assert_eq!(stats.kernel_elems, shape.kernel_elems() as f64);
        assert_eq!(stats.output_elems, shape.output_elems() as f64);
        assert!(!stats.sampled());
    }

    #[test]
    fn innermost_w_reuses_kernel_but_not_output() {
        // With wt innermost, Ker slices are identical across consecutive wt
        // tiles (full reuse) while Out slices are disjoint. Matches Sec. 3.1.
        let shape = ConvShape::new(1, 4, 4, 1, 1, 8, 8, 1).unwrap();
        let tiles = TileSizes::from_array([1, 4, 4, 1, 1, 8, 2]); // only w tiled
        let cfg = single_level_config(&shape, tiles, "nkcrshw");
        let sim = TileTrafficSimulator::default();
        let stats = sim.level_traffic(&shape, &cfg, TilingLevel::L3);
        // 4 tiles along w; kernel fetched once, output fetched fully (disjoint).
        assert_eq!(stats.kernel_elems, shape.kernel_elems() as f64);
        assert_eq!(stats.output_elems, shape.output_elems() as f64);
        assert_eq!(stats.input_elems, shape.input_elems() as f64);
    }

    #[test]
    fn innermost_k_refetches_input_free_kernel_and_output_disjoint() {
        // Tile only k with kt innermost: In slice identical across kt tiles →
        // fetched once; Ker and Out disjoint per tile → fetched once in total.
        let shape = ConvShape::new(1, 8, 4, 1, 1, 4, 4, 1).unwrap();
        let tiles = TileSizes::from_array([1, 2, 4, 1, 1, 4, 4]);
        let cfg = single_level_config(&shape, tiles, "ncrshwk");
        let sim = TileTrafficSimulator::default();
        let stats = sim.level_traffic(&shape, &cfg, TilingLevel::L3);
        assert_eq!(stats.input_elems, shape.input_elems() as f64);
        assert_eq!(stats.kernel_elems, shape.kernel_elems() as f64);
        assert_eq!(stats.output_elems, shape.output_elems() as f64);
    }

    #[test]
    fn outer_present_loop_forces_refetch() {
        // Tile k and put kt OUTERMOST with ct innermost; now the In slice is
        // re-fetched for every kt tile because In has no k dimension but the
        // intermediate Ker/Out slices change → with only-adjacent-reuse, In
        // must be reloaded for each kt value except where adjacent.
        let shape = ConvShape::new(1, 8, 4, 1, 1, 4, 4, 1).unwrap();
        let tiles = TileSizes::from_array([1, 2, 2, 1, 1, 4, 4]);
        let cfg = single_level_config(&shape, tiles, "khwnrsc");
        let sim = TileTrafficSimulator::default();
        let stats = sim.level_traffic(&shape, &cfg, TilingLevel::L3);
        // 4 kt tiles; within each, 2 ct tiles with disjoint In slices; between
        // kt steps the In slice repeats but adjacency is broken only if the
        // last ct tile of one kt equals the first of the next (it does not:
        // c goes 0..2 then wraps to 0..2, so the last slice c∈[2,4) differs
        // from the next first slice c∈[0,2)). Hence In is fetched 4*2 times
        // its half-size = 4 * input_elems... except adjacent wrap: compute:
        let expected_in = 4.0 * shape.input_elems() as f64;
        assert_eq!(stats.input_elems, expected_in);
        // Ker fetched exactly once in total (each (k,c) block distinct).
        assert_eq!(stats.kernel_elems, shape.kernel_elems() as f64);
    }

    #[test]
    fn input_overlap_partial_reuse_along_h() {
        // 3x3 kernel, tiles along h: consecutive h tiles overlap by (r-1) rows
        // of the input; the simulator must count only the new rows.
        let shape = ConvShape::new(1, 1, 1, 3, 3, 6, 6, 1).unwrap();
        let tiles = TileSizes::from_array([1, 1, 1, 3, 3, 2, 6]);
        let cfg = single_level_config(&shape, tiles, "nkcrswh");
        let sim = TileTrafficSimulator::default();
        let stats = sim.level_traffic(&shape, &cfg, TilingLevel::L3);
        // First tile: rows 0..4 (4 rows). Each next tile adds 2 new rows.
        // 3 tiles → 4 + 2 + 2 = 8 rows = input_h; cols always 8.
        assert_eq!(stats.input_elems, (shape.input_h() * shape.input_w()) as f64);
    }

    #[test]
    fn stride_two_input_slices() {
        let shape = ConvShape::from_table1(2, 1, 9, 3, 2); // output 4x4
        let region = TileRegion::full(&shape);
        let s = input_slice(&region, &shape);
        assert_eq!(s.dims[2].len, (4 - 1) * 2 + 3);
        assert_eq!(s.volume(), 9 * 9);
    }

    #[test]
    fn dilated_input_slice_spans_the_wider_window() {
        let shape = ConvShape::from_table1_dilated(2, 1, 11, 3, 1, 2); // eff 5, out 7x7
        let region = TileRegion::full(&shape);
        let s = input_slice(&region, &shape);
        assert_eq!(s.dims[2].len, (7 - 1) + (3 - 1) * 2 + 1);
        assert_eq!(s.volume(), 11 * 11);
    }

    #[test]
    fn grouped_input_slice_covers_spanned_channel_bands() {
        let shape = ConvShape::new_general(1, 8, 8, 1, 1, 4, 4, 1, 1, 4).unwrap();
        // Full region: all 4 groups → all 8 channels.
        let full = TileRegion::full(&shape);
        assert_eq!(input_slice(&full, &shape).dims[1].len, 8);
        // A region covering k = 2..4 (group 1 only) → channels 2..4.
        let mut sub = full;
        sub.start[LoopIndex::K.canonical_position()] = 2;
        sub.size[LoopIndex::K.canonical_position()] = 2;
        let s = input_slice(&sub, &shape);
        assert_eq!((s.dims[1].start, s.dims[1].len), (2, 2));
    }

    #[test]
    fn depthwise_untiled_traffic_matches_tensor_sizes() {
        let shape = ConvShape::depthwise(8, 10, 3, 1);
        let cfg = TileConfig::untiled(&shape);
        let sim = TileTrafficSimulator::default();
        let stats = sim.level_traffic(&shape, &cfg, TilingLevel::L3);
        assert_eq!(stats.input_elems, shape.input_elems() as f64);
        assert_eq!(stats.kernel_elems, shape.kernel_elems() as f64);
        assert_eq!(stats.output_elems, shape.output_elems() as f64);
    }

    #[test]
    fn multi_level_volumes_are_monotone_outward() {
        // Traffic feeding an inner level is at least the traffic feeding an
        // outer level (inner tiles are smaller → more refetches).
        let shape = ConvShape::new(1, 16, 16, 3, 3, 12, 12, 1).unwrap();
        let cfg = TileConfig::new(
            Permutation::parse("kcrsnhw").unwrap(),
            [
                TileSizes::from_array([1, 4, 2, 1, 1, 2, 4]),
                TileSizes::from_array([1, 8, 4, 3, 3, 4, 6]),
                TileSizes::from_array([1, 8, 8, 3, 3, 6, 12]),
                TileSizes::from_array([1, 16, 16, 3, 3, 12, 12]),
            ],
            TileSizes::ones(),
        )
        .normalized(&shape);
        let sim = TileTrafficSimulator::default();
        let dm = sim.simulate(&shape, &cfg);
        let reg = dm.volume(TilingLevel::Register);
        let l1 = dm.volume(TilingLevel::L1);
        let l2 = dm.volume(TilingLevel::L2);
        let l3 = dm.volume(TilingLevel::L3);
        assert!(reg >= l1 && l1 >= l2 && l2 >= l3, "reg={reg} l1={l1} l2={l2} l3={l3}");
        assert!(
            l3 >= (shape.input_elems() + shape.kernel_elems() + 2 * shape.output_elems()) as f64
                - 1.0
        );
    }

    #[test]
    fn fused_pair_deletes_the_intermediate_round_trip() {
        // Depthwise producer, pointwise consumer, both untiled: stand-alone
        // traffic is exact tensor sizes, and fusing removes 2x the producer
        // output plus the consumer input (= 3x the intermediate here).
        let dw = ConvShape::depthwise(8, 12, 3, 1);
        let pw = ConvShape::new(1, 4, 8, 1, 1, dw.h, dw.w, 1).unwrap();
        let sim = TileTrafficSimulator::default();
        let est = sim.fused_pair_traffic(
            &dw,
            &TileConfig::untiled(&dw),
            &pw,
            &TileConfig::untiled(&pw),
            TilingLevel::L3,
        );
        let inter = dw.output_elems() as f64;
        assert_eq!(est.intermediate_elems, inter);
        assert_eq!(
            est.unfused_total,
            (dw.input_elems() + dw.kernel_elems() + 2 * dw.output_elems()) as f64
                + (pw.input_elems() + pw.kernel_elems() + 2 * pw.output_elems()) as f64
        );
        assert_eq!(est.saving(), 3.0 * inter);
        assert!(est.fused_total < est.unfused_total);
    }

    #[test]
    #[should_panic(expected = "consumer input is not the producer output")]
    fn fused_pair_rejects_mismatched_chains() {
        let dw = ConvShape::depthwise(8, 12, 3, 1);
        let wrong = ConvShape::new(1, 4, 8, 1, 1, dw.h - 1, dw.w, 1).unwrap();
        let sim = TileTrafficSimulator::default();
        let _ = sim.fused_pair_traffic(
            &dw,
            &TileConfig::untiled(&dw),
            &wrong,
            &TileConfig::untiled(&wrong),
            TilingLevel::L3,
        );
    }

    #[test]
    fn sampling_budget_extrapolates() {
        let shape = ConvShape::new(1, 16, 16, 3, 3, 12, 12, 1).unwrap();
        let cfg = TileConfig::new(
            Permutation::canonical(),
            [
                TileSizes::from_array([1, 2, 2, 1, 1, 2, 2]),
                TileSizes::from_array([1, 4, 4, 3, 3, 4, 4]),
                TileSizes::from_array([1, 8, 8, 3, 3, 8, 8]),
                TileSizes::from_array([1, 16, 16, 3, 3, 12, 12]),
            ],
            TileSizes::ones(),
        )
        .normalized(&shape);
        let exact =
            TileTrafficSimulator::new(u64::MAX).level_traffic(&shape, &cfg, TilingLevel::Register);
        let sampled =
            TileTrafficSimulator::new(500).level_traffic(&shape, &cfg, TilingLevel::Register);
        assert!(sampled.sampled());
        assert!(!exact.sampled());
        let rel = (sampled.total_volume() - exact.total_volume()).abs() / exact.total_volume();
        assert!(rel < 0.35, "extrapolation error too large: {rel}");
    }
}
