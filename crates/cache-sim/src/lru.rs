//! Exact fully-associative LRU cache.
//!
//! This is the idealized cache model the paper's analytical expressions
//! assume (Sec. 2.2: "an idealized fully-associative LRU cache with a
//! capacity of C words and unit line-size"). The implementation keeps an
//! intrusive doubly-linked LRU list over a hash map so each access is O(1).

use std::collections::HashMap;

/// A fully-associative LRU cache over abstract addresses.
///
/// Addresses are element indices; `line_elems` groups consecutive addresses
/// into one cache line (use `1` for the paper's unit-line-size idealization).
#[derive(Debug, Clone)]
pub struct FullyAssocLru {
    /// Capacity in *lines*.
    capacity_lines: usize,
    line_elems: usize,
    /// Map from line address to slot index in `slots`.
    map: HashMap<usize, usize>,
    /// Slot storage; a free list is threaded through unused slots.
    slots: Vec<Slot>,
    head: Option<usize>,
    tail: Option<usize>,
    free: Vec<usize>,
    stats: LruStats,
}

#[derive(Debug, Clone)]
struct Slot {
    line: usize,
    dirty: bool,
    prev: Option<usize>,
    next: Option<usize>,
}

/// Access statistics of a single cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LruStats {
    /// Total accesses.
    pub accesses: u64,
    /// Hits.
    pub hits: u64,
    /// Misses (cold + capacity).
    pub misses: u64,
    /// Evictions of dirty lines (write-backs).
    pub writebacks: u64,
}

impl LruStats {
    /// Miss ratio (0 when there were no accesses).
    pub fn miss_ratio(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }
}

impl FullyAssocLru {
    /// Create a cache that holds `capacity_elems` elements grouped into lines
    /// of `line_elems` elements.
    ///
    /// # Panics
    ///
    /// Panics if `capacity_elems` or `line_elems` is zero, or if the capacity
    /// is smaller than one line.
    pub fn new(capacity_elems: usize, line_elems: usize) -> Self {
        assert!(capacity_elems > 0, "cache capacity must be positive");
        assert!(line_elems > 0, "line size must be positive");
        let capacity_lines = (capacity_elems / line_elems).max(1);
        FullyAssocLru {
            capacity_lines,
            line_elems,
            map: HashMap::with_capacity(capacity_lines * 2),
            slots: Vec::with_capacity(capacity_lines),
            head: None,
            tail: None,
            free: Vec::new(),
            stats: LruStats::default(),
        }
    }

    /// Capacity in lines.
    pub fn capacity_lines(&self) -> usize {
        self.capacity_lines
    }

    /// Line size in elements.
    pub fn line_elems(&self) -> usize {
        self.line_elems
    }

    /// Number of lines currently resident.
    pub fn resident_lines(&self) -> usize {
        self.map.len()
    }

    /// Access statistics so far.
    pub fn stats(&self) -> LruStats {
        self.stats
    }

    /// Reset statistics (contents are kept).
    pub fn reset_stats(&mut self) {
        self.stats = LruStats::default();
    }

    /// Whether the line containing `addr` is currently resident (does not
    /// update recency or statistics).
    pub fn contains(&self, addr: usize) -> bool {
        self.map.contains_key(&(addr / self.line_elems))
    }

    /// Access element address `addr`; returns `true` on a hit.
    ///
    /// A miss inserts the line, evicting the least-recently-used line if the
    /// cache is full. `is_write` marks the line dirty; evicting a dirty line
    /// counts as a write-back.
    pub fn access(&mut self, addr: usize, is_write: bool) -> bool {
        let line = addr / self.line_elems;
        self.stats.accesses += 1;
        if let Some(&slot) = self.map.get(&line) {
            self.stats.hits += 1;
            if is_write {
                self.slots[slot].dirty = true;
            }
            self.move_to_front(slot);
            true
        } else {
            self.stats.misses += 1;
            self.insert_line(line, is_write);
            false
        }
    }

    /// Invalidate the whole cache (a "cache flush" between benchmark runs).
    /// Dirty lines are counted as write-backs.
    pub fn flush(&mut self) {
        for slot in self.map.values() {
            if self.slots[*slot].dirty {
                self.stats.writebacks += 1;
            }
        }
        self.map.clear();
        self.slots.clear();
        self.free.clear();
        self.head = None;
        self.tail = None;
    }

    fn insert_line(&mut self, line: usize, dirty: bool) {
        if self.map.len() >= self.capacity_lines {
            self.evict_lru();
        }
        let slot_idx = if let Some(idx) = self.free.pop() {
            self.slots[idx] = Slot { line, dirty, prev: None, next: None };
            idx
        } else {
            self.slots.push(Slot { line, dirty, prev: None, next: None });
            self.slots.len() - 1
        };
        self.map.insert(line, slot_idx);
        self.push_front(slot_idx);
    }

    fn evict_lru(&mut self) {
        if let Some(tail) = self.tail {
            let line = self.slots[tail].line;
            if self.slots[tail].dirty {
                self.stats.writebacks += 1;
            }
            self.unlink(tail);
            self.map.remove(&line);
            self.free.push(tail);
        }
    }

    fn push_front(&mut self, idx: usize) {
        self.slots[idx].prev = None;
        self.slots[idx].next = self.head;
        if let Some(h) = self.head {
            self.slots[h].prev = Some(idx);
        }
        self.head = Some(idx);
        if self.tail.is_none() {
            self.tail = Some(idx);
        }
    }

    fn unlink(&mut self, idx: usize) {
        let (prev, next) = (self.slots[idx].prev, self.slots[idx].next);
        match prev {
            Some(p) => self.slots[p].next = next,
            None => self.head = next,
        }
        match next {
            Some(n) => self.slots[n].prev = prev,
            None => self.tail = prev,
        }
        self.slots[idx].prev = None;
        self.slots[idx].next = None;
    }

    fn move_to_front(&mut self, idx: usize) {
        if self.head == Some(idx) {
            return;
        }
        self.unlink(idx);
        self.push_front(idx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_misses_then_hits() {
        let mut c = FullyAssocLru::new(4, 1);
        for a in 0..4 {
            assert!(!c.access(a, false));
        }
        for a in 0..4 {
            assert!(c.access(a, false));
        }
        let s = c.stats();
        assert_eq!(s.accesses, 8);
        assert_eq!(s.misses, 4);
        assert_eq!(s.hits, 4);
        assert_eq!(s.writebacks, 0);
        assert_eq!(c.resident_lines(), 4);
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = FullyAssocLru::new(3, 1);
        c.access(1, false);
        c.access(2, false);
        c.access(3, false);
        // Touch 1 so 2 becomes LRU.
        c.access(1, false);
        c.access(4, false); // evicts 2
        assert!(c.contains(1));
        assert!(!c.contains(2));
        assert!(c.contains(3));
        assert!(c.contains(4));
    }

    #[test]
    fn writeback_counted_on_dirty_eviction_and_flush() {
        let mut c = FullyAssocLru::new(1, 1);
        c.access(1, true); // dirty
        c.access(2, false); // evicts dirty 1 -> writeback
        assert_eq!(c.stats().writebacks, 1);
        c.access(3, true);
        c.flush();
        assert_eq!(c.stats().writebacks, 2);
        assert_eq!(c.resident_lines(), 0);
    }

    #[test]
    fn line_granularity_groups_addresses() {
        let mut c = FullyAssocLru::new(16, 4);
        assert!(!c.access(0, false)); // miss brings in line [0..4)
        assert!(c.access(1, false));
        assert!(c.access(3, false));
        assert!(!c.access(4, false)); // next line
        assert_eq!(c.capacity_lines(), 4);
        assert_eq!(c.line_elems(), 4);
    }

    #[test]
    fn capacity_smaller_than_line_still_holds_one_line() {
        let c = FullyAssocLru::new(2, 8);
        assert_eq!(c.capacity_lines(), 1);
    }

    #[test]
    fn miss_ratio_and_reset() {
        let mut c = FullyAssocLru::new(2, 1);
        c.access(0, false);
        c.access(0, false);
        assert!((c.stats().miss_ratio() - 0.5).abs() < 1e-12);
        c.reset_stats();
        assert_eq!(c.stats().accesses, 0);
        assert_eq!(LruStats::default().miss_ratio(), 0.0);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = FullyAssocLru::new(0, 1);
    }

    #[test]
    fn stack_property_reuse_distance() {
        // Reuse distance D hits iff D < capacity (classic LRU stack property).
        let trace: Vec<usize> = vec![1, 2, 3, 4, 1]; // reuse distance of final access to 1 is 3
        for (cap, expect_hit) in [(3, false), (4, true)] {
            let mut c = FullyAssocLru::new(cap, 1);
            let mut last = false;
            for &a in &trace {
                last = c.access(a, false);
            }
            assert_eq!(last, expect_hit, "capacity {cap}");
        }
    }
}
