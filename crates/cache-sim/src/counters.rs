//! Per-level data-movement reports and bandwidth-scaled cost.

use conv_spec::{MachineModel, TilingLevel};
use serde::{Deserialize, Serialize};

/// Traffic observed at one boundary of the memory hierarchy.
///
/// The boundary for a [`TilingLevel`] `l` is the link that *fills* the
/// storage holding the level-`l` tile: `Register` ↔ L1, `L1` ↔ L2,
/// `L2` ↔ L3, `L3` ↔ DRAM. This matches the paper's `DV_l` quantities.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LevelTraffic {
    /// The tiling level whose fill traffic this records.
    pub level: TilingLevel,
    /// Elements moved *into* the level (loads / fills).
    pub inbound_elems: f64,
    /// Elements moved *out of* the level (stores / write-backs toward the
    /// slower side).
    pub outbound_elems: f64,
}

impl LevelTraffic {
    /// Total elements crossing the boundary in both directions.
    pub fn total(&self) -> f64 {
        self.inbound_elems + self.outbound_elems
    }
}

/// A complete per-level data-movement report for one conv2d execution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DataMovement {
    /// Traffic per level, indexed by [`TilingLevel::ordinal`].
    pub levels: [LevelTraffic; 4],
    /// Total floating point operations of the computation (for converting the
    /// bottleneck projection to GFLOPS).
    pub flops: f64,
}

impl DataMovement {
    /// A report with zero traffic everywhere.
    pub fn zero(flops: f64) -> Self {
        DataMovement {
            levels: [
                LevelTraffic {
                    level: TilingLevel::Register,
                    inbound_elems: 0.0,
                    outbound_elems: 0.0,
                },
                LevelTraffic { level: TilingLevel::L1, inbound_elems: 0.0, outbound_elems: 0.0 },
                LevelTraffic { level: TilingLevel::L2, inbound_elems: 0.0, outbound_elems: 0.0 },
                LevelTraffic { level: TilingLevel::L3, inbound_elems: 0.0, outbound_elems: 0.0 },
            ],
            flops,
        }
    }

    /// Traffic at a level.
    pub fn level(&self, level: TilingLevel) -> &LevelTraffic {
        &self.levels[level.ordinal()]
    }

    /// Mutable traffic at a level.
    pub fn level_mut(&mut self, level: TilingLevel) -> &mut LevelTraffic {
        &mut self.levels[level.ordinal()]
    }

    /// Total data volume (both directions) at a level, in elements — the
    /// `DV_l` of the paper.
    pub fn volume(&self, level: TilingLevel) -> f64 {
        self.level(level).total()
    }

    /// Bandwidth-scaled cost of a level: `DV_l / BW_l`, in cycles.
    ///
    /// For private levels (Register, L1, L2) the per-core bandwidth is used
    /// and the volume is assumed to be per-chip, so the cost is divided by the
    /// number of active threads (each core moves its share concurrently,
    /// Sec. 7). The L3↔DRAM link is chip-wide and is not divided.
    pub fn scaled_cost(&self, level: TilingLevel, machine: &MachineModel, threads: usize) -> f64 {
        let bw = machine.fill_bandwidth(level);
        let volume = self.volume(level);
        let effective_threads = threads.max(1) as f64;
        match level {
            TilingLevel::L3 => volume / bw,
            _ => volume / (bw * effective_threads),
        }
    }

    /// The bottleneck level and its bandwidth-scaled cost (cycles):
    /// `max_l DV_l / BW_l` (Sec. 5).
    pub fn bottleneck(&self, machine: &MachineModel, threads: usize) -> (TilingLevel, f64) {
        TilingLevel::ALL
            .iter()
            .map(|&l| (l, self.scaled_cost(l, machine, threads)))
            .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
            .expect("four levels always present")
    }

    /// Projected execution time in cycles: the larger of the bottleneck
    /// data-movement time and the pure compute time at peak FMA throughput.
    pub fn projected_cycles(&self, machine: &MachineModel, threads: usize) -> f64 {
        let (_, mem_cycles) = self.bottleneck(machine, threads);
        let fmas_per_cycle_per_core = (machine.simd_width * machine.fma_units) as f64;
        let compute_cycles = (self.flops / 2.0) / (fmas_per_cycle_per_core * threads.max(1) as f64);
        mem_cycles.max(compute_cycles)
    }

    /// Projected performance in GFLOPS for the whole operator.
    pub fn projected_gflops(&self, machine: &MachineModel, threads: usize) -> f64 {
        let cycles = self.projected_cycles(machine, threads);
        if cycles <= 0.0 {
            return 0.0;
        }
        let seconds = cycles / (machine.clock_ghz * 1e9);
        self.flops / seconds / 1e9
    }
}

impl std::fmt::Display for DataMovement {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "DV[Reg]={:.3e} DV[L1]={:.3e} DV[L2]={:.3e} DV[L3]={:.3e}",
            self.volume(TilingLevel::Register),
            self.volume(TilingLevel::L1),
            self.volume(TilingLevel::L2),
            self.volume(TilingLevel::L3),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DataMovement {
        let mut dm = DataMovement::zero(1_000_000.0);
        dm.level_mut(TilingLevel::Register).inbound_elems = 4e5;
        dm.level_mut(TilingLevel::Register).outbound_elems = 1e5;
        dm.level_mut(TilingLevel::L1).inbound_elems = 2e5;
        dm.level_mut(TilingLevel::L2).inbound_elems = 1e5;
        dm.level_mut(TilingLevel::L3).inbound_elems = 5e4;
        dm
    }

    #[test]
    fn volumes_sum_directions() {
        let dm = sample();
        assert_eq!(dm.volume(TilingLevel::Register), 5e5);
        assert_eq!(dm.volume(TilingLevel::L1), 2e5);
        assert_eq!(dm.level(TilingLevel::L3).total(), 5e4);
    }

    #[test]
    fn bottleneck_picks_max_scaled_cost() {
        let m = MachineModel::tiny_test_machine();
        let dm = sample();
        // single thread: Reg: 5e5/8, L1: 2e5/4, L2: 1e5/2, L3: 5e4/1
        let (lvl, cost) = dm.bottleneck(&m, 1);
        assert_eq!(lvl, TilingLevel::Register);
        assert!((cost - 5e5 / 8.0).abs() < 1e-6);
    }

    #[test]
    fn parallel_scaling_divides_private_levels_only() {
        let m = MachineModel::tiny_test_machine();
        let dm = sample();
        let reg1 = dm.scaled_cost(TilingLevel::Register, &m, 1);
        let reg2 = dm.scaled_cost(TilingLevel::Register, &m, 2);
        assert!((reg1 / reg2 - 2.0).abs() < 1e-9);
        let l3_1 = dm.scaled_cost(TilingLevel::L3, &m, 1);
        let l3_2 = dm.scaled_cost(TilingLevel::L3, &m, 2);
        assert!((l3_1 - l3_2).abs() < 1e-9);
    }

    #[test]
    fn projection_respects_compute_bound() {
        let m = MachineModel::tiny_test_machine();
        // Tiny data movement, large FLOPs: compute bound.
        let dm = DataMovement::zero(1e9);
        let cycles = dm.projected_cycles(&m, 1);
        let expected = (1e9 / 2.0) / (4.0 * 1.0);
        assert!((cycles - expected).abs() < 1.0);
        assert!(dm.projected_gflops(&m, 1) > 0.0);
    }

    #[test]
    fn projection_memory_bound_case() {
        let m = MachineModel::tiny_test_machine();
        let mut dm = DataMovement::zero(100.0);
        dm.level_mut(TilingLevel::L3).inbound_elems = 1e6;
        let (lvl, _) = dm.bottleneck(&m, 2);
        assert_eq!(lvl, TilingLevel::L3);
        assert!(dm.projected_cycles(&m, 2) >= 1e6 / m.dram_bandwidth);
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!format!("{}", sample()).is_empty());
    }
}
